// Unit tests for the reimplemented baseline controllers.

#include <gtest/gtest.h>

#include "src/baselines/darc.h"
#include "src/baselines/parties.h"
#include "src/baselines/pbox.h"
#include "src/baselines/protego.h"
#include "src/common/clock.h"

namespace atropos {
namespace {

// Records control-surface actions.
struct RecordingSurface : ControlSurface {
  std::vector<std::pair<uint64_t, CancelReason>> cancels;
  std::vector<std::pair<uint64_t, double>> throttles;
  std::vector<std::pair<int, int>> reservations;
  std::vector<std::pair<int, double>> shares;

  void CancelTask(uint64_t key, CancelReason reason) override {
    cancels.emplace_back(key, reason);
  }
  void ThrottleTask(uint64_t key, double factor) override { throttles.emplace_back(key, factor); }
  void SetTypeReservation(int type, int workers) override {
    reservations.emplace_back(type, workers);
  }
  void SetClientShare(int cls, double share) override { shares.emplace_back(cls, share); }
};

// --------------------------------------------------------------------------
// Protego

class ProtegoTest : public ::testing::Test {
 protected:
  ProtegoConfig Config() {
    ProtegoConfig cfg;
    cfg.baseline_p99 = 1000;  // SLO = 1200 us, drop threshold = 600 us
    return cfg;
  }
  ManualClock clock_;
  RecordingSurface surface_;
};

TEST_F(ProtegoTest, DropsSloClassRequestWithLongLockWait) {
  Protego protego(&clock_, &surface_, Config());
  ResourceId lock = protego.RegisterResource("l", ResourceClass::kLock);
  protego.OnRequestStart(1, 0, 0);
  protego.OnWaitBegin(1, lock);
  clock_.Advance(Millis(5));
  protego.Tick();
  ASSERT_EQ(surface_.cancels.size(), 1u);
  EXPECT_EQ(surface_.cancels[0].first, 1u);
  EXPECT_EQ(surface_.cancels[0].second, CancelReason::kVictimDrop);
}

TEST_F(ProtegoTest, IgnoresNonSloClassWaiters) {
  Protego protego(&clock_, &surface_, Config());
  ResourceId lock = protego.RegisterResource("l", ResourceClass::kLock);
  protego.OnRequestStart(1, 0, /*client_class=*/1);  // batch traffic
  protego.OnWaitBegin(1, lock);
  clock_.Advance(Millis(5));
  protego.Tick();
  EXPECT_TRUE(surface_.cancels.empty());
}

TEST_F(ProtegoTest, IgnoresNonLockResources) {
  Protego protego(&clock_, &surface_, Config());
  ResourceId pool = protego.RegisterResource("p", ResourceClass::kMemory);
  protego.OnRequestStart(1, 0, 0);
  protego.OnWaitBegin(1, pool);
  clock_.Advance(Millis(5));
  protego.Tick();
  EXPECT_TRUE(surface_.cancels.empty());  // Protego sees locks only (§2.2)
}

TEST_F(ProtegoTest, ShortWaitsAreNotDropped) {
  Protego protego(&clock_, &surface_, Config());
  ResourceId lock = protego.RegisterResource("l", ResourceClass::kLock);
  protego.OnRequestStart(1, 0, 0);
  protego.OnWaitBegin(1, lock);
  clock_.Advance(100);  // < 600 us threshold
  protego.Tick();
  EXPECT_TRUE(surface_.cancels.empty());
}

TEST_F(ProtegoTest, AdmissionShedsWhileSloViolated) {
  Protego protego(&clock_, &surface_, Config());
  // Report violating completions, then ramp the shed probability.
  for (int w = 0; w < 5; w++) {
    for (int i = 0; i < 50; i++) {
      protego.OnRequestEnd(100 + static_cast<uint64_t>(i), /*latency=*/5000, 0, 0);
    }
    clock_.Advance(Millis(100));
    protego.Tick();
  }
  int admitted = 0;
  for (int i = 0; i < 1000; i++) {
    admitted += protego.AdmitRequest(static_cast<uint64_t>(i), 0, 0) ? 1 : 0;
  }
  EXPECT_LT(admitted, 700);  // a large fraction shed
  EXPECT_GT(protego.drops_issued(), 0u);

  // Healthy windows decay the shedding back to zero.
  for (int w = 0; w < 20; w++) {
    for (int i = 0; i < 50; i++) {
      protego.OnRequestEnd(100 + static_cast<uint64_t>(i), /*latency=*/900, 0, 0);
    }
    clock_.Advance(Millis(100));
    protego.Tick();
  }
  admitted = 0;
  for (int i = 0; i < 100; i++) {
    admitted += protego.AdmitRequest(static_cast<uint64_t>(i), 0, 0) ? 1 : 0;
  }
  EXPECT_EQ(admitted, 100);
}

TEST_F(ProtegoTest, OnUsageCreditsReportedWaitDuration) {
  Protego protego(&clock_, &surface_, Config());
  ResourceId lock = protego.RegisterResource("l", ResourceClass::kLock);
  protego.OnRequestStart(1, 0, 0);
  // After-the-fact report: the request already waited 5 ms on the lock. The
  // clock never advances, so a zero-width OnWaitBegin/OnWaitEnd lowering
  // would record 0 us and never drop.
  protego.OnUsage(1, lock, /*waited=*/Millis(5), /*used=*/0);
  protego.Tick();
  ASSERT_EQ(surface_.cancels.size(), 1u);
  EXPECT_EQ(surface_.cancels[0].first, 1u);
  EXPECT_EQ(surface_.cancels[0].second, CancelReason::kVictimDrop);
}

// --------------------------------------------------------------------------
// pBox

TEST(PBoxTest, PenalizesTopHolderUnderContention) {
  ManualClock clock;
  RecordingSurface surface;
  PBoxConfig cfg;
  cfg.contention_threshold = 0.10;
  PBox pbox(&clock, &surface, cfg);
  ResourceId lock = pbox.RegisterResource("l", ResourceClass::kLock);
  pbox.OnTaskRegistered(1, false, true);  // hog
  pbox.OnTaskRegistered(2, false, true);  // waiter
  pbox.OnGet(1, lock, 1);
  pbox.OnWaitBegin(2, lock);
  clock.Advance(Millis(50));
  pbox.OnWaitEnd(2, lock);
  clock.Advance(Millis(50));
  pbox.Tick();
  ASSERT_EQ(surface.throttles.size(), 1u);
  EXPECT_EQ(surface.throttles[0].first, 1u);
  EXPECT_GT(surface.throttles[0].second, 1.0);
  EXPECT_EQ(pbox.penalties_issued(), 1u);
}

TEST(PBoxTest, OnUsageCreditsReportedDurations) {
  ManualClock clock;
  RecordingSurface surface;
  PBoxConfig cfg;
  cfg.contention_threshold = 0.10;
  PBox pbox(&clock, &surface, cfg);
  ResourceId io = pbox.RegisterResource("io", ResourceClass::kIo);
  pbox.OnTaskRegistered(1, false, true);  // hog
  pbox.OnTaskRegistered(2, false, true);  // waiter
  // After-the-fact reports from an IO adapter: the hog used the resource for
  // 80 ms, the waiter lost 50 ms to it. The wall clock only moves between the
  // reports and the tick, so the old OnGet/OnWaitBegin-bracket lowering would
  // observe both durations as 0 and never penalize.
  pbox.OnUsage(1, io, /*waited=*/0, /*used=*/Millis(80));
  pbox.OnUsage(2, io, /*waited=*/Millis(50), /*used=*/0);
  clock.Advance(Millis(100));
  pbox.Tick();
  ASSERT_EQ(surface.throttles.size(), 1u);
  EXPECT_EQ(surface.throttles[0].first, 1u);
  EXPECT_EQ(pbox.penalties_issued(), 1u);
}

TEST(PBoxTest, LiftsPenaltiesAfterCalm) {
  ManualClock clock;
  RecordingSurface surface;
  PBoxConfig cfg;
  cfg.calm_windows = 2;
  PBox pbox(&clock, &surface, cfg);
  ResourceId lock = pbox.RegisterResource("l", ResourceClass::kLock);
  pbox.OnTaskRegistered(1, false, true);
  pbox.OnTaskRegistered(2, false, true);
  pbox.OnGet(1, lock, 1);
  pbox.OnWaitBegin(2, lock);
  clock.Advance(Millis(90));
  pbox.OnWaitEnd(2, lock);
  clock.Advance(Millis(10));
  pbox.Tick();
  ASSERT_EQ(surface.throttles.size(), 1u);
  // Two calm windows later the penalty is lifted (factor back to 1.0).
  clock.Advance(Millis(100));
  pbox.Tick();
  clock.Advance(Millis(100));
  pbox.Tick();
  ASSERT_EQ(surface.throttles.size(), 2u);
  EXPECT_DOUBLE_EQ(surface.throttles[1].second, 1.0);
}

TEST(PBoxTest, NeverCancels) {
  ManualClock clock;
  RecordingSurface surface;
  PBox pbox(&clock, &surface, PBoxConfig{});
  ResourceId lock = pbox.RegisterResource("l", ResourceClass::kLock);
  pbox.OnTaskRegistered(1, false, true);
  pbox.OnGet(1, lock, 1);
  for (int w = 0; w < 20; w++) {
    pbox.OnWaitBegin(2, lock);
    clock.Advance(Millis(90));
    pbox.OnWaitEnd(2, lock);
    clock.Advance(Millis(10));
    pbox.Tick();
  }
  EXPECT_TRUE(surface.cancels.empty());
}

// --------------------------------------------------------------------------
// DARC

TEST(DarcTest, ReservesWorkersWhenHeavyTypeExists) {
  ManualClock clock;
  RecordingSurface surface;
  DarcConfig cfg;
  cfg.total_workers = 16;
  cfg.reserve_fraction = 0.75;
  Darc darc(&clock, &surface, cfg);
  for (int i = 0; i < 50; i++) {
    darc.OnRequestEnd(1, 1000, /*type=*/0, 0);     // short type
    darc.OnRequestEnd(2, 500'000, /*type=*/5, 0);  // heavy type
  }
  darc.Tick();
  ASSERT_EQ(surface.reservations.size(), 1u);
  EXPECT_EQ(surface.reservations[0].first, 0);   // reserve for the short type
  EXPECT_EQ(surface.reservations[0].second, 12);  // 75% of 16
}

TEST(DarcTest, NoReservationForHomogeneousWorkload) {
  ManualClock clock;
  RecordingSurface surface;
  Darc darc(&clock, &surface, DarcConfig{});
  for (int i = 0; i < 50; i++) {
    darc.OnRequestEnd(1, 1000, 0, 0);
    darc.OnRequestEnd(2, 1500, 1, 0);  // similar service time
  }
  darc.Tick();
  EXPECT_TRUE(surface.reservations.empty());
}

TEST(DarcTest, WaitsForEnoughSamples) {
  ManualClock clock;
  RecordingSurface surface;
  Darc darc(&clock, &surface, DarcConfig{});
  darc.OnRequestEnd(1, 1000, 0, 0);
  darc.OnRequestEnd(2, 900'000, 5, 0);
  darc.Tick();
  EXPECT_TRUE(surface.reservations.empty());
}

// --------------------------------------------------------------------------
// PARTIES

TEST(PartiesTest, ShiftsShareTowardViolatingClass) {
  ManualClock clock;
  RecordingSurface surface;
  PartiesConfig cfg;
  cfg.baseline_p99 = 1000;
  cfg.settle_windows = 1;
  Parties parties(&clock, &surface, cfg);
  // Class 0 violates its SLO; class 1 has slack.
  for (int i = 0; i < 50; i++) {
    parties.OnRequestEnd(1, 5000, 0, /*class=*/0);
    parties.OnRequestEnd(2, 500, 0, /*class=*/1);
  }
  clock.Advance(Millis(100));
  parties.Tick();
  ASSERT_EQ(surface.shares.size(), 2u);
  EXPECT_GT(parties.ShareOf(0), parties.ShareOf(1));
  EXPECT_EQ(parties.adjustments(), 1u);
}

TEST(PartiesTest, RespectsMinimumShare) {
  ManualClock clock;
  RecordingSurface surface;
  PartiesConfig cfg;
  cfg.baseline_p99 = 1000;
  cfg.settle_windows = 1;
  cfg.min_share = 0.10;
  Parties parties(&clock, &surface, cfg);
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 50; i++) {
      parties.OnRequestEnd(1, 5000, 0, 0);
      parties.OnRequestEnd(2, 500, 0, 1);
    }
    clock.Advance(Millis(100));
    parties.Tick();
  }
  EXPECT_GE(parties.ShareOf(1), 0.099);
}

TEST(PartiesTest, NoAdjustmentWhenHealthy) {
  ManualClock clock;
  RecordingSurface surface;
  PartiesConfig cfg;
  cfg.baseline_p99 = 1000;
  cfg.settle_windows = 1;
  Parties parties(&clock, &surface, cfg);
  for (int i = 0; i < 50; i++) {
    parties.OnRequestEnd(1, 900, 0, 0);
    parties.OnRequestEnd(2, 900, 0, 1);
  }
  clock.Advance(Millis(100));
  parties.Tick();
  EXPECT_TRUE(surface.shares.empty());
}

}  // namespace
}  // namespace atropos
