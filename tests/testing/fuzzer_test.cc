// End-to-end tests for the deterministic workload fuzzer: a fixed seed
// corpus must pass every invariant oracle, replay to identical digests, and
// the shrinker must reduce a planted accounting bug to a tiny repro.

#include "src/testing/fuzzer.h"

#include <gtest/gtest.h>

#include "src/testing/shrinker.h"

namespace atropos {
namespace {

TEST(FuzzerTest, FixedCorpusPassesAllOracles) {
  for (uint64_t seed = 1; seed <= 6; seed++) {
    FuzzRunResult result = RunSeed(seed);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ":\n"
                             << FormatViolations(result.violations);
    EXPECT_GT(result.stats.windows, 0u) << "seed " << seed;
  }
}

TEST(FuzzerTest, IdenticalSeedsReplayToIdenticalDigests) {
  FuzzPlan plan = PlanFromSeed(3);
  FuzzRunResult first = RunPlan(plan);
  FuzzRunResult second = RunPlan(plan);
  EXPECT_NE(first.digest, 0u);
  EXPECT_EQ(first.digest, second.digest);
  // Different seeds produce different schedules and thus different streams.
  EXPECT_NE(first.digest, RunSeed(4).digest);
}

// Regression companion to RuntimeNoInitiatorTest: the fuzzer's
// register_cancel_action=false config point drives a full overloaded run
// with no initiator; the runtime must suppress every decision (§3.1) and the
// run must still satisfy all oracles.
TEST(FuzzerTest, NoInitiatorPlanIssuesNoCancels) {
  // Seed 2 issues cancels when the initiator is registered...
  ASSERT_GT(RunSeed(2).stats.cancels_issued, 0u);
  // ...and must issue none when it is not.
  FuzzPlan plan = PlanFromSeed(2);
  plan.faults.register_cancel_action = false;
  FuzzRunResult result = RunPlan(plan);
  EXPECT_TRUE(result.ok()) << FormatViolations(result.violations);
  EXPECT_EQ(result.stats.cancels_issued, 0u);
  EXPECT_GT(result.stats.cancels_suppressed_no_initiator, 0u);
}

TEST(FuzzerTest, PlantedAccountingBugIsCaughtAndShrinksSmall) {
  FuzzPlanOptions options;
  options.drop_free_request_type = 0;  // leak the primary request type's frees
  FuzzRunResult full = RunSeed(5, options);
  ASSERT_FALSE(full.ok());
  bool accounting = false;
  for (const auto& v : full.violations) {
    accounting |= v.oracle.find("accounting") != std::string::npos;
  }
  EXPECT_TRUE(accounting) << FormatViolations(full.violations);

  ShrinkResult shrunk = ShrinkPlan(full.plan, options);
  EXPECT_LE(shrunk.plan.requests.size(), 5u);
  EXPECT_FALSE(shrunk.violations.empty());
  EXPECT_NE(shrunk.repro.find("--keep="), std::string::npos) << shrunk.repro;

  // The kept indices alone reproduce the violation from the bare seed.
  FuzzPlan replay = RestrictPlan(PlanFromSeed(5, options), shrunk.kept);
  EXPECT_FALSE(RunPlan(replay).ok());
}

TEST(FuzzerTest, RestrictPlanComposesKeptIndices) {
  FuzzPlan plan = PlanFromSeed(1);
  ASSERT_GE(plan.requests.size(), 6u);
  ASSERT_TRUE(plan.kept.empty());  // identity mask on a fresh plan

  FuzzPlan once = RestrictPlan(plan, {1, 3, 5});
  ASSERT_EQ(once.requests.size(), 3u);
  EXPECT_EQ(once.kept, (std::vector<size_t>{1, 3, 5}));
  EXPECT_EQ(once.requests[0].at, plan.requests[1].at);

  // Restricting a restricted plan maps through to original schedule indices.
  FuzzPlan twice = RestrictPlan(once, {0, 2});
  EXPECT_EQ(twice.kept, (std::vector<size_t>{1, 5}));
  EXPECT_EQ(twice.requests[1].at, plan.requests[5].at);
}

}  // namespace
}  // namespace atropos
