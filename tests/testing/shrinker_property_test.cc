// Properties of the generalized shrinker (ShrinkPlanIf): predicate
// preservation — the shrunk plan still satisfies the interestingness test it
// was minimized against — determinism for a fixed seed, budget enforcement,
// and recipe fidelity (the kept indices regenerate the shrunk plan from the
// bare seed).

#include "src/testing/shrinker.h"

#include <gtest/gtest.h>

#include "src/mining/miner.h"

namespace atropos {
namespace {

// The miner's predicate: baseline (cancellation off) sustains overload while
// the treatment cancels and recovers the p99. Seed 1 under extended modes is
// the cheapest known-qualifying plan (db_tickets).
bool Recovers(const FuzzPlan& plan) {
  ScenarioPair pair = RunScenarioPair(plan);
  return EvaluateRecovery(pair, RecoveryThresholds{}).qualifies;
}

FuzzPlanOptions MinerOptions() {
  FuzzPlanOptions options;
  options.extended_modes = true;
  return options;
}

TEST(ShrinkerPropertyTest, ShrunkPlanStillSatisfiesMinerPredicate) {
  FuzzPlan plan = PlanFromSeed(1, MinerOptions());
  ASSERT_TRUE(Recovers(plan)) << "seed 1 stopped qualifying; pick a new seed";

  ShrinkOptions budget;
  budget.max_runs = 30;
  ShrinkResult shrunk = ShrinkPlanIf(plan, Recovers, MinerOptions(), budget);

  EXPECT_LT(shrunk.plan.requests.size(), plan.requests.size());
  EXPECT_TRUE(Recovers(shrunk.plan));
  // Both runs of the surviving plan must stay oracle-clean (part of the
  // predicate): a mined scenario exercises the controller, not harness bugs.
  EXPECT_TRUE(shrunk.violations.empty()) << FormatViolations(shrunk.violations);
}

TEST(ShrinkerPropertyTest, ShrinkingIsDeterministicForAFixedSeed) {
  FuzzPlan plan = PlanFromSeed(1, MinerOptions());
  ShrinkOptions budget;
  budget.max_runs = 30;

  ShrinkResult first = ShrinkPlanIf(plan, Recovers, MinerOptions(), budget);
  ShrinkResult second = ShrinkPlanIf(plan, Recovers, MinerOptions(), budget);

  EXPECT_EQ(first.kept, second.kept);
  EXPECT_EQ(first.runs, second.runs);
  EXPECT_EQ(first.repro, second.repro);
  // And the shrunk plans replay to identical flight-recorder digests.
  EXPECT_EQ(RunPlan(first.plan).digest, RunPlan(second.plan).digest);
}

TEST(ShrinkerPropertyTest, KeptIndicesRegenerateTheShrunkPlan) {
  FuzzPlan plan = PlanFromSeed(1, MinerOptions());
  ShrinkOptions budget;
  budget.max_runs = 20;
  ShrinkResult shrunk = ShrinkPlanIf(plan, Recovers, MinerOptions(), budget);

  FuzzPlan regenerated = RestrictPlan(PlanFromSeed(1, MinerOptions()), shrunk.kept);
  if (shrunk.plan.faults.cancel_delay == 0 && shrunk.plan.faults.extra_ticks.empty()) {
    regenerated.faults.cancel_delay = 0;
    regenerated.faults.extra_ticks.clear();
  }
  EXPECT_EQ(RunPlan(regenerated).digest, RunPlan(shrunk.plan).digest);
}

TEST(ShrinkerPropertyTest, BudgetBoundsPredicateEvaluations) {
  FuzzPlan plan = PlanFromSeed(1, MinerOptions());
  int evaluations = 0;
  ShrinkOptions budget;
  budget.max_runs = 10;
  ShrinkResult shrunk = ShrinkPlanIf(
      plan,
      [&evaluations](const FuzzPlan& candidate) {
        evaluations++;
        return Recovers(candidate);
      },
      MinerOptions(), budget);
  // The final confirmation run is counted in `runs` but not in the
  // budget-gated predicate calls.
  EXPECT_LE(evaluations, 10);
  EXPECT_LE(shrunk.runs, 11);
  EXPECT_TRUE(Recovers(shrunk.plan)) << "budget exhaustion must still return an "
                                        "interesting plan";
}

TEST(ShrinkerPropertyTest, OracleShrinkStillWorksThroughTheGeneralizedPath) {
  // The legacy entry point (default predicate = oracle violation) is a thin
  // wrapper over ShrinkPlanIf; the planted accounting bug must still shrink
  // to a tiny reproducer.
  FuzzPlanOptions options;
  options.drop_free_request_type = 0;
  FuzzRunResult full = RunSeed(5, options);
  ASSERT_FALSE(full.ok());

  ShrinkResult shrunk = ShrinkPlan(full.plan, options);
  EXPECT_FALSE(shrunk.violations.empty());
  EXPECT_LE(shrunk.plan.requests.size(), 5u);
}

}  // namespace
}  // namespace atropos
