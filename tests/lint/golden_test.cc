// Golden tests: each bad fixture must reproduce its expected diagnostics
// byte-for-byte, and each good fixture must lint clean. Fixture sources live
// in tests/lint/fixtures/, goldens in tests/lint/golden/; the directory is
// injected as ATROPOS_LINT_TEST_DATA_DIR by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/driver.h"

#ifndef ATROPOS_LINT_TEST_DATA_DIR
#error "ATROPOS_LINT_TEST_DATA_DIR must point at tests/lint"
#endif

namespace atropos::lint {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints the fixture under its basename (so golden paths are stable no matter
// where the build runs) and returns the formatted diagnostics.
std::string LintFixture(const std::string& name) {
  const std::string source =
      ReadFile(std::string(ATROPOS_LINT_TEST_DATA_DIR) + "/fixtures/" + name);
  RunResult result = LintBuffer(name, source);
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    out += d.Format() + "\n";
  }
  return out;
}

std::string Golden(const std::string& name) {
  return ReadFile(std::string(ATROPOS_LINT_TEST_DATA_DIR) + "/golden/" + name);
}

TEST(GoldenTest, AllocFreeBadMatchesGolden) {
  EXPECT_EQ(LintFixture("alloc_free_bad.cc"), Golden("alloc_free_bad.expected"));
}

TEST(GoldenTest, CapiPairingBadMatchesGolden) {
  EXPECT_EQ(LintFixture("capi_pairing_bad.cc"), Golden("capi_pairing_bad.expected"));
}

TEST(GoldenTest, CancelSafetyBadMatchesGolden) {
  EXPECT_EQ(LintFixture("cancel_safety_bad.cc"), Golden("cancel_safety_bad.expected"));
}

TEST(GoldenTest, DeterminismBadMatchesGolden) {
  EXPECT_EQ(LintFixture("determinism_bad.cc"), Golden("determinism_bad.expected"));
}

TEST(GoldenTest, LockOrderBadMatchesGolden) {
  EXPECT_EQ(LintFixture("lock_order_bad.cc"), Golden("lock_order_bad.expected"));
}

// The live-threads shape: a blocking/allocating initiator registered via
// AtroposRuntime::SetCancelAction (the form src/live installs) vs. the clean
// CancelBoard atomic-scan pattern.
TEST(GoldenTest, LiveInitiatorBadMatchesGolden) {
  EXPECT_EQ(LintFixture("live_initiator_bad.cc"), Golden("live_initiator_bad.expected"));
}

// The initiator-root rule: abort entry points (DeliverCancel, AbortKey, ...)
// are walked even with no registration site in the file, because the
// registration lives elsewhere and reaches them by contract.
TEST(GoldenTest, AbortEntryBadMatchesGolden) {
  EXPECT_EQ(LintFixture("abort_entry_bad.cc"), Golden("abort_entry_bad.expected"));
}

// Lockset verification of ATROPOS_GUARDED_BY / ATROPOS_REQUIRES annotations:
// unguarded member accesses, accesses after the guard scope closed or after
// .unlock(), and calls into REQUIRES functions without the lock.
TEST(GoldenTest, GuardedByBadMatchesGolden) {
  EXPECT_EQ(LintFixture("guarded_by_bad.cc"), Golden("guarded_by_bad.expected"));
}

// The AbortCell/CancelBoard Dekker discipline (DESIGN.md §16): weak orders on
// protocol words, an initiator store with no key re-load, and a Park with no
// cancel re-check after the key publish.
TEST(GoldenTest, AtomicsProtocolBadMatchesGolden) {
  EXPECT_EQ(LintFixture("atomics_protocol_bad.cc"),
            Golden("atomics_protocol_bad.expected"));
}

// Suppressions that no longer suppress anything are themselves findings.
TEST(GoldenTest, StaleSuppressionBadMatchesGolden) {
  EXPECT_EQ(LintFixture("stale_suppression_bad.cc"),
            Golden("stale_suppression_bad.expected"));
}

TEST(GoldenTest, GoodFixturesLintClean) {
  EXPECT_EQ(LintFixture("alloc_free_good.cc"), "");
  EXPECT_EQ(LintFixture("capi_pairing_good.cc"), "");
  EXPECT_EQ(LintFixture("cancel_safety_good.cc"), "");
  EXPECT_EQ(LintFixture("determinism_good.cc"), "");
  EXPECT_EQ(LintFixture("lock_order_good.cc"), "");
  EXPECT_EQ(LintFixture("live_initiator_good.cc"), "");
  EXPECT_EQ(LintFixture("abort_entry_good.cc"), "");
  EXPECT_EQ(LintFixture("guarded_by_good.cc"), "");
  EXPECT_EQ(LintFixture("atomics_protocol_good.cc"), "");
}

// Suppression directives neutralize findings and are counted, end to end.
TEST(GoldenTest, AllowDirectiveSuppressesAndCounts) {
  const std::string source =
      "// atropos-lint: digest-path\n"
      "// atropos-lint: allow(determinism)\n"
      "int x = rand();\n";
  RunResult result = LintBuffer("suppressed.cc", source);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(GoldenTest, AllowFileDirectiveSuppressesWholeFile) {
  const std::string source =
      "// atropos-lint: digest-path\n"
      "// atropos-lint: allow-file(determinism)\n"
      "int x = rand();\n"
      "int y = rand();\n";
  RunResult result = LintBuffer("suppressed.cc", source);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 2u);
}

// A directive for one check must not mask another check's finding on the
// same line — and since it masks nothing at all here, the stale-suppression
// pass flags the directive itself.
TEST(GoldenTest, AllowIsPerCheck) {
  const std::string source =
      "// atropos-lint: digest-path\n"
      "void F() {\n"
      "  // atropos-lint: allow(capi-pairing)\n"
      "  int x = rand();\n"
      "}\n";
  RunResult result = LintBuffer("suppressed.cc", source);
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].check, kStaleSuppressionCheck);
  EXPECT_EQ(result.diagnostics[0].line, 3);
  EXPECT_EQ(result.diagnostics[1].check, "determinism");
}

// A suppression that fires is live: no stale-suppression finding, and the
// count reflects the masked diagnostic.
TEST(GoldenTest, LiveSuppressionIsNotStale) {
  const std::string source =
      "// atropos-lint: digest-path\n"
      "// atropos-lint: allow(determinism)\n"
      "int x = rand();\n";
  RunResult result = LintBuffer("suppressed.cc", source);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 1u);
}

// Staleness is only decidable when every check ran: under a restricted
// --checks set a marker for an unselected check is skipped, not flagged.
TEST(GoldenTest, StaleSuppressionSkippedUnderRestrictedChecks) {
  const std::string source =
      "void F() {\n"
      "  // atropos-lint: allow(capi-pairing)\n"
      "  int x = 0;\n"
      "  (void)x;\n"
      "}\n";
  RunResult result = LintBuffer("suppressed.cc", source, {"lock-order"});
  EXPECT_TRUE(result.diagnostics.empty());
}

// Restricting --checks to a subset runs only that subset.
TEST(GoldenTest, CheckSelectionFilters) {
  const std::string source = ReadFile(std::string(ATROPOS_LINT_TEST_DATA_DIR) +
                                      "/fixtures/capi_pairing_bad.cc");
  RunResult result = LintBuffer("capi_pairing_bad.cc", source, {"lock-order"});
  EXPECT_TRUE(result.diagnostics.empty());
}

}  // namespace
}  // namespace atropos::lint
