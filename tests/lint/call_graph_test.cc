// Cross-file call-graph resolution units: synthetic multi-buffer programs
// pinning each resolution rule (qualified, typed receiver, unknown receiver,
// bare-name fallback and its ambiguity caps), plus the real three-file abort
// chain in this repo — LiveServer::DeliverCancel -> CancelBoard::RequestCancel
// -> CancelBoard::TryDeliver -> AbortCell::TryAbort — which is exactly the
// path cancel-action-safety must be able to walk across translation units.

#include "tools/atropos_lint/call_graph.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/lexer.h"
#include "tools/atropos_lint/outline.h"

namespace atropos::lint {
namespace {

SourceFile MakeFile(const std::string& path, const std::string& source) {
  SourceFile f;
  f.path = path;
  f.repo_path = path;
  f.lex = Lex(source);
  f.outline = BuildOutline(f.lex.tokens);
  return f;
}

SourceFile LoadRepoFile(const std::string& repo_path) {
  const std::string full = std::string(ATROPOS_LINT_REPO_ROOT) + "/" + repo_path;
  std::ifstream in(full);
  EXPECT_TRUE(in.good()) << "cannot read " << full;
  std::ostringstream buf;
  buf << in.rdbuf();
  return MakeFile(repo_path, buf.str());
}

// The definition named `name` in the file whose path is `path`.
FunctionRef FindFn(const std::vector<SourceFile>& files, const std::string& path,
                   const std::string& name) {
  for (size_t fi = 0; fi < files.size(); ++fi) {
    if (files[fi].path != path) {
      continue;
    }
    const auto& fns = files[fi].outline.functions;
    for (size_t i = 0; i < fns.size(); ++i) {
      if (fns[i].name == name) {
        return FunctionRef{static_cast<int>(fi), static_cast<int>(i)};
      }
    }
  }
  return FunctionRef{};
}

// The first call site named `callee` inside `ref`, or nullptr.
const CallSite* FindSite(const CallGraph& graph, const FunctionRef& ref,
                         const std::string& callee) {
  for (const CallSite& site : graph.CallsIn(ref)) {
    if (site.name == callee) {
      return &site;
    }
  }
  return nullptr;
}

TEST(CallGraphTest, QualifiedCallResolvesAcrossFiles) {
  std::vector<SourceFile> files;
  files.push_back(MakeFile("app.cc", "void App::Run() { int x = 0; (void)x; }\n"));
  files.push_back(MakeFile("main.cc", "void Main() { App::Run(); }\n"));
  CallGraph graph;
  graph.Build(files);

  const CallSite* site = FindSite(graph, FindFn(files, "main.cc", "Main"), "Run");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->targets.size(), 1u);
  EXPECT_EQ(site->targets[0], FindFn(files, "app.cc", "Run"));
}

TEST(CallGraphTest, TypedReceiverResolvesToThatClassOnly) {
  std::vector<SourceFile> files;
  files.push_back(MakeFile(
      "board.cc", "class Board { public: void Deliver(int k) { (void)k; } };\n"));
  files.push_back(MakeFile(
      "other.cc", "class Other { public: void Deliver(int k) { (void)k; } };\n"));
  files.push_back(
      MakeFile("use.cc", "void Use(Board& board) { board.Deliver(1); }\n"));
  CallGraph graph;
  graph.Build(files);

  // `board`'s declared type is known program-wide, so despite two classes
  // defining Deliver the call binds to Board's alone.
  const CallSite* site = FindSite(graph, FindFn(files, "use.cc", "Use"), "Deliver");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->targets.size(), 1u);
  EXPECT_EQ(site->targets[0], FindFn(files, "board.cc", "Deliver"));
}

TEST(CallGraphTest, UnknownReceiverResolvesOnlyWhenUnique) {
  std::vector<SourceFile> files;
  files.push_back(MakeFile("a.cc", "class A { public: void Ping() {} };\n"));
  files.push_back(MakeFile("use.cc", "void Use(M& m) { m.second->Ping(); }\n"));
  CallGraph graph;
  graph.Build(files);

  // One program-wide definition of Ping: the untypeable receiver still binds.
  const CallSite* site = FindSite(graph, FindFn(files, "use.cc", "Use"), "Ping");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->targets.size(), 1u);
  EXPECT_EQ(site->targets[0], FindFn(files, "a.cc", "Ping"));

  // A second definition elsewhere makes it ambiguous; the edge must vanish
  // rather than fan out to both (speculative edges caused false interprocedural
  // findings through unrelated classes' methods).
  files.push_back(MakeFile("b.cc", "class B { public: void Ping() {} };\n"));
  CallGraph ambiguous;
  ambiguous.Build(files);
  site = FindSite(ambiguous, FindFn(files, "use.cc", "Use"), "Ping");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->targets.empty());
}

TEST(CallGraphTest, BareCallFallsBackAcrossFilesUpToTheCap) {
  std::vector<SourceFile> files;
  files.push_back(MakeFile("lib.cc", "void Helper() {}\n"));
  files.push_back(MakeFile("main.cc", "void Main() { Helper(); }\n"));
  CallGraph graph;
  graph.Build(files);

  const CallSite* site = FindSite(graph, FindFn(files, "main.cc", "Main"), "Helper");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->targets.size(), 1u);
  EXPECT_EQ(site->targets[0], FindFn(files, "lib.cc", "Helper"));

  // Push the name past kMaxCrossFileCandidates definitions: the bare call
  // must stay unresolved instead of fanning out to every `Helper`.
  for (size_t i = 0; i < CallGraph::kMaxCrossFileCandidates; ++i) {
    files.push_back(MakeFile("extra" + std::to_string(i) + ".cc", "void Helper() {}\n"));
  }
  CallGraph capped;
  capped.Build(files);
  site = FindSite(capped, FindFn(files, "main.cc", "Main"), "Helper");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->targets.empty());
}

TEST(CallGraphTest, SameFileDefinitionWinsOverCrossFile) {
  std::vector<SourceFile> files;
  files.push_back(MakeFile("local.cc", "void Reset() {}\nvoid Run() { Reset(); }\n"));
  files.push_back(MakeFile("remote.cc", "void Reset() {}\n"));
  CallGraph graph;
  graph.Build(files);

  const CallSite* site = FindSite(graph, FindFn(files, "local.cc", "Run"), "Reset");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->targets.size(), 1u);
  EXPECT_EQ(site->targets[0], FindFn(files, "local.cc", "Reset"));
}

// The chain the whole-program refactor exists for: the live server's cancel
// initiator reaches the AbortCell CAS through three translation units.
TEST(CallGraphTest, RealTreeAbortChainResolvesAcrossThreeFiles) {
  std::vector<SourceFile> files;
  files.push_back(LoadRepoFile("src/live/live_server.cc"));
  files.push_back(LoadRepoFile("src/live/cancel_board.h"));
  files.push_back(LoadRepoFile("src/sync/abort_cell.h"));
  CallGraph graph;
  graph.Build(files);

  // Hop 1: LiveServer::DeliverCancel -> CancelBoard::RequestCancel.
  const FunctionRef deliver =
      FindFn(files, "src/live/live_server.cc", "DeliverCancel");
  ASSERT_TRUE(deliver.valid());
  const CallSite* hop1 = FindSite(graph, deliver, "RequestCancel");
  ASSERT_NE(hop1, nullptr);
  const FunctionRef request_cancel =
      FindFn(files, "src/live/cancel_board.h", "RequestCancel");
  ASSERT_TRUE(request_cancel.valid());
  ASSERT_EQ(hop1->targets.size(), 1u);
  EXPECT_EQ(hop1->targets[0], request_cancel);
  EXPECT_EQ(graph.ClassOf(request_cancel), "CancelBoard");

  // Hop 2: RequestCancel -> TryDeliver (same class, same file).
  const CallSite* hop2 = FindSite(graph, request_cancel, "TryDeliver");
  ASSERT_NE(hop2, nullptr);
  const FunctionRef try_deliver =
      FindFn(files, "src/live/cancel_board.h", "TryDeliver");
  ASSERT_TRUE(try_deliver.valid());
  ASSERT_EQ(hop2->targets.size(), 1u);
  EXPECT_EQ(hop2->targets[0], try_deliver);

  // Hop 3: TryDeliver -> AbortCell::TryAbort, back across the layer boundary.
  const CallSite* hop3 = FindSite(graph, try_deliver, "TryAbort");
  ASSERT_NE(hop3, nullptr);
  const FunctionRef try_abort = FindFn(files, "src/sync/abort_cell.h", "TryAbort");
  ASSERT_TRUE(try_abort.valid());
  ASSERT_EQ(hop3->targets.size(), 1u);
  EXPECT_EQ(hop3->targets[0], try_abort);
  EXPECT_EQ(graph.ClassOf(try_abort), "AbortCell");
}

}  // namespace
}  // namespace atropos::lint
