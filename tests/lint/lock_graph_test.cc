#include "tools/atropos_lint/lock_graph.h"

#include <gtest/gtest.h>

namespace atropos::lint {
namespace {

LockGraph::Site At(const char* fn, int line) { return LockGraph::Site{fn, line}; }

TEST(LockGraphTest, RecordsEdgesAndKeepsFirstSite) {
  LockGraph g;
  g.AddEdge("a", "b", At("F", 10));
  g.AddEdge("a", "b", At("G", 20));  // later site for the same edge is dropped
  EXPECT_TRUE(g.HasEdge("a", "b"));
  EXPECT_FALSE(g.HasEdge("b", "a"));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(LockGraphTest, SelfEdgesAreIgnored) {
  LockGraph g;
  g.AddEdge("a", "a", At("F", 1));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.FindCycles().empty());
}

TEST(LockGraphTest, AcyclicGraphHasNoCycles) {
  LockGraph g;
  g.AddEdge("a", "b", At("F", 1));
  g.AddEdge("b", "c", At("F", 2));
  g.AddEdge("a", "c", At("G", 3));
  EXPECT_TRUE(g.FindCycles().empty());
}

TEST(LockGraphTest, TwoLockInversionIsOneCanonicalCycle) {
  LockGraph g;
  g.AddEdge("b", "a", At("G", 2));  // insertion order must not matter
  g.AddEdge("a", "b", At("F", 1));
  std::vector<LockGraph::Cycle> cycles = g.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes, (std::vector<std::string>{"a", "b", "a"}));
  ASSERT_EQ(cycles[0].sites.size(), 2u);
  EXPECT_EQ(cycles[0].sites[0].function, "F");
  EXPECT_EQ(cycles[0].sites[1].function, "G");
}

TEST(LockGraphTest, ThreeLockCycleRotatesToSmallestNode) {
  LockGraph g;
  g.AddEdge("c", "a", At("H", 3));
  g.AddEdge("b", "c", At("G", 2));
  g.AddEdge("a", "b", At("F", 1));
  std::vector<LockGraph::Cycle> cycles = g.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes, (std::vector<std::string>{"a", "b", "c", "a"}));
}

TEST(LockGraphTest, DisjointCyclesAreBothFoundAndSorted) {
  LockGraph g;
  g.AddEdge("y", "x", At("F", 1));
  g.AddEdge("x", "y", At("F", 2));
  g.AddEdge("b", "a", At("G", 3));
  g.AddEdge("a", "b", At("G", 4));
  std::vector<LockGraph::Cycle> cycles = g.FindCycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].nodes.front(), "a");
  EXPECT_EQ(cycles[1].nodes.front(), "x");
}

TEST(LockGraphTest, SharedNodeCyclesReportedOncePerElementaryCycle) {
  LockGraph g;
  // a<->b and a<->c share node a: two elementary cycles, not one merged blob.
  g.AddEdge("a", "b", At("F", 1));
  g.AddEdge("b", "a", At("F", 2));
  g.AddEdge("a", "c", At("G", 3));
  g.AddEdge("c", "a", At("G", 4));
  std::vector<LockGraph::Cycle> cycles = g.FindCycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].nodes, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(cycles[1].nodes, (std::vector<std::string>{"a", "c", "a"}));
}

TEST(LockGraphTest, DeterministicAcrossInsertionOrders) {
  LockGraph g1;
  g1.AddEdge("a", "b", At("F", 1));
  g1.AddEdge("b", "c", At("F", 2));
  g1.AddEdge("c", "a", At("F", 3));
  LockGraph g2;
  g2.AddEdge("c", "a", At("F", 3));
  g2.AddEdge("a", "b", At("F", 1));
  g2.AddEdge("b", "c", At("F", 2));
  std::vector<LockGraph::Cycle> c1 = g1.FindCycles();
  std::vector<LockGraph::Cycle> c2 = g2.FindCycles();
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); i++) {
    EXPECT_EQ(c1[i].nodes, c2[i].nodes);
  }
}

}  // namespace
}  // namespace atropos::lint
