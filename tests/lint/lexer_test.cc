#include "tools/atropos_lint/lexer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tools/atropos_lint/outline.h"

namespace atropos::lint {
namespace {

std::vector<std::string> TokenTexts(const LexedFile& lex) {
  std::vector<std::string> out;
  for (const Token& t : lex.tokens) {
    if (t.kind != TokenKind::kEof) {
      out.push_back(t.text);
    }
  }
  return out;
}

TEST(LexerTest, TokenizesIdentifiersNumbersAndPuncts) {
  LexedFile lex = Lex("int x = 42 + y;");
  ASSERT_EQ(TokenTexts(lex),
            (std::vector<std::string>{"int", "x", "=", "42", "+", "y", ";"}));
  EXPECT_EQ(lex.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(lex.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(lex.tokens[4].kind, TokenKind::kPunct);
  EXPECT_EQ(lex.tokens.back().kind, TokenKind::kEof);
}

TEST(LexerTest, TracksLineNumbers) {
  LexedFile lex = Lex("a\nb\n\nc");
  EXPECT_EQ(lex.tokens[0].line, 1);
  EXPECT_EQ(lex.tokens[1].line, 2);
  EXPECT_EQ(lex.tokens[2].line, 4);
}

TEST(LexerTest, TwoCharOperatorsStaySingleTokens) {
  LexedFile lex = Lex("a->b :: c && d -> e");
  std::vector<std::string> texts = TokenTexts(lex);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "&&"), texts.end());
}

TEST(LexerTest, CommentsNeverReachTheTokenStream) {
  LexedFile lex = Lex("a // createCancel in prose\nb /* freeCancel */ c");
  EXPECT_EQ(TokenTexts(lex), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(LexerTest, PreprocessorLinesAreConsumed) {
  LexedFile lex = Lex("#include <ctime>\n#define STAMP time(nullptr) \\\n  + 1\nint x;");
  EXPECT_EQ(TokenTexts(lex), (std::vector<std::string>{"int", "x", ";"}));
}

TEST(LexerTest, RawStringsAndEscapesAreOpaque) {
  LexedFile lex = Lex(R"src(auto s = R"(rand() "quoted")"; auto t = "esc\"x"; auto c = '\'';)src");
  std::vector<std::string> texts = TokenTexts(lex);
  // The banned name inside the raw string is part of one string token.
  int rand_idents = 0;
  for (const Token& t : lex.tokens) {
    if (t.IsIdent("rand")) {
      rand_idents++;
    }
  }
  EXPECT_EQ(rand_idents, 0);
  EXPECT_EQ(std::count(texts.begin(), texts.end(), ";"), 3);
}

TEST(LexerTest, DigitSeparatorsStayOneNumber) {
  LexedFile lex = Lex("uint64_t n = 100'000;");
  ASSERT_GE(lex.tokens.size(), 4u);
  EXPECT_EQ(lex.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(lex.tokens[3].text, "100'000");
}

TEST(LexerTest, EndOfLineAllowSuppressesItsOwnLine) {
  LexedFile lex = Lex("foo();  // atropos-lint: allow(capi-pairing)\nbar();\n");
  ASSERT_EQ(lex.line_suppressions.count(1), 1u);
  EXPECT_EQ(lex.line_suppressions.at(1).count("capi-pairing"), 1u);
  EXPECT_EQ(lex.line_suppressions.count(2), 0u);
}

TEST(LexerTest, StandaloneAllowSuppressesNextCodeLine) {
  LexedFile lex = Lex("// atropos-lint: allow(determinism)\n\n// prose\ntime(nullptr);\n");
  // The directive skips blank and comment-only lines and lands on line 4.
  ASSERT_EQ(lex.line_suppressions.count(4), 1u);
  EXPECT_EQ(lex.line_suppressions.at(4).count("determinism"), 1u);
}

TEST(LexerTest, AllowListSplitsOnCommas) {
  LexedFile lex = Lex("// atropos-lint: allow(capi-pairing, lock-order)\nx();\n");
  ASSERT_EQ(lex.line_suppressions.count(2), 1u);
  EXPECT_EQ(lex.line_suppressions.at(2).count("capi-pairing"), 1u);
  EXPECT_EQ(lex.line_suppressions.at(2).count("lock-order"), 1u);
}

TEST(LexerTest, AllowFileAndDigestPathMarkers) {
  LexedFile lex = Lex("// atropos-lint: allow-file(cancel-action-safety)\n"
                      "// atropos-lint: digest-path\nint x;\n");
  EXPECT_EQ(lex.file_suppressions.count("cancel-action-safety"), 1u);
  EXPECT_TRUE(lex.digest_path_marker);
}

TEST(LexerTest, BlockCommentDirectivesWork) {
  LexedFile lex = Lex("/* atropos-lint: allow-file(lock-order) */\nint x;\n");
  EXPECT_EQ(lex.file_suppressions.count("lock-order"), 1u);
}

// The outline rides on the lexer; pin the function spans the checks rely on.
TEST(OutlineTest, FindsFunctionsAndLambdas) {
  LexedFile lex = Lex(
      "int Add(int a, int b) { return a + b; }\n"
      "struct S { void Method() const { (void)0; } };\n"
      "auto l = [](int x) { return x; };\n");
  Outline outline = BuildOutline(lex.tokens);
  ASSERT_EQ(outline.functions.size(), 3u);
  EXPECT_EQ(outline.functions[0].name, "Add");
  EXPECT_FALSE(outline.functions[0].is_lambda);
  EXPECT_EQ(outline.functions[1].name, "Method");
  EXPECT_TRUE(outline.functions[2].is_lambda);
}

TEST(OutlineTest, CtorInitListsAndControlFlowAreNotFunctions) {
  LexedFile lex = Lex(
      "struct T { T() : x_(1) { Init(); } int x_; };\n"
      "void F() { if (x) { y(); } for (int i = 0; i < 3; i++) { z(); } }\n");
  Outline outline = BuildOutline(lex.tokens);
  std::vector<std::string> names;
  for (const FunctionInfo& fn : outline.functions) {
    names.push_back(fn.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"T", "F"}));
}

TEST(OutlineTest, EnclosingFunctionPicksInnermostSpan) {
  LexedFile lex = Lex("void Outer() { auto inner = [] { x(); }; y(); }\n");
  Outline outline = BuildOutline(lex.tokens);
  ASSERT_EQ(outline.functions.size(), 2u);
  // Find the token index of `x` and `y`.
  for (size_t i = 0; i < lex.tokens.size(); i++) {
    if (lex.tokens[i].IsIdent("x")) {
      EXPECT_TRUE(outline.functions[outline.EnclosingFunction(i)].is_lambda);
    }
    if (lex.tokens[i].IsIdent("y")) {
      EXPECT_FALSE(outline.functions[outline.EnclosingFunction(i)].is_lambda);
    }
  }
}

}  // namespace
}  // namespace atropos::lint
