// Bad fixture for guarded-by: accesses to ATROPOS_GUARDED_BY members without
// the named mutex held, an access after the guard's block closed, an access
// after .unlock(), and a call into an ATROPOS_REQUIRES function with the lock
// not held. Golden: guarded_by_bad.expected.

#include <mutex>

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // no lock at all
  }

  int PeekThenRead() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      balance_ += 1;  // fine: inside the guard's block
    }
    return balance_;  // guard released at the closing brace
  }

  int UnlockThenRead() {
    mu_.lock();
    int a = balance_;  // fine: bare lock held
    mu_.unlock();
    return a + this->balance_;  // this-> form, lock already released
  }

  int DrainLocked() ATROPOS_REQUIRES(mu_) {
    int out = balance_;
    balance_ = 0;
    return out;
  }

  int DrainWithoutLock() {
    return DrainLocked();  // REQUIRES(mu_) but mu_ is not held
  }

 private:
  std::mutex mu_;
  int balance_ ATROPOS_GUARDED_BY(mu_) = 0;
};

}  // namespace
