// Bad fixture for capi-pairing: one seeded violation per function. Golden
// diagnostics live in tests/lint/golden/capi_pairing_bad.expected; line
// numbers are load-bearing — keep them in sync when editing.

#include "src/atropos/capi.h"

namespace {

using namespace atropos;

// Violation: handle never reaches freeCancel and never escapes (leak).
void LeakedHandle(uint64_t key) {
  Cancellable* c = createCancel(key);
  getResource(1, CApiResourceType::LOCK);
  freeResource(1, CApiResourceType::LOCK);
}

// Violation: the returned handle is dropped on the floor outright.
void DiscardedHandle(uint64_t key) {
  createCancel(key);
}

// Violation: same handle freed twice without re-creation.
void DoubleFree(uint64_t key) {
  Cancellable* c = createCancel(key);
  freeCancel(c);
  freeCancel(c);
}

// Violation: 5 units acquired, 3 released — unit totals diverge.
void UnbalancedUnits(uint64_t key) {
  Cancellable* c = createCancel(key);
  getResource(5, CApiResourceType::MEMORY);
  freeResource(3, CApiResourceType::MEMORY);
  freeCancel(c);
}

// Violation: getResource with no freeResource for that type at all.
void MissingFree(uint64_t key) {
  Cancellable* c = createCancel(key);
  getResource(2, CApiResourceType::QUEUE);
  freeCancel(c);
}

// Violation: stall bracket opened twice, closed once.
void UnclosedStallBracket(uint64_t key) {
  Cancellable* c = createCancel(key);
  slowByResourceBegin(CApiResourceType::LOCK);
  slowByResourceBegin(CApiResourceType::LOCK);
  slowByResourceEnd(CApiResourceType::LOCK);
  freeCancel(c);
}

}  // namespace
