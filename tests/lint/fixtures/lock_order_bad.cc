// Bad fixture for lock-order: two inversions, one direct and one that only
// appears through a same-file call. Golden diagnostics live in
// tests/lint/golden/lock_order_bad.expected; line numbers are load-bearing.

#include <mutex>

namespace {

std::mutex g_mu_a;
std::mutex g_mu_b;
std::mutex g_mu_c;
int g_value = 0;

// Direct inversion: this pair of functions acquires a/b in opposite orders.
void TakesAThenB() {
  std::lock_guard<std::mutex> la(g_mu_a);
  std::lock_guard<std::mutex> lb(g_mu_b);
  g_value++;
}

void TakesBThenA() {
  std::lock_guard<std::mutex> lb(g_mu_b);
  std::lock_guard<std::mutex> la(g_mu_a);
  g_value++;
}

// Interprocedural inversion: LockC acquires g_mu_c; calling it while holding
// g_mu_a creates a -> c, while TakesCThenA creates c -> a.
void LockC() {
  std::lock_guard<std::mutex> lc(g_mu_c);
  g_value++;
}

void HoldsAThenCallsLockC() {
  std::lock_guard<std::mutex> la(g_mu_a);
  LockC();
}

void TakesCThenA() {
  g_mu_c.lock();
  g_mu_a.lock();
  g_value++;
  g_mu_a.unlock();
  g_mu_c.unlock();
}

}  // namespace
