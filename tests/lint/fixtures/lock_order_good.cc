// Good fixture for lock-order: every function acquires in the same global
// order (g_mu_a before g_mu_b before g_mu_c), multi-mutex acquisitions go
// through std::scoped_lock's deadlock-avoiding form, and deferred locks are
// not counted as acquisitions. atropos_lint must report nothing here.

#include <mutex>

namespace {

std::mutex g_mu_a;
std::mutex g_mu_b;
std::mutex g_mu_c;
int g_value = 0;

void ConsistentGuards() {
  std::lock_guard<std::mutex> la(g_mu_a);
  std::lock_guard<std::mutex> lb(g_mu_b);
  g_value++;
}

void SameOrderElsewhere() {
  std::lock_guard<std::mutex> la(g_mu_a);
  {
    std::lock_guard<std::mutex> lc(g_mu_c);
    g_value++;
  }
  std::lock_guard<std::mutex> lb(g_mu_b);
  g_value++;
}

// scoped_lock's multi-argument form acquires atomically: no edges among its
// own arguments, in either textual order.
void AtomicPair() {
  std::scoped_lock both(g_mu_b, g_mu_a);
  g_value++;
}

// Bare lock()/unlock() in consistent order; the unlock releases before the
// reverse-order acquisition below ever sees g_mu_b held.
void BareLockConsistent() {
  g_mu_a.lock();
  g_mu_b.lock();
  g_value++;
  g_mu_b.unlock();
  g_mu_a.unlock();
}

// defer_lock is not an acquisition; the later std::lock is the atomic form.
void DeferredPair() {
  std::unique_lock<std::mutex> la(g_mu_a, std::defer_lock);
  std::unique_lock<std::mutex> lb(g_mu_b, std::defer_lock);
  std::lock(la, lb);
  g_value++;
}

}  // namespace
