// Bad fixture for determinism: ambient time and randomness in a digest path.
// Golden diagnostics live in tests/lint/golden/determinism_bad.expected;
// line numbers are load-bearing.
// atropos-lint: digest-path

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace {

// Violation: wall clock feeding a digest timestamp.
uint64_t WallClockStamp() {
  auto now = std::chrono::system_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

// Violation: steady_clock is ambient too — replay cannot reproduce it.
uint64_t MonotonicStamp() {
  return static_cast<uint64_t>(std::chrono::steady_clock::now().time_since_epoch().count());
}

// Violations: libc time() and rand() in free-call position.
uint64_t LibcAmbient() {
  uint64_t stamp = static_cast<uint64_t>(std::time(nullptr));
  return stamp + static_cast<uint64_t>(rand());
}

// Violation: hardware entropy source.
uint64_t HardwareEntropy() {
  std::random_device rd;
  return rd();
}

// Violation: POSIX clock_gettime.
uint64_t PosixClock() {
  timespec ts;
  clock_gettime(0, &ts);
  return static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace
