// Good fixture for guarded-by: every access to an ATROPOS_GUARDED_BY member
// happens with the named mutex held — through a scope guard, a bare
// .lock()/.unlock() pair, an ATROPOS_REQUIRES contract on the enclosing
// function, or inside a condition-variable predicate lambda whose enclosing
// scope holds the lock. atropos_lint must report nothing here.

#include <condition_variable>
#include <mutex>

namespace {

class Account {
 public:
  void Deposit(int amount) {
    std::lock_guard<std::mutex> lk(mu_);
    balance_ += amount;
    cv_.notify_one();
  }

  int WaitForFunds(int floor) {
    std::unique_lock<std::mutex> lk(mu_);
    // The guard is in scope at the lambda's definition site, so the predicate
    // body counts as held.
    cv_.wait(lk, [this] { return balance_ >= floor; });
    return balance_;
  }

  int DrainLocked() ATROPOS_REQUIRES(mu_) {
    int out = balance_;
    balance_ = 0;
    return out;
  }

  int Drain() {
    mu_.lock();
    int out = DrainLocked();
    mu_.unlock();
    return out;
  }

  void Reset() ATROPOS_NO_THREAD_SAFETY_ANALYSIS {
    balance_ = 0;  // opted out: startup-only, pre-publication
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int balance_ ATROPOS_GUARDED_BY(mu_) = 0;
};

}  // namespace
