// Good fixture for alloc-free: the sanctioned steady-state idioms — slot
// recycling via push_back onto a high-water-capacity free list, in-place
// writes, and unmarked warm-up code that allocates freely. Must lint clean.

#include <cstdlib>
#include <string>
#include <vector>

namespace {

struct Pool {
  std::vector<int> slots;
  std::vector<int> free_list;
};

// push_back is allowed in marked functions: recycling a slot onto a free
// list whose capacity was established during warm-up never reallocates in
// steady state (the runtime oracle in tests/atropos/alloc_oracle_test.cc is
// the hard gate for that claim).
// atropos-lint: alloc-free
void ReleaseSlot(Pool* pool, int slot) {
  pool->slots[static_cast<size_t>(slot)] = 0;
  pool->free_list.push_back(slot);
}

// In-place reads and arithmetic are fine; mentioning banned names in
// comments is fine too (malloc, resize — comments never reach the checks).
// atropos-lint: alloc-free
int AcquireSlot(Pool* pool) {
  if (pool->free_list.empty()) {
    return -1;
  }
  int slot = pool->free_list.back();
  pool->free_list.pop_back();
  return slot;
}

// Unmarked warm-up code may allocate: no promise, no finding.
void WarmUp(Pool* pool, int capacity) {
  pool->slots.resize(static_cast<size_t>(capacity));
  pool->free_list.reserve(static_cast<size_t>(capacity));
}

// A per-line suppression names the check in allow(); that must read as a
// suppression, not as a marker for the next function.
// atropos-lint: alloc-free
void SlowPathEscapeHatch(Pool* pool) {
  // atropos-lint: allow(alloc-free)
  pool->slots.reserve(1024);
}

}  // namespace
