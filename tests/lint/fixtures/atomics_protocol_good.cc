// atropos-lint: atomics-protocol
// Good fixture for atomics-protocol (opted in via the marker above): every
// operation on a protocol word is seq_cst (explicitly or by default), the
// initiator's cancel-word store is followed by the key re-load, the waiter
// re-checks the cancel signal between its key publish (BeginWait) and Park,
// and weak orders on non-protocol words (plain counters, timestamps) stay
// allowed. atropos_lint must report nothing here.

#include <atomic>
#include <cstdint>

namespace {

struct Slot {
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> cancel_key{0};
  std::atomic<uint64_t> cancel_time{0};  // observational; exempt by name
  std::atomic<uint64_t> hits{0};         // not a protocol word
};

struct Waiter {
  std::atomic<uint32_t> state{0};

  void BeginWait(uint64_t key);
  bool Raised() const;
  void Park() { state.wait(1, std::memory_order_seq_cst); }
};

bool MarkCancelled(Slot& s, uint64_t key) {
  s.cancel_key.store(key, std::memory_order_seq_cst);
  s.cancel_time.store(key, std::memory_order_relaxed);  // timestamp: exempt
  s.hits.fetch_add(1, std::memory_order_relaxed);       // counter: exempt
  // Dekker re-load: the occupant key is a different protocol word.
  return s.key.load(std::memory_order_seq_cst) == key;
}

void RetractMark(Slot& s) {
  s.cancel_key.store(0, std::memory_order_seq_cst);  // zero store: a retract
}

void WaitForGrant(Waiter& w, uint64_t key) {
  w.BeginWait(key);
  if (w.Raised()) {
    return;  // cancelled before parking
  }
  w.Park();
}

uint64_t ReadKey(const Slot& s) { return s.key.load(); }  // implicit seq_cst

}  // namespace
