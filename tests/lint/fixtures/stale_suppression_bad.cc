// atropos-lint: allow-file(capi-pairing)
// Bad fixture for stale-suppression: every marker in this file names a check
// that reports nothing here, so each suppression is dead weight — the
// allow-file above, a standalone allow, and an end-of-line allow. Golden:
// stale_suppression_bad.expected.

#include <mutex>

namespace {

std::mutex g_mu;

// atropos-lint: allow(lock-order)
void TakeOne() {
  std::lock_guard<std::mutex> lk(g_mu);
}

int Identity(int v) { return v; }  // atropos-lint: allow(determinism)

}  // namespace
