// Good fixture for determinism: a digest-path file that reads time only
// through the injected Clock interface and randomness through a seeded Rng.
// Member accessors named `clock`/`time` are legal at call sites — they
// resolve to the injected dependency, not the ambient environment.
// atropos-lint: digest-path

#include <cstdint>

#include "src/common/clock.h"

namespace {

// Defined elsewhere; exposes the injected Clock via clock() / time().
struct Executor;
atropos::Clock* ClockOf(Executor& executor);

struct SeededRng {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

uint64_t DigestTick(Executor& executor, Executor* ptr, SeededRng& rng) {
  uint64_t now = ClockOf(executor)->NowMicros();
  uint64_t jitter = rng.Next() % 100;
  // Member accessors in call position: sanctioned (injected Clock).
  uint64_t stamp = executor.time();
  uint64_t stamp2 = ptr->clock()->NowMicros();
  uint64_t stamp3 = Executor::time(executor);
  // Plain identifiers that merely *contain* banned words are fine.
  uint64_t time_budget = now + jitter;
  return stamp + stamp2 + stamp3 + time_budget;
}

}  // namespace
