// Bad fixture for cancel-action-safety in the live-threads shape: a cancel
// initiator registered on the runtime wrapped by ConcurrentFrontend that
// blocks on the server's queue mutex, waits for the worker to acknowledge,
// and allocates a log entry — everything §3.6 forbids, each of which would
// stall the drainer's control loop mid-decision. Golden diagnostics live in
// tests/lint/golden/live_initiator_bad.expected; line numbers are
// load-bearing.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/atropos/runtime.h"

namespace {

struct BlockingBoard {
  std::mutex mu;
  std::condition_variable acked;
  std::vector<uint64_t> pending;
  bool ack = false;
};

BlockingBoard g_board;

void Install(atropos::AtroposRuntime& runtime) {
  // Violations: mutex guard (blocking), container growth (allocating), and a
  // condition-variable wait for the worker's acknowledgement (blocking on
  // application progress — the exact inversion the board exists to avoid).
  runtime.SetCancelAction([](uint64_t key) {
    std::unique_lock<std::mutex> lock(g_board.mu);
    g_board.pending.push_back(key);
    g_board.acked.wait(lock, [] { return g_board.ack; });
  });
}

}  // namespace
