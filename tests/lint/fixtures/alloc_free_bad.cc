// Bad fixture for alloc-free: allocation idioms inside marked hot-path
// functions, plus a dangling marker. Golden diagnostics live in
// tests/lint/golden/alloc_free_bad.expected; line numbers are load-bearing.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace {

struct Pool {
  std::vector<int> slots;
  std::vector<int> free_list;
};

// Violation: operator new on the per-event path.
// atropos-lint: alloc-free
int* HotNew() {
  return new int(42);
}

// Violations: C allocator and string building.
// atropos-lint: alloc-free
char* HotMalloc(int n) {
  std::string label = std::to_string(n);
  (void)label;
  return static_cast<char*>(std::malloc(16));
}

// Violation: std:: factory helper allocates.
// atropos-lint: alloc-free
std::unique_ptr<int> HotFactory() {
  return std::make_unique<int>(7);
}

// Violations: capacity-growing container member calls.
// atropos-lint: alloc-free
void HotGrowth(Pool* pool) {
  pool->slots.resize(128);
  pool->slots.emplace_back(1);
}

// Violation: the marker below binds to nothing — there is no function
// definition within reach, so the promise is attached to thin air.
// atropos-lint: alloc-free

}  // namespace
