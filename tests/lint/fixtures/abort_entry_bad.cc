// Bad fixture for the cancel-action-safety initiator-root rule: the in-place
// abort entry points (DeliverCancel / AbortKey) are walked as initiator roots
// even though no SetCancelAction registration appears in this file — the
// registration lives in another translation unit and installs DeliverCancel
// by contract (DESIGN.md §16). Golden diagnostics live in
// tests/lint/golden/abort_entry_bad.expected; line numbers are load-bearing.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace {

struct Board {
  std::mutex mu;
  std::condition_variable drained;
  std::vector<uint64_t> log;
  bool acked = false;
};

Board g_board;

class Server {
 public:
  bool DeliverCancel(uint64_t key);
};

}  // namespace

// Violations: mutex guard (blocking) and container growth (allocating) on the
// delivery path the control loop invokes mid-decision.
bool Server::DeliverCancel(uint64_t key) {
  std::lock_guard<std::mutex> lk(g_board.mu);
  g_board.log.push_back(key);
  return true;
}

// A queue-side abort that parks until the consumer confirms: blocking on
// application progress, the exact inversion in-place abort exists to avoid.
bool AbortKey(uint64_t key) {
  std::unique_lock<std::mutex> lk(g_board.mu);
  g_board.drained.wait(lk, [] { return g_board.acked; });
  return key != 0;
}
