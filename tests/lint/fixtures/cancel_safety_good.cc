// Good fixture for cancel-action-safety: initiators that only *request*
// cancellation — set a flag, look up a precomputed token, return. No
// blocking, no allocation, no throwing. atropos_lint must report nothing.

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "src/atropos/capi.h"

namespace {

std::atomic<uint64_t> g_cancel_requested{0};

// Flag-setting initiator: the worker thread polls the flag and unwinds.
void RequestCancel(uint64_t key) {
  g_cancel_requested.store(key, std::memory_order_release);
}

struct Session {
  std::atomic<bool> killed{false};
  void Kill() { killed.store(true, std::memory_order_release); }
};

Session* FindSession(uint64_t key);

// Routing through a same-file helper is fine when the whole path is clean.
void KillSession(uint64_t key) {
  Session* s = FindSession(key);
  if (s != nullptr) {
    s->Kill();
  }
}

void Register() {
  atropos::setCancelAction(&RequestCancel);
  atropos::setCancelAction(&KillSession);
  // Lambda initiators are walked too; logging and flag stores are fine.
  atropos::setCancelAction([](uint64_t key) {
    std::printf("cancelling %llu\n", static_cast<unsigned long long>(key));
    g_cancel_requested.store(key, std::memory_order_release);
  });
}

}  // namespace
