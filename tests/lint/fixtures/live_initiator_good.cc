// Good fixture for cancel-action-safety in the live-threads shape: the
// CancelBoard pattern src/live uses. The initiator is a bounded scan of
// per-worker atomic slots plus one flag store — no locks, no allocation,
// no waiting for the worker to acknowledge. atropos_lint must report
// nothing.

#include <atomic>
#include <cstdint>

#include "src/atropos/runtime.h"

namespace {

constexpr int kWorkers = 8;

struct Slot {
  std::atomic<uint64_t> key{0};
  std::atomic<bool> cancel{false};
};

Slot g_slots[kWorkers];

// The board scan an initiator is allowed to be: atomic loads, one release
// store on match, return. The worker observes the flag at its next
// cancellation checkpoint.
void RequestCancel(uint64_t key) {
  for (int i = 0; i < kWorkers; i++) {
    if (g_slots[i].key.load(std::memory_order_acquire) == key) {
      g_slots[i].cancel.store(true, std::memory_order_release);
      return;
    }
  }
}

void Install(atropos::AtroposRuntime& runtime) {
  runtime.SetCancelAction([](uint64_t key) { RequestCancel(key); });
}

}  // namespace
