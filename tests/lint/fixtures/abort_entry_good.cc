// Good fixture for the cancel-action-safety initiator-root rule: the in-place
// abort entry points in their intended shape — lock-free keyed scans over
// atomics (compare-exchange plus notify), nothing that blocks, allocates, or
// throws. Mirrors src/sync/abort_cell.h and src/sync/abortable_queue.h.

#include <atomic>
#include <cstdint>

namespace {

struct Slot {
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> cancel_key{0};
};

struct Cell {
  std::atomic<uint32_t> state{0};
  std::atomic<uint64_t> wait_key{0};

  bool TryAbort(uint64_t key) {
    if (key == 0 || wait_key.load(std::memory_order_seq_cst) != key) {
      return false;
    }
    uint32_t expected = 1;  // kWaiting
    if (!state.compare_exchange_strong(expected, 3, std::memory_order_seq_cst)) {
      return false;
    }
    state.notify_all();
    return true;
  }
};

Slot g_slots[16];
Cell g_cells[16];

bool AbortKey(uint64_t key) {
  for (Slot& slot : g_slots) {
    if (slot.key.load(std::memory_order_seq_cst) == key) {
      slot.cancel_key.store(key, std::memory_order_seq_cst);
      return true;
    }
  }
  return false;
}

bool DeliverCancel(uint64_t key) {
  for (Cell& cell : g_cells) {
    if (cell.TryAbort(key)) {
      return true;
    }
  }
  return AbortKey(key);
}

}  // namespace
