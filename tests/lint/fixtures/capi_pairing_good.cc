// Good fixture for capi-pairing: the reference integration shape — every
// handle is freed in its scope (or legitimately handed off), every
// getResource is balanced by freeResource in units, every stall bracket
// closes. atropos_lint must report nothing here.

#include "src/atropos/capi.h"

namespace {

using namespace atropos;

void BalancedQuery(uint64_t key) {
  Cancellable* c = createCancel(key);
  CancellableScope scope(c);
  slowByResourceBegin(CApiResourceType::LOCK);
  slowByResourceEnd(CApiResourceType::LOCK);
  getResource(1, CApiResourceType::LOCK);
  getResource(2, CApiResourceType::MEMORY);
  freeResource(2, CApiResourceType::MEMORY);
  freeResource(1, CApiResourceType::LOCK);
  freeCancel(c);
}

// Split gets are fine as long as the totals balance.
void SplitUnits(uint64_t key) {
  Cancellable* c = createCancel(key);
  getResource(4, CApiResourceType::MEMORY);
  getResource(4, CApiResourceType::MEMORY);
  freeResource(8, CApiResourceType::MEMORY);
  freeCancel(c);
}

// Ownership handoff: a returned handle is the caller's to free.
Cancellable* MakeTask(uint64_t key) {
  Cancellable* c = createCancel(key);
  return c;
}

// Conditional paths that still balance at scope level.
void ConditionalBalanced(uint64_t key, bool contended) {
  Cancellable* c = createCancel(key);
  if (contended) {
    slowByResourceBegin(CApiResourceType::QUEUE);
  }
  if (contended) {
    slowByResourceEnd(CApiResourceType::QUEUE);
  }
  freeCancel(c);
}

// Re-creating after free restarts tracking; the second handle is freed too.
void Recreate(uint64_t key) {
  Cancellable* c = createCancel(key);
  freeCancel(c);
  c = createCancel(key + 1);
  freeCancel(c);
}

}  // namespace
