// Bad fixture for cancel-action-safety: initiators that block, allocate, or
// throw. Golden diagnostics live in
// tests/lint/golden/cancel_safety_bad.expected; line numbers are load-bearing.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/atropos/capi.h"

namespace {

std::mutex g_mu;
std::vector<uint64_t> g_log;

// Violation: throws — the control loop has no handler for it.
void ThrowingInitiator(uint64_t key) {
  if (key == 0) {
    throw std::runtime_error("bad key");
  }
}

// Violations: sleeps, then allocates with a new-expression.
void SleepingInitiator(uint64_t key) {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  uint64_t* copy = new uint64_t(key);
  delete copy;
}

// Violation reached transitively: the initiator itself looks clean but the
// same-file helper it routes through grows a container.
void AppendLog(uint64_t key) {
  g_log.push_back(key);
}

void RoutingInitiator(uint64_t key) {
  AppendLog(key);
}

void Register() {
  atropos::setCancelAction(&ThrowingInitiator);
  atropos::setCancelAction(&SleepingInitiator);
  atropos::setCancelAction(&RoutingInitiator);
  // Violations in a lambda initiator: explicit mutex guard (blocking) and a
  // container mutation (allocating) under the lock.
  atropos::setCancelAction([](uint64_t key) {
    std::lock_guard<std::mutex> lk(g_mu);
    g_log.push_back(key);
  });
}

}  // namespace
