// atropos-lint: atomics-protocol
// Bad fixture for atomics-protocol (opted in via the marker above): weak
// memory orders on protocol words (macro and enum spellings), an initiator
// cancel-word store with no key re-load afterwards, and a waiter that parks
// without re-checking the cancel signal after publishing its key.
// Golden: atomics_protocol_bad.expected.

#include <atomic>
#include <cstdint>

namespace {

struct Slot {
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> cancel_key{0};
};

struct Waiter {
  std::atomic<uint32_t> state{0};

  void BeginWait(uint64_t key);
  bool Raised() const;
  void Park();
};

uint64_t SnoopKey(const Slot& s) {
  return s.key.load(std::memory_order_relaxed);  // weak order, macro form
}

void PublishState(Waiter& w) {
  w.state.store(1, std::memory_order::release);  // weak order, enum form
}

void MarkCancelledNoRecheck(Slot& s, uint64_t key) {
  s.cancel_key.store(key, std::memory_order_seq_cst);
  // Missing the Dekker re-load of s.key: a pop racing this mark can miss it
  // and the initiator still reports a delivered abort.
}

void WaitForGrantNoRecheck(Waiter& w, uint64_t key) {
  w.BeginWait(key);
  // Missing Raised()/cancel-word re-check: a cancel that landed between the
  // key publish and the park is never observed and the waiter sleeps forever.
  w.Park();
}

}  // namespace
