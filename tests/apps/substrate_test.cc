// Tests for the search-heap, web worker-pool, and KV substrate pieces.

#include <gtest/gtest.h>

#include "src/kv/store.h"
#include "src/search/heap.h"
#include "src/sim/coro.h"
#include "src/web/worker_pool.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

// --------------------------------------------------------------------------
// GcHeap

Coro Alloc(Executor& ex, GcHeap& heap, uint64_t key, uint64_t kb, CancelToken* token,
           std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await heap.Allocate(key, kb, token);
  log.emplace_back(ex.now(), s);
}

TEST(GcHeapTest, AllocateTracksLiveAndUsage) {
  Executor ex;
  RecordingController ctl;
  GcHeapOptions opt;
  opt.capacity_kb = 10000;
  GcHeap heap(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  Alloc(ex, heap, 1, 1000, nullptr, log);
  ex.Run();
  EXPECT_EQ(heap.live_kb(), 1000u);
  EXPECT_EQ(heap.usage_kb(), 1000u);
  EXPECT_EQ(heap.LiveOf(1), 1000u);
  heap.Free(1, 400);
  EXPECT_EQ(heap.live_kb(), 600u);
  EXPECT_EQ(heap.usage_kb(), 1000u);  // garbage remains until GC
  EXPECT_EQ(ctl.CountFor("get", 1), 1);
  EXPECT_EQ(ctl.CountFor("free", 1), 1);
}

TEST(GcHeapTest, CrossingThresholdTriggersGcAndReclaimsGarbage) {
  Executor ex;
  RecordingController ctl;
  GcHeapOptions opt;
  opt.capacity_kb = 1000;
  opt.gc_threshold = 0.5;
  opt.gc_pause_base = 100;
  GcHeap heap(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  Alloc(ex, heap, 1, 400, nullptr, log);
  ex.Run();
  heap.Free(1, 400);  // all garbage
  Alloc(ex, heap, 2, 200, nullptr, log);  // usage 600 > 500 threshold -> GC
  ex.Run();
  EXPECT_EQ(heap.gc_cycles(), 1u);
  EXPECT_EQ(heap.usage_kb(), 200u);  // garbage reclaimed, live kept
}

TEST(GcHeapTest, AllocationsStallDuringGc) {
  Executor ex;
  RecordingController ctl;
  GcHeapOptions opt;
  opt.capacity_kb = 1000;
  opt.gc_threshold = 0.5;
  opt.gc_pause_base = 5000;
  opt.gc_pause_per_mb_live = 0;
  opt.alloc_cost_per_mb = 0;
  GcHeap heap(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  Alloc(ex, heap, 1, 600, nullptr, log);  // triggers GC (usage 600 > 500)
  ex.Run(1000);
  EXPECT_TRUE(heap.gc_running());
  Alloc(ex, heap, 2, 10, nullptr, log);  // must wait for the pause to end
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 5000u);
  // The stalled allocator reported a wait on the heap resource.
  EXPECT_EQ(ctl.CountFor("wait_begin", 2), 1);
}

TEST(GcHeapTest, CancelledAllocationDuringGc) {
  Executor ex;
  RecordingController ctl;
  GcHeapOptions opt;
  opt.capacity_kb = 1000;
  opt.gc_threshold = 0.5;
  opt.gc_pause_base = 5000;
  opt.alloc_cost_per_mb = 0;
  GcHeap heap(ex, opt, &ctl, 1);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  Alloc(ex, heap, 1, 600, nullptr, log);
  ex.Run(1000);
  Alloc(ex, heap, 2, 10, &token, log);
  ex.CallAt(2000, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 2000u);
}

// --------------------------------------------------------------------------
// WorkerPool

Coro ClaimWorker(Executor& ex, WorkerPool& pool, uint64_t key, TimeMicros hold,
                 CancelToken* token, std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await pool.Claim(key, token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    pool.Release(key);
  }
}

TEST(WorkerPoolTest, MaxClientsBoundsConcurrency) {
  Executor ex;
  RecordingController ctl;
  WorkerPoolOptions opt;
  opt.max_clients = 2;
  WorkerPool pool(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  for (uint64_t k = 1; k <= 3; k++) {
    ClaimWorker(ex, pool, k, 100, nullptr, log);
  }
  ex.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[2].first, 100u);
}

TEST(WorkerPoolTest, FullBacklogRejects) {
  Executor ex;
  RecordingController ctl;
  WorkerPoolOptions opt;
  opt.max_clients = 1;
  opt.backlog = 2;
  WorkerPool pool(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  for (uint64_t k = 1; k <= 4; k++) {
    ClaimWorker(ex, pool, k, 1000, nullptr, log);
  }
  ex.Run();
  ASSERT_EQ(log.size(), 4u);
  int rejected = 0;
  for (const auto& [t, s] : log) {
    if (s.code() == StatusCode::kResourceExhausted) {
      rejected++;
    }
  }
  EXPECT_EQ(rejected, 1);  // 1 running + 2 queued + 1 rejected
}

TEST(WorkerPoolTest, CancelAbortsQueuedClaim) {
  Executor ex;
  RecordingController ctl;
  WorkerPoolOptions opt;
  opt.max_clients = 1;
  WorkerPool pool(ex, opt, &ctl, 1);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ClaimWorker(ex, pool, 1, 1000, nullptr, log);
  ClaimWorker(ex, pool, 2, 10, &token, log);
  ex.CallAt(50, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.IsCancelled());
}

// --------------------------------------------------------------------------
// KvStore

Coro DoPoint(Executor& ex, KvStore& store, uint64_t key,
             std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await store.PointOp(key, nullptr);
  log.emplace_back(ex.now(), s);
}

Coro DoRange(Executor& ex, KvStore& store, uint64_t key, uint64_t span, CancelToken* token,
             std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await store.RangeRead(key, span, token);
  log.emplace_back(ex.now(), s);
}

TEST(KvStoreTest, RangeReadBlocksPointOps) {
  Executor ex;
  RecordingController ctl;
  KvStoreOptions opt;
  opt.point_op_cost = 10;
  opt.scan_cost_per_key = 10;
  KvStore store(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  DoRange(ex, store, 1, 1000, nullptr, log);  // 10 ms hold
  DoPoint(ex, store, 2, log);
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  // The point op waited for the whole range read (log order: point finishes
  // after the range).
  EXPECT_EQ(log[1].first, Millis(10) + 10);
  EXPECT_EQ(ctl.CountFor("wait_begin", 2), 1);
}

TEST(KvStoreTest, CancelledRangeReadReleasesTheLock) {
  Executor ex;
  RecordingController ctl;
  KvStoreOptions opt;
  opt.point_op_cost = 10;
  opt.scan_cost_per_key = 10;
  opt.scan_batch = 10;
  KvStore store(ex, opt, &ctl, 1);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  DoRange(ex, store, 1, 100000, &token, log);
  DoPoint(ex, store, 2, log);
  ex.CallAt(500, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].second.IsCancelled());
  EXPECT_LE(log[1].first, 700u);  // released at the next batch checkpoint
}

TEST(KvStoreTest, RangeReadReportsProgress) {
  Executor ex;
  RecordingController ctl;
  KvStoreOptions opt;
  opt.scan_batch = 100;
  KvStore store(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  DoRange(ex, store, 1, 1000, nullptr, log);
  ex.Run();
  EXPECT_EQ(ctl.CountFor("progress", 1), 10);
}

TEST(KvStoreTest, SpanClampedToKeyCount) {
  Executor ex;
  RecordingController ctl;
  KvStoreOptions opt;
  opt.num_keys = 100;
  opt.scan_cost_per_key = 10;
  KvStore store(ex, opt, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  DoRange(ex, store, 1, 100000, nullptr, log);
  ex.Run();
  EXPECT_EQ(ex.now(), 1000u);  // 100 keys * 10 us, not 100000
}

}  // namespace
}  // namespace atropos
