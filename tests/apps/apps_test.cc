// Application-level tests: request handling, cancellation initiators,
// throttling, and control-surface actions across the four simulated servers.

#include <gtest/gtest.h>

#include "src/apps/minidb.h"
#include "src/apps/minikv.h"
#include "src/apps/minisearch.h"
#include "src/apps/miniweb.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

struct Done {
  std::vector<std::pair<uint64_t, OutcomeKind>> outcomes;
  CompletionFn Fn() {
    return [this](const AppRequest& req, OutcomeKind kind) {
      outcomes.emplace_back(req.key, kind);
    };
  }
  OutcomeKind Of(uint64_t key) const {
    for (const auto& [k, o] : outcomes) {
      if (k == key) {
        return o;
      }
    }
    return OutcomeKind::kRejected;
  }
  bool Has(uint64_t key) const {
    for (const auto& [k, o] : outcomes) {
      if (k == key) {
        return true;
      }
    }
    return false;
  }
};

AppRequest Req(uint64_t key, int type, uint64_t arg = 0, bool non_cancellable = false) {
  AppRequest r;
  r.key = key;
  r.type = type;
  r.arg = arg;
  r.non_cancellable = non_cancellable;
  return r;
}

// --------------------------------------------------------------------------
// MiniDb

class MiniDbTest : public ::testing::Test {
 protected:
  Executor ex_;
  RecordingController ctl_;
  Done done_;
};

TEST_F(MiniDbTest, PointSelectCompletesThroughAllLayers) {
  MiniDbOptions opt;
  opt.use_tickets = true;
  opt.use_table_locks = true;
  opt.use_buffer_pool = true;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbPointSelect), done_.Fn());
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
}

TEST_F(MiniDbTest, BackupConvoyBlocksVictims) {
  MiniDbOptions opt;
  opt.use_table_locks = true;
  opt.scan_rows = 10'000'000;  // 4 s scan
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbTableScan, 2), done_.Fn());
  ex_.CallAt(Millis(10), [&] { db.Start(Req(2, kDbBackup), done_.Fn()); });
  ex_.CallAt(Millis(20), [&] { db.Start(Req(3, kDbPointSelect, 0), done_.Fn()); });
  ex_.Run(Seconds(1));
  // The victim on table 0 is convoyed behind the backup's held X lock.
  EXPECT_FALSE(done_.Has(3));
  ex_.Run();
  EXPECT_EQ(done_.Of(3), OutcomeKind::kCompleted);
}

TEST_F(MiniDbTest, CancelInitiatorAbortsScanAtCheckpoint) {
  MiniDbOptions opt;
  opt.use_table_locks = true;
  opt.scan_rows = 10'000'000;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbTableScan, 2), done_.Fn());
  ex_.CallAt(Millis(50), [&] { db.Cancel(1); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCancelled);
  EXPECT_LT(ex_.now(), Millis(100));
}

TEST_F(MiniDbTest, NonCancellableRequestIgnoresInitiator) {
  MiniDbOptions opt;
  opt.use_table_locks = true;
  opt.scan_rows = 1'000'000;  // 0.4 s
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbTableScan, 2, /*non_cancellable=*/true), done_.Fn());
  ex_.CallAt(Millis(50), [&] { db.Cancel(1); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
}

TEST_F(MiniDbTest, VictimDropReasonMapsToDroppedOutcome) {
  MiniDbOptions opt;
  opt.use_table_locks = true;
  opt.scan_rows = 10'000'000;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbTableScan, 2), done_.Fn());
  ex_.CallAt(Millis(50), [&] { db.CancelTask(1, CancelReason::kVictimDrop); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kDropped);
}

TEST_F(MiniDbTest, ThrottleSlowsARequest) {
  MiniDbOptions opt;
  opt.use_tickets = true;
  opt.slow_query_cost = 100'000;  // 100 ms
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbSlowQuery), done_.Fn());
  db.ThrottleTask(1, 4.0);
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  EXPECT_GE(ex_.now(), 350'000u);  // ~4x slower (first step may pre-date the throttle)
}

TEST_F(MiniDbTest, DumpQueryArgEncodesTableAndPages) {
  MiniDbOptions opt;
  opt.use_buffer_pool = true;
  opt.pool.capacity_pages = 10000;
  opt.pool.miss_cost = 10;
  opt.pool.hit_cost = 1;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbDumpQuery, (128ull << 8) | 1), done_.Fn());
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  EXPECT_EQ(db.buffer_pool()->misses(), 128u);
}

TEST_F(MiniDbTest, AlterTableHoldsLockAndPool) {
  MiniDbOptions opt;
  opt.use_table_locks = true;
  opt.use_buffer_pool = true;
  opt.pages_per_table = 64;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbAlterTable, 0), done_.Fn());
  ex_.CallAt(10, [&] { db.Start(Req(2, kDbInsert, 0), done_.Fn()); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  // The insert waited for the exclusive lock held across the rebuild.
  EXPECT_EQ(ctl_.CountFor("wait_begin", 2), 1);
}

TEST_F(MiniDbTest, VacuumReportsIoUsage) {
  MiniDbOptions opt;
  opt.use_io = true;
  opt.vacuum_bytes = 16 * 1024 * 1024;
  MiniDb db(ex_, &ctl_, opt);
  db.Start(Req(1, kDbVacuum), done_.Fn());
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  EXPECT_GT(ctl_.CountFor("progress", 1), 0);
}

TEST_F(MiniDbTest, ShutdownStopsBackgroundTasks) {
  MiniDbOptions opt;
  opt.use_undo = true;
  opt.use_wal = true;
  opt.use_mvcc = true;
  {
    MiniDb db(ex_, &ctl_, opt);
    ex_.Run(Seconds(1));
    db.Shutdown();
  }
  ex_.Run();
  EXPECT_EQ(ex_.live_procs(), 0);  // all background loops exited
}

// --------------------------------------------------------------------------
// MiniWeb

class MiniWebTest : public ::testing::Test {
 protected:
  Executor ex_;
  RecordingController ctl_;
  Done done_;
};

TEST_F(MiniWebTest, StaticRequestsComplete) {
  MiniWebOptions opt;
  MiniWeb web(ex_, &ctl_, opt);
  web.Start(Req(1, kWebStatic), done_.Fn());
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
}

TEST_F(MiniWebTest, ScriptsExhaustWorkers) {
  MiniWebOptions opt;
  opt.pool.max_clients = 2;
  opt.script_cost = 1'000'000;
  MiniWeb web(ex_, &ctl_, opt);
  web.Start(Req(1, kWebScript), done_.Fn());
  web.Start(Req(2, kWebScript), done_.Fn());
  web.Start(Req(3, kWebStatic), done_.Fn());
  ex_.Run(Millis(500));
  EXPECT_FALSE(done_.Has(3));  // starved behind the scripts
  ex_.Run();
  EXPECT_EQ(done_.Of(3), OutcomeKind::kCompleted);
}

TEST_F(MiniWebTest, ThreadCancelFlagGatesScriptCancellation) {
  MiniWebOptions opt;
  opt.allow_thread_cancel = false;  // Apache default: scripts can't be killed
  opt.script_cost = 200'000;
  MiniWeb web(ex_, &ctl_, opt);
  web.Start(Req(1, kWebScript), done_.Fn());
  ex_.CallAt(Millis(10), [&] { web.Cancel(1); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);  // cancel ignored

  MiniWebOptions opt2;
  opt2.allow_thread_cancel = true;  // §5.2: pthread_cancel-style flag enabled
  opt2.script_cost = 200'000;
  MiniWeb web2(ex_, &ctl_, opt2);
  web2.Start(Req(2, kWebScript), done_.Fn());
  ex_.CallAfter(Millis(10), [&] { web2.Cancel(2); });
  ex_.Run();
  EXPECT_EQ(done_.Of(2), OutcomeKind::kCancelled);
}

TEST_F(MiniWebTest, DarcReservationCapsScriptConcurrency) {
  MiniWebOptions opt;
  opt.pool.max_clients = 4;
  opt.script_cost = 100'000;
  MiniWeb web(ex_, &ctl_, opt);
  web.SetTypeReservation(kWebStatic, 3);  // scripts capped at 1
  web.Start(Req(1, kWebScript), done_.Fn());
  web.Start(Req(2, kWebScript), done_.Fn());
  ex_.Run();
  // The second script serialized behind the first (cap 1): 200 ms total.
  EXPECT_GE(ex_.now(), 200'000u);
}

// --------------------------------------------------------------------------
// MiniSearch

class MiniSearchTest : public ::testing::Test {
 protected:
  Executor ex_;
  RecordingController ctl_;
  Done done_;
};

TEST_F(MiniSearchTest, QueryRunsThroughEnabledLayers) {
  MiniSearchOptions opt;
  opt.use_cache = true;
  opt.use_heap = true;
  opt.use_cpu = true;
  opt.use_queue = true;
  MiniSearch search(ex_, &ctl_, opt);
  search.Start(Req(1, kSearchQuery), done_.Fn());
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  EXPECT_GT(ctl_.CountFor("get", 1), 0);
  search.Shutdown();
  ex_.Run();
}

TEST_F(MiniSearchTest, BooleanQueryConvoysBehindCommit) {
  MiniSearchOptions opt;
  opt.use_index_lock = true;
  opt.boolean_query_hold = 2'000'000;
  opt.commit_interval = 100'000;
  opt.commit_hold = 10'000;
  MiniSearch search(ex_, &ctl_, opt);
  search.Start(Req(1, kSearchBooleanQuery), done_.Fn());
  ex_.CallAt(200'000, [&] { search.Start(Req(2, kSearchQuery), done_.Fn()); });
  ex_.Run(Seconds(1));
  // The query queued behind the committer's X request behind the boolean.
  EXPECT_FALSE(done_.Has(2));
  search.Shutdown();
  ex_.Run();
  EXPECT_EQ(done_.Of(2), OutcomeKind::kCompleted);
}

TEST_F(MiniSearchTest, AggregationHoldsHeapUntilDone) {
  MiniSearchOptions opt;
  opt.use_heap = true;
  opt.aggregation_alloc_kb = 100'000;
  opt.aggregation_steps = 10;
  opt.aggregation_step_cost = 1000;
  MiniSearch search(ex_, &ctl_, opt);
  search.Start(Req(1, kSearchAggregation), done_.Fn());
  ex_.Run(5000);
  EXPECT_GT(search.heap()->LiveOf(1), 0u);
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCompleted);
  EXPECT_EQ(search.heap()->LiveOf(1), 0u);
}

TEST_F(MiniSearchTest, DocUpdateBlocksSameStripeOnly) {
  MiniSearchOptions opt;
  opt.use_doc_locks = true;
  opt.doc_lock_stripes = 4;
  opt.doc_update_hold = 500'000;
  MiniSearch search(ex_, &ctl_, opt);
  search.Start(Req(1, kSearchDocUpdate, 2), done_.Fn());
  ex_.CallAt(1000, [&] {
    search.Start(Req(2, kSearchDocRead, 2), done_.Fn());  // same stripe
    search.Start(Req(3, kSearchDocRead, 3), done_.Fn());  // different stripe
  });
  ex_.Run(100'000);
  EXPECT_FALSE(done_.Has(2));
  EXPECT_TRUE(done_.Has(3));
  ex_.Run();
  EXPECT_EQ(done_.Of(2), OutcomeKind::kCompleted);
}

TEST_F(MiniSearchTest, CancelLongQueryReleasesCpu) {
  MiniSearchOptions opt;
  opt.use_cpu = true;
  opt.cpu_cores = 1;
  opt.long_query_cpu = 10'000'000;
  MiniSearch search(ex_, &ctl_, opt);
  search.Start(Req(1, kSearchLongQuery), done_.Fn());
  ex_.CallAt(Millis(50), [&] { search.Cancel(1); });
  ex_.Run();
  EXPECT_EQ(done_.Of(1), OutcomeKind::kCancelled);
  EXPECT_LT(ex_.now(), Millis(200));
}

// --------------------------------------------------------------------------
// MiniKv

TEST(MiniKvTest, RangeReadCancellation) {
  Executor ex;
  RecordingController ctl;
  Done done;
  MiniKvOptions opt;
  opt.store.scan_cost_per_key = 100;
  MiniKv kv(ex, &ctl, opt);
  kv.Start(Req(1, kKvRangeRead, 50'000), done.Fn());
  kv.Start(Req(2, kKvPointOp), done.Fn());
  ex.CallAt(Millis(100), [&] { kv.Cancel(1); });
  ex.Run();
  EXPECT_EQ(done.Of(1), OutcomeKind::kCancelled);
  EXPECT_EQ(done.Of(2), OutcomeKind::kCompleted);
  EXPECT_LT(ex.now(), Millis(200));
}

TEST(MiniKvTest, PartiesShareLimitsAClass) {
  Executor ex;
  RecordingController ctl;
  Done done;
  MiniKvOptions opt;
  opt.store.point_op_cost = 1000;
  MiniKv kv(ex, &ctl, opt);
  kv.SetClientShare(1, 0.01);  // class 1 throttled to 1 slot
  AppRequest a = Req(1, kKvPointOp);
  a.client_class = 1;
  AppRequest b = Req(2, kKvPointOp);
  b.client_class = 1;
  kv.Start(a, done.Fn());
  kv.Start(b, done.Fn());
  ex.Run();
  EXPECT_EQ(done.Of(1), OutcomeKind::kCompleted);
  EXPECT_EQ(done.Of(2), OutcomeKind::kCompleted);
  EXPECT_GE(ex.now(), 2000u);  // serialized by the class gate
}

}  // namespace
}  // namespace atropos
