#include "src/sim/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/coro.h"

namespace atropos {
namespace {

TEST(ExecutorTest, CallbacksFireInTimeOrder) {
  Executor ex;
  std::vector<int> order;
  ex.CallAt(300, [&] { order.push_back(3); });
  ex.CallAt(100, [&] { order.push_back(1); });
  ex.CallAt(200, [&] { order.push_back(2); });
  ex.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.now(), 300u);
}

TEST(ExecutorTest, TiesFireInSubmissionOrder) {
  Executor ex;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    ex.CallAt(50, [&order, i] { order.push_back(i); });
  }
  ex.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ExecutorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Executor ex;
  int fired = 0;
  ex.CallAt(100, [&] { fired++; });
  ex.CallAt(900, [&] { fired++; });
  ex.Run(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ex.now(), 500u);
  EXPECT_TRUE(ex.has_pending());
  ex.Run();
  EXPECT_EQ(fired, 2);
}

TEST(ExecutorTest, EventsExactlyAtHorizonFire) {
  Executor ex;
  bool fired = false;
  ex.CallAt(500, [&] { fired = true; });
  ex.Run(500);
  EXPECT_TRUE(fired);
}

TEST(ExecutorTest, ScheduledInPastClampsToNow) {
  Executor ex;
  ex.CallAt(1000, [&] {
    // From inside an event at t=1000, scheduling "at 500" runs at 1000.
    ex.CallAt(500, [&] { EXPECT_EQ(ex.now(), 1000u); });
  });
  ex.Run();
}

TEST(ExecutorTest, NestedSchedulingWorks) {
  Executor ex;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) {
      ex.CallAfter(10, recur);
    }
  };
  ex.CallAt(0, recur);
  ex.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(ex.now(), 40u);
}

Coro SimpleProcess(Executor& ex, std::vector<TimeMicros>& times) {
  co_await BindExecutor{ex};
  times.push_back(ex.now());
  co_await Delay{ex, 100};
  times.push_back(ex.now());
  co_await Delay{ex, 250};
  times.push_back(ex.now());
}

TEST(CoroTest, DelaysAdvanceVirtualTime) {
  Executor ex;
  std::vector<TimeMicros> times;
  SimpleProcess(ex, times);
  ex.Run();
  EXPECT_EQ(times, (std::vector<TimeMicros>{0, 100, 350}));
  EXPECT_EQ(ex.live_procs(), 0);
}

Coro CountingProcess(Executor& ex, int& running) {
  co_await BindExecutor{ex};
  running++;
  co_await Delay{ex, 10};
  running--;
}

TEST(CoroTest, LiveProcAccountingTracksCompletion) {
  Executor ex;
  int running = 0;
  CountingProcess(ex, running);
  CountingProcess(ex, running);
  EXPECT_EQ(ex.live_procs(), 2);
  ex.Run();
  EXPECT_EQ(running, 0);
  EXPECT_EQ(ex.live_procs(), 0);
}

Coro YieldingProcess(Executor& ex, std::vector<int>& order, int id) {
  co_await BindExecutor{ex};
  order.push_back(id);
  co_await YieldNow{ex};
  order.push_back(id + 100);
}

TEST(CoroTest, YieldNowPreservesFifoFairness) {
  Executor ex;
  std::vector<int> order;
  YieldingProcess(ex, order, 1);
  YieldingProcess(ex, order, 2);
  ex.Run();
  // Both run their first half eagerly, then resume in spawn order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 101, 102}));
}

}  // namespace
}  // namespace atropos
