#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace atropos {
namespace {

struct RecordingObserver : UsageObserver {
  TimeMicros total_wait = 0;
  TimeMicros total_used = 0;
  int slices = 0;
  void OnUsage(TimeMicros waited, TimeMicros used) override {
    total_wait += waited;
    total_used += used;
    slices++;
  }
};

Coro Burn(Executor& ex, CpuPool& pool, TimeMicros cpu, CancelToken* token, UsageObserver* obs,
          std::vector<std::pair<TimeMicros, Status>>& done) {
  co_await BindExecutor{ex};
  Status s = co_await pool.Consume(cpu, token, obs);
  done.emplace_back(ex.now(), s);
}

TEST(CpuPoolTest, SingleTaskRunsUncontended) {
  Executor ex;
  CpuPool pool(ex, 2, Millis(1));
  RecordingObserver obs;
  std::vector<std::pair<TimeMicros, Status>> done;
  Burn(ex, pool, Millis(5), nullptr, &obs, done);
  ex.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].first, Millis(5));
  EXPECT_EQ(obs.total_wait, 0u);
  EXPECT_EQ(obs.total_used, Millis(5));
  EXPECT_EQ(obs.slices, 5);
}

TEST(CpuPoolTest, ContentionStretchesCompletionTime) {
  Executor ex;
  CpuPool pool(ex, 1, Millis(1));
  std::vector<std::pair<TimeMicros, Status>> done;
  // Two 5ms tasks on one core: round-robin interleave, both finish ~10ms.
  Burn(ex, pool, Millis(5), nullptr, nullptr, done);
  Burn(ex, pool, Millis(5), nullptr, nullptr, done);
  ex.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GE(done[0].first, Millis(9));
  EXPECT_EQ(done[1].first, Millis(10));
}

TEST(CpuPoolTest, LongTaskInflatesShortTaskWait) {
  Executor ex;
  CpuPool pool(ex, 1, Millis(1));
  RecordingObserver short_obs;
  std::vector<std::pair<TimeMicros, Status>> done;
  Burn(ex, pool, Millis(50), nullptr, nullptr, done);    // hog
  Burn(ex, pool, Millis(2), nullptr, &short_obs, done);  // victim
  ex.Run();
  // The short task had to share: it waited roughly as long as it ran.
  EXPECT_GT(short_obs.total_wait, 0u);
}

TEST(CpuPoolTest, CancellationStopsMidway) {
  Executor ex;
  CpuPool pool(ex, 1, Millis(1));
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> done;
  Burn(ex, pool, Millis(100), &token, nullptr, done);
  ex.CallAt(Millis(10), [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].second.IsCancelled());
  EXPECT_LT(done[0].first, Millis(15));
}

Coro DoTransfer(Executor& ex, IoDevice& dev, uint64_t bytes, CancelToken* token,
                UsageObserver* obs, std::vector<std::pair<TimeMicros, Status>>& done) {
  co_await BindExecutor{ex};
  Status s = co_await dev.Transfer(bytes, token, obs);
  done.emplace_back(ex.now(), s);
}

TEST(IoDeviceTest, BandwidthDeterminesServiceTime) {
  Executor ex;
  IoDevice dev(ex, 1e6);  // 1 MB/s
  std::vector<std::pair<TimeMicros, Status>> done;
  DoTransfer(ex, dev, 500000, nullptr, nullptr, done);  // 0.5 MB => 0.5 s
  ex.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].first, Seconds(0.5));
}

TEST(IoDeviceTest, TransfersQueueFifo) {
  Executor ex;
  IoDevice dev(ex, 1e6);
  RecordingObserver obs2;
  std::vector<std::pair<TimeMicros, Status>> done;
  DoTransfer(ex, dev, 1000000, nullptr, nullptr, done);  // 1s
  DoTransfer(ex, dev, 1000, nullptr, &obs2, done);       // waits 1s, runs 1ms
  ex.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].first, Seconds(1.0) + Millis(1));
  EXPECT_EQ(obs2.total_wait, Seconds(1.0));
}

TEST(IoDeviceTest, CancelAbortsQueuedTransfer) {
  Executor ex;
  IoDevice dev(ex, 1e6);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> done;
  DoTransfer(ex, dev, 1000000, nullptr, nullptr, done);
  DoTransfer(ex, dev, 1000, &token, nullptr, done);
  ex.CallAt(Millis(100), [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(done.size(), 2u);
  // done[] order: cancelled waiter finishes first at 100ms.
  EXPECT_TRUE(done[0].second.IsCancelled());
  EXPECT_EQ(done[0].first, Millis(100));
}

}  // namespace
}  // namespace atropos
