#include "src/sim/queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/coro.h"

namespace atropos {
namespace {

Coro Producer(Executor& ex, BoundedQueue<int>& q, std::vector<int> values, TimeMicros gap,
              std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  for (int v : values) {
    Status s = co_await q.Push(v);
    log.emplace_back(ex.now(), s);
    if (gap > 0) {
      co_await Delay{ex, gap};
    }
  }
}

Coro Consumer(Executor& ex, BoundedQueue<int>& q, int count, TimeMicros service,
              CancelToken* token, std::vector<std::pair<TimeMicros, int>>& got) {
  co_await BindExecutor{ex};
  for (int i = 0; i < count; i++) {
    StatusOr<int> v = co_await q.Pop(token);
    if (!v.ok()) {
      got.emplace_back(ex.now(), -1);
      co_return;
    }
    got.emplace_back(ex.now(), *v);
    co_await Delay{ex, service};
  }
}

TEST(BoundedQueueTest, FifoDelivery) {
  Executor ex;
  BoundedQueue<int> q(ex, 10);
  std::vector<std::pair<TimeMicros, Status>> pushed;
  std::vector<std::pair<TimeMicros, int>> got;
  Producer(ex, q, {1, 2, 3}, 0, pushed);
  Consumer(ex, q, 3, 0, nullptr, got);
  ex.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].second, 1);
  EXPECT_EQ(got[1].second, 2);
  EXPECT_EQ(got[2].second, 3);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  Executor ex;
  BoundedQueue<int> q(ex, 10);
  std::vector<std::pair<TimeMicros, int>> got;
  Consumer(ex, q, 1, 0, nullptr, got);
  ex.CallAt(500, [&] { EXPECT_TRUE(q.TryPush(42)); });
  ex.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 500u);
  EXPECT_EQ(got[0].second, 42);
}

TEST(BoundedQueueTest, PushBlocksWhenFull) {
  Executor ex;
  BoundedQueue<int> q(ex, 2);
  std::vector<std::pair<TimeMicros, Status>> pushed;
  std::vector<std::pair<TimeMicros, int>> got;
  Producer(ex, q, {1, 2, 3, 4}, 0, pushed);  // third push must block
  ex.CallAt(100, [&] { Consumer(ex, q, 4, 50, nullptr, got); });
  ex.Run();
  ASSERT_EQ(pushed.size(), 4u);
  EXPECT_EQ(pushed[0].first, 0u);
  EXPECT_EQ(pushed[1].first, 0u);
  EXPECT_GE(pushed[2].first, 100u);  // unblocked by the first pop
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[3].second, 4);
}

TEST(BoundedQueueTest, CancelAbortsBlockedPop) {
  Executor ex;
  BoundedQueue<int> q(ex, 2);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, int>> got;
  Consumer(ex, q, 1, 0, &token, got);
  ex.CallAt(70, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 70u);
  EXPECT_EQ(got[0].second, -1);  // cancelled sentinel
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  Executor ex;
  BoundedQueue<int> q(ex, 1);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, WaitingPoppersServedFifo) {
  Executor ex;
  BoundedQueue<int> q(ex, 4);
  std::vector<std::pair<TimeMicros, int>> got_a;
  std::vector<std::pair<TimeMicros, int>> got_b;
  Consumer(ex, q, 1, 0, nullptr, got_a);
  Consumer(ex, q, 1, 0, nullptr, got_b);
  ex.CallAt(10, [&] { EXPECT_TRUE(q.TryPush(100)); });
  ex.CallAt(20, [&] { EXPECT_TRUE(q.TryPush(200)); });
  ex.Run();
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0].second, 100);  // first waiter gets first item
  EXPECT_EQ(got_b[0].second, 200);
}

}  // namespace
}  // namespace atropos
