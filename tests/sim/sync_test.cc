#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/coro.h"
#include "src/sim/task.h"

namespace atropos {
namespace {

// --------------------------------------------------------------------------
// SimEvent

Coro WaitOnEvent(Executor& ex, SimEvent& event, CancelToken* token, std::vector<Status>& out) {
  co_await BindExecutor{ex};
  out.push_back(co_await event.Wait(token));
}

TEST(SimEventTest, SetWakesAllWaiters) {
  Executor ex;
  SimEvent event(ex);
  std::vector<Status> results;
  WaitOnEvent(ex, event, nullptr, results);
  WaitOnEvent(ex, event, nullptr, results);
  ex.CallAt(100, [&] { event.Set(); });
  ex.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
}

TEST(SimEventTest, WaitAfterSetCompletesImmediately) {
  Executor ex;
  SimEvent event(ex);
  event.Set();
  std::vector<Status> results;
  WaitOnEvent(ex, event, nullptr, results);
  // Completed synchronously, no pending events needed.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

TEST(SimEventTest, CancelAbortsWait) {
  Executor ex;
  SimEvent event(ex);
  CancelToken token(ex);
  std::vector<Status> results;
  WaitOnEvent(ex, event, &token, results);
  ex.CallAt(50, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].IsCancelled());
}

TEST(SimEventTest, WaitWithAlreadyCancelledToken) {
  Executor ex;
  SimEvent event(ex);
  CancelToken token(ex);
  token.Cancel();
  std::vector<Status> results;
  WaitOnEvent(ex, event, &token, results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].IsCancelled());
}

// --------------------------------------------------------------------------
// SimMutex

Coro HoldMutex(Executor& ex, SimMutex& mu, TimeMicros hold, CancelToken* token,
               std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await mu.Acquire(token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    mu.Release();
  }
}

TEST(SimMutexTest, MutualExclusionAndFifo) {
  Executor ex;
  SimMutex mu(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  HoldMutex(ex, mu, 100, nullptr, log);
  HoldMutex(ex, mu, 100, nullptr, log);
  HoldMutex(ex, mu, 100, nullptr, log);
  ex.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 100u);
  EXPECT_EQ(log[2].first, 200u);
  EXPECT_EQ(ex.live_procs(), 0);
}

TEST(SimMutexTest, CancelledWaiterSkipsTurn) {
  Executor ex;
  SimMutex mu(ex);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  HoldMutex(ex, mu, 100, nullptr, log);   // holds [0,100)
  HoldMutex(ex, mu, 100, &token, log);    // queued, will be cancelled
  HoldMutex(ex, mu, 100, nullptr, log);   // should get lock at 100
  ex.CallAt(50, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log[0].second.ok());
  // The cancelled waiter observed cancellation at t=50.
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 50u);
  // Third acquirer proceeds when the first releases.
  EXPECT_TRUE(log[2].second.ok());
  EXPECT_EQ(log[2].first, 100u);
}

// --------------------------------------------------------------------------
// SimSemaphore

Coro UseSemaphore(Executor& ex, SimSemaphore& sem, uint64_t units, TimeMicros hold,
                  CancelToken* token, std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await sem.Acquire(units, token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    sem.Release(units);
  }
}

TEST(SimSemaphoreTest, CapacityLimitsConcurrency) {
  Executor ex;
  SimSemaphore sem(ex, 2);
  std::vector<std::pair<TimeMicros, Status>> log;
  for (int i = 0; i < 4; i++) {
    UseSemaphore(ex, sem, 1, 100, nullptr, log);
  }
  ex.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 0u);
  EXPECT_EQ(log[2].first, 100u);
  EXPECT_EQ(log[3].first, 100u);
}

TEST(SimSemaphoreTest, MultiUnitAcquireBlocksUntilEnough) {
  Executor ex;
  SimSemaphore sem(ex, 3);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseSemaphore(ex, sem, 2, 100, nullptr, log);  // holds 2 until 100
  UseSemaphore(ex, sem, 3, 50, nullptr, log);   // needs all 3; waits until 100
  ex.Run();
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 100u);
}

TEST(SimSemaphoreTest, FifoHeadBlocksSmallerRequests) {
  Executor ex;
  SimSemaphore sem(ex, 2);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseSemaphore(ex, sem, 2, 100, nullptr, log);  // holds both
  UseSemaphore(ex, sem, 2, 10, nullptr, log);   // queued head
  UseSemaphore(ex, sem, 1, 10, nullptr, log);   // must wait behind the head
  ex.Run();
  EXPECT_EQ(log[1].first, 100u);
  EXPECT_EQ(log[2].first, 110u);
}

TEST(SimSemaphoreTest, CancellingBlockedHeadUnblocksTail) {
  Executor ex;
  SimSemaphore sem(ex, 2);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseSemaphore(ex, sem, 2, 100, nullptr, log);  // holds both until 100
  UseSemaphore(ex, sem, 2, 10, &token, log);    // queued head, cancelled at 20
  UseSemaphore(ex, sem, 1, 10, nullptr, log);   // blocked behind head... until cancel? no:
  // The third needs 1 unit but none are available until t=100 anyway.
  ex.CallAt(20, [&] { token.Cancel(); });
  ex.Run();
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 20u);
  // Third gets a unit at 100 when the first releases.
  EXPECT_TRUE(log[2].second.ok());
  EXPECT_EQ(log[2].first, 100u);
}

// The smart/simple cancellation-mode difference (src/sync/cancel_mode.h): a
// cancelled head that was the only thing blocking a smaller request behind
// it. One unit is free the whole time; only the FIFO head gates the tail.
TEST(SimSemaphoreTest, SmartModeCancelGrantsBlockedTailImmediately) {
  Executor ex;
  SimSemaphore sem(ex, 2);  // kSmart default
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseSemaphore(ex, sem, 1, 100, nullptr, log);  // holds 1 until 100; 1 free
  UseSemaphore(ex, sem, 2, 10, &token, log);    // head needs 2; cancelled at 20
  UseSemaphore(ex, sem, 1, 10, nullptr, log);   // could run on the free unit
  ex.CallAt(20, [&] { token.Cancel(); });
  ex.Run();
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 20u);
  EXPECT_EQ(log[2].first, 20u);  // grant transferred at cancellation time
}

TEST(SimSemaphoreTest, SimpleModeCancelDefersGrantToNextRelease) {
  Executor ex;
  SimSemaphore sem(ex, 2);
  sem.set_cancel_mode(CancelMode::kSimple);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseSemaphore(ex, sem, 1, 100, nullptr, log);
  UseSemaphore(ex, sem, 2, 10, &token, log);
  UseSemaphore(ex, sem, 1, 10, nullptr, log);
  ex.CallAt(20, [&] { token.Cancel(); });
  ex.Run();
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 20u);  // the cancel itself is still immediate
  EXPECT_EQ(log[2].first, 100u);  // repair deferred to the holder's Release
}

TEST(SimSemaphoreTest, TryAcquireDoesNotBlock) {
  Executor ex;
  SimSemaphore sem(ex, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
}

// --------------------------------------------------------------------------
// SimRwLock

Coro ReadLock(Executor& ex, SimRwLock& lk, TimeMicros hold, CancelToken* token,
              std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await lk.AcquireShared(token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    lk.ReleaseShared();
  }
}

Coro WriteLock(Executor& ex, SimRwLock& lk, TimeMicros hold, CancelToken* token,
               std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await lk.AcquireExclusive(token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    lk.ReleaseExclusive();
  }
}

TEST(SimRwLockTest, ReadersShare) {
  Executor ex;
  SimRwLock lk(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ReadLock(ex, lk, 100, nullptr, log);
  ReadLock(ex, lk, 100, nullptr, log);
  ex.Run();
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 0u);
}

TEST(SimRwLockTest, WriterExcludesReaders) {
  Executor ex;
  SimRwLock lk(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  WriteLock(ex, lk, 100, nullptr, log);
  ReadLock(ex, lk, 10, nullptr, log);
  ex.Run();
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 100u);
}

TEST(SimRwLockTest, ConvoyFormsBehindQueuedWriter) {
  Executor ex;
  SimRwLock lk(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ReadLock(ex, lk, 1000, nullptr, log);  // long scan holds S [0,1000)
  WriteLock(ex, lk, 10, nullptr, log);   // backup X queued behind the scan
  ReadLock(ex, lk, 10, nullptr, log);    // later readers convoy behind the writer
  ReadLock(ex, lk, 10, nullptr, log);
  ex.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[1].first, 1000u);  // writer waits for scan
  EXPECT_EQ(log[2].first, 1010u);  // readers blocked until the writer is done
  EXPECT_EQ(log[3].first, 1010u);
}

TEST(SimRwLockTest, CancellingQueuedWriterReleasesConvoy) {
  Executor ex;
  SimRwLock lk(ex);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ReadLock(ex, lk, 1000, nullptr, log);  // scan holds S [0,1000)
  WriteLock(ex, lk, 10, &token, log);    // backup queued; cancelled at 200
  ReadLock(ex, lk, 10, nullptr, log);    // convoyed readers
  ReadLock(ex, lk, 10, nullptr, log);
  ex.CallAt(200, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 200u);
  // Readers join the still-active scan immediately after the writer leaves.
  EXPECT_EQ(log[2].first, 200u);
  EXPECT_EQ(log[3].first, 200u);
}

TEST(SimRwLockTest, SimpleModeHoldsConvoyUntilNextRelease) {
  Executor ex;
  SimRwLock lk(ex);
  lk.set_cancel_mode(CancelMode::kSimple);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ReadLock(ex, lk, 1000, nullptr, log);  // scan holds S [0,1000)
  WriteLock(ex, lk, 10, &token, log);    // backup queued; cancelled at 200
  ReadLock(ex, lk, 10, nullptr, log);    // convoyed readers
  ReadLock(ex, lk, 10, nullptr, log);
  ex.CallAt(200, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 200u);
  // Unlike kSmart (test above), the convoy only drains when the scan's own
  // release re-runs the grant pass.
  EXPECT_EQ(log[2].first, 1000u);
  EXPECT_EQ(log[3].first, 1000u);
}

TEST(SimRwLockTest, WriterQueuedFlag) {
  Executor ex;
  SimRwLock lk(ex);
  std::vector<std::pair<TimeMicros, Status>> log;
  ReadLock(ex, lk, 100, nullptr, log);
  EXPECT_FALSE(lk.writer_queued());
  WriteLock(ex, lk, 10, nullptr, log);
  EXPECT_TRUE(lk.writer_queued());
  ex.Run();
  EXPECT_FALSE(lk.writer_queued());
}

// --------------------------------------------------------------------------
// Task<T> composition

Task<int> AddAfterDelay(Executor& ex, int a, int b) {
  co_await Delay{ex, 50};
  co_return a + b;
}

Task<Status> NestedOk(Executor& ex) {
  int v = co_await AddAfterDelay(ex, 2, 3);
  if (v != 5) {
    co_return Status::Internal("bad math");
  }
  co_return Status::Ok();
}

Coro DriveTask(Executor& ex, std::vector<Status>& out) {
  co_await BindExecutor{ex};
  out.push_back(co_await NestedOk(ex));
}

TEST(TaskTest, NestedTasksComposeAndPropagateValues) {
  Executor ex;
  std::vector<Status> out;
  DriveTask(ex, out);
  ex.Run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(ex.now(), 50u);
  EXPECT_EQ(ex.live_procs(), 0);
}

}  // namespace
}  // namespace atropos
