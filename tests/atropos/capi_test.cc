#include "src/atropos/capi.h"

#include <gtest/gtest.h>

// This suite is the C-API misuse-regression corpus: most tests deliberately
// leak handles, double-free, or unbalance getResource/freeResource to pin the
// runtime's defensive behavior, so the pairing contract is suppressed for the
// whole file rather than annotated line by line.
// atropos-lint: allow-file(capi-pairing)

namespace atropos {
namespace {

std::vector<uint64_t>& CancelLog() {
  static std::vector<uint64_t> log;
  return log;
}

// Test-only initiator: appends to a static log (fine in a single-threaded
// test, banned in a real initiator).
// atropos-lint: allow(cancel-action-safety)
void RecordCancel(uint64_t key) { CancelLog().push_back(key); }

class CApiTest : public ::testing::Test {
 protected:
  CApiTest() : clock_(0), runtime_(&clock_, Config()) {
    InstallGlobalRuntime(&runtime_);
    CancelLog().clear();
  }
  ~CApiTest() override { InstallGlobalRuntime(nullptr); }

  static AtroposConfig Config() {
    AtroposConfig cfg;
    cfg.baseline_p99 = 1000;
    cfg.timestamp_mode = TimestampMode::kPerEvent;
    return cfg;
  }

  ManualClock clock_;
  AtroposRuntime runtime_;
};

TEST_F(CApiTest, CreateAndFreeRegisterTasks) {
  Cancellable* c = createCancel(7);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(runtime_.FindTask(7), nullptr);
  freeCancel(c);
  EXPECT_EQ(runtime_.FindTask(7), nullptr);
}

TEST_F(CApiTest, TracingAttributedToCurrentCancellable) {
  Cancellable* c = createCancel(7);
  {
    CancellableScope scope(c);
    getResource(10, CApiResourceType::MEMORY);
    slowByResource(500, CApiResourceType::MEMORY);
    freeResource(4, CApiResourceType::MEMORY);
    reportProgress(3, 10);
  }
  const TaskRecord* task = runtime_.FindTask(7);
  ASSERT_NE(task, nullptr);
  std::vector<ResourceId> used = runtime_.UsedResources(7);
  ASSERT_EQ(used.size(), 1u);
  const TaskResourceUsage* u = runtime_.FindUsage(7, used[0]);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->acquired, 10u);
  EXPECT_EQ(u->released, 4u);
  EXPECT_EQ(u->wait_time, 500u);
  EXPECT_TRUE(task->has_progress);
  EXPECT_EQ(task->progress_done, 3u);
  freeCancel(c);
}

TEST_F(CApiTest, TracingWithoutCurrentTaskIsIgnored) {
  getResource(10, CApiResourceType::LOCK);
  EXPECT_EQ(runtime_.stats().trace_events, 0u);
}

TEST_F(CApiTest, ScopesNest) {
  Cancellable* a = createCancel(1);
  Cancellable* b = createCancel(2);
  {
    CancellableScope outer(a);
    getResource(1, CApiResourceType::LOCK);
    {
      CancellableScope inner(b);
      getResource(1, CApiResourceType::LOCK);
    }
    getResource(1, CApiResourceType::LOCK);
  }
  EXPECT_EQ(runtime_.FindUsage(1, runtime_.UsedResources(1)[0])->acquired, 2u);
  EXPECT_EQ(runtime_.FindUsage(2, runtime_.UsedResources(2)[0])->acquired, 1u);
  freeCancel(a);
  freeCancel(b);
}

// Regression: freeCancel while the freed task is still the current
// cancellable. Tracing after the free must reach the runtime and be counted
// as ignored_events — the old facade nulled the current task and the calls
// vanished without a trace.
TEST_F(CApiTest, TracingAfterFreeCancelOfCurrentCountsAsIgnored) {
  Cancellable* c = createCancel(7);
  {
    CancellableScope scope(c);
    getResource(1, CApiResourceType::LOCK);
    EXPECT_EQ(runtime_.stats().ignored_events, 0u);

    freeCancel(c);  // frees the task while it is the current cancellable

    getResource(1, CApiResourceType::LOCK);
    slowByResource(100, CApiResourceType::LOCK);
    freeResource(1, CApiResourceType::LOCK);
    EXPECT_EQ(runtime_.stats().ignored_events, 3u);
    EXPECT_EQ(runtime_.FindTask(7), nullptr);
  }
  // The handle is reaped at scope exit; tracing now has no current task.
  getResource(1, CApiResourceType::LOCK);
  EXPECT_EQ(runtime_.stats().ignored_events, 3u);
}

// Regression: freeCancel of an *outer* scope's handle while a nested scope is
// active. The inner scope's exit restores the outer handle — which must still
// be valid memory — and tracing against it must count as ignored, never be
// misattributed to another task.
TEST_F(CApiTest, FreeCancelOfOuterHandleUnderNestedScopes) {
  Cancellable* a = createCancel(1);
  Cancellable* b = createCancel(2);
  {
    CancellableScope outer(a);
    {
      CancellableScope inner(b);
      freeCancel(a);  // outer handle is saved by `inner` as its restore target
      getResource(5, CApiResourceType::LOCK);  // still attributed to task 2
    }
    // Restored current is the freed outer handle: valid memory, dead task.
    getResource(3, CApiResourceType::LOCK);
    EXPECT_EQ(runtime_.stats().ignored_events, 1u);
  }
  EXPECT_EQ(runtime_.FindTask(1), nullptr);
  ASSERT_NE(runtime_.FindTask(2), nullptr);
  EXPECT_EQ(runtime_.FindUsage(2, runtime_.UsedResources(2)[0])->acquired, 5u);
  freeCancel(b);
}

TEST_F(CApiTest, DoubleFreeCancelIsSafe) {
  Cancellable* c = createCancel(9);
  {
    CancellableScope scope(c);
    freeCancel(c);
    freeCancel(c);  // second free of a retired handle must not double-delete
    getResource(1, CApiResourceType::LOCK);
    EXPECT_EQ(runtime_.stats().ignored_events, 1u);
  }
  EXPECT_EQ(runtime_.FindTask(9), nullptr);
}

TEST_F(CApiTest, SetCancelActionRoutesToFunctionPointer) {
  setCancelAction(&RecordCancel);
  Cancellable* culprit = createCancel(100);
  Cancellable* victim = createCancel(200);
  {
    CancellableScope scope(culprit);
    getResource(1, CApiResourceType::LOCK);
  }
  // Victim stalls on the same default lock resource.
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnWaitBegin(200, runtime_.UsedResources(100)[0]);
  clock_.Advance(Millis(100));
  runtime_.Tick();
  ASSERT_EQ(CancelLog().size(), 1u);
  EXPECT_EQ(CancelLog()[0], 100u);
  freeCancel(culprit);
  freeCancel(victim);
}

}  // namespace
}  // namespace atropos
