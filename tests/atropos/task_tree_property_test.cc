// Property-style tests for TaskTree: randomized register/unregister/cancel/
// ack interleavings checked against a shadow model after every operation.
// Complements the directed scenarios in task_tree_test.cc.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/atropos/task_tree.h"
#include "src/common/rng.h"

namespace atropos {
namespace {

constexpr int kMaxRetries = 2;

TaskTreeConfig Config() {
  TaskTreeConfig cfg;
  cfg.ack_timeout = Millis(100);
  cfg.max_retries = kMaxRetries;
  return cfg;
}

// Drives a TaskTree with random operations while mirroring its observable
// state: the live key set, the in-flight (dispatched, unacknowledged) set,
// and per-key dispatch/epoch counts. Every callback updates the shadow; every
// step asserts the tree and the shadow agree.
class TreeHarness {
 public:
  explicit TreeHarness(uint64_t seed)
      : rng_(seed),
        clock_(0),
        tree_(&clock_, Config(),
              [this](int node, uint64_t key) { OnDispatch(node, key); },
              [this](int node, uint64_t key) { OnOrphan(node, key); }) {}

  void RandomOp() {
    switch (rng_.NextBounded(6)) {
      case 0:
      case 1:
        RegisterFresh();
        break;
      case 2:
        UnregisterRandom();
        break;
      case 3:
        CancelRandom();
        break;
      case 4:
        AckRandom();
        break;
      case 5:
        clock_.Advance(static_cast<TimeMicros>(10'000 + rng_.NextBounded(190'000)));
        tree_.Tick();
        break;
    }
    CheckInvariants();
  }

  // Keeps ticking until nothing is awaiting an acknowledgement; everything
  // unacked must resolve as an orphan within the retry budget.
  void Drain() {
    for (int i = 0; i < 2 * (kMaxRetries + 2) && tree_.pending_ack_count() > 0; i++) {
      clock_.Advance(Millis(150));
      tree_.Tick();
      CheckInvariants();
    }
    EXPECT_EQ(tree_.pending_ack_count(), 0u);
  }

  void CheckInvariants() {
    EXPECT_EQ(tree_.live_count(), live_.size());
    EXPECT_EQ(tree_.pending_ack_count(), in_flight_.size());
    // Each cancellation epoch dispatches at most 1 + max_retries times.
    for (const auto& [key, count] : dispatches_) {
      EXPECT_LE(count, epochs_[key] * (1 + kMaxRetries)) << "key " << key;
    }
    for (uint64_t key : orphaned_) {
      EXPECT_FALSE(tree_.IsRegistered(key)) << "orphan " << key << " still registered";
    }
  }

  TaskTree& tree() { return tree_; }
  const std::vector<uint64_t>& orphaned() const { return orphaned_; }

 private:
  void RegisterFresh() {
    uint64_t key = next_key_++;
    uint64_t parent = live_.empty() || rng_.NextBernoulli(0.4) ? 0 : PickLive();
    tree_.Register(key, parent, static_cast<int>(rng_.NextBounded(4)));
    live_.insert(key);
  }

  void UnregisterRandom() {
    if (live_.empty()) {
      return;
    }
    uint64_t key = PickLive();
    tree_.Unregister(key);
    live_.erase(key);
    in_flight_.erase(key);  // finishing counts as the acknowledgement
  }

  void CancelRandom() {
    if (live_.empty()) {
      return;
    }
    tree_.Cancel(PickLive());
  }

  void AckRandom() {
    if (in_flight_.empty()) {
      return;
    }
    auto it = in_flight_.begin();
    std::advance(it, rng_.NextBounded(in_flight_.size()));
    uint64_t key = *it;
    tree_.Ack(key);
    in_flight_.erase(key);
    acked_.insert(key);
  }

  void OnDispatch(int node, uint64_t key) {
    (void)node;
    dispatches_[key]++;
    if (in_flight_.insert(key).second) {
      epochs_[key]++;  // first delivery of a new cancellation epoch
    }
  }

  void OnOrphan(int node, uint64_t key) {
    (void)node;
    // An orphan must come from an in-flight epoch — never from a key whose
    // epoch already ended in an ack or an unregister.
    EXPECT_TRUE(in_flight_.count(key)) << "orphan " << key << " was not in flight";
    in_flight_.erase(key);
    live_.erase(key);
    orphaned_.push_back(key);
  }

  uint64_t PickLive() {
    auto it = live_.begin();
    std::advance(it, rng_.NextBounded(live_.size()));
    return *it;
  }

  Rng rng_;
  ManualClock clock_;
  TaskTree tree_;

  uint64_t next_key_ = 1;
  std::set<uint64_t> live_;
  std::set<uint64_t> in_flight_;
  std::set<uint64_t> acked_;
  std::map<uint64_t, int> dispatches_;
  std::map<uint64_t, int> epochs_;
  std::vector<uint64_t> orphaned_;
};

TEST(TaskTreePropertyTest, RandomizedLifecyclesKeepInvariants) {
  for (uint64_t seed = 1; seed <= 25; seed++) {
    TreeHarness harness(seed);
    for (int op = 0; op < 200; op++) {
      harness.RandomOp();
    }
    harness.Drain();
  }
}

TEST(TaskTreePropertyTest, FreeWhileCancelPendingDropsTheAck) {
  ManualClock clock(0);
  std::vector<uint64_t> dispatched;
  std::vector<uint64_t> orphans;
  TaskTree tree(&clock, Config(), [&](int, uint64_t key) { dispatched.push_back(key); },
                [&](int, uint64_t key) { orphans.push_back(key); });
  tree.Register(1, 0, 0);
  tree.Cancel(1);
  ASSERT_EQ(tree.pending_ack_count(), 1u);
  tree.Unregister(1);  // freed while the cancellation is still in flight
  EXPECT_EQ(tree.pending_ack_count(), 0u);
  for (int i = 0; i < 5; i++) {
    clock.Advance(Millis(200));
    tree.Tick();
  }
  // No retry, no orphan: the free acknowledged the epoch.
  EXPECT_EQ(dispatched.size(), 1u);
  EXPECT_TRUE(orphans.empty());
}

TEST(TaskTreePropertyTest, CancelFanOutMatchesSubtreeOnRandomTrees) {
  for (uint64_t seed = 100; seed < 110; seed++) {
    Rng rng(seed);
    ManualClock clock(0);
    std::set<uint64_t> dispatched;
    TaskTree tree(&clock, Config(), [&](int, uint64_t key) { dispatched.insert(key); },
                  nullptr);
    std::vector<uint64_t> keys;
    for (uint64_t key = 1; key <= 30; key++) {
      uint64_t parent = keys.empty() || rng.NextBernoulli(0.3)
                            ? 0
                            : keys[rng.NextBounded(keys.size())];
      tree.Register(key, parent, 0);
      keys.push_back(key);
    }
    uint64_t root = keys[rng.NextBounded(keys.size())];
    std::vector<uint64_t> subtree = tree.Subtree(root);
    tree.Cancel(root);
    EXPECT_EQ(dispatched, std::set<uint64_t>(subtree.begin(), subtree.end()));
  }
}

TEST(TaskTreePropertyTest, ReRootingKeepsEveryLiveTaskReachable) {
  for (uint64_t seed = 200; seed < 210; seed++) {
    Rng rng(seed);
    ManualClock clock(0);
    std::set<uint64_t> dispatched;
    TaskTree tree(&clock, Config(), [&](int, uint64_t key) { dispatched.insert(key); },
                  nullptr);
    // One connected tree rooted at key 1.
    std::vector<uint64_t> keys = {1};
    tree.Register(1, 0, 0);
    for (uint64_t key = 2; key <= 25; key++) {
      tree.Register(key, keys[rng.NextBounded(keys.size())], 0);
      keys.push_back(key);
    }
    // Randomly finish some interior tasks (never the root).
    std::set<uint64_t> live(keys.begin(), keys.end());
    for (uint64_t key = 2; key <= 25; key++) {
      if (rng.NextBernoulli(0.4)) {
        tree.Unregister(key);
        live.erase(key);
      }
    }
    // Cancelling the root must still reach every surviving descendant.
    tree.Cancel(1);
    EXPECT_EQ(dispatched, live);
  }
}

TEST(TaskTreePropertyTest, UnackedEpochExhaustsExactRetryBudget) {
  ManualClock clock(0);
  int dispatches = 0;
  std::vector<uint64_t> orphans;
  TaskTree tree(&clock, Config(), [&](int, uint64_t) { dispatches++; },
                [&](int, uint64_t key) { orphans.push_back(key); });
  tree.Register(1, 0, 3);
  tree.Cancel(1);
  for (int i = 0; i < 10; i++) {
    clock.Advance(Millis(150));
    tree.Tick();
  }
  EXPECT_EQ(dispatches, 1 + kMaxRetries);
  EXPECT_EQ(orphans, (std::vector<uint64_t>{1}));
  EXPECT_EQ(tree.pending_ack_count(), 0u);
  EXPECT_EQ(tree.live_count(), 0u);
}

}  // namespace
}  // namespace atropos
