#include "src/atropos/instrument.h"

#include <gtest/gtest.h>

#include "src/sim/coro.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

class InstrumentTest : public ::testing::Test {
 protected:
  Executor ex_;
  RecordingController ctl_;
};

Coro UseRwLock(Executor& ex, InstrumentedRwLock& lock, uint64_t key, bool exclusive,
               TimeMicros hold, std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  // Two co_awaits in one ternary miscompile on GCC 12; keep them separate.
  Status s;
  if (exclusive) {
    s = co_await lock.AcquireExclusive(key, nullptr);
  } else {
    s = co_await lock.AcquireShared(key, nullptr);
  }
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    if (exclusive) {
      lock.ReleaseExclusive(key);
    } else {
      lock.ReleaseShared(key);
    }
  }
}

TEST_F(InstrumentTest, RwLockUncontendedAcquireEmitsGetWithoutWait) {
  InstrumentedRwLock lock(ex_, &ctl_, 7);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseRwLock(ex_, lock, 1, /*exclusive=*/false, 100, log);
  ex_.Run();
  EXPECT_EQ(ctl_.CountFor("get", 1), 1);
  EXPECT_EQ(ctl_.CountFor("free", 1), 1);
  // Fast path: no wait bracket emitted (Fig 8 instruments the slow path only).
  EXPECT_EQ(ctl_.CountFor("wait_begin", 1), 0);
}

TEST_F(InstrumentTest, RwLockContendedAcquireBracketsWait) {
  InstrumentedRwLock lock(ex_, &ctl_, 7);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseRwLock(ex_, lock, 1, /*exclusive=*/true, 500, log);
  UseRwLock(ex_, lock, 2, /*exclusive=*/false, 10, log);
  ex_.Run();
  EXPECT_EQ(ctl_.CountFor("wait_begin", 2), 1);
  EXPECT_EQ(ctl_.CountFor("wait_end", 2), 1);
  EXPECT_EQ(ctl_.CountFor("get", 2), 1);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 500u);
}

Coro UseMutex(Executor& ex, InstrumentedMutex& mu, uint64_t key, TimeMicros hold) {
  co_await BindExecutor{ex};
  Status s = co_await mu.Acquire(key, nullptr);
  if (s.ok()) {
    co_await Delay{ex, hold};
    mu.Release(key);
  }
}

TEST_F(InstrumentTest, MutexEmitsGetFreePairs) {
  InstrumentedMutex mu(ex_, &ctl_, 3);
  UseMutex(ex_, mu, 1, 50);
  UseMutex(ex_, mu, 2, 50);
  ex_.Run();
  EXPECT_EQ(ctl_.Count("get"), 2);
  EXPECT_EQ(ctl_.Count("free"), 2);
  EXPECT_EQ(ctl_.CountFor("wait_begin", 2), 1);  // second acquirer blocked
}

Coro UseSem(Executor& ex, InstrumentedSemaphore& sem, uint64_t key, uint64_t units,
            TimeMicros hold) {
  co_await BindExecutor{ex};
  Status s = co_await sem.Acquire(key, nullptr, units);
  if (s.ok()) {
    co_await Delay{ex, hold};
    sem.Release(key, units);
  }
}

TEST_F(InstrumentTest, SemaphoreReportsUnits) {
  InstrumentedSemaphore sem(ex_, 4, &ctl_, 9);
  UseSem(ex_, sem, 1, 3, 100);
  ex_.Run();
  EXPECT_EQ(ctl_.SumAmount("get", 1), 1u);   // one get event per grant
  EXPECT_EQ(ctl_.SumAmount("free", 1), 3u);  // release reports units
}

TEST_F(InstrumentTest, NullTracerIsSafe) {
  InstrumentedRwLock lock(ex_, nullptr, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseRwLock(ex_, lock, 1, true, 10, log);
  ex_.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].second.ok());
}

// --------------------------------------------------------------------------
// AdjustableLimiter

Coro UseLimiter(Executor& ex, AdjustableLimiter& lim, uint64_t key, TimeMicros hold,
                CancelToken* token, std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await lim.Acquire(key, token);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    lim.Release(key);
  }
}

TEST_F(InstrumentTest, LimiterEnforcesLimit) {
  AdjustableLimiter lim(ex_, 2);
  std::vector<std::pair<TimeMicros, Status>> log;
  for (uint64_t k = 1; k <= 4; k++) {
    UseLimiter(ex_, lim, k, 100, nullptr, log);
  }
  ex_.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[1].first, 0u);
  EXPECT_EQ(log[2].first, 100u);
  EXPECT_EQ(log[3].first, 100u);
}

TEST_F(InstrumentTest, RaisingLimitAdmitsWaiters) {
  AdjustableLimiter lim(ex_, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseLimiter(ex_, lim, 1, 1000, nullptr, log);
  UseLimiter(ex_, lim, 2, 10, nullptr, log);
  ex_.CallAt(200, [&] { lim.SetLimit(2); });
  ex_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 200u);  // admitted the moment the limit grew
}

TEST_F(InstrumentTest, LoweringLimitAppliesAsHoldersRelease) {
  AdjustableLimiter lim(ex_, 2);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseLimiter(ex_, lim, 1, 100, nullptr, log);
  UseLimiter(ex_, lim, 2, 300, nullptr, log);
  ex_.CallAt(50, [&] { lim.SetLimit(1); });
  UseLimiter(ex_, lim, 3, 10, nullptr, log);  // queued at t=0
  ex_.Run();
  ASSERT_EQ(log.size(), 3u);
  // Key 3 admitted only when in_use drops below the new limit of 1: both
  // holders must finish (at 100 and 300).
  EXPECT_EQ(log[2].first, 300u);
}

TEST_F(InstrumentTest, LimiterCancellation) {
  AdjustableLimiter lim(ex_, 1);
  CancelToken token(ex_);
  std::vector<std::pair<TimeMicros, Status>> log;
  UseLimiter(ex_, lim, 1, 1000, nullptr, log);
  UseLimiter(ex_, lim, 2, 10, &token, log);
  ex_.CallAt(77, [&] { token.Cancel(); });
  ex_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.IsCancelled());
  EXPECT_EQ(log[1].first, 77u);
}

}  // namespace
}  // namespace atropos
