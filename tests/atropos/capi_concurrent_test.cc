// Multithreaded stress for the C API facade over ConcurrentFrontend.
//
// The live execution mode drives the facade from many worker threads at once
// while a dedicated drainer ticks the frontend; these tests replay that shape
// with maximum churn — ≥8 producer threads hammering every tracing call,
// short-lived threads binding and retiring mid-run — and are built under the
// tsan preset by scripts/check.sh as the data-race gate for the facade.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/atropos/capi.h"
#include "src/atropos/concurrent_frontend.h"
#include "src/common/clock.h"

namespace atropos {
namespace {

AtroposConfig StressConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(5);
  cfg.baseline_p99 = Millis(10);  // pinned so no calibration phase
  cfg.slo_latency_increase = 0.20;
  cfg.min_cancel_interval = Millis(10);
  return cfg;
}

// One worker iteration: the full facade surface a live request handler
// touches, attributed to a stack-scoped cancellable.
void HandlerIteration(uint64_t key, int round) {
  Cancellable handle{key};
  CancellableScope scope(&handle);
  getResource(1, CApiResourceType::QUEUE);
  getResource(1, CApiResourceType::LOCK);
  if (round % 3 == 0) {
    slowByResourceBegin(CApiResourceType::LOCK);
    slowByResourceEnd(CApiResourceType::LOCK);
  }
  if (round % 5 == 0) {
    slowByResource(50, CApiResourceType::MEMORY);
  }
  reportProgress(static_cast<uint64_t>(round % 10), 10);
  freeResource(1, CApiResourceType::LOCK);
  freeResource(1, CApiResourceType::QUEUE);
}

TEST(CApiConcurrentTest, EightThreadsHammerFacadeWhileDrainerTicks) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;

  SteadyClock clock;
  ConcurrentFrontend frontend(&clock, StressConfig());
  InstallGlobalFrontend(&frontend);

  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&] {
    while (!stop_drainer.load(std::memory_order_acquire)) {
      frontend.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([t] {
      for (int i = 0; i < kItersPerThread; i++) {
        const uint64_t key = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
        Cancellable* task = createCancel(key);
        HandlerIteration(key, i);
        freeCancel(task);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  stop_drainer.store(true, std::memory_order_release);
  drainer.join();
  frontend.Tick();  // drain whatever the exits left behind

  const ConcurrentFrontend::IntakeStats& intake = frontend.intake_stats();
  EXPECT_GT(intake.drained_total, 0u);
  // Every worker thread auto-bound a producer ring and retired it on exit.
  EXPECT_GE(intake.producers_seen, static_cast<uint64_t>(kThreads));
  EXPECT_GE(intake.producers_retired, static_cast<uint64_t>(kThreads));
  // Everything that was pushed is either applied or counted as an overflow
  // drop — nothing vanishes across retirement.
  EXPECT_EQ(frontend.live_producer_count(), 0u);

  InstallGlobalFrontend(nullptr);
}

TEST(CApiConcurrentTest, ThreadChurnRetiresProducersMidRun) {
  // Short-lived threads bind and exit while the drainer keeps ticking: the
  // retirement protocol must hand each ring to the drainer exactly once with
  // no use-after-free (tsan-verified) and no lost retirements.
  constexpr int kWaves = 6;
  constexpr int kThreadsPerWave = 4;
  constexpr int kItersPerThread = 300;

  SteadyClock clock;
  ConcurrentFrontend frontend(&clock, StressConfig());
  InstallGlobalFrontend(&frontend);

  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&] {
    while (!stop_drainer.load(std::memory_order_acquire)) {
      frontend.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (int wave = 0; wave < kWaves; wave++) {
    std::vector<std::thread> workers;
    workers.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; t++) {
      workers.emplace_back([wave, t] {
        for (int i = 0; i < kItersPerThread; i++) {
          const uint64_t key = (static_cast<uint64_t>(wave * kThreadsPerWave + t) << 32) |
                               static_cast<uint64_t>(i);
          Cancellable handle{key};
          CancellableScope scope(&handle);
          getResource(1, CApiResourceType::QUEUE);
          reportProgress(1, 2);
          freeResource(1, CApiResourceType::QUEUE);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }

  stop_drainer.store(true, std::memory_order_release);
  drainer.join();
  frontend.Tick();

  const ConcurrentFrontend::IntakeStats& intake = frontend.intake_stats();
  EXPECT_GE(intake.producers_seen, static_cast<uint64_t>(kWaves * kThreadsPerWave));
  EXPECT_GE(intake.producers_retired, static_cast<uint64_t>(kWaves * kThreadsPerWave));
  EXPECT_EQ(frontend.live_producer_count(), 0u);
  EXPECT_GT(intake.drained_total, 0u);

  InstallGlobalFrontend(nullptr);
}

std::atomic<uint64_t>& CancelledKey() {
  static std::atomic<uint64_t> key{0};
  return key;
}

TEST(CApiConcurrentTest, CancelActionFiresAcrossThreads) {
  // End-to-end live cancel path: a culprit thread holds the default lock, a
  // victim thread stalls on it via slowByResourceBegin, the drainer detects
  // the convoy and fires the registered initiator, and the culprit observes
  // it from its own thread — the same shape LiveServer runs at scale.
  CancelledKey().store(0, std::memory_order_relaxed);

  SteadyClock clock;
  ConcurrentFrontend frontend(&clock, StressConfig());
  InstallGlobalFrontend(&frontend);
  setCancelAction(+[](uint64_t key) {
    CancelledKey().store(key, std::memory_order_release);
  });

  std::thread culprit([&] {
    Cancellable* task = createCancel(100);
    {
      CancellableScope scope(task);
      getResource(1, CApiResourceType::LOCK);
      // Hold the lock until the drainer cancels us (bounded below).
      for (int i = 0; i < 4000; i++) {
        if (CancelledKey().load(std::memory_order_acquire) == 100) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      freeResource(1, CApiResourceType::LOCK);
    }
    freeCancel(task);
  });

  std::thread victim([&] {
    Cancellable* task = createCancel(200);
    {
      CancellableScope scope(task);
      frontend.OnRequestStart(200, /*request_type=*/0, /*client_class=*/0);
      slowByResourceBegin(CApiResourceType::LOCK);
      for (int i = 0; i < 4000; i++) {
        if (CancelledKey().load(std::memory_order_acquire) == 100) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      slowByResourceEnd(CApiResourceType::LOCK);
    }
    freeCancel(task);
  });

  // Drainer: tick until the decision fires (bounded).
  for (int i = 0; i < 400 && CancelledKey().load(std::memory_order_acquire) != 100; i++) {
    frontend.Tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  culprit.join();
  victim.join();
  frontend.Tick();

  EXPECT_EQ(CancelledKey().load(std::memory_order_acquire), 100u);
  EXPECT_GE(frontend.runtime().stats().cancels_issued, 1u);
  EXPECT_EQ(frontend.live_producer_count(), 0u);
  InstallGlobalFrontend(nullptr);
}

}  // namespace
}  // namespace atropos
