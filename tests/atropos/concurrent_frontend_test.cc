#include "src/atropos/concurrent_frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace atropos {
namespace {

AtroposConfig TestConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(100);
  cfg.baseline_p99 = 1000;  // 1ms baseline, SLO = 1.2ms
  cfg.slo_latency_increase = 0.20;
  cfg.contention_threshold = 0.10;
  cfg.min_cancel_interval = Millis(200);
  // Sampled mode on purpose: the determinism proof must cover the §3.2
  // quantizing TraceNow path, not just raw per-event stamps.
  cfg.timestamp_mode = TimestampMode::kSampled;
  cfg.timestamp_sample_interval = Millis(1);
  return cfg;
}

// One scripted instrumentation call: which producer thread emits it, when,
// and the flattened call itself.
struct ScriptOp {
  int producer = 0;
  TraceEvent ev;  // ev.time is the scripted emission time
};

ScriptOp Op(int producer, TimeMicros t, TraceEventKind kind, uint64_t key,
            ResourceId resource = kInvalidResourceId, uint64_t a = 0, uint64_t b = 0) {
  ScriptOp op;
  op.producer = producer;
  op.ev.time = t;
  op.ev.kind = kind;
  op.ev.key = key;
  op.ev.resource = resource;
  op.ev.a = a;
  op.ev.b = b;
  return op;
}

// The §5-style lock-convoy scenario spread over four producer threads:
// producer 0 registers and runs the culprit, producers 1-2 the waiting
// victims, producer 3 reports SLO-violating completions. Times are strictly
// increasing so global timestamp order is unambiguous.
std::vector<ScriptOp> ConvoyScript(ResourceId lock) {
  std::vector<ScriptOp> script;
  script.push_back(Op(0, 100, TraceEventKind::kTaskRegistered, 100));
  script.push_back(Op(1, 200, TraceEventKind::kTaskRegistered, 200));
  script.push_back(Op(2, 300, TraceEventKind::kTaskRegistered, 201));
  script.push_back(Op(0, 1100, TraceEventKind::kGet, 100, lock, 1));
  script.push_back(Op(0, 1150, TraceEventKind::kProgress, 100, kInvalidResourceId, 5, 100));
  script.push_back(Op(1, 1200, TraceEventKind::kRequestStart, 200));
  script.push_back(Op(1, 1300, TraceEventKind::kWaitBegin, 200, lock));
  script.push_back(Op(2, 1400, TraceEventKind::kWaitBegin, 201, lock));
  // Three windows of flat-throughput completions far past the SLO.
  TimeMicros t = 2000;
  for (int w = 0; w < 3; w++) {
    for (int i = 0; i < 20; i++) {
      script.push_back(Op(3, t, TraceEventKind::kRequestEnd, 9999, kInvalidResourceId, 50000));
      t += 137;  // off the sampling grid on purpose
    }
    t = (w + 1) * Millis(100) + 2000;
  }
  // A completed wait+use report riding along (the OnUsage path).
  script.push_back(Op(2, t, TraceEventKind::kUsage, 201, lock, 700, 1400));
  return script;
}

// Applies one scripted call directly to a bare runtime — the single-threaded
// reference the concurrent pipeline must be indistinguishable from.
void ApplyDirect(AtroposRuntime& rt, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kTaskRegistered:
      rt.OnTaskRegistered(ev.key, ev.background, ev.cancellable);
      break;
    case TraceEventKind::kTaskFreed:
      rt.OnTaskFreed(ev.key);
      break;
    case TraceEventKind::kGet:
      rt.OnGet(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kFree:
      rt.OnFree(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kWaitBegin:
      rt.OnWaitBegin(ev.key, ev.resource);
      break;
    case TraceEventKind::kWaitEnd:
      rt.OnWaitEnd(ev.key, ev.resource);
      break;
    case TraceEventKind::kRequestStart:
      rt.OnRequestStart(ev.key, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kRequestEnd:
      rt.OnRequestEnd(ev.key, ev.a, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kUsage:
      rt.OnUsage(ev.key, ev.resource, ev.a, ev.b);
      break;
    case TraceEventKind::kProgress:
      rt.OnProgress(ev.key, ev.a, ev.b);
      break;
  }
}

void ApplyViaProducer(ConcurrentFrontend::Producer* p, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kTaskRegistered:
      p->OnTaskRegistered(ev.key, ev.background, ev.cancellable);
      break;
    case TraceEventKind::kTaskFreed:
      p->OnTaskFreed(ev.key);
      break;
    case TraceEventKind::kGet:
      p->OnGet(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kFree:
      p->OnFree(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kWaitBegin:
      p->OnWaitBegin(ev.key, ev.resource);
      break;
    case TraceEventKind::kWaitEnd:
      p->OnWaitEnd(ev.key, ev.resource);
      break;
    case TraceEventKind::kRequestStart:
      p->OnRequestStart(ev.key, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kRequestEnd:
      p->OnRequestEnd(ev.key, ev.a, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kUsage:
      p->OnUsage(ev.key, ev.resource, ev.a, ev.b);
      break;
    case TraceEventKind::kProgress:
      p->OnProgress(ev.key, ev.a, ev.b);
      break;
  }
}

// The tentpole property: draining N producers' rings produces decisions
// byte-for-byte identical (on the flight-recorder JSONL) to feeding the same
// events to a bare AtroposRuntime in timestamp order. Covers ring merge
// order, enqueue-time stamping, the ReplayClock, and the sampled-mode
// TraceNow replay.
TEST(ConcurrentFrontendDeterminism, DrainedDecisionsMatchDirectFeeding) {
  const int kProducers = 4;
  const TimeMicros kTick = Millis(100);
  const int kWindows = 4;

  // --- Pipeline run: scripted events through per-producer rings.
  ManualClock clock_a(0);
  ConcurrentFrontend frontend(&clock_a, TestConfig());
  ResourceId lock_a = frontend.RegisterResource("table_lock", ResourceClass::kLock);
  FlightRecorder rec_a;
  frontend.runtime().SetRecorder(&rec_a);
  std::vector<uint64_t> cancels_a;
  // atropos-lint: allow(cancel-action-safety)
  frontend.runtime().SetCancelAction([&](uint64_t key) { cancels_a.push_back(key); });
  std::vector<ConcurrentFrontend::Producer*> producers;
  for (int i = 0; i < kProducers; i++) {
    producers.push_back(frontend.RegisterProducer());
  }

  std::vector<ScriptOp> script = ConvoyScript(lock_a);
  size_t next = 0;
  for (int w = 1; w <= kWindows; w++) {
    const TimeMicros tick_at = w * kTick;
    while (next < script.size() && script[next].ev.time < tick_at) {
      clock_a.SetTime(script[next].ev.time);
      ApplyViaProducer(producers[script[next].producer], script[next].ev);
      next++;
    }
    clock_a.SetTime(tick_at);
    frontend.Tick();
  }
  ASSERT_EQ(next, script.size()) << "script must fit in the ticked horizon";

  // --- Reference run: same events, bare runtime, global timestamp order.
  ManualClock clock_b(0);
  AtroposRuntime runtime(&clock_b, TestConfig());
  ResourceId lock_b = runtime.RegisterResource("table_lock", ResourceClass::kLock);
  ASSERT_EQ(lock_a, lock_b);
  FlightRecorder rec_b;
  runtime.SetRecorder(&rec_b);
  std::vector<uint64_t> cancels_b;
  // atropos-lint: allow(cancel-action-safety)
  runtime.SetCancelAction([&](uint64_t key) { cancels_b.push_back(key); });

  std::vector<ScriptOp> sorted = script;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ScriptOp& a, const ScriptOp& b) { return a.ev.time < b.ev.time; });
  next = 0;
  for (int w = 1; w <= kWindows; w++) {
    const TimeMicros tick_at = w * kTick;
    while (next < sorted.size() && sorted[next].ev.time < tick_at) {
      clock_b.SetTime(sorted[next].ev.time);
      ApplyDirect(runtime, sorted[next].ev);
      next++;
    }
    clock_b.SetTime(tick_at);
    runtime.Tick();
  }

  // The scenario must actually decide something, or the comparison is hollow.
  ASSERT_EQ(cancels_b.size(), 1u);
  EXPECT_EQ(cancels_b[0], 100u);  // the lock holder, not a waiter
  EXPECT_EQ(cancels_a, cancels_b);

  EXPECT_EQ(EventsToJsonl(rec_a.Snapshot()), EventsToJsonl(rec_b.Snapshot()));

  const AtroposStats& sa = frontend.runtime().stats();
  const AtroposStats& sb = runtime.stats();
  EXPECT_EQ(sa.trace_events, sb.trace_events);
  EXPECT_EQ(sa.ignored_events, sb.ignored_events);
  EXPECT_EQ(sa.cancels_issued, sb.cancels_issued);
  EXPECT_EQ(sa.resource_overload_windows, sb.resource_overload_windows);

  EXPECT_EQ(frontend.intake_stats().drained_total, script.size());
  EXPECT_EQ(frontend.intake_stats().dropped_total, 0u);
}

// Ring overflow is lossy-with-counter: a full ring drops the event, counts
// it, and the drain/gauge accounting reconciles drops against drains.
TEST(ConcurrentFrontendTest, RingOverflowDropsAreCounted) {
  ManualClock clock(0);
  ConcurrentFrontend::Options opt;
  opt.ring_capacity = 8;
  ConcurrentFrontend frontend(&clock, TestConfig(), opt);
  ResourceId lock = frontend.RegisterResource("l", ResourceClass::kLock);
  MetricsRegistry metrics;
  frontend.BindMetrics(&metrics);

  ConcurrentFrontend::Producer* p = frontend.RegisterProducer();
  p->OnTaskRegistered(1, false);
  for (int i = 0; i < 19; i++) {
    clock.Advance(10);
    p->OnGet(1, lock, 1);
  }
  EXPECT_EQ(p->dropped(), 12u);  // 20 pushes into an 8-slot ring

  clock.SetTime(Millis(100));
  frontend.Tick();
  const ConcurrentFrontend::IntakeStats& intake = frontend.intake_stats();
  EXPECT_EQ(intake.drained_last_tick, 8u);
  EXPECT_EQ(intake.drained_total, 8u);
  EXPECT_EQ(intake.dropped_total, 12u);
  EXPECT_EQ(intake.max_ring_depth, 8u);
  EXPECT_EQ(intake.producers, 1u);

  MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.gauges.at("intake.ring_depth"), 8.0);
  EXPECT_EQ(snap.gauges.at("intake.drained_per_tick"), 8.0);
  EXPECT_EQ(snap.gauges.at("intake.dropped_events"), 12.0);
  EXPECT_EQ(snap.gauges.at("intake.producers"), 1.0);

  // The runtime saw exactly the drained prefix: the registration + 7 gets.
  EXPECT_EQ(frontend.runtime().stats().trace_events, 7u);
  EXPECT_EQ(frontend.runtime().live_task_count(), 1u);
}

// The OverloadController hooks bind each calling thread to its own ring on
// first use.
TEST(ConcurrentFrontendTest, HooksAutoRegisterCallingThread) {
  ManualClock clock(0);
  ConcurrentFrontend frontend(&clock, TestConfig());
  ResourceId lock = frontend.RegisterResource("l", ResourceClass::kLock);
  frontend.OnTaskRegistered(7, false);
  frontend.OnGet(7, lock, 1);
  std::thread other([&] {
    frontend.OnTaskRegistered(8, false);
    frontend.OnGet(8, lock, 1);
  });
  other.join();
  clock.SetTime(Millis(100));
  frontend.Tick();
  // Both threads got their own ring; the exited one was drained in full and
  // then reclaimed, leaving only the calling thread's ring live.
  EXPECT_EQ(frontend.intake_stats().producers_seen, 2u);
  EXPECT_EQ(frontend.intake_stats().producers, 1u);
  EXPECT_EQ(frontend.intake_stats().drained_total, 4u);
  EXPECT_EQ(frontend.runtime().live_task_count(), 2u);
}

// Multi-producer stress with a concurrent drainer: real OS threads hammer
// the intake while Tick() drains. Run under the tsan preset this is the
// data-race proof; in any build it checks intake conservation (every push is
// either drained into the runtime or counted as dropped).
TEST(ConcurrentFrontendStress, ConcurrentProducersAndDrainerConserveEvents) {
  const int kThreads = 4;
  const int kEventsPerThread = 20000;
  SteadyClock clock;
  ConcurrentFrontend::Options opt;
  opt.ring_capacity = 1 << 10;  // small enough that overflow is plausible
  ConcurrentFrontend frontend(&clock, TestConfig(), opt);
  ResourceId lock = frontend.RegisterResource("l", ResourceClass::kLock);

  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      frontend.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<uint64_t> pushed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; t++) {
    producers.emplace_back([&, t] {
      const uint64_t key = 1000 + t;
      frontend.OnTaskRegistered(key, false);
      uint64_t mine = 1;
      for (int i = 0; i < kEventsPerThread; i += 4) {
        frontend.OnGet(key, lock, 1);
        frontend.OnWaitBegin(key, lock);
        frontend.OnWaitEnd(key, lock);
        frontend.OnFree(key, lock, 1);
        mine += 4;
      }
      frontend.OnTaskFreed(key);
      mine += 1;
      pushed.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& p : producers) {
    p.join();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
  frontend.Tick();  // final drain of anything still buffered

  const ConcurrentFrontend::IntakeStats& intake = frontend.intake_stats();
  // Every auto-bound producer thread has exited and joined before the final
  // Tick, so its ring was retired and freed — but all of its events were
  // either drained or counted as dropped first (conservation below).
  EXPECT_EQ(intake.producers_seen, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(intake.producers_retired, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(intake.producers, 0u);
  EXPECT_EQ(frontend.live_producer_count(), 0u);
  EXPECT_EQ(intake.drained_total + intake.dropped_total, pushed.load());
  EXPECT_GT(intake.drained_total, 0u);
}

// Producer lifecycle regression (live mode): a worker thread that registers,
// enqueues, and exits *before any drain* must still have every queued event
// applied, and its ring must be reclaimed rather than left as a stale
// producers_ entry. Register → enqueue → exit → drain, under TSan when run
// with the tsan preset.
TEST(ConcurrentFrontendStress, ExitedProducerIsDrainedThenReclaimed) {
  SteadyClock clock;
  ConcurrentFrontend frontend(&clock, TestConfig());
  ResourceId lock = frontend.RegisterResource("l", ResourceClass::kLock);

  const int kEvents = 100;
  std::thread worker([&] {
    frontend.OnTaskRegistered(42, false);
    for (int i = 0; i < kEvents; i++) {
      frontend.OnGet(42, lock, 1);
      frontend.OnFree(42, lock, 1);
    }
  });
  worker.join();  // thread fully exited: TLS destructor has retired the ring
  EXPECT_EQ(frontend.live_producer_count(), 1u);

  // First drain after the exit applies everything the thread queued...
  frontend.Tick();
  EXPECT_EQ(frontend.intake_stats().drained_total,
            static_cast<uint64_t>(1 + 2 * kEvents));
  EXPECT_EQ(frontend.intake_stats().dropped_total, 0u);
  EXPECT_NE(frontend.runtime().FindTask(42), nullptr);
  // ...and reclaims the ring: no stale producers_ entry remains.
  EXPECT_EQ(frontend.live_producer_count(), 0u);
  EXPECT_EQ(frontend.intake_stats().producers_retired, 1u);
  EXPECT_EQ(frontend.intake_stats().producers_seen, 1u);

  // A second Tick is a no-op on the reclaimed ring.
  frontend.Tick();
  EXPECT_EQ(frontend.intake_stats().drained_last_tick, 0u);
  EXPECT_EQ(frontend.intake_stats().producers, 0u);
}

// An explicitly held RegisterProducer() handle must never be auto-retired —
// its owner may outlive many Tick() cycles (mt_ingest's reuse pattern).
TEST(ConcurrentFrontendStress, ExplicitProducerHandleSurvivesTicks) {
  SteadyClock clock;
  ConcurrentFrontend frontend(&clock, TestConfig());
  ResourceId lock = frontend.RegisterResource("l", ResourceClass::kLock);

  ConcurrentFrontend::Producer* p = frontend.RegisterProducer();
  std::thread worker([&] { p->OnGet(7, lock, 1); });
  worker.join();
  frontend.Tick();
  EXPECT_EQ(frontend.live_producer_count(), 1u);

  // The handle is still usable from another thread after the first exited.
  std::thread worker2([&] { p->OnFree(7, lock, 1); });
  worker2.join();
  frontend.Tick();
  EXPECT_EQ(frontend.intake_stats().drained_total, 2u);
  EXPECT_EQ(frontend.intake_stats().producers_retired, 0u);
}

}  // namespace
}  // namespace atropos
