#include "src/atropos/runtime.h"

#include <gtest/gtest.h>

#include <vector>

namespace atropos {
namespace {

AtroposConfig TestConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(100);
  cfg.baseline_p99 = 1000;  // 1ms baseline, SLO = 1.2ms
  cfg.slo_latency_increase = 0.20;
  cfg.contention_threshold = 0.10;
  cfg.min_cancel_interval = Millis(200);
  cfg.timestamp_mode = TimestampMode::kPerEvent;
  return cfg;
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : clock_(0), runtime_(&clock_, TestConfig()) {
    // atropos-lint: allow(cancel-action-safety)
    runtime_.SetCancelAction([this](uint64_t key) { cancelled_.push_back(key); });
    lock_ = runtime_.RegisterResource("table_lock", ResourceClass::kLock);
  }

  // Drives one window: healthy victims complete fast (below SLO) unless a
  // stall is simulated.
  void HealthyWindow() {
    for (int i = 0; i < 50; i++) {
      runtime_.OnRequestEnd(9999, /*latency=*/900, 0, 0);
    }
    clock_.Advance(Millis(100));
    runtime_.Tick();
  }

  ManualClock clock_;
  AtroposRuntime runtime_;
  ResourceId lock_;
  std::vector<uint64_t> cancelled_;
};

TEST_F(RuntimeTest, ResourceRegistration) {
  const ResourceRecord* rec = runtime_.FindResource(lock_);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->name, "table_lock");
  EXPECT_EQ(rec->cls, ResourceClass::kLock);
  EXPECT_EQ(runtime_.FindResource(999), nullptr);
}

TEST_F(RuntimeTest, TaskLifecycle) {
  runtime_.OnTaskRegistered(42, false);
  EXPECT_NE(runtime_.FindTask(42), nullptr);
  EXPECT_EQ(runtime_.live_task_count(), 1u);
  runtime_.OnTaskFreed(42);
  EXPECT_EQ(runtime_.FindTask(42), nullptr);
  EXPECT_EQ(runtime_.live_task_count(), 0u);
}

TEST_F(RuntimeTest, TracingAgainstUnregisteredKeyIsIgnored) {
  runtime_.OnGet(777, lock_, 1);
  EXPECT_EQ(runtime_.stats().ignored_events, 1u);
}

TEST_F(RuntimeTest, HoldAndWaitAccounting) {
  runtime_.OnTaskRegistered(1, false);
  runtime_.OnTaskRegistered(2, false);
  runtime_.OnGet(1, lock_, 1);
  clock_.Advance(Millis(10));
  runtime_.OnWaitBegin(2, lock_);
  clock_.Advance(Millis(30));
  runtime_.OnWaitEnd(2, lock_);
  runtime_.OnFree(1, lock_, 1);

  const TaskResourceUsage* holder = runtime_.FindUsage(1, lock_);
  const TaskResourceUsage* waiter = runtime_.FindUsage(2, lock_);
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(waiter, nullptr);
  EXPECT_EQ(holder->hold_time, Millis(40));
  EXPECT_EQ(holder->held_now(), 0u);
  EXPECT_EQ(waiter->wait_time, Millis(30));
  EXPECT_EQ(waiter->slow_events, 1u);
}

TEST_F(RuntimeTest, NoCancellationWithoutOverload) {
  runtime_.OnTaskRegistered(1, false);
  for (int w = 0; w < 10; w++) {
    HealthyWindow();
  }
  EXPECT_TRUE(cancelled_.empty());
  EXPECT_EQ(runtime_.stats().cancels_issued, 0u);
}

// The central behaviour: a lock-holding culprit stalls victims; Atropos
// cancels the holder, not the waiters.
TEST_F(RuntimeTest, CancelsLockHolderUnderOverload) {
  runtime_.OnTaskRegistered(100, false);  // culprit
  runtime_.OnTaskRegistered(200, false);  // victim
  runtime_.OnTaskRegistered(201, false);  // victim

  runtime_.OnGet(100, lock_, 1);  // culprit takes the lock...
  runtime_.OnWaitBegin(200, lock_);
  runtime_.OnWaitBegin(201, lock_);

  // Latency blows past the SLO while throughput is flat.
  for (int w = 0; w < 3 && cancelled_.empty(); w++) {
    for (int i = 0; i < 20; i++) {
      runtime_.OnRequestEnd(9999, /*latency=*/50000, 0, 0);
    }
    clock_.Advance(Millis(100));
    runtime_.Tick();
  }
  ASSERT_EQ(cancelled_.size(), 1u);
  EXPECT_EQ(cancelled_[0], 100u);  // the holder, not a waiter
  EXPECT_GE(runtime_.stats().resource_overload_windows, 1u);
}

TEST_F(RuntimeTest, StalledSystemStillCancels) {
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);  // the victim is an in-flight request
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  // Zero completions: a full stall.
  for (int w = 0; w < 3 && cancelled_.empty(); w++) {
    clock_.Advance(Millis(100));
    runtime_.Tick();
  }
  ASSERT_EQ(cancelled_.size(), 1u);
  EXPECT_EQ(cancelled_[0], 100u);
}

TEST_F(RuntimeTest, MinCancelIntervalSuppressesBackToBackCancels) {
  // Two culprits; only one cancellation may be issued per interval.
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(101, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnGet(101, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  clock_.Advance(Millis(100));
  runtime_.Tick();  // first cancel
  clock_.Advance(Millis(100));
  runtime_.Tick();  // suppressed: within min_cancel_interval (200ms)
  EXPECT_EQ(cancelled_.size(), 1u);
  EXPECT_GE(runtime_.stats().cancels_suppressed_interval, 1u);
  clock_.Advance(Millis(150));
  runtime_.Tick();  // now past the interval
  EXPECT_EQ(cancelled_.size(), 2u);
}

TEST_F(RuntimeTest, CancelledTaskNotCancelledTwice) {
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  clock_.Advance(Millis(100));
  runtime_.Tick();
  ASSERT_EQ(cancelled_.size(), 1u);
  // Culprit ignores the cancel (keeps holding); next eligible window must not
  // target it again (max_cancels_per_task = 1), and no other task has gain.
  clock_.Advance(Millis(300));
  runtime_.Tick();
  EXPECT_EQ(cancelled_.size(), 1u);
  EXPECT_GE(runtime_.stats().cancels_suppressed_no_victim, 1u);
}

TEST_F(RuntimeTest, ReRegisteredCancelledKeyIsNonCancellable) {
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  clock_.Advance(Millis(100));
  runtime_.Tick();
  ASSERT_EQ(cancelled_.size(), 1u);
  // The app frees the cancelled task and re-executes it under the same key.
  runtime_.OnTaskFreed(100);
  runtime_.OnTaskRegistered(100, false);
  EXPECT_FALSE(runtime_.FindTask(100)->cancellable);
}

// Regression: cancelled_keys_ used to grow forever when cancelled clients
// never retried (entries were only erased by a re-registration). The memo now
// ages out after reexec_calm_windows calm windows, with every insertion,
// §4 consumption, and eviction counted.
TEST_F(RuntimeTest, CancelledKeyMemoAgesOutAfterSustainedCalm) {
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  clock_.Advance(Millis(100));
  runtime_.Tick();
  ASSERT_EQ(cancelled_.size(), 1u);
  EXPECT_EQ(runtime_.cancelled_key_count(), 1u);
  EXPECT_EQ(runtime_.stats().cancelled_keys_inserted, 1u);

  // The culprit complies and departs; the victim resumes. The client never
  // retries key 100.
  runtime_.OnWaitEnd(200, lock_);
  runtime_.OnFree(100, lock_, 1);
  runtime_.OnTaskFreed(100);
  runtime_.OnRequestEnd(200, /*latency=*/1000, 0, 0);

  for (int w = 0; w < runtime_.config().reexec_calm_windows - 1; w++) {
    HealthyWindow();
  }
  EXPECT_EQ(runtime_.cancelled_key_count(), 1u);  // horizon not yet reached
  HealthyWindow();
  EXPECT_EQ(runtime_.cancelled_key_count(), 0u);
  EXPECT_EQ(runtime_.stats().cancelled_keys_evicted, 1u);
  EXPECT_EQ(runtime_.stats().cancelled_keys_consumed, 0u);

  // A retry after the horizon starts a fresh fairness epoch: cancellable.
  runtime_.OnTaskRegistered(100, false);
  EXPECT_TRUE(runtime_.FindTask(100)->cancellable);
}

// The §4 consumption path still takes precedence over aging and is counted.
TEST_F(RuntimeTest, CancelledKeyMemoConsumedByReRegistration) {
  runtime_.OnTaskRegistered(100, false);
  runtime_.OnTaskRegistered(200, false);
  runtime_.OnRequestStart(200, 0, 0);
  runtime_.OnGet(100, lock_, 1);
  runtime_.OnWaitBegin(200, lock_);
  clock_.Advance(Millis(100));
  runtime_.Tick();
  ASSERT_EQ(cancelled_.size(), 1u);
  runtime_.OnTaskFreed(100);
  runtime_.OnTaskRegistered(100, false);  // prompt retry
  EXPECT_FALSE(runtime_.FindTask(100)->cancellable);
  EXPECT_EQ(runtime_.cancelled_key_count(), 0u);
  EXPECT_EQ(runtime_.stats().cancelled_keys_consumed, 1u);
  EXPECT_EQ(runtime_.stats().cancelled_keys_evicted, 0u);
}

// Regression: a second OnRequestStart under a live key used to silently
// clobber the prior ActiveRequest. It is now treated as an implicit end and
// counted, so key reuse is visible instead of skewing overdue_actives.
TEST_F(RuntimeTest, SecondRequestStartUnderLiveKeyCountsImplicitEnd) {
  runtime_.OnRequestStart(5, 0, 0);
  clock_.Advance(Millis(50));
  runtime_.OnRequestStart(5, 0, 0);  // implicit end of the first
  EXPECT_EQ(runtime_.stats().request_restarts, 1u);
  runtime_.OnRequestEnd(5, /*latency=*/1000, 0, 0);
  runtime_.OnRequestStart(5, 0, 0);  // fresh start after a real end
  EXPECT_EQ(runtime_.stats().request_restarts, 1u);
}

TEST_F(RuntimeTest, CancellationDisabledMeansDetectionOnly) {
  AtroposConfig cfg = TestConfig();
  cfg.cancellation_enabled = false;
  AtroposRuntime rt(&clock_, cfg);
  std::vector<uint64_t> cancels;
  // atropos-lint: allow(cancel-action-safety)
  rt.SetCancelAction([&](uint64_t key) { cancels.push_back(key); });
  ResourceId lk = rt.RegisterResource("l", ResourceClass::kLock);
  rt.OnTaskRegistered(100, false);
  rt.OnTaskRegistered(200, false);
  rt.OnRequestStart(200, 0, 0);
  rt.OnGet(100, lk, 1);
  rt.OnWaitBegin(200, lk);
  clock_.Advance(Millis(100));
  rt.Tick();
  EXPECT_TRUE(cancels.empty());
  EXPECT_GE(rt.stats().resource_overload_windows, 1u);
}

TEST_F(RuntimeTest, TimestampModeEscalatesUnderSuspectedOverload) {
  AtroposConfig cfg = TestConfig();
  cfg.timestamp_mode = TimestampMode::kSampled;
  AtroposRuntime rt(&clock_, cfg);
  ResourceId lk = rt.RegisterResource("l", ResourceClass::kLock);
  rt.OnTaskRegistered(100, false);
  rt.OnTaskRegistered(200, false);
  EXPECT_EQ(rt.effective_timestamp_mode(), TimestampMode::kSampled);
  rt.OnRequestStart(200, 0, 0);
  rt.OnGet(100, lk, 1);
  rt.OnWaitBegin(200, lk);
  clock_.Advance(Millis(100));
  rt.Tick();
  EXPECT_EQ(rt.effective_timestamp_mode(), TimestampMode::kPerEvent);
}

TEST_F(RuntimeTest, ReexecutionRecommendedAfterCalmWindows) {
  runtime_.OnTaskRegistered(1, false);
  for (int w = 0; w < runtime_.config().reexec_calm_windows - 1; w++) {
    HealthyWindow();
  }
  EXPECT_FALSE(runtime_.ReexecutionRecommended());
  HealthyWindow();
  EXPECT_TRUE(runtime_.ReexecutionRecommended());
}

TEST_F(RuntimeTest, ProgressBiasesVictimSelection) {
  // Two hogs on a memory pool: one nearly done, one just started. The one
  // just started must be cancelled (§3.4 future-gain argument).
  ResourceId pool = runtime_.RegisterResource("pool", ResourceClass::kMemory);
  runtime_.OnTaskRegistered(300, false);  // nearly done
  runtime_.OnTaskRegistered(301, false);  // just started
  runtime_.OnTaskRegistered(400, false);  // victim

  // Window 1: the hogs fill the pool (no contention yet).
  runtime_.OnGet(300, pool, 900);
  runtime_.OnProgress(300, 90, 100);
  runtime_.OnGet(301, pool, 600);
  runtime_.OnProgress(301, 10, 100);
  for (int i = 0; i < 20; i++) {
    runtime_.OnRequestEnd(9999, /*latency=*/900, 0, 0);  // healthy traffic
  }
  clock_.Advance(Millis(100));
  runtime_.Tick();
  EXPECT_TRUE(cancelled_.empty());

  // Window 2: every victim page get forces an eviction (thrashing), and
  // victim latency blows past the SLO with flat throughput.
  for (int i = 0; i < 20; i++) {
    runtime_.OnGet(400, pool, 1);
    runtime_.OnWaitBegin(400, pool);
    clock_.Advance(Millis(2));
    runtime_.OnWaitEnd(400, pool);
    runtime_.OnRequestEnd(9999, /*latency=*/5000, 0, 0);
  }
  clock_.Advance(Millis(60));
  runtime_.Tick();
  ASSERT_EQ(cancelled_.size(), 1u);
  EXPECT_EQ(cancelled_[0], 301u);
}

// Regression (found by the fuzzer's no-initiator config point): with neither
// a cancel action nor a control surface registered, a resource-overload
// window used to run victim selection and mark the victim cancelled —
// fairness bookkeeping advanced with no application ever observing the
// cancellation (§3.1: cancellation only routes through the app's safe
// initiator). The runtime must suppress the whole decision instead.
TEST(RuntimeNoInitiatorTest, NoCancelBookkeepingWithoutInitiator) {
  ManualClock clock(0);
  AtroposRuntime rt(&clock, TestConfig());  // no SetCancelAction/SetControlSurface
  ResourceId lk = rt.RegisterResource("l", ResourceClass::kLock);
  rt.OnTaskRegistered(100, false);
  rt.OnTaskRegistered(200, false);
  rt.OnRequestStart(200, 0, 0);
  rt.OnGet(100, lk, 1);
  rt.OnWaitBegin(200, lk);
  for (int w = 0; w < 3; w++) {
    clock.Advance(Millis(100));
    rt.Tick();
  }
  EXPECT_EQ(rt.stats().cancels_issued, 0u);
  EXPECT_GE(rt.stats().cancels_suppressed_no_initiator, 1u);
  // No fairness side effects: the would-be victim was never marked cancelled,
  // so a re-registration of its key stays cancellable.
  EXPECT_EQ(rt.FindTask(100)->cancel_count, 0);
  rt.OnTaskFreed(100);
  rt.OnTaskRegistered(100, false);
  EXPECT_TRUE(rt.FindTask(100)->cancellable);
}

// Conservation ledger behind the fuzzer's accounting oracles: every acquired
// unit ends up released, live-held, or leaked (folded in at task teardown);
// frees beyond holdings count as overfreed. The identity holds through all
// three paths.
TEST_F(RuntimeTest, AuditAccountingConservation) {
  runtime_.OnTaskRegistered(1, false);
  runtime_.OnTaskRegistered(2, false);
  runtime_.OnGet(1, lock_, 3);
  runtime_.OnFree(1, lock_, 1);   // 2 still held
  runtime_.OnGet(2, lock_, 2);
  runtime_.OnFree(2, lock_, 5);   // 3 overfreed
  runtime_.OnTaskFreed(2);

  auto rows = runtime_.AuditAccounting();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].acquired, 5u);
  EXPECT_EQ(rows[0].released, 6u);
  EXPECT_EQ(rows[0].overfreed, 3u);
  EXPECT_EQ(rows[0].live_held, 2u);
  EXPECT_EQ(rows[0].leaked, 0u);
  EXPECT_TRUE(rows[0].Balanced());

  // Task 1 departs still holding 2 units: they fold into the leak column and
  // the identity keeps holding.
  runtime_.OnTaskFreed(1);
  rows = runtime_.AuditAccounting();
  EXPECT_EQ(rows[0].leaked, 2u);
  EXPECT_EQ(rows[0].live_held, 0u);
  EXPECT_TRUE(rows[0].Balanced());
}

// A stale registration replaced under the same key retires its holdings into
// the ledger rather than dropping them.
TEST_F(RuntimeTest, StaleReplacementRetiresHoldings) {
  runtime_.OnTaskRegistered(1, false);
  runtime_.OnGet(1, lock_, 4);
  runtime_.OnTaskRegistered(1, false);  // replaces while 4 units held
  auto rows = runtime_.AuditAccounting();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].leaked, 4u);
  EXPECT_TRUE(rows[0].Balanced());
}

}  // namespace
}  // namespace atropos
