#include "src/atropos/estimator.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/common/clock.h"

namespace atropos {
namespace {

// Tests stage ledger state directly through the Mutable* accessors (no stats
// side effects), then run the estimator over the ledger's books. Task keys
// map to ledger-assigned ids via FindTask; candidate order is the ledger's
// live list, i.e. registration order.
class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() {
    config_.contention_threshold = 0.10;
    config_.default_progress = 0.5;
    ledger_ = std::make_unique<TaskLedger>(&clock_, config_, &stats_);
  }

  void AddTask(uint64_t key, bool cancellable = true) {
    ledger_->RegisterTask(key, /*background=*/false, cancellable);
  }

  ResourceId AddResource(ResourceClass cls) {
    return ledger_->RegisterResource("r", cls);
  }

  TaskRecord& Task(uint64_t key) { return *ledger_->MutableTask(key); }
  TaskId IdOf(uint64_t key) { return ledger_->FindTask(key)->id; }
  TaskResourceUsage& Usage(uint64_t key, ResourceId rid) {
    return *ledger_->MutableUsage(key, rid);
  }
  ResourceRecord& Resource(ResourceId rid) { return *ledger_->MutableResource(rid); }

  Estimator::Output Estimate(TimeMicros exec_time, TimeMicros window_start,
                             TimeMicros now) {
    Estimator est(config_);
    est.SetCalibrating(false);
    return est.Estimate(*ledger_, exec_time, window_start, now);
  }

  AtroposConfig config_;
  ManualClock clock_;
  AtroposStats stats_;
  std::unique_ptr<TaskLedger> ledger_;
};

TEST_F(EstimatorTest, IdleSystemHasNoContention) {
  AddResource(ResourceClass::kLock);
  AddTask(10);
  auto out = Estimate(/*exec_time=*/Millis(100), /*window_start=*/0,
                      /*now=*/Millis(100));
  ASSERT_EQ(out.all_resources.size(), 1u);
  EXPECT_FALSE(out.resource_overload);
  EXPECT_EQ(out.all_resources[0].contention_norm, 0.0);
}

TEST_F(EstimatorTest, LockWaitTimeDrivesContention) {
  ResourceId lock = AddResource(ResourceClass::kLock);
  AddTask(10);
  AddTask(11);
  // Holder has held the lock since t=0; waiter blocked since t=10ms.
  Usage(10, lock).acquired = 1;
  Usage(10, lock).active_units = 1;
  Usage(10, lock).hold_started_at = 0;
  Usage(11, lock).waiting = true;
  Usage(11, lock).wait_started_at = Millis(10);

  auto out = Estimate(Millis(100), 0, Millis(100));
  const ResourceMetrics& m = out.all_resources[0];
  // D_r = 90ms of waiting; T_base = 100ms -> C_r = 90/(100+90) = 0.474.
  EXPECT_NEAR(m.contention_norm, 90.0 / 190.0, 0.01);
  EXPECT_TRUE(m.overloaded);
  EXPECT_TRUE(out.resource_overload);
}

TEST_F(EstimatorTest, HolderGainsExceedWaiterGains) {
  ResourceId lock = AddResource(ResourceClass::kLock);
  AddTask(10);
  AddTask(11);
  Usage(10, lock).acquired = 1;
  Usage(10, lock).active_units = 1;
  Usage(10, lock).hold_started_at = 0;
  Usage(11, lock).waiting = true;
  Usage(11, lock).wait_started_at = Millis(10);

  auto out = Estimate(Millis(100), 0, Millis(100));
  ASSERT_EQ(out.policy_input.candidates.size(), 2u);
  const auto& holder_cand = out.policy_input.candidates[0];
  const auto& waiter_cand = out.policy_input.candidates[1];
  ASSERT_EQ(holder_cand.task, IdOf(10));
  EXPECT_GT(holder_cand.gains[0], waiter_cand.gains[0]);
  EXPECT_EQ(waiter_cand.gains[0], 0.0);  // the victim holds nothing
}

TEST_F(EstimatorTest, MemoryEvictionRatioDrivesContention) {
  ResourceId pool = AddResource(ResourceClass::kMemory);
  AddTask(10);
  // Window saw 100 page gets and 60 evictions, with 50ms of eviction stalls
  // (closed waits land in the resource's window counters).
  Resource(pool).window.gets = 100;
  Resource(pool).window.slow_events = 60;
  Resource(pool).window.wait_time = Millis(50);
  Usage(10, pool).acquired = 500;
  Usage(10, pool).released = 100;
  Usage(10, pool).slow_events = 60;

  auto out = Estimate(Millis(100), 0, Millis(100));
  const ResourceMetrics& m = out.all_resources[0];
  EXPECT_NEAR(m.contention_raw, 0.6, 1e-9);
  // D_r = 50ms * 0.6 = 30ms -> C_r = 30/(100+30) = 0.231.
  EXPECT_NEAR(m.contention_norm, 30.0 / 130.0, 0.01);
  EXPECT_TRUE(m.overloaded);
}

TEST_F(EstimatorTest, FutureGainPrefersEarlyProgressTask) {
  ResourceId pool = AddResource(ResourceClass::kMemory);
  Resource(pool).window.gets = 100;
  Resource(pool).window.slow_events = 100;
  Resource(pool).window.wait_time = Millis(20);
  // §3.4: query A 90% done holding 400 pages; query B 10% done holding 300.
  AddTask(10);
  Usage(10, pool).acquired = 400;
  Task(10).has_progress = true;
  Task(10).progress_done = 90;
  Task(10).progress_total = 100;
  AddTask(11);
  Usage(11, pool).acquired = 300;
  Task(11).has_progress = true;
  Task(11).progress_done = 10;
  Task(11).progress_total = 100;

  auto out = Estimate(Millis(100), 0, Millis(100));
  ASSERT_TRUE(out.resource_overload);
  const auto& ca = out.policy_input.candidates[0];
  const auto& cb = out.policy_input.candidates[1];
  // gain(A) = 400 * (0.1/0.9) ≈ 44; gain(B) = 300 * (0.9/0.1) = 2700.
  EXPECT_LT(ca.gains[0], cb.gains[0]);
  // But by current usage, A holds more.
  EXPECT_GT(ca.current_usage[0], cb.current_usage[0]);
}

TEST_F(EstimatorTest, GainsNormalizedToUnitRange) {
  ResourceId pool = AddResource(ResourceClass::kMemory);
  Resource(pool).window.gets = 10;
  Resource(pool).window.slow_events = 10;
  Resource(pool).window.wait_time = Millis(50);
  AddTask(10);
  Usage(10, pool).acquired = 100000;
  AddTask(11);
  Usage(11, pool).acquired = 10;

  auto out = Estimate(Millis(100), 0, Millis(100));
  for (const auto& c : out.policy_input.candidates) {
    for (double g : c.gains) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(out.policy_input.candidates[0].gains[0], 1.0);
}

TEST_F(EstimatorTest, OpenWaitsAreClippedToTheWindow) {
  ResourceId lock = AddResource(ResourceClass::kLock);
  AddTask(11);
  Usage(11, lock).waiting = true;
  Usage(11, lock).wait_started_at = 0;

  // First window [0, 100ms): 100ms of open waiting -> C = 100/(100+100).
  auto out1 = Estimate(Millis(100), 0, Millis(100));
  EXPECT_NEAR(out1.all_resources[0].contention_norm, 0.5, 0.01);
  // Second window [100ms, 200ms): only the new 100ms counts.
  auto out2 = Estimate(Millis(100), Millis(100), Millis(200));
  EXPECT_NEAR(out2.all_resources[0].contention_norm, 0.5, 0.01);
  EXPECT_EQ(out2.all_resources[0].delay, Millis(100));
}

TEST_F(EstimatorTest, ClosedWaitsFromFreedTasksStillCount) {
  // A victim waited 60ms and completed (its task record is gone); the
  // runtime folded the closed wait into the resource window counters.
  ResourceId lock = AddResource(ResourceClass::kLock);
  Resource(lock).window.wait_time = Millis(60);
  Resource(lock).window.slow_events = 30;
  AddTask(10);
  Usage(10, lock).acquired = 1;
  Usage(10, lock).active_units = 1;
  Usage(10, lock).hold_started_at = 0;

  auto out = Estimate(Millis(100), 0, Millis(100));
  EXPECT_NEAR(out.all_resources[0].contention_norm, 60.0 / 160.0, 0.01);
  EXPECT_TRUE(out.resource_overload);
  // The live holder is the gain candidate.
  ASSERT_FALSE(out.policy_input.candidates.empty());
  EXPECT_GT(out.policy_input.candidates[0].gains[0], 0.0);
}

TEST_F(EstimatorTest, NonCancellableTasksFlaggedInPolicyInput) {
  ResourceId pool = AddResource(ResourceClass::kMemory);
  Resource(pool).window.gets = 10;
  Resource(pool).window.slow_events = 10;
  Resource(pool).window.wait_time = Millis(50);
  AddTask(10, /*cancellable=*/false);
  Usage(10, pool).acquired = 100;

  auto out = Estimate(Millis(100), 0, Millis(100));
  ASSERT_EQ(out.policy_input.candidates.size(), 1u);
  EXPECT_FALSE(out.policy_input.candidates[0].cancellable);
}

TEST_F(EstimatorTest, QueueClassUsesWaitHoldRatio) {
  ResourceId queue = AddResource(ResourceClass::kQueue);
  AddTask(10);
  // Tasks waited 90ms in the queue this window, executed 10ms after leaving.
  Resource(queue).window.wait_time = Millis(90);
  Resource(queue).window.hold_time = Millis(10);

  auto out = Estimate(Millis(100), 0, Millis(100));
  EXPECT_NEAR(out.all_resources[0].contention_raw, 9.0, 0.01);
  EXPECT_NEAR(out.all_resources[0].contention_norm, 90.0 / 190.0, 0.01);
}

}  // namespace
}  // namespace atropos
