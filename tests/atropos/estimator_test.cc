#include "src/atropos/estimator.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() {
    config_.contention_threshold = 0.10;
    config_.default_progress = 0.5;
  }

  TaskRecord& AddTask(TaskId id, bool cancellable = true) {
    TaskRecord rec;
    rec.id = id;
    rec.key = id;
    rec.cancellable = cancellable;
    return tasks_.emplace(id, std::move(rec)).first->second;
  }

  ResourceRecord& AddResource(ResourceId id, ResourceClass cls) {
    ResourceRecord rec;
    rec.id = id;
    rec.cls = cls;
    return resources_.emplace(id, std::move(rec)).first->second;
  }

  AtroposConfig config_;
  std::map<TaskId, TaskRecord> tasks_;
  std::map<ResourceId, ResourceRecord> resources_;
};

TEST_F(EstimatorTest, IdleSystemHasNoContention) {
  AddResource(1, ResourceClass::kLock);
  AddTask(10);
  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, /*exec_time=*/Millis(100), /*window_start=*/0,
                          /*now=*/Millis(100));
  ASSERT_EQ(out.all_resources.size(), 1u);
  EXPECT_FALSE(out.resource_overload);
  EXPECT_EQ(out.all_resources[0].contention_norm, 0.0);
}

TEST_F(EstimatorTest, LockWaitTimeDrivesContention) {
  AddResource(1, ResourceClass::kLock);
  TaskRecord& holder = AddTask(10);
  TaskRecord& waiter = AddTask(11);
  // Holder has held the lock since t=0; waiter blocked since t=10ms.
  holder.usage[1].acquired = 1;
  holder.usage[1].active_units = 1;
  holder.usage[1].hold_started_at = 0;
  waiter.usage[1].waiting = true;
  waiter.usage[1].wait_started_at = Millis(10);

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  const ResourceMetrics& m = out.all_resources[0];
  // D_r = 90ms of waiting; T_base = 100ms -> C_r = 90/(100+90) = 0.474.
  EXPECT_NEAR(m.contention_norm, 90.0 / 190.0, 0.01);
  EXPECT_TRUE(m.overloaded);
  EXPECT_TRUE(out.resource_overload);
}

TEST_F(EstimatorTest, HolderGainsExceedWaiterGains) {
  AddResource(1, ResourceClass::kLock);
  TaskRecord& holder = AddTask(10);
  TaskRecord& waiter = AddTask(11);
  holder.usage[1].acquired = 1;
  holder.usage[1].active_units = 1;
  holder.usage[1].hold_started_at = 0;
  waiter.usage[1].waiting = true;
  waiter.usage[1].wait_started_at = Millis(10);

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  ASSERT_EQ(out.policy_input.candidates.size(), 2u);
  const auto& holder_cand = out.policy_input.candidates[0];
  const auto& waiter_cand = out.policy_input.candidates[1];
  ASSERT_EQ(holder_cand.task, 10u);
  EXPECT_GT(holder_cand.gains[0], waiter_cand.gains[0]);
  EXPECT_EQ(waiter_cand.gains[0], 0.0);  // the victim holds nothing
}

TEST_F(EstimatorTest, MemoryEvictionRatioDrivesContention) {
  ResourceRecord& pool = AddResource(1, ResourceClass::kMemory);
  TaskRecord& hog = AddTask(10);
  // Window saw 100 page gets and 60 evictions, with 50ms of eviction stalls
  // (closed waits land in the resource's window counters).
  pool.window.gets = 100;
  pool.window.slow_events = 60;
  pool.window.wait_time = Millis(50);
  hog.usage[1].acquired = 500;
  hog.usage[1].released = 100;
  hog.usage[1].slow_events = 60;

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  const ResourceMetrics& m = out.all_resources[0];
  EXPECT_NEAR(m.contention_raw, 0.6, 1e-9);
  // D_r = 50ms * 0.6 = 30ms -> C_r = 30/(100+30) = 0.231.
  EXPECT_NEAR(m.contention_norm, 30.0 / 130.0, 0.01);
  EXPECT_TRUE(m.overloaded);
}

TEST_F(EstimatorTest, FutureGainPrefersEarlyProgressTask) {
  ResourceRecord& pool = AddResource(1, ResourceClass::kMemory);
  pool.window.gets = 100;
  pool.window.slow_events = 100;
  pool.window.wait_time = Millis(20);
  // §3.4: query A 90% done holding 400 pages; query B 10% done holding 300.
  TaskRecord& a = AddTask(10);
  a.usage[1].acquired = 400;
  a.has_progress = true;
  a.progress_done = 90;
  a.progress_total = 100;
  TaskRecord& b = AddTask(11);
  b.usage[1].acquired = 300;
  b.has_progress = true;
  b.progress_done = 10;
  b.progress_total = 100;

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  ASSERT_TRUE(out.resource_overload);
  const auto& ca = out.policy_input.candidates[0];
  const auto& cb = out.policy_input.candidates[1];
  // gain(A) = 400 * (0.1/0.9) ≈ 44; gain(B) = 300 * (0.9/0.1) = 2700.
  EXPECT_LT(ca.gains[0], cb.gains[0]);
  // But by current usage, A holds more.
  EXPECT_GT(ca.current_usage[0], cb.current_usage[0]);
}

TEST_F(EstimatorTest, GainsNormalizedToUnitRange) {
  ResourceRecord& pool = AddResource(1, ResourceClass::kMemory);
  pool.window.gets = 10;
  pool.window.slow_events = 10;
  pool.window.wait_time = Millis(50);
  TaskRecord& big = AddTask(10);
  big.usage[1].acquired = 100000;
  TaskRecord& small = AddTask(11);
  small.usage[1].acquired = 10;

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  for (const auto& c : out.policy_input.candidates) {
    for (double g : c.gains) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(out.policy_input.candidates[0].gains[0], 1.0);
}

TEST_F(EstimatorTest, OpenWaitsAreClippedToTheWindow) {
  AddResource(1, ResourceClass::kLock);
  TaskRecord& waiter = AddTask(11);
  waiter.usage[1].waiting = true;
  waiter.usage[1].wait_started_at = 0;

  Estimator est(config_);
  est.SetCalibrating(false);
  // First window [0, 100ms): 100ms of open waiting -> C = 100/(100+100).
  auto out1 = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  EXPECT_NEAR(out1.all_resources[0].contention_norm, 0.5, 0.01);
  // Second window [100ms, 200ms): only the new 100ms counts.
  auto out2 = est.Estimate(tasks_, resources_, Millis(100), Millis(100), Millis(200));
  EXPECT_NEAR(out2.all_resources[0].contention_norm, 0.5, 0.01);
  EXPECT_EQ(out2.all_resources[0].delay, Millis(100));
}

TEST_F(EstimatorTest, ClosedWaitsFromFreedTasksStillCount) {
  // A victim waited 60ms and completed (its task record is gone); the
  // runtime folded the closed wait into the resource window counters.
  ResourceRecord& lock = AddResource(1, ResourceClass::kLock);
  lock.window.wait_time = Millis(60);
  lock.window.slow_events = 30;
  TaskRecord& holder = AddTask(10);
  holder.usage[1].acquired = 1;
  holder.usage[1].active_units = 1;
  holder.usage[1].hold_started_at = 0;

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  EXPECT_NEAR(out.all_resources[0].contention_norm, 60.0 / 160.0, 0.01);
  EXPECT_TRUE(out.resource_overload);
  // The live holder is the gain candidate.
  ASSERT_FALSE(out.policy_input.candidates.empty());
  EXPECT_GT(out.policy_input.candidates[0].gains[0], 0.0);
}

TEST_F(EstimatorTest, NonCancellableTasksFlaggedInPolicyInput) {
  ResourceRecord& pool = AddResource(1, ResourceClass::kMemory);
  pool.window.gets = 10;
  pool.window.slow_events = 10;
  pool.window.wait_time = Millis(50);
  TaskRecord& t = AddTask(10, /*cancellable=*/false);
  t.usage[1].acquired = 100;

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  ASSERT_EQ(out.policy_input.candidates.size(), 1u);
  EXPECT_FALSE(out.policy_input.candidates[0].cancellable);
}

TEST_F(EstimatorTest, QueueClassUsesWaitHoldRatio) {
  ResourceRecord& queue = AddResource(1, ResourceClass::kQueue);
  AddTask(10);
  // Tasks waited 90ms in the queue this window, executed 10ms after leaving.
  queue.window.wait_time = Millis(90);
  queue.window.hold_time = Millis(10);

  Estimator est(config_);
  est.SetCalibrating(false);
  auto out = est.Estimate(tasks_, resources_, Millis(100), 0, Millis(100));
  EXPECT_NEAR(out.all_resources[0].contention_raw, 9.0, 0.01);
  EXPECT_NEAR(out.all_resources[0].contention_norm, 90.0 / 190.0, 0.01);
}

}  // namespace
}  // namespace atropos
