#include "src/atropos/policy.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

ResourceMetrics MakeResource(ResourceId id, double contention_norm) {
  ResourceMetrics m;
  m.id = id;
  m.contention_norm = contention_norm;
  m.overloaded = true;
  return m;
}

PolicyInput::Candidate MakeCandidate(TaskId id, std::vector<double> gains,
                                     std::vector<double> current = {}, bool cancellable = true) {
  PolicyInput::Candidate c;
  c.task = id;
  c.cancellable = cancellable;
  if (current.empty()) {
    current = gains;
  }
  c.gains = std::move(gains);
  c.current_usage = std::move(current);
  return c;
}

TEST(DominatesTest, StrictDomination) {
  EXPECT_TRUE(Dominates({5, 2}, {4, 1}));
  EXPECT_TRUE(Dominates({5, 2}, {5, 1}));
  EXPECT_FALSE(Dominates({5, 2}, {5, 2}));  // equal: not strictly greater anywhere
  EXPECT_FALSE(Dominates({5, 0}, {4, 1}));  // trade-off: incomparable
  EXPECT_FALSE(Dominates({4, 1}, {5, 2}));
}

TEST(MultiObjectiveTest, PaperScalarizationExample) {
  // §3.5 worked example: C_mem=0.6, C_lock=0.4; task A gains (3,1), B (2,2).
  // Score(A) = 0.6*3 + 0.4*1 = 2.2 > Score(B) = 2.0 -> cancel A.
  PolicyInput input;
  input.resources = {MakeResource(1, 0.6), MakeResource(2, 0.4)};
  input.candidates.push_back(MakeCandidate(100, {3, 1}));
  input.candidates.push_back(MakeCandidate(200, {2, 2}));
  PolicyDecision d = SelectMultiObjective(input);
  EXPECT_EQ(d.victim, 100u);
  EXPECT_DOUBLE_EQ(d.score, 2.2);
}

TEST(MultiObjectiveTest, DominatedTasksExcluded) {
  // §3.5: (5,2) dominates (4,1); even with weights favouring the dominated
  // task it must not be selected because it never enters the Pareto set.
  PolicyInput input;
  input.resources = {MakeResource(1, 0.5), MakeResource(2, 0.5)};
  input.candidates.push_back(MakeCandidate(1, {5, 2}));
  input.candidates.push_back(MakeCandidate(2, {4, 1}));
  PolicyDecision d = SelectMultiObjective(input);
  EXPECT_EQ(d.victim, 1u);
}

TEST(MultiObjectiveTest, NonCancellableTasksSkipped) {
  PolicyInput input;
  input.resources = {MakeResource(1, 1.0)};
  input.candidates.push_back(MakeCandidate(1, {10}, {}, /*cancellable=*/false));
  input.candidates.push_back(MakeCandidate(2, {3}));
  PolicyDecision d = SelectMultiObjective(input);
  EXPECT_EQ(d.victim, 2u);
}

TEST(MultiObjectiveTest, NoResourcesNoDecision) {
  PolicyInput input;
  input.candidates.push_back(MakeCandidate(1, {}));
  EXPECT_FALSE(SelectMultiObjective(input).found());
}

TEST(MultiObjectiveTest, AllZeroGainsNoDecision) {
  PolicyInput input;
  input.resources = {MakeResource(1, 0.9)};
  input.candidates.push_back(MakeCandidate(1, {0}));
  input.candidates.push_back(MakeCandidate(2, {0}));
  EXPECT_FALSE(SelectVictim(PolicyKind::kMultiObjective, input).found());
}

TEST(MultiObjectiveTest, IncomparableTasksBothConsidered) {
  // X: (3,0), Y: (2,2) — neither dominates. Weights decide.
  PolicyInput input;
  input.resources = {MakeResource(1, 0.9), MakeResource(2, 0.1)};
  input.candidates.push_back(MakeCandidate(1, {3, 0}));
  input.candidates.push_back(MakeCandidate(2, {2, 2}));
  EXPECT_EQ(SelectMultiObjective(input).victim, 1u);  // 2.7 vs 2.0

  input.resources = {MakeResource(1, 0.2), MakeResource(2, 0.8)};
  EXPECT_EQ(SelectMultiObjective(input).victim, 2u);  // 0.6 vs 2.0
}

TEST(HeuristicTest, PicksMaxGainOnMostContendedResource) {
  // Resource 2 is most contended; task 1 has the highest gain there even
  // though task 2 is globally better.
  PolicyInput input;
  input.resources = {MakeResource(1, 0.3), MakeResource(2, 0.7)};
  input.candidates.push_back(MakeCandidate(1, {0.1, 0.9}));
  input.candidates.push_back(MakeCandidate(2, {1.0, 0.8}));
  PolicyDecision d = SelectHeuristic(input);
  EXPECT_EQ(d.victim, 1u);
}

TEST(HeuristicTest, ZeroGainOnTopResourceMeansNoVictim) {
  PolicyInput input;
  input.resources = {MakeResource(1, 0.9)};
  input.candidates.push_back(MakeCandidate(1, {0.0}));
  EXPECT_FALSE(SelectHeuristic(input).found());
}

TEST(CurrentUsageTest, UsesCurrentNotFutureGain) {
  // Task 1: near completion, large current usage, tiny future gain.
  // Task 2: just started, small current usage, huge future gain.
  // The current-usage baseline picks task 1; multi-objective picks task 2.
  PolicyInput input;
  input.resources = {MakeResource(1, 1.0)};
  input.candidates.push_back(MakeCandidate(1, /*gains=*/{0.1}, /*current=*/{1.0}));
  input.candidates.push_back(MakeCandidate(2, /*gains=*/{1.0}, /*current=*/{0.2}));
  EXPECT_EQ(SelectCurrentUsage(input).victim, 1u);
  EXPECT_EQ(SelectMultiObjective(input).victim, 2u);
}

TEST(SelectVictimTest, DispatchesAllPolicies) {
  PolicyInput input;
  input.resources = {MakeResource(1, 1.0)};
  input.candidates.push_back(MakeCandidate(7, {1.0}));
  for (PolicyKind kind :
       {PolicyKind::kMultiObjective, PolicyKind::kHeuristic, PolicyKind::kCurrentUsage}) {
    EXPECT_EQ(SelectVictim(kind, input).victim, 7u);
  }
}

// Property-style sweep: the multi-objective winner is never dominated by
// any other cancellable candidate.
class PolicyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyPropertyTest, WinnerIsParetoOptimal) {
  // Deterministic pseudo-random inputs derived from the parameter.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((seed >> 33) % 1000) / 1000.0;
  };
  PolicyInput input;
  int resources = 1 + GetParam() % 4;
  for (int r = 0; r < resources; r++) {
    input.resources.push_back(MakeResource(static_cast<ResourceId>(r + 1), next()));
  }
  for (int t = 0; t < 12; t++) {
    std::vector<double> gains;
    for (int r = 0; r < resources; r++) {
      gains.push_back(next());
    }
    input.candidates.push_back(MakeCandidate(static_cast<TaskId>(t + 1), std::move(gains)));
  }
  PolicyDecision d = SelectMultiObjective(input);
  ASSERT_TRUE(d.found());
  const PolicyInput::Candidate* winner = nullptr;
  for (const auto& c : input.candidates) {
    if (c.task == d.victim) {
      winner = &c;
    }
  }
  ASSERT_NE(winner, nullptr);
  for (const auto& c : input.candidates) {
    if (&c != winner) {
      EXPECT_FALSE(Dominates(c.gains, winner->gains))
          << "winner " << d.victim << " dominated by " << c.task;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, PolicyPropertyTest, ::testing::Range(1, 40));

}  // namespace
}  // namespace atropos
