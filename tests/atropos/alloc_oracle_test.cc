// Steady-state allocation oracle (DESIGN.md §17).
//
// The SoA refactor's core promise is that the per-event hot path — tracing
// hooks into the TaskLedger, request lifecycle into the WindowAggregator, and
// task registration/teardown over recycled slots — performs ZERO heap
// allocations once the registries are warm. This binary overrides global
// operator new/delete with counting wrappers and asserts exactly that: warm
// the structures past their high-water mark, arm the counter, drive tens of
// thousands of events, and require the allocation count to still be zero.
//
// The oracle lives in its own test binary because replacing global
// operator new affects the whole program; keeping it isolated means the main
// suites run against the stock allocator.
//
// Deliberately NOT inside the armed region: Tick()/estimation (the estimator
// builds per-window candidate vectors by design — once per window, off the
// per-event path) and first-touch growth (new tasks/resources beyond the
// high-water mark).

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "src/atropos/ledger.h"
#include "src/atropos/window.h"
#include "src/common/clock.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_allocations{0};

void* CountingAlloc(size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountingAlloc(size); }
void* operator new[](size_t size) { return CountingAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace atropos {
namespace {

class AllocArmed {
 public:
  AllocArmed() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocArmed() { g_armed.store(false, std::memory_order_relaxed); }
  uint64_t count() const { return g_allocations.load(std::memory_order_relaxed); }
};

TEST(AllocOracleTest, LedgerSteadyStateIsAllocationFree) {
  ManualClock clock;
  AtroposConfig config;
  AtroposStats stats;
  TaskLedger ledger(&clock, config, &stats);

  const ResourceId lock = ledger.RegisterResource("lock", ResourceClass::kLock);
  const ResourceId pool = ledger.RegisterResource("pool", ResourceClass::kMemory);

  // Warm past the high-water mark: more concurrent tasks than the steady
  // phase will ever hold, every (task, resource) cell touched, both key
  // indexes forced through their growth doublings.
  constexpr uint64_t kWarmTasks = 64;
  for (uint64_t k = 0; k < kWarmTasks; k++) {
    ledger.RegisterTask(1000 + k, false, true);
    ledger.RecordGet(1000 + k, lock, 1);
    ledger.RecordGet(1000 + k, pool, 16);
    ledger.RecordFree(1000 + k, lock, 1);
  }
  for (uint64_t k = 0; k < kWarmTasks; k++) {
    ledger.FreeTask(1000 + k);
  }

  AllocArmed armed;
  // 10k+ steady-state events over recycled slots: registration, the full
  // tracing surface, window rolls, and teardown.
  for (int round = 0; round < 1000; round++) {
    const uint64_t a = 2000 + static_cast<uint64_t>(round % 32);
    const uint64_t b = 3000 + static_cast<uint64_t>(round % 32);
    ledger.RegisterTask(a, false, true);
    ledger.RegisterTask(b, false, true);
    ledger.RecordGet(a, lock, 1);
    ledger.RecordWaitBegin(b, lock);
    clock.Advance(100);
    ledger.RecordWaitEnd(b, lock);
    ledger.RecordGet(b, pool, 8);
    ledger.RecordUsage(a, pool, 5, 20);
    ledger.RecordProgress(a, static_cast<uint64_t>(round), 1000);
    ledger.RecordFree(a, lock, 1);
    ledger.RecordFree(b, pool, 8);
    if (round % 16 == 15) {
      ledger.RollWindow(clock.NowMicros());
    }
    ledger.FreeTask(a);
    ledger.FreeTask(b);
  }
  EXPECT_EQ(armed.count(), 0u)
      << "ledger hot path allocated after warm-up";
}

TEST(AllocOracleTest, WindowAggregatorSteadyStateIsAllocationFree) {
  ManualClock clock;
  AtroposConfig config;
  AtroposStats stats;
  WindowAggregator window(&clock, config, &stats);

  // Warm the in-flight slot pool and the epoch histogram's (fixed) buckets.
  for (uint64_t k = 0; k < 64; k++) {
    window.OnRequestStart(100 + k, 0);
  }
  for (uint64_t k = 0; k < 64; k++) {
    clock.Advance(50);
    window.OnRequestEnd(100 + k, 500, 0);
  }
  window.Roll(clock.NowMicros());

  AllocArmed armed;
  for (int round = 0; round < 2000; round++) {
    const uint64_t key = 500 + static_cast<uint64_t>(round % 48);
    window.OnRequestStart(key, 0);
    clock.Advance(25);
    window.OnRequestEnd(key, 1000 + static_cast<TimeMicros>(round % 997), 0);
    if (round % 64 == 63) {
      (void)window.P99();
      (void)window.CountOverdue(clock.NowMicros(), 10000);
      window.Roll(clock.NowMicros());  // epoch bump, no memset, no alloc
    }
  }
  EXPECT_EQ(armed.count(), 0u)
      << "window aggregator hot path allocated after warm-up";
}

// Slot recycling keeps the ledger allocation-free even when the *set* of live
// keys churns completely — distinct keys forever, bounded concurrency.
TEST(AllocOracleTest, KeyChurnOverRecycledSlotsIsAllocationFree) {
  ManualClock clock;
  AtroposConfig config;
  AtroposStats stats;
  TaskLedger ledger(&clock, config, &stats);
  const ResourceId lock = ledger.RegisterResource("lock", ResourceClass::kLock);

  // Warm: the key index must have grown past the live-set size it will see.
  for (uint64_t k = 0; k < 128; k++) {
    ledger.RegisterTask(k, false, true);
  }
  for (uint64_t k = 0; k < 128; k++) {
    ledger.FreeTask(k);
  }

  AllocArmed armed;
  uint64_t next_key = 1000000;
  for (int round = 0; round < 5000; round++) {
    const uint64_t key = next_key++;  // never-repeating keys
    ledger.RegisterTask(key, false, true);
    ledger.RecordGet(key, lock, 1);
    ledger.RecordFree(key, lock, 1);
    ledger.FreeTask(key);
  }
  EXPECT_EQ(armed.count(), 0u)
      << "key churn over recycled slots allocated after warm-up";
}

}  // namespace
}  // namespace atropos
