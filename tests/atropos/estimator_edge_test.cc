// Edge cases for the estimator and policy surfaced while building the
// fuzzer's oracles: zero-progress tasks (future-gain factor must stay
// bounded), empty windows, zero execution time, and single-candidate Pareto
// sets.

#include <cmath>

#include <gtest/gtest.h>

#include "src/atropos/estimator.h"

namespace atropos {
namespace {

class EstimatorEdgeTest : public ::testing::Test {
 protected:
  EstimatorEdgeTest() {
    config_.contention_threshold = 0.10;
    config_.default_progress = 0.5;
  }

  TaskRecord& AddTask(TaskId id, bool cancellable = true) {
    TaskRecord rec;
    rec.id = id;
    rec.key = id;
    rec.cancellable = cancellable;
    return tasks_.emplace(id, std::move(rec)).first->second;
  }

  ResourceRecord& AddResource(ResourceId id, ResourceClass cls) {
    ResourceRecord rec;
    rec.id = id;
    rec.cls = cls;
    return resources_.emplace(id, std::move(rec)).first->second;
  }

  // An overloaded memory pool: every get evicted, with measurable stalls.
  ResourceRecord& AddThrashedPool() {
    ResourceRecord& pool = AddResource(1, ResourceClass::kMemory);
    pool.window.gets = 100;
    pool.window.slow_events = 100;
    pool.window.wait_time = Millis(50);
    return pool;
  }

  Estimator::Output Estimate(TimeMicros exec_time = Millis(100)) {
    Estimator est(config_);
    est.SetCalibrating(false);
    return est.Estimate(tasks_, resources_, exec_time, 0, Millis(100));
  }

  AtroposConfig config_;
  std::map<TaskId, TaskRecord> tasks_;
  std::map<ResourceId, ResourceRecord> resources_;
};

// A task at 0% reported progress must not blow up the (1-p)/p future factor:
// Progress() floors at 1%, so gains stay finite and normalized.
TEST_F(EstimatorEdgeTest, ZeroProgressTaskHasBoundedFiniteGains) {
  AddThrashedPool();
  TaskRecord& fresh = AddTask(10);
  fresh.usage[1].acquired = 500;
  fresh.has_progress = true;
  fresh.progress_done = 0;
  fresh.progress_total = 100;
  TaskRecord& halfway = AddTask(11);
  halfway.usage[1].acquired = 500;
  halfway.has_progress = true;
  halfway.progress_done = 50;
  halfway.progress_total = 100;

  auto out = Estimate();
  ASSERT_TRUE(out.resource_overload);
  ASSERT_EQ(out.policy_input.candidates.size(), 2u);
  const auto& fresh_cand = out.policy_input.candidates[0];
  const auto& half_cand = out.policy_input.candidates[1];
  for (double g : fresh_cand.gains) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
  // Equal holdings: the task with everything still ahead of it is the larger
  // predicted release (factor 99 vs 1) and normalizes to the column max.
  EXPECT_DOUBLE_EQ(fresh_cand.gains[0], 1.0);
  EXPECT_LT(half_cand.gains[0], fresh_cand.gains[0]);
}

// progress_total == 0 means "no usable progress report": fall back to the
// configured default rather than dividing by zero.
TEST_F(EstimatorEdgeTest, ZeroTotalProgressFallsBackToDefault) {
  AddThrashedPool();
  TaskRecord& broken = AddTask(10);
  broken.usage[1].acquired = 500;
  broken.has_progress = true;
  broken.progress_done = 7;
  broken.progress_total = 0;

  auto out = Estimate();
  ASSERT_EQ(out.policy_input.candidates.size(), 1u);
  for (double g : out.policy_input.candidates[0].gains) {
    EXPECT_TRUE(std::isfinite(g));
  }
  // default_progress = 0.5 -> factor 1 -> gain = holdings, normalized to 1.
  EXPECT_DOUBLE_EQ(out.policy_input.candidates[0].gains[0], 1.0);
}

TEST_F(EstimatorEdgeTest, EmptyWindowProducesEmptyOutput) {
  auto out = Estimate();
  EXPECT_TRUE(out.all_resources.empty());
  EXPECT_FALSE(out.resource_overload);
  EXPECT_TRUE(out.policy_input.candidates.empty());
  EXPECT_TRUE(out.policy_input.resources.empty());
}

TEST_F(EstimatorEdgeTest, ResourcesWithNoTrafficStayQuiet) {
  AddResource(1, ResourceClass::kLock);
  AddResource(2, ResourceClass::kMemory);
  AddResource(3, ResourceClass::kQueue);
  auto out = Estimate();
  ASSERT_EQ(out.all_resources.size(), 3u);
  for (const auto& m : out.all_resources) {
    EXPECT_TRUE(std::isfinite(m.contention_norm));
    EXPECT_EQ(m.contention_norm, 0.0);
    EXPECT_FALSE(m.overloaded);
  }
}

// A window with no productive execution time (full stall) must not divide by
// zero: contention saturates toward 1 and stays finite.
TEST_F(EstimatorEdgeTest, ZeroExecTimeSaturatesWithoutNan) {
  ResourceRecord& lock = AddResource(1, ResourceClass::kLock);
  lock.window.wait_time = Millis(50);
  auto out = Estimate(/*exec_time=*/0);
  const ResourceMetrics& m = out.all_resources[0];
  EXPECT_TRUE(std::isfinite(m.contention_norm));
  EXPECT_GT(m.contention_norm, 0.99);
  EXPECT_LT(m.contention_norm, 1.0);
  EXPECT_TRUE(m.overloaded);
}

// ---- Single-candidate Pareto sets (policy layer) -------------------------

PolicyInput SingleCandidateInput(double gain, bool cancellable = true) {
  PolicyInput input;
  ResourceMetrics m;
  m.id = 1;
  m.cls = ResourceClass::kLock;
  m.contention_norm = 0.5;
  m.overloaded = true;
  input.resources.push_back(m);
  PolicyInput::Candidate c;
  c.task = 10;
  c.cancellable = cancellable;
  c.gains = {gain};
  c.current_usage = {gain};
  input.candidates.push_back(c);
  return input;
}

TEST(PolicySingleCandidateTest, LoneCandidateIsTriviallyPareto) {
  for (PolicyKind kind :
       {PolicyKind::kMultiObjective, PolicyKind::kHeuristic, PolicyKind::kCurrentUsage}) {
    PolicyExplain explain;
    PolicyDecision d = SelectVictim(kind, SingleCandidateInput(0.8), &explain);
    EXPECT_TRUE(d.found());
    EXPECT_EQ(d.victim, 10u);
    EXPECT_GT(d.score, 0.0);
    ASSERT_EQ(explain.entries.size(), 1u);
    EXPECT_TRUE(explain.entries[0].pareto);
  }
}

TEST(PolicySingleCandidateTest, ZeroGainLoneCandidateIsNoVictim) {
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective, SingleCandidateInput(0.0));
  EXPECT_FALSE(d.found());
}

TEST(PolicySingleCandidateTest, NonCancellableLoneCandidateIsNoVictim) {
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective,
                                  SingleCandidateInput(0.8, /*cancellable=*/false));
  EXPECT_FALSE(d.found());
}

TEST(PolicySingleCandidateTest, EmptyCandidateSetIsNoVictim) {
  PolicyInput input = SingleCandidateInput(0.8);
  input.candidates.clear();
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective, input);
  EXPECT_FALSE(d.found());
}

}  // namespace
}  // namespace atropos
