// Edge cases for the estimator and policy surfaced while building the
// fuzzer's oracles: zero-progress tasks (future-gain factor must stay
// bounded), empty windows, zero execution time, and single-candidate Pareto
// sets.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/atropos/estimator.h"
#include "src/common/clock.h"

namespace atropos {
namespace {

class EstimatorEdgeTest : public ::testing::Test {
 protected:
  EstimatorEdgeTest() {
    config_.contention_threshold = 0.10;
    config_.default_progress = 0.5;
    ledger_ = std::make_unique<TaskLedger>(&clock_, config_, &stats_);
  }

  void AddTask(uint64_t key, bool cancellable = true) {
    ledger_->RegisterTask(key, /*background=*/false, cancellable);
  }

  ResourceId AddResource(ResourceClass cls) {
    return ledger_->RegisterResource("r", cls);
  }

  TaskRecord& Task(uint64_t key) { return *ledger_->MutableTask(key); }
  TaskResourceUsage& Usage(uint64_t key, ResourceId rid) {
    return *ledger_->MutableUsage(key, rid);
  }
  ResourceRecord& Resource(ResourceId rid) { return *ledger_->MutableResource(rid); }

  // An overloaded memory pool: every get evicted, with measurable stalls.
  ResourceId AddThrashedPool() {
    ResourceId pool = AddResource(ResourceClass::kMemory);
    Resource(pool).window.gets = 100;
    Resource(pool).window.slow_events = 100;
    Resource(pool).window.wait_time = Millis(50);
    return pool;
  }

  Estimator::Output Estimate(TimeMicros exec_time = Millis(100)) {
    Estimator est(config_);
    est.SetCalibrating(false);
    return est.Estimate(*ledger_, exec_time, 0, Millis(100));
  }

  AtroposConfig config_;
  ManualClock clock_;
  AtroposStats stats_;
  std::unique_ptr<TaskLedger> ledger_;
};

// A task at 0% reported progress must not blow up the (1-p)/p future factor:
// Progress() floors at 1%, so gains stay finite and normalized.
TEST_F(EstimatorEdgeTest, ZeroProgressTaskHasBoundedFiniteGains) {
  ResourceId pool = AddThrashedPool();
  AddTask(10);
  Usage(10, pool).acquired = 500;
  Task(10).has_progress = true;
  Task(10).progress_done = 0;
  Task(10).progress_total = 100;
  AddTask(11);
  Usage(11, pool).acquired = 500;
  Task(11).has_progress = true;
  Task(11).progress_done = 50;
  Task(11).progress_total = 100;

  auto out = Estimate();
  ASSERT_TRUE(out.resource_overload);
  ASSERT_EQ(out.policy_input.candidates.size(), 2u);
  const auto& fresh_cand = out.policy_input.candidates[0];
  const auto& half_cand = out.policy_input.candidates[1];
  for (double g : fresh_cand.gains) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
  // Equal holdings: the task with everything still ahead of it is the larger
  // predicted release (factor 99 vs 1) and normalizes to the column max.
  EXPECT_DOUBLE_EQ(fresh_cand.gains[0], 1.0);
  EXPECT_LT(half_cand.gains[0], fresh_cand.gains[0]);
}

// progress_total == 0 means "no usable progress report": fall back to the
// configured default rather than dividing by zero.
TEST_F(EstimatorEdgeTest, ZeroTotalProgressFallsBackToDefault) {
  ResourceId pool = AddThrashedPool();
  AddTask(10);
  Usage(10, pool).acquired = 500;
  Task(10).has_progress = true;
  Task(10).progress_done = 7;
  Task(10).progress_total = 0;

  auto out = Estimate();
  ASSERT_EQ(out.policy_input.candidates.size(), 1u);
  for (double g : out.policy_input.candidates[0].gains) {
    EXPECT_TRUE(std::isfinite(g));
  }
  // default_progress = 0.5 -> factor 1 -> gain = holdings, normalized to 1.
  EXPECT_DOUBLE_EQ(out.policy_input.candidates[0].gains[0], 1.0);
}

TEST_F(EstimatorEdgeTest, EmptyWindowProducesEmptyOutput) {
  auto out = Estimate();
  EXPECT_TRUE(out.all_resources.empty());
  EXPECT_FALSE(out.resource_overload);
  EXPECT_TRUE(out.policy_input.candidates.empty());
  EXPECT_TRUE(out.policy_input.resources.empty());
}

TEST_F(EstimatorEdgeTest, ResourcesWithNoTrafficStayQuiet) {
  AddResource(ResourceClass::kLock);
  AddResource(ResourceClass::kMemory);
  AddResource(ResourceClass::kQueue);
  auto out = Estimate();
  ASSERT_EQ(out.all_resources.size(), 3u);
  for (const auto& m : out.all_resources) {
    EXPECT_TRUE(std::isfinite(m.contention_norm));
    EXPECT_EQ(m.contention_norm, 0.0);
    EXPECT_FALSE(m.overloaded);
  }
}

// A window with no productive execution time (full stall) must not divide by
// zero: contention saturates toward 1 and stays finite.
TEST_F(EstimatorEdgeTest, ZeroExecTimeSaturatesWithoutNan) {
  ResourceId lock = AddResource(ResourceClass::kLock);
  Resource(lock).window.wait_time = Millis(50);
  auto out = Estimate(/*exec_time=*/0);
  const ResourceMetrics& m = out.all_resources[0];
  EXPECT_TRUE(std::isfinite(m.contention_norm));
  EXPECT_GT(m.contention_norm, 0.99);
  EXPECT_LT(m.contention_norm, 1.0);
  EXPECT_TRUE(m.overloaded);
}

// ---- Single-candidate Pareto sets (policy layer) -------------------------

PolicyInput SingleCandidateInput(double gain, bool cancellable = true) {
  PolicyInput input;
  ResourceMetrics m;
  m.id = 1;
  m.cls = ResourceClass::kLock;
  m.contention_norm = 0.5;
  m.overloaded = true;
  input.resources.push_back(m);
  PolicyInput::Candidate c;
  c.task = 10;
  c.cancellable = cancellable;
  c.gains = {gain};
  c.current_usage = {gain};
  input.candidates.push_back(c);
  return input;
}

TEST(PolicySingleCandidateTest, LoneCandidateIsTriviallyPareto) {
  for (PolicyKind kind :
       {PolicyKind::kMultiObjective, PolicyKind::kHeuristic, PolicyKind::kCurrentUsage}) {
    PolicyExplain explain;
    PolicyDecision d = SelectVictim(kind, SingleCandidateInput(0.8), &explain);
    EXPECT_TRUE(d.found());
    EXPECT_EQ(d.victim, 10u);
    EXPECT_GT(d.score, 0.0);
    ASSERT_EQ(explain.entries.size(), 1u);
    EXPECT_TRUE(explain.entries[0].pareto);
  }
}

TEST(PolicySingleCandidateTest, ZeroGainLoneCandidateIsNoVictim) {
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective, SingleCandidateInput(0.0));
  EXPECT_FALSE(d.found());
}

TEST(PolicySingleCandidateTest, NonCancellableLoneCandidateIsNoVictim) {
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective,
                                  SingleCandidateInput(0.8, /*cancellable=*/false));
  EXPECT_FALSE(d.found());
}

TEST(PolicySingleCandidateTest, EmptyCandidateSetIsNoVictim) {
  PolicyInput input = SingleCandidateInput(0.8);
  input.candidates.clear();
  PolicyDecision d = SelectVictim(PolicyKind::kMultiObjective, input);
  EXPECT_FALSE(d.found());
}

}  // namespace
}  // namespace atropos
