#include "src/atropos/runtime_group.h"

#include <gtest/gtest.h>

#include <vector>

namespace atropos {
namespace {

AtroposConfig TestConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(100);
  cfg.baseline_p99 = 1000;  // 1ms baseline, SLO = 1.2ms
  cfg.slo_latency_increase = 0.20;
  cfg.contention_threshold = 0.10;
  cfg.min_cancel_interval = Millis(200);
  cfg.timestamp_mode = TimestampMode::kPerEvent;
  return cfg;
}

// Two app instances behind one group: tenant A uses keys < 1000, tenant B
// keys >= 1000.
constexpr uint64_t kTenantBBase = 1000;

size_t TenantRouter(uint64_t key) { return key < kTenantBBase ? 0 : 1; }

class RuntimeGroupTest : public ::testing::Test {
 protected:
  RuntimeGroupTest()
      : clock_(0), group_(&clock_, TestConfig(), 2, /*factory=*/nullptr, TenantRouter) {
    // atropos-lint: allow(cancel-action-safety)
    group_.SetCancelAction([this](uint64_t key) { cancelled_.push_back(key); });
    lock_ = group_.RegisterResource("table_lock", ResourceClass::kLock);
  }

  // Tenant A stalls behind a lock-holding culprit while tenant B stays
  // healthy; one window of both, then a group tick.
  void MixedWindow() {
    for (int i = 0; i < 20; i++) {
      group_.OnRequestEnd(999, /*latency=*/50000, 0, 0);  // tenant A, stalled
    }
    for (int i = 0; i < 50; i++) {
      group_.OnRequestEnd(1999, /*latency=*/900, 0, 0);  // tenant B, healthy
    }
    clock_.Advance(Millis(100));
    group_.Tick();
  }

  ManualClock clock_;
  RuntimeGroup group_;
  ResourceId lock_;
  std::vector<uint64_t> cancelled_;
};

TEST_F(RuntimeGroupTest, ResourceIdsAgreeAcrossShards) {
  ASSERT_EQ(group_.shard_count(), 2u);
  for (size_t s = 0; s < group_.shard_count(); s++) {
    const ResourceRecord* rec = group_.shard(s).FindResource(lock_);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->name, "table_lock");
    EXPECT_EQ(rec->cls, ResourceClass::kLock);
  }
}

TEST_F(RuntimeGroupTest, TasksRouteToTheirTenantShard) {
  group_.OnTaskRegistered(100, false);
  group_.OnTaskRegistered(1100, false);
  EXPECT_EQ(group_.shard_for_key(100), 0u);
  EXPECT_EQ(group_.shard_for_key(1100), 1u);
  EXPECT_EQ(group_.shard(0).live_task_count(), 1u);
  EXPECT_EQ(group_.shard(1).live_task_count(), 1u);
  EXPECT_NE(group_.shard(0).FindTask(100), nullptr);
  EXPECT_EQ(group_.shard(0).FindTask(1100), nullptr);
  EXPECT_NE(group_.shard(1).FindTask(1100), nullptr);
  EXPECT_EQ(group_.shard(1).FindTask(100), nullptr);

  group_.OnTaskFreed(100);
  EXPECT_EQ(group_.shard(0).live_task_count(), 0u);
  EXPECT_EQ(group_.shard(1).live_task_count(), 1u);
}

// The isolation guarantee: a culprit detected in tenant A's shard is
// cancelled by that shard only; tenant B — same group, same stages, healthy
// windows — sees no detection, no cancellation, and untouched tasks.
TEST_F(RuntimeGroupTest, CulpritInShardANeverCancelsShardB) {
  group_.OnTaskRegistered(100, false);  // tenant A culprit
  group_.OnTaskRegistered(200, false);  // tenant A victims
  group_.OnTaskRegistered(201, false);
  group_.OnTaskRegistered(1100, false);  // tenant B task, equally lock-happy

  group_.OnGet(100, lock_, 1);  // A's culprit takes A's lock...
  group_.OnWaitBegin(200, lock_);
  group_.OnWaitBegin(201, lock_);
  group_.OnGet(1100, lock_, 1);  // ...while B's task holds B's uncontended one

  for (int w = 0; w < 3 && cancelled_.empty(); w++) {
    MixedWindow();
  }

  ASSERT_EQ(cancelled_.size(), 1u);
  EXPECT_EQ(cancelled_[0], 100u);  // A's holder, never a B task
  EXPECT_GE(group_.shard(0).stats().resource_overload_windows, 1u);
  EXPECT_EQ(group_.shard(0).stats().cancels_issued, 1u);

  EXPECT_EQ(group_.shard(1).stats().suspected_overload_windows, 0u);
  EXPECT_EQ(group_.shard(1).stats().cancels_issued, 0u);
  const TaskRecord* b_task = group_.shard(1).FindTask(1100);
  ASSERT_NE(b_task, nullptr);
  EXPECT_EQ(b_task->cancel_count, 0u);
  // The §4 memo is per-shard too: only A remembers its cancelled key.
  EXPECT_EQ(group_.shard(0).cancelled_key_count(), 1u);
  EXPECT_EQ(group_.shard(1).cancelled_key_count(), 0u);
}

TEST_F(RuntimeGroupTest, SharedStageFactoryBuildsPrivateStageState) {
  int builds = 0;
  RuntimeGroup group(
      &clock_, TestConfig(), 2,
      [&builds](const AtroposConfig& cfg) {
        builds++;
        return DecisionPipeline::Default(cfg);
      },
      TenantRouter);
  EXPECT_EQ(builds, 2);  // one pipeline per shard — stage state is private
}

TEST_F(RuntimeGroupTest, ProcessWideAuditSumsBalancedShardLedgers) {
  group_.OnTaskRegistered(100, false);
  group_.OnTaskRegistered(1100, false);
  group_.OnGet(100, lock_, 3);
  group_.OnFree(100, lock_, 1);
  group_.OnGet(1100, lock_, 5);

  for (size_t s = 0; s < group_.shard_count(); s++) {
    for (const ResourceAudit& row : group_.shard(s).AuditAccounting()) {
      EXPECT_TRUE(row.Balanced()) << "shard " << s << " resource " << row.name;
    }
  }
  std::vector<ResourceAudit> total = group_.AuditProcessWide();
  ASSERT_EQ(total.size(), 1u);
  EXPECT_EQ(total[0].acquired, 8u);
  EXPECT_EQ(total[0].released, 1u);
  EXPECT_EQ(total[0].live_held, 7u);
  EXPECT_TRUE(total[0].Balanced());
}

}  // namespace
}  // namespace atropos
