#include "src/atropos/detector.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

AtroposConfig BaseConfig() {
  AtroposConfig cfg;
  cfg.calibration_windows = 3;
  cfg.slo_latency_increase = 0.20;
  cfg.throughput_flat_tolerance = 0.15;
  return cfg;
}

using Signal = OverloadDetector::Signal;

TEST(DetectorTest, CalibratesFromMedianOfEarlyWindows) {
  OverloadDetector det(BaseConfig());
  EXPECT_FALSE(det.calibrated());
  EXPECT_EQ(det.OnWindow({100, 1000}), Signal::kCalibrating);
  EXPECT_EQ(det.OnWindow({100, 5000}), Signal::kCalibrating);  // startup spike
  EXPECT_EQ(det.OnWindow({100, 1100}), Signal::kCalibrating);
  EXPECT_TRUE(det.calibrated());
  EXPECT_EQ(det.baseline_p99(), 1100u);  // median of {1000, 5000, 1100}
  EXPECT_EQ(det.slo_latency(), 1320u);
}

TEST(DetectorTest, ExplicitBaselineSkipsCalibration) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 2000;
  OverloadDetector det(cfg);
  EXPECT_TRUE(det.calibrated());
  EXPECT_EQ(det.slo_latency(), 2400u);
}

TEST(DetectorTest, EmptyWindowsDoNotCalibrate) {
  OverloadDetector det(BaseConfig());
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(det.OnWindow({0, 0}), Signal::kCalibrating);
  }
  EXPECT_FALSE(det.calibrated());
}

TEST(DetectorTest, NormalWhileUnderSlo) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  OverloadDetector det(cfg);
  EXPECT_EQ(det.OnWindow({100, 1100}), Signal::kNormal);
  EXPECT_EQ(det.OnWindow({120, 1200}), Signal::kNormal);  // exactly at SLO
}

TEST(DetectorTest, LatencyUpThroughputFlatIsSuspectedOverload) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  OverloadDetector det(cfg);
  det.OnWindow({100, 1000});
  det.OnWindow({100, 1000});
  // Latency doubles, throughput stays at 100 -> suspected resource overload.
  EXPECT_EQ(det.OnWindow({100, 2000}), Signal::kSuspectedOverload);
}

TEST(DetectorTest, LatencyUpThroughputGrowingIsDemandOverload) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  OverloadDetector det(cfg);
  det.OnWindow({100, 1000});
  // Throughput grows 50% along with latency: demand, not resource, overload.
  EXPECT_EQ(det.OnWindow({150, 2000}), Signal::kDemandOverload);
}

TEST(DetectorTest, CompleteStallIsSuspectedOverload) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  OverloadDetector det(cfg);
  det.OnWindow({100, 1000, 0});
  // No completions and overdue in-flight requests: the strongest signal.
  EXPECT_EQ(det.OnWindow({0, 0, 3}), Signal::kSuspectedOverload);
  // No completions but nothing in flight is just an idle window.
  EXPECT_EQ(det.OnWindow({0, 0, 0}), Signal::kNormal);
}

TEST(DetectorTest, OverdueConvoyIsSuspectedDespiteHealthySurvivors) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  cfg.stall_active_threshold = 10;
  OverloadDetector det(cfg);
  det.OnWindow({100, 1000, 0});
  // Fast survivors keep p99 healthy, but a convoy of overdue requests is a
  // partial stall.
  EXPECT_EQ(det.OnWindow({60, 1000, 15}), Signal::kSuspectedOverload);
  // A single long-running query is not a stall.
  EXPECT_EQ(det.OnWindow({60, 1000, 1}), Signal::kNormal);
}

TEST(DetectorTest, ThroughputDropWithHighLatencyIsSuspected) {
  AtroposConfig cfg = BaseConfig();
  cfg.baseline_p99 = 1000;
  OverloadDetector det(cfg);
  det.OnWindow({200, 1000});
  EXPECT_EQ(det.OnWindow({50, 3000}), Signal::kSuspectedOverload);
}

}  // namespace
}  // namespace atropos
