#include "src/atropos/task_tree.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

class TaskTreeTest : public ::testing::Test {
 protected:
  TaskTreeTest()
      : tree_(&clock_, Config(), [this](int node, uint64_t key) { dispatched_.emplace_back(node, key); },
              [this](int node, uint64_t key) { orphans_.emplace_back(node, key); }) {}

  static TaskTreeConfig Config() {
    TaskTreeConfig cfg;
    cfg.ack_timeout = Millis(100);
    cfg.max_retries = 2;
    return cfg;
  }

  int DispatchCount(uint64_t key) const {
    int n = 0;
    for (const auto& [node, k] : dispatched_) {
      if (k == key) {
        n++;
      }
    }
    return n;
  }

  ManualClock clock_;
  std::vector<std::pair<int, uint64_t>> dispatched_;
  std::vector<std::pair<int, uint64_t>> orphans_;
  TaskTree tree_;
};

TEST_F(TaskTreeTest, CancelPropagatesToAllDescendants) {
  tree_.Register(1, 0, /*node=*/0);   // root on node 0
  tree_.Register(2, 1, /*node=*/1);   // child on node 1
  tree_.Register(3, 1, /*node=*/2);   // child on node 2
  tree_.Register(4, 3, /*node=*/2);   // grandchild on node 2
  tree_.Cancel(1);
  ASSERT_EQ(dispatched_.size(), 4u);
  EXPECT_EQ(tree_.pending_ack_count(), 4u);
  // Delivered to the task's own node.
  EXPECT_EQ(dispatched_[0], (std::pair<int, uint64_t>{0, 1}));
  EXPECT_EQ(DispatchCount(4), 1);
}

TEST_F(TaskTreeTest, CancelSubtreeOnly) {
  tree_.Register(1, 0, 0);
  tree_.Register(2, 1, 1);
  tree_.Register(3, 2, 1);
  tree_.Register(10, 0, 0);  // unrelated root
  tree_.Cancel(2);
  EXPECT_EQ(dispatched_.size(), 2u);  // 2 and 3, not 1 or 10
  EXPECT_EQ(DispatchCount(1), 0);
  EXPECT_EQ(DispatchCount(10), 0);
}

TEST_F(TaskTreeTest, AckStopsRetries) {
  tree_.Register(1, 0, 0);
  tree_.Cancel(1);
  tree_.Ack(1);
  clock_.Advance(Millis(500));
  tree_.Tick();
  EXPECT_EQ(DispatchCount(1), 1);  // no retry after the ack
  EXPECT_TRUE(orphans_.empty());
}

TEST_F(TaskTreeTest, UnacknowledgedDeliveryIsRetried) {
  tree_.Register(1, 0, 0);
  tree_.Cancel(1);
  clock_.Advance(Millis(150));
  tree_.Tick();
  EXPECT_EQ(DispatchCount(1), 2);  // one retry
  tree_.Ack(1);
  clock_.Advance(Millis(150));
  tree_.Tick();
  EXPECT_EQ(DispatchCount(1), 2);
}

TEST_F(TaskTreeTest, ExhaustedRetriesReportOrphan) {
  tree_.Register(1, 0, /*node=*/7);
  tree_.Cancel(1);
  for (int i = 0; i < 5; i++) {
    clock_.Advance(Millis(150));
    tree_.Tick();
  }
  ASSERT_EQ(orphans_.size(), 1u);
  EXPECT_EQ(orphans_[0], (std::pair<int, uint64_t>{7, 1}));
  EXPECT_FALSE(tree_.IsRegistered(1));
  EXPECT_EQ(tree_.pending_ack_count(), 0u);
}

TEST_F(TaskTreeTest, UnregisterReRootsChildren) {
  tree_.Register(1, 0, 0);
  tree_.Register(2, 1, 1);
  tree_.Register(3, 2, 2);  // grandchild under 2
  tree_.Unregister(2);      // the middle task finishes
  tree_.Cancel(1);
  // The grandchild is still reachable from the root.
  EXPECT_EQ(DispatchCount(3), 1);
  EXPECT_EQ(DispatchCount(2), 0);
}

TEST_F(TaskTreeTest, OutOfOrderRegistrationKeepsLinks) {
  // The child's registration RPC arrives before the parent's.
  tree_.Register(2, 1, 1);
  tree_.Register(1, 0, 0);
  tree_.Cancel(1);
  EXPECT_EQ(DispatchCount(2), 1);
}

TEST_F(TaskTreeTest, FinishingCountsAsAck) {
  tree_.Register(1, 0, 0);
  tree_.Cancel(1);
  tree_.Unregister(1);  // the task completed/cleaned up
  clock_.Advance(Millis(500));
  tree_.Tick();
  EXPECT_EQ(DispatchCount(1), 1);
  EXPECT_TRUE(orphans_.empty());
}

TEST_F(TaskTreeTest, DoubleCancelDoesNotDoubleDispatch) {
  tree_.Register(1, 0, 0);
  tree_.Cancel(1);
  tree_.Cancel(1);
  EXPECT_EQ(DispatchCount(1), 1);
}

}  // namespace
}  // namespace atropos
