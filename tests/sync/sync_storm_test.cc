// Randomized concurrency storms for the abortable-sync layer, checking the
// CQS safety oracles under real thread interleavings (run under TSan by
// scripts/check.sh):
//
//   - mutual exclusion / unit conservation: holders never exceed capacity;
//   - a cancelled waiter never acquires: an Acquire that returns kCancelled
//     contributes no hold (violations surface as conservation failures or as
//     a stranded primitive at the end);
//   - no lost wakeups: every Acquire returns (the test terminates);
//   - no stranded units: after all threads join, the full capacity is
//     TryAcquire-able again;
//   - queue: every pushed key resolves exactly once (popped live, popped
//     aborted, or drained at close), and an abort acknowledged as kAborted is
//     always observed by the popper;
//   - no untargeted cancellations: an Acquire that returns kCancelled had its
//     own keyed word raised — a stale TryAbort landing on a recycled cell
//     re-enters the wait instead of cancelling the wrong task.
//
// The initiator threads use exactly the production cancel path: store the
// keyed cancel word, then AbortCell::TryAbort / AbortableQueue::AbortKey —
// both lock-free, racing real parks and grants.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "src/sync/abort_cell.h"
#include "src/sync/abortable_queue.h"
#include "src/sync/cancellable_mutex.h"
#include "src/sync/cancellable_semaphore.h"

namespace atropos {
namespace {

constexpr int kThreads = 4;
constexpr uint64_t kIters = 1500;

// Unique nonzero key per (thread, iteration).
uint64_t StormKey(int tid, uint64_t iter) {
  return (static_cast<uint64_t>(tid + 1) << 32) | (iter + 1);
}

TEST(SyncStormTest, MutexStormKeepsExclusionAndNeverStrands) {
  CancellableMutex mu;
  std::vector<AbortCell> cells(kThreads);
  // One cancel word per (thread, iteration) — the production shape, where
  // BeginTask hands every task a fresh word. A stale initiator store then
  // lands in the OLD iteration's word, so "Acquire returned kCancelled but
  // my word was never raised" is a sound oracle for the stale-TryAbort race
  // (the untargeted-task cancellation REVIEW.md flagged): a spurious CAS must
  // re-enter the wait, never surface as a cancellation.
  std::vector<std::vector<std::atomic<uint64_t>>> words(kThreads);
  for (auto& w : words) {
    w = std::vector<std::atomic<uint64_t>>(kIters);
  }
  std::vector<std::atomic<uint64_t>> published(kThreads);
  std::atomic<int> holders{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<bool> exclusion_violated{false};
  std::atomic<bool> untargeted_cancel{false};
  std::atomic<bool> stop_initiator{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kIters; i++) {
        const uint64_t key = StormKey(t, i);
        CancelSignal signal(&words[t][i], key);
        published[t].store(key, std::memory_order_seq_cst);
        const SyncOutcome out = mu.Acquire(key, &cells[t], &signal);
        published[t].store(0, std::memory_order_seq_cst);
        if (out == SyncOutcome::kAcquired) {
          if (holders.fetch_add(1, std::memory_order_seq_cst) != 0) {
            exclusion_violated.store(true);
          }
          holders.fetch_sub(1, std::memory_order_seq_cst);
          mu.Release();
        } else {
          // Only the initiator writes words[t][i], and only with `key`: a
          // cancelled outcome with the word still 0 is a stale abort that
          // leaked through as a cancellation of an untargeted task.
          if (words[t][i].load(std::memory_order_seq_cst) != key) {
            untargeted_cancel.store(true);
          }
          cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread initiator([&] {
    std::mt19937_64 rng(7);
    while (!stop_initiator.load(std::memory_order_acquire)) {
      const int t = static_cast<int>(rng() % kThreads);
      const uint64_t key = published[t].load(std::memory_order_seq_cst);
      if (key != 0) {
        // Production order: word first (so a pre-park check can observe it),
        // then the in-place cell abort. The published key may be stale by the
        // time these land — exactly the delayed-initiator shape under test.
        words[t][(key & 0xffffffff) - 1].store(key, std::memory_order_seq_cst);
        cells[t].TryAbort(key);
      }
    }
  });

  for (std::thread& w : workers) {
    w.join();
  }
  stop_initiator.store(true, std::memory_order_release);
  initiator.join();

  EXPECT_FALSE(exclusion_violated.load());
  EXPECT_FALSE(untargeted_cancel.load());
  EXPECT_TRUE(mu.TryAcquire());  // nothing held, nothing stranded
  mu.Release();
  EXPECT_EQ(mu.waiter_count(), 0u);
  EXPECT_EQ(mu.aborted_waits(), cancelled.load());
}

TEST(SyncStormTest, SemaphoreStormConservesUnits) {
  constexpr uint64_t kCapacity = 3;
  for (CancelMode mode : {CancelMode::kSmart, CancelMode::kSimple}) {
    CancellableSemaphore sem(kCapacity, mode);
    std::vector<AbortCell> cells(kThreads);
    // Per-iteration words: see the mutex storm for why this makes the
    // untargeted-cancel oracle sound.
    std::vector<std::vector<std::atomic<uint64_t>>> words(kThreads);
    for (auto& w : words) {
      w = std::vector<std::atomic<uint64_t>>(kIters);
    }
    std::vector<std::atomic<uint64_t>> published(kThreads);
    std::atomic<uint64_t> in_use{0};
    std::atomic<bool> conservation_violated{false};
    std::atomic<bool> untargeted_cancel{false};
    std::atomic<bool> stop_initiator{false};

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
        for (uint64_t i = 0; i < kIters; i++) {
          const uint64_t units = 1 + rng() % kCapacity;
          const uint64_t key = StormKey(t, i);
          CancelSignal signal(&words[t][i], key);
          published[t].store(key, std::memory_order_seq_cst);
          const SyncOutcome out = sem.Acquire(key, units, &cells[t], &signal);
          published[t].store(0, std::memory_order_seq_cst);
          if (out == SyncOutcome::kAcquired) {
            if (in_use.fetch_add(units, std::memory_order_seq_cst) + units > kCapacity) {
              conservation_violated.store(true);
            }
            in_use.fetch_sub(units, std::memory_order_seq_cst);
            sem.Release(units);
          } else if (words[t][i].load(std::memory_order_seq_cst) != key) {
            untargeted_cancel.store(true);
          }
        }
      });
    }

    std::thread initiator([&] {
      std::mt19937_64 rng(11);
      while (!stop_initiator.load(std::memory_order_acquire)) {
        const int t = static_cast<int>(rng() % kThreads);
        const uint64_t key = published[t].load(std::memory_order_seq_cst);
        if (key != 0) {
          words[t][(key & 0xffffffff) - 1].store(key, std::memory_order_seq_cst);
          cells[t].TryAbort(key);
        }
      }
    });

    for (std::thread& w : workers) {
      w.join();
    }
    stop_initiator.store(true, std::memory_order_release);
    initiator.join();

    EXPECT_FALSE(conservation_violated.load()) << "mode " << static_cast<int>(mode);
    EXPECT_FALSE(untargeted_cancel.load()) << "mode " << static_cast<int>(mode);
    // No stranded units: the whole capacity is immediately acquirable.
    EXPECT_EQ(sem.available(), kCapacity) << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(sem.TryAcquire(kCapacity));
    sem.Release(kCapacity);
    EXPECT_EQ(sem.waiter_count(), 0u);
  }
}

TEST(SyncStormTest, QueueStormResolvesEveryKeyExactlyOnce) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 2000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;

  AbortableQueue<uint64_t> q(16);
  // Index = producer * kPerProducer + iter; value = times resolved.
  std::vector<std::atomic<uint32_t>> resolved(kTotal);
  // kAborted acknowledgements are binding: the popper must observe the mark.
  std::vector<std::atomic<uint8_t>> abort_acked(kTotal);
  std::vector<std::atomic<uint8_t>> popped_aborted(kTotal);
  std::atomic<uint64_t> last_pushed{0};  // a recently-live key for the aborter
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; i++) {
        const uint64_t index = static_cast<uint64_t>(p) * kPerProducer + i;
        const uint64_t key = index + 1;  // nonzero
        while (!q.Push(index, key)) {
          std::this_thread::yield();  // full: retry until accepted
        }
        last_pushed.store(key, std::memory_order_seq_cst);
      }
    });
  }

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; c++) {
    consumers.emplace_back([&] {
      while (true) {
        AbortableQueue<uint64_t>::Popped popped = q.Pop();
        if (popped.status == AbortableQueue<uint64_t>::PopStatus::kClosed) {
          return;
        }
        if (popped.status == AbortableQueue<uint64_t>::PopStatus::kAborted) {
          popped_aborted[popped.item].store(1, std::memory_order_seq_cst);
        }
        resolved[popped.item].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread aborter([&] {
    std::mt19937_64 rng(23);
    while (!producers_done.load(std::memory_order_acquire)) {
      const uint64_t key = last_pushed.load(std::memory_order_seq_cst);
      if (key != 0 && rng() % 4 == 0) {
        // Races the consumers' pops. kRaced / kMiss are allowed resolutions;
        // kAborted is an acknowledgement the popper is guaranteed to honor.
        if (q.AbortKey(key) == AbortableQueue<uint64_t>::AbortResult::kAborted) {
          abort_acked[key - 1].store(1, std::memory_order_seq_cst);
        }
      }
    }
  });

  for (std::thread& p : producers) {
    p.join();
  }
  producers_done.store(true, std::memory_order_release);
  aborter.join();

  // Let the consumers drain, then close; anything left resolves as drained.
  while (q.size() > 0) {
    std::this_thread::yield();
  }
  std::vector<uint64_t> drained = q.CloseAndDrain();
  for (std::thread& c : consumers) {
    c.join();
  }
  for (uint64_t index : drained) {
    resolved[index].fetch_add(1, std::memory_order_relaxed);
  }

  for (uint64_t i = 0; i < kTotal; i++) {
    ASSERT_EQ(resolved[i].load(), 1u) << "key index " << i;
    // No lost cancels: every abort the queue acknowledged as kAborted was
    // observed by the popper (the REVIEW.md race returned true while the
    // consumer executed the item normally).
    if (abort_acked[i].load() != 0) {
      ASSERT_EQ(popped_aborted[i].load(), 1u) << "acked abort lost for key index " << i;
    }
  }
}

}  // namespace
}  // namespace atropos
