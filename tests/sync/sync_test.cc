// Unit tests for the abortable-synchronization layer (DESIGN.md §16): the
// AbortCell grant/cancel linearization, CancellableMutex / Semaphore FIFO and
// in-place abort semantics, the smart-vs-simple grant-transfer difference,
// and the AbortableQueue's keyed slot cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/sync/abort_cell.h"
#include "src/sync/abortable_queue.h"
#include "src/sync/cancellable_mutex.h"
#include "src/sync/cancellable_semaphore.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// AbortCell: the single-CAS linearization between grant and cancel.

TEST(AbortCellTest, GrantWinsOverLateAbort) {
  AbortCell cell;
  cell.BeginWait(5);
  EXPECT_TRUE(cell.TryGrant());
  EXPECT_FALSE(cell.TryAbort(5));  // lost the CAS: the waiter acquired
  EXPECT_EQ(cell.state(), AbortCell::kGranted);
  cell.EndWait();
}

TEST(AbortCellTest, AbortWinsOverLateGrant) {
  AbortCell cell;
  cell.BeginWait(5);
  EXPECT_TRUE(cell.TryAbort(5));
  EXPECT_FALSE(cell.TryGrant());  // the cancelled waiter never acquires
  EXPECT_EQ(cell.state(), AbortCell::kCancelled);
  cell.EndWait();
}

TEST(AbortCellTest, TryAbortIsKeyGuarded) {
  AbortCell cell;
  cell.BeginWait(5);
  EXPECT_FALSE(cell.TryAbort(6));  // wrong key: a stale abort is a no-op
  EXPECT_FALSE(cell.TryAbort(0));
  EXPECT_EQ(cell.state(), AbortCell::kWaiting);
  EXPECT_TRUE(cell.TryGrant());
  cell.EndWait();
  // Key retracted by EndWait: the same abort can no longer land.
  EXPECT_FALSE(cell.TryAbort(5));
  EXPECT_EQ(cell.state(), AbortCell::kIdle);
}

TEST(AbortCellTest, CancelSelfResolvesTheWait) {
  AbortCell cell;
  cell.BeginWait(9);
  cell.CancelSelf();
  EXPECT_EQ(cell.state(), AbortCell::kCancelled);
  EXPECT_FALSE(cell.TryGrant());
  cell.EndWait();
}

// ---------------------------------------------------------------------------
// CancellableMutex.

TEST(CancellableMutexTest, UncontendedFastPath) {
  CancellableMutex mu;
  mu.Acquire();
  EXPECT_TRUE(mu.held());
  EXPECT_FALSE(mu.TryAcquire());
  mu.Release();
  EXPECT_FALSE(mu.held());
  EXPECT_TRUE(mu.TryAcquire());
  mu.Release();
  EXPECT_EQ(mu.contended_acquires(), 0u);
}

TEST(CancellableMutexTest, PreRaisedSignalAbortsWithoutAcquiring) {
  CancellableMutex mu;
  std::atomic<uint64_t> word{7};
  CancelSignal signal(&word, 7);
  AbortCell cell;
  EXPECT_EQ(mu.Acquire(7, &cell, &signal), SyncOutcome::kCancelled);
  EXPECT_FALSE(mu.held());
  EXPECT_EQ(mu.aborted_waits(), 1u);
}

TEST(CancellableMutexTest, InitiatorAbortsParkedWaiterInPlace) {
  CancellableMutex mu;
  mu.Acquire();  // main thread is the holder

  std::atomic<uint64_t> word{0};
  AbortCell cell;
  std::atomic<bool> returned{false};
  SyncOutcome out = SyncOutcome::kAcquired;
  std::thread waiter([&] {
    CancelSignal signal(&word, 7);
    out = mu.Acquire(7, &cell, &signal);
    returned.store(true);
  });
  while (mu.waiter_count() == 0) {
    std::this_thread::yield();
  }

  // The lock-free initiator path: mark the word, abort the cell. The waiter
  // returns *while the lock is still held*.
  word.store(7);
  EXPECT_TRUE(cell.TryAbort(7));
  waiter.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(out, SyncOutcome::kCancelled);
  EXPECT_TRUE(mu.held());  // abort never touched the holder
  EXPECT_EQ(mu.aborted_waits(), 1u);
  EXPECT_EQ(mu.waiter_count(), 0u);  // unlinked in place

  mu.Release();
  EXPECT_TRUE(mu.TryAcquire());
  mu.Release();
}

// Regression for the stale-TryAbort race: the initiator's load/CAS pair in
// TryAbort is not atomic, so a delayed CAS can land on a *recycled* cell that
// now hosts an untargeted task's wait. The waiter must detect that its keyed
// cancel word was never stored (initiators store the word before TryAbort),
// treat the abort as spurious, re-enter the wait, and eventually acquire —
// never report a cancellation it was not addressed.
TEST(CancellableMutexTest, SpuriousAbortReentersInsteadOfCancelling) {
  CancellableMutex mu;
  mu.Acquire();  // main thread is the holder

  std::atomic<uint64_t> word{0};  // never stores key 7: no genuine cancel
  AbortCell cell;
  SyncOutcome out = SyncOutcome::kCancelled;
  std::thread waiter([&] {
    CancelSignal signal(&word, 7);
    out = mu.Acquire(7, &cell, &signal);
  });
  while (mu.waiter_count() == 0) {
    std::this_thread::yield();
  }

  // Simulate the delayed stale CAS: flip the cell without storing the cancel
  // word — exactly what an initiator preempted across a cell recycle does.
  EXPECT_TRUE(cell.TryAbort(7));
  while (mu.spurious_aborts() == 0) {
    std::this_thread::yield();
  }
  while (mu.waiter_count() == 0) {
    std::this_thread::yield();  // the waiter re-enqueued itself
  }
  mu.Release();
  waiter.join();
  EXPECT_EQ(out, SyncOutcome::kAcquired);  // the untargeted task acquired
  EXPECT_EQ(mu.spurious_aborts(), 1u);
  EXPECT_EQ(mu.aborted_waits(), 0u);  // never surfaced as a cancellation
  mu.Release();
  EXPECT_TRUE(mu.TryAcquire());
  mu.Release();
}

TEST(CancellableSemaphoreTest, SpuriousAbortReentersInsteadOfCancelling) {
  CancellableSemaphore sem(2);
  ASSERT_TRUE(sem.TryAcquire(2));  // drained: the waiter must park

  std::atomic<uint64_t> word{0};
  AbortCell cell;
  SyncOutcome out = SyncOutcome::kCancelled;
  std::thread waiter([&] {
    CancelSignal signal(&word, 9);
    out = sem.Acquire(9, 1, &cell, &signal);
  });
  while (sem.waiter_count() == 0) {
    std::this_thread::yield();
  }

  EXPECT_TRUE(cell.TryAbort(9));
  while (sem.spurious_aborts() == 0) {
    std::this_thread::yield();
  }
  while (sem.waiter_count() == 0) {
    std::this_thread::yield();
  }
  sem.Release(2);
  waiter.join();
  EXPECT_EQ(out, SyncOutcome::kAcquired);
  EXPECT_EQ(sem.spurious_aborts(), 1u);
  EXPECT_EQ(sem.aborted_waits(), 0u);
  sem.Release(1);
  EXPECT_EQ(sem.available(), 2u);  // no units lost across the re-entry
}

TEST(CancellableMutexTest, ReleaseGrantsInFifoOrderSkippingCancelled) {
  CancellableMutex mu;
  mu.Acquire();

  constexpr int kWaiters = 3;
  std::vector<AbortCell> cells(kWaiters);
  std::atomic<int> order{0};
  std::vector<int> granted_at(kWaiters, -1);
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; i++) {
    while (mu.waiter_count() != static_cast<size_t>(i)) {
      std::this_thread::yield();
    }
    threads.emplace_back([&, i] {
      if (mu.Acquire(100 + static_cast<uint64_t>(i), &cells[i], nullptr) ==
          SyncOutcome::kAcquired) {
        granted_at[i] = order.fetch_add(1);
        mu.Release();
      }
    });
  }
  while (mu.waiter_count() != kWaiters) {
    std::this_thread::yield();
  }

  // Abort the middle waiter, then release: grants must flow 0 then 2.
  EXPECT_TRUE(cells[1].TryAbort(101));
  mu.Release();
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(granted_at[0], 0);
  EXPECT_EQ(granted_at[1], -1);  // cancelled: never acquired
  EXPECT_EQ(granted_at[2], 1);
  EXPECT_EQ(mu.aborted_waits(), 1u);
  EXPECT_TRUE(mu.TryAcquire());  // nothing stranded
  mu.Release();
}

// ---------------------------------------------------------------------------
// CancellableSemaphore.

TEST(CancellableSemaphoreTest, TryAcquireIsStrictFifo) {
  CancellableSemaphore sem(4);
  EXPECT_TRUE(sem.TryAcquire(3));
  EXPECT_FALSE(sem.TryAcquire(2));  // only 1 unit left
  EXPECT_TRUE(sem.TryAcquire(1));
  sem.Release(4);
  EXPECT_EQ(sem.available(), 4u);
}

// The observable smart/simple difference: a cancelled multi-unit head waiter
// is the only thing blocking a smaller request behind it.
TEST(CancellableSemaphoreTest, SmartModeTransfersGrantAtCancel) {
  CancellableSemaphore sem(4, CancelMode::kSmart);
  ASSERT_TRUE(sem.TryAcquire(3));  // available = 1

  AbortCell big_cell;
  AbortCell small_cell;
  std::atomic<bool> small_acquired{false};
  std::thread big([&] {
    // Head of the queue, wants more than is available.
    EXPECT_EQ(sem.Acquire(11, 4, &big_cell, nullptr), SyncOutcome::kCancelled);
  });
  while (sem.waiter_count() != 1) {
    std::this_thread::yield();
  }
  std::thread small([&] {
    // One unit IS available, but strict FIFO parks it behind the big request.
    EXPECT_EQ(sem.Acquire(12, 1, &small_cell, nullptr), SyncOutcome::kAcquired);
    small_acquired.store(true);
  });
  while (sem.waiter_count() != 2) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(small_acquired.load());

  // Abort the head. Smart mode: the cancelling waiter re-runs the grant pass
  // as it unlinks, so the small request is admitted with NO Release at all.
  EXPECT_TRUE(big_cell.TryAbort(11));
  big.join();
  small.join();
  EXPECT_TRUE(small_acquired.load());
  EXPECT_EQ(sem.aborted_waits(), 1u);
  EXPECT_EQ(sem.available(), 0u);  // 3 held by main + 1 by small
  sem.Release(3);
  sem.Release(1);
  EXPECT_EQ(sem.available(), 4u);
}

TEST(CancellableSemaphoreTest, SimpleModeDefersGrantToNextRelease) {
  CancellableSemaphore sem(4, CancelMode::kSimple);
  ASSERT_TRUE(sem.TryAcquire(3));  // available = 1

  AbortCell big_cell;
  AbortCell small_cell;
  std::atomic<bool> small_acquired{false};
  std::thread big([&] {
    EXPECT_EQ(sem.Acquire(21, 4, &big_cell, nullptr), SyncOutcome::kCancelled);
  });
  while (sem.waiter_count() != 1) {
    std::this_thread::yield();
  }
  std::thread small([&] {
    EXPECT_EQ(sem.Acquire(22, 1, &small_cell, nullptr), SyncOutcome::kAcquired);
    small_acquired.store(true);
  });
  while (sem.waiter_count() != 2) {
    std::this_thread::yield();
  }

  EXPECT_TRUE(big_cell.TryAbort(21));
  big.join();
  // Simple mode: no grant pass at cancellation. The small waiter stays
  // parked even though a unit is available and the head is gone.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(small_acquired.load());

  // The deferred repair happens at the next Release.
  sem.Release(1);  // main now holds 2
  small.join();
  EXPECT_TRUE(small_acquired.load());
  sem.Release(2);
  sem.Release(1);
  EXPECT_EQ(sem.available(), 4u);
}

TEST(CancellableSemaphoreTest, PreRaisedSignalAbortsWithoutUnits) {
  CancellableSemaphore sem(2);
  std::atomic<uint64_t> word{31};
  CancelSignal signal(&word, 31);
  AbortCell cell;
  EXPECT_EQ(sem.Acquire(31, 1, &cell, &signal), SyncOutcome::kCancelled);
  EXPECT_EQ(sem.available(), 2u);  // no units consumed
  EXPECT_EQ(sem.aborted_waits(), 1u);
}

// ---------------------------------------------------------------------------
// AbortableQueue.

TEST(AbortableQueueTest, PushPopIsFifo) {
  AbortableQueue<int> q(4);
  EXPECT_TRUE(q.Push(10, 1));
  EXPECT_TRUE(q.Push(20, 2));
  auto a = q.Pop();
  auto b = q.Pop();
  EXPECT_EQ(a.status, AbortableQueue<int>::PopStatus::kItem);
  EXPECT_EQ(a.item, 10);
  EXPECT_EQ(b.item, 20);
}

TEST(AbortableQueueTest, RejectsWhenFull) {
  AbortableQueue<int> q(1);
  EXPECT_TRUE(q.Push(1, 1));
  EXPECT_FALSE(q.Push(2, 2));
  (void)q.Pop();
  EXPECT_TRUE(q.Push(2, 2));
}

TEST(AbortableQueueTest, AbortedItemPopsAsCancelledWithoutExecuting) {
  AbortableQueue<int> q(4);
  EXPECT_TRUE(q.Push(10, 1));
  EXPECT_TRUE(q.Push(20, 2));
  EXPECT_EQ(q.AbortKey(1), AbortableQueue<int>::AbortResult::kAborted);
  EXPECT_EQ(q.AbortKey(99), AbortableQueue<int>::AbortResult::kMiss);  // not queued
  auto a = q.Pop();
  auto b = q.Pop();
  EXPECT_EQ(a.status, AbortableQueue<int>::PopStatus::kAborted);
  EXPECT_EQ(b.status, AbortableQueue<int>::PopStatus::kItem);
  EXPECT_EQ(q.aborted_in_queue(), 1u);
}

TEST(AbortableQueueTest, StaleAbortCannotHitRecycledSlot) {
  AbortableQueue<int> q(1);
  EXPECT_TRUE(q.Push(10, 1));
  EXPECT_EQ(q.AbortKey(1), AbortableQueue<int>::AbortResult::kAborted);
  EXPECT_EQ(q.Pop().status, AbortableQueue<int>::PopStatus::kAborted);
  // Same physical slot, new occupant: the old cancel mark holds key 1, which
  // cannot match key 2 — keyed delivery needs no generation counter.
  EXPECT_TRUE(q.Push(20, 2));
  EXPECT_EQ(q.AbortKey(1), AbortableQueue<int>::AbortResult::kMiss);
  EXPECT_EQ(q.Pop().status, AbortableQueue<int>::PopStatus::kItem);
}

TEST(AbortableQueueTest, ZeroCapacityClampsToOneSlot) {
  AbortableQueue<int> q(0);  // would be modulo-by-zero without the clamp
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.Push(10, 1));
  EXPECT_FALSE(q.Push(20, 2));
  EXPECT_EQ(q.Pop().item, 10);
}

TEST(AbortableQueueTest, CloseAndDrainReturnsLeftovers) {
  AbortableQueue<int> q(4);
  EXPECT_TRUE(q.Push(10, 1));
  EXPECT_TRUE(q.Push(20, 2));
  std::vector<int> drained = q.CloseAndDrain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_FALSE(q.Push(30, 3));  // closed
  EXPECT_EQ(q.Pop().status, AbortableQueue<int>::PopStatus::kClosed);
}

TEST(AbortableQueueTest, CloseWakesParkedConsumer) {
  AbortableQueue<int> q(4);
  std::thread consumer([&] {
    EXPECT_EQ(q.Pop().status, AbortableQueue<int>::PopStatus::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it park
  (void)q.CloseAndDrain();
  consumer.join();
}

}  // namespace
}  // namespace atropos
