#include <gtest/gtest.h>

#include "src/study/cancellation_survey.h"
#include "src/study/integration_effort.h"

namespace atropos {
namespace {

TEST(CancellationSurveyTest, AggregatesMatchTable1Totals) {
  EXPECT_TRUE(ValidateSurvey());
  int total = 0;
  int supporting = 0;
  int initiator = 0;
  for (const SurveyAggregate& row : SurveyAggregates()) {
    total += row.applications;
    supporting += row.supporting_cancel;
    initiator += row.with_initiator;
  }
  EXPECT_EQ(total, 151);
  EXPECT_EQ(supporting, 115);
  EXPECT_EQ(initiator, 109);
  // 76% support cancellation; 95% of those expose an initiator.
  EXPECT_NEAR(100.0 * supporting / total, 76.0, 0.5);
  EXPECT_NEAR(100.0 * initiator / supporting, 95.0, 0.5);
}

TEST(CancellationSurveyTest, ExemplarsAreConsistent) {
  for (const SurveyExemplar& e : SurveyExemplars()) {
    EXPECT_FALSE(e.application.empty());
    EXPECT_FALSE(e.mechanism.empty());
    if (e.has_initiator) {
      EXPECT_TRUE(e.supports_cancel) << e.application;
    }
  }
}

TEST(IntegrationEffortTest, PaperTableHasSixApplications) {
  const auto& table = PaperIntegrationEffort();
  ASSERT_EQ(table.size(), 6u);
  int max_added = 0;
  for (const IntegrationEffort& row : table) {
    EXPECT_GT(row.sloc_added, 0);
    max_added = std::max(max_added, row.sloc_added);
  }
  EXPECT_EQ(max_added, 74);  // MySQL, per the paper
}

TEST(IntegrationEffortTest, LiveMeasurementCoversAllApps) {
  auto rows = MeasureRepoIntegration();
  ASSERT_EQ(rows.size(), 4u);
  for (const RepoIntegration& row : rows) {
    EXPECT_GT(row.resources_registered, 0) << row.app;
    EXPECT_GT(row.trace_events, 0u) << row.app;
  }
  // MiniDb integrates the most resources, mirroring the paper's MySQL.
  EXPECT_GE(rows[0].resources_registered, 7);
}

}  // namespace
}  // namespace atropos
