// live_smoke: end-to-end gate for the live-threads execution mode, small
// enough for CI (4 workers, 2 s wall clock). A culprit burst must produce
// nonzero victim goodput AND at least one targeted cancellation whose victim
// is a script — the whole pipeline (capi tracing → SPSC rings → drainer →
// decision → CancelBoard → handler checkpoint) exercised once for real.
// scripts/check.sh also runs this under the tsan preset.

#include <gtest/gtest.h>

#include "src/live/live_run.h"
#include "src/live/scenario.h"

namespace atropos {
namespace {

TEST(LiveSmokeTest, CulpritBurstCancelsScriptsAndKeepsGoodput) {
  LiveScenario scenario =
      MakeScenario(LiveScenarioKind::kCulpritBurst, /*workers=*/4, Seconds(2.0),
                   /*load_scale=*/1.0, /*seed=*/1);
  // Faster windows so a 2 s run holds several decision rounds.
  scenario.config.window = Millis(25);
  scenario.config.min_cancel_interval = Millis(100);

  LiveRunOptions opt;
  opt.cancellation_enabled = true;
  const LiveRunResult r = RunLiveScenario(scenario, opt);

  EXPECT_GT(r.victim_completed, 0u);
  EXPECT_GT(r.goodput_qps, 0.0);
  EXPECT_GE(r.stats.cancels_issued, 1u);
  EXPECT_GE(r.cancels_delivered, 1u);
  // The cancellations must target the overload culprit, not the victims.
  EXPECT_EQ(r.digest.DominantCancelLabel(), "script");
  // Intake integrity: every producer ring registered by a worker or loadgen
  // thread retired cleanly and nothing overflowed.
  EXPECT_EQ(r.intake.dropped_total, 0u);
  EXPECT_GT(r.intake.drained_total, 0u);
  // Every worker/loadgen thread retired on exit; only the calling thread's
  // own ring (bound when Stop() emits drain events) may remain.
  EXPECT_LE(r.intake.producers_seen - r.intake.producers_retired, 1u);
}

TEST(LiveSmokeTest, CancellationDisabledIssuesNoCancels) {
  LiveScenario scenario =
      MakeScenario(LiveScenarioKind::kCulpritBurst, /*workers=*/4, Seconds(1.5),
                   /*load_scale=*/1.0, /*seed=*/2);
  scenario.config.window = Millis(25);

  LiveRunOptions opt;
  opt.cancellation_enabled = false;
  const LiveRunResult r = RunLiveScenario(scenario, opt);

  EXPECT_EQ(r.stats.cancels_issued, 0u);
  EXPECT_EQ(r.culprit_cancelled, 0u);
  EXPECT_GT(r.victim_completed, 0u);
}

}  // namespace
}  // namespace atropos
