// Unit tests for the live-threads execution mode: key packing, the cancel
// board (keyed delivery + stale-cancel races), the decision digest +
// cross-check, and the LiveServer lifecycle (complete / shed / targeted
// cancel / in-place waiter abort / shutdown-abort accounting).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/atropos/capi.h"
#include "src/atropos/concurrent_frontend.h"
#include "src/live/cancel_board.h"
#include "src/live/decision_digest.h"
#include "src/live/live_app.h"
#include "src/live/live_clock.h"
#include "src/live/live_server.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// Key packing.

TEST(LiveKeyTest, TypeRoundTripsThroughKey) {
  for (int type = 0; type < 4; type++) {
    for (uint64_t seq : {0ull, 1ull, 12345ull, (1ull << 48) - 1}) {
      EXPECT_EQ(TypeOfLiveKey(MakeLiveKey(type, seq)), type);
    }
  }
  // Keys of distinct (type, seq) pairs never collide within the seq space.
  EXPECT_NE(MakeLiveKey(0, 7), MakeLiveKey(1, 7));
  EXPECT_NE(MakeLiveKey(0, 7), MakeLiveKey(0, 8));
}

// ---------------------------------------------------------------------------
// Cancel board.

TEST(CancelBoardTest, DeliversToInFlightMissesOtherwise) {
  CancelBoard board(2);
  board.BeginTask(0, 42);
  EXPECT_FALSE(board.signal(0, 42).Raised());
  EXPECT_TRUE(board.RequestCancel(42, /*now=*/123));
  EXPECT_TRUE(board.signal(0, 42).Raised());
  EXPECT_EQ(board.cancel_time(0), 123u);
  EXPECT_FALSE(board.RequestCancel(99));  // not on any worker
  EXPECT_EQ(board.delivered(), 1u);
  EXPECT_EQ(board.missed(), 1u);
}

TEST(CancelBoardTest, StaleCancelCannotHitSuccessor) {
  CancelBoard board(1);
  board.BeginTask(0, 1);
  board.RequestCancel(1);  // cancel word now holds key 1
  board.EndTask(0);
  board.BeginTask(0, 2);  // next task must observe a clean signal
  EXPECT_FALSE(board.signal(0, 2).Raised());
  // Even without BeginTask's clear, the word holds key 1, which can never
  // match task 2's key — the keyed design is what closes the race below.
}

// The race the old boolean flag had: RequestCancel could observe task i on
// the slot, get descheduled across EndTask/BeginTask, and raise its flag
// against task i+1. With the keyed word, the delayed store still writes key
// i, which cannot match the successor's key. Run under TSan.
TEST(CancelBoardStressTest, StaleCancelNeverHitsSuccessor) {
  CancelBoard board(1);
  constexpr uint64_t kIters = 20'000;
  std::atomic<uint64_t> published{0};
  std::atomic<bool> misdelivered{false};

  std::thread worker([&] {
    for (uint64_t i = 1; i <= kIters; i++) {
      board.BeginTask(0, i);
      published.store(i, std::memory_order_release);
      // The canceller only ever targets key i-1: if this task sees its own
      // signal raised, a stale delivery crossed the task boundary.
      const CancelSignal sig = board.signal(0, i);
      for (int spin = 0; spin < 8; spin++) {
        if (sig.Raised()) {
          misdelivered.store(true);
          return;
        }
      }
      board.EndTask(0);
    }
  });
  std::thread canceller([&] {
    uint64_t last = 0;
    while (last < kIters && !misdelivered.load()) {
      const uint64_t cur = published.load(std::memory_order_acquire);
      if (cur > 1 && cur != last) {
        board.RequestCancel(cur - 1);  // always the *previous* task
        last = cur;
      }
      if (cur == kIters) {
        break;
      }
    }
  });
  worker.join();
  canceller.join();
  EXPECT_FALSE(misdelivered.load());
}

// ---------------------------------------------------------------------------
// Decision digest.

FlightEvent Ev(ObsEventKind kind, TimeMicros t, const std::string& label = "") {
  FlightEvent ev;
  ev.kind = kind;
  ev.time = t;
  ev.label = label;
  return ev;
}

TEST(DecisionDigestTest, NormalizeCountsKindsAndLabels) {
  std::vector<FlightEvent> events;
  events.push_back(Ev(ObsEventKind::kWindowClosed, Millis(100)));
  events.push_back(Ev(ObsEventKind::kWindowClosed, Millis(200)));
  events.push_back(Ev(ObsEventKind::kOverloadEntered, Millis(200)));
  FlightEvent snap = Ev(ObsEventKind::kContentionSnapshot, Millis(200));
  ObsResourceSample rs;
  rs.cls = "queue";
  rs.overloaded = true;
  snap.resources.push_back(rs);
  rs.cls = "lock";
  rs.overloaded = false;  // not flagged -> must not show up
  snap.resources.push_back(rs);
  events.push_back(snap);
  events.push_back(Ev(ObsEventKind::kPolicyDecision, Millis(250)));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(250), "script"));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(300), "script"));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(400), "static"));

  DecisionDigest d = NormalizeDecisions(events, Seconds(1.0));
  EXPECT_EQ(d.windows, 2u);
  EXPECT_EQ(d.overload_entered, 1u);
  EXPECT_EQ(d.snapshots, 1u);
  EXPECT_EQ(d.policy_decisions, 1u);
  EXPECT_EQ(d.cancels, 3u);
  EXPECT_EQ(d.cancels_by_label.at("script"), 2u);
  EXPECT_EQ(d.DominantCancelLabel(), "script");
  EXPECT_EQ(d.overloaded_classes.count("queue"), 1u);
  EXPECT_EQ(d.overloaded_classes.count("lock"), 0u);
  EXPECT_EQ(d.DominantOverloadedClass(), "queue");
  EXPECT_DOUBLE_EQ(d.first_cancel_frac, 0.25);
  EXPECT_DOUBLE_EQ(d.CancelRate(), 3.0);
}

TEST(DecisionDigestTest, NoCancelsLeavesFractionNegative) {
  DecisionDigest d = NormalizeDecisions({}, Seconds(1.0));
  EXPECT_EQ(d.cancels, 0u);
  EXPECT_LT(d.first_cancel_frac, 0.0);
  EXPECT_EQ(d.DominantCancelLabel(), "");
}

DecisionDigest CancellingDigest() {
  DecisionDigest d;
  d.duration_s = 10.0;
  d.windows = 100;
  d.overload_entered = 2;
  d.cancels = 8;
  d.cancels_by_label["script"] = 8;
  d.overloaded_classes["queue"] = 5;
  d.first_cancel_frac = 0.4;
  return d;
}

TEST(CrossCheckTest, MatchingDigestsPass) {
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), CancellingDigest(),
                                         ToleranceBands{});
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.checks.size(), 5u);
  for (const CrossCheckReport::Check& c : r.checks) {
    EXPECT_TRUE(c.pass) << c.name << ": " << c.detail;
  }
}

TEST(CrossCheckTest, OverloadMismatchFails) {
  DecisionDigest sim = CancellingDigest();
  sim.overload_entered = 0;
  sim.cancels = 0;
  sim.cancels_by_label.clear();
  sim.first_cancel_frac = -1.0;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);
}

TEST(CrossCheckTest, CulpritLabelMismatchFails) {
  DecisionDigest sim = CancellingDigest();
  sim.cancels_by_label.clear();
  sim.cancels_by_label["range_read"] = 8;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);
}

TEST(CrossCheckTest, CancelRateBandIsRatioOrAbsoluteSlack) {
  // The rate check accepts a ratio within the band OR an absolute count gap
  // within the slack, whichever is more permissive. With the ratio band
  // tightened to 1.1: 8 vs 2 (ratio 4, gap 6) fails both arms; 8 vs 6
  // (ratio 1.33, gap 2) fails the ratio but passes on the slack of 3.
  ToleranceBands bands;
  bands.cancel_rate_ratio = 1.1;

  DecisionDigest sim = CancellingDigest();
  sim.cancels = 2;
  sim.cancels_by_label.clear();
  sim.cancels_by_label["script"] = 2;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, bands);
  EXPECT_FALSE(r.pass);

  sim.cancels = 6;
  sim.cancels_by_label["script"] = 6;
  CrossCheckReport r2 = CrossCheckDigests(CancellingDigest(), sim, bands);
  EXPECT_TRUE(r2.pass);
}

TEST(CrossCheckTest, SimResourceClassMustAppearInLiveSet) {
  DecisionDigest sim = CancellingDigest();
  sim.overloaded_classes.clear();
  sim.overloaded_classes["lock"] = 3;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);  // live flagged {queue}, sim blames lock

  DecisionDigest live = CancellingDigest();
  live.overloaded_classes["lock"] = 1;  // live flagged {queue, lock}
  CrossCheckReport r2 = CrossCheckDigests(live, sim, ToleranceBands{});
  EXPECT_TRUE(r2.pass);
}

// ---------------------------------------------------------------------------
// LiveServer lifecycle. Each fixture instance installs its own frontend so
// the capi default resources resolve before the server is built.

AtroposConfig ServerConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(50);
  cfg.baseline_p99 = Millis(30);
  return cfg;
}

class LiveServerTest : public ::testing::Test {
 protected:
  LiveServerTest() : frontend_(&clock_, ServerConfig()) {
    InstallGlobalFrontend(&frontend_);
  }
  ~LiveServerTest() override { InstallGlobalFrontend(nullptr); }

  RunClock clock_;
  ConcurrentFrontend frontend_;
};

TEST_F(LiveServerTest, CompletesRequestAndRecordsStats) {
  LiveMiniWebOptions app_opt;
  app_opt.static_cost = 1000;  // 1 ms
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 2;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(0, 1);
  req.type = 0;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kOk);

  server.Stop();
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(0), 1u);
  EXPECT_EQ(stats.at(0).completed, 1u);
  EXPECT_EQ(stats.at(0).cancelled, 0u);
  EXPECT_EQ(stats.at(0).latency.count(), 1u);
}

TEST_F(LiveServerTest, ShedsWhenQueueFullOrStopped) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(5.0);  // park the lone worker
  app_opt.script_slice = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  LiveRequest script;
  script.key = MakeLiveKey(1, 1);
  script.type = 1;
  ASSERT_TRUE(server.Submit(script));
  // Give the worker time to pop it so the queue is empty again.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LiveRequest queued;
  queued.key = MakeLiveKey(0, 2);
  queued.type = 0;
  ASSERT_TRUE(server.Submit(queued));  // fills the 1-slot queue

  LiveRequest rejected;
  rejected.key = MakeLiveKey(0, 3);
  rejected.type = 0;
  EXPECT_FALSE(server.Submit(rejected));  // queue full -> shed at the door
  EXPECT_GE(server.shed(), 1u);

  server.Stop();  // drains `queued` as shed, aborts `script`
  EXPECT_GE(server.shed(), 2u);

  LiveRequest after;
  after.key = MakeLiveKey(0, 4);
  after.type = 0;
  EXPECT_FALSE(server.Submit(after));  // stopped server rejects
}

TEST_F(LiveServerTest, TargetedCancelReachesHandler) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(10.0);
  app_opt.script_slice = 1000;  // 1 ms checkpoints
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(1, 1);
  req.type = 1;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));

  // Wait for the worker to publish the task, then cancel it by key — the
  // same call the Atropos initiator makes from the drainer thread.
  bool delivered = false;
  for (int i = 0; i < 2000 && !delivered; i++) {
    delivered = server.board().RequestCancel(req.key);
    if (!delivered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(delivered);
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kCancelled);

  server.Stop();
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(1), 1u);
  EXPECT_EQ(stats.at(1).cancelled, 1u);
  EXPECT_EQ(stats.at(1).completed, 0u);
}

TEST_F(LiveServerTest, LifecycleIsSingleUseAndFailsLoudly) {
  LiveMiniWebOptions app_opt;
  app_opt.static_cost = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);

  ASSERT_TRUE(server.Start());
  EXPECT_FALSE(server.Start());  // already running: loud failure, not a no-op

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(0, 1);
  req.type = 0;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kOk);

  server.Stop();
  ASSERT_EQ(server.stats_by_type().count(0), 1u);
  EXPECT_EQ(server.stats_by_type().at(0).completed, 1u);

  // Second Stop must not re-merge (doubling the stats) or lose them.
  server.Stop();
  EXPECT_EQ(server.stats_by_type().at(0).completed, 1u);

  // The old lifecycle silently no-opped here, leaving the caller submitting
  // into a server with no workers; now it refuses.
  EXPECT_FALSE(server.Start());
  LiveRequest after;
  after.key = MakeLiveKey(0, 2);
  after.type = 0;
  EXPECT_FALSE(server.Submit(after));
}

// A Stop racing Start must not join/clear the worker vector while Start is
// still emplacing threads (the REVIEW.md data race): Start publishes
// kRunning only after the vector is complete, and Stop waits out the
// kStarting window. Run under TSan by scripts/check.sh.
TEST_F(LiveServerTest, ConcurrentStartAndStopDoNotRace) {
  for (int round = 0; round < 20; round++) {
    LiveMiniWebOptions app_opt;
    app_opt.static_cost = 1000;
    LiveMiniWeb app(app_opt);
    LiveServerOptions opt;
    opt.workers = 4;
    LiveServer server(&frontend_, &clock_, &app, opt);

    std::atomic<bool> started{false};
    std::thread starter([&] { started.store(server.Start()); });
    std::thread stopper([&] { server.Stop(); });
    starter.join();
    stopper.join();
    EXPECT_TRUE(started.load());  // the CAS from kNew always wins for Start
    server.Stop();  // idempotent whether the racing Stop won or lost
    EXPECT_FALSE(server.Start());  // lifecycle fully consumed either way
  }
}

TEST_F(LiveServerTest, StopBeforeStartIsNoOpAndStartStillWorks) {
  LiveMiniWebOptions app_opt;
  app_opt.static_cost = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);

  server.Stop();  // never started: nothing to stop, must not poison Start
  ASSERT_TRUE(server.Start());

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(0, 1);
  req.type = 0;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kOk);
  server.Stop();
}

TEST_F(LiveServerTest, MeasurementWindowClassifiesByAdmission) {
  LiveMiniWebOptions app_opt;
  app_opt.static_cost = 1000;        // 1 ms
  app_opt.script_cost = 150'000;     // 150 ms: straddles measure_start below
  app_opt.script_slice = 5000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  opt.measure_start = Millis(100);
  LiveServer server(&frontend_, &clock_, &app, opt);
  ASSERT_TRUE(server.Start());

  // Admitted during warmup, completes inside the measured window. The old
  // completion-time gate counted it (tail-biasing the sample toward exactly
  // the slow stragglers); the admission gate excludes it.
  ClientWaiter warmup_waiter;
  LiveRequest warmup;
  warmup.key = MakeLiveKey(1, 1);
  warmup.type = 1;
  warmup.waiter = &warmup_waiter;
  ASSERT_TRUE(server.Submit(warmup));
  EXPECT_EQ(warmup_waiter.Wait(), LiveOutcome::kOk);
  ASSERT_GE(clock_.NowMicros(), opt.measure_start);  // window has opened

  // Admitted after measure_start: counted.
  ClientWaiter fast_waiter;
  LiveRequest fast;
  fast.key = MakeLiveKey(0, 2);
  fast.type = 0;
  fast.waiter = &fast_waiter;
  ASSERT_TRUE(server.Submit(fast));
  EXPECT_EQ(fast_waiter.Wait(), LiveOutcome::kOk);

  server.Stop();
  const auto& stats = server.stats_by_type();
  EXPECT_EQ(stats.count(1), 0u);  // warmup-admitted script excluded
  ASSERT_EQ(stats.count(0), 1u);
  EXPECT_EQ(stats.at(0).completed, 1u);
}

TEST_F(LiveServerTest, CancelAbortsParkedLockWaiterInPlace) {
  LiveMiniKvOptions kv_opt;
  kv_opt.scan_cost_per_key = 20;
  kv_opt.scan_batch = 200;  // 4 ms of lock hold per cancellation checkpoint
  LiveMiniKv app(kv_opt);
  LiveServerOptions opt;
  opt.workers = 2;
  LiveServer server(&frontend_, &clock_, &app, opt);
  ASSERT_TRUE(server.Start());

  // Worker 0: a range read that holds the keyspace lock for ~10 s.
  LiveRequest scan;
  scan.key = MakeLiveKey(1, 1);
  scan.type = 1;
  scan.arg = 500'000;
  ASSERT_TRUE(server.Submit(scan));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Worker 1: a point op that parks on the keyspace lock behind the scan.
  ClientWaiter point_waiter;
  LiveRequest point;
  point.key = MakeLiveKey(0, 2);
  point.type = 0;
  point.waiter = &point_waiter;
  ASSERT_TRUE(server.Submit(point));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Cancel the parked waiter. In-place abort: it returns kCancelled *now*,
  // while the scan still holds the lock — without the abortable layer it
  // could not observe the order until the holder released.
  const TimeMicros cancel_issued = clock_.NowMicros();
  ASSERT_TRUE(server.DeliverCancel(point.key));
  EXPECT_EQ(point_waiter.Wait(), LiveOutcome::kCancelled);
  const TimeMicros released = clock_.NowMicros();
  // Well under the scan's remaining multi-second hold.
  EXPECT_LT(released - cancel_issued, Seconds(2.0));
  EXPECT_GE(app.aborted_lock_waits(), 1u);

  server.Stop();  // sweeps the scan as shed
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(0), 1u);
  EXPECT_EQ(stats.at(0).cancelled, 1u);
  EXPECT_EQ(stats.at(0).completed, 0u);
  EXPECT_GE(server.cancel_to_release().count(), 1u);
}

TEST_F(LiveServerTest, QueuedTaskCancelledInPlaceWithoutExecuting) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(30.0);
  app_opt.script_slice = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  ASSERT_TRUE(server.Start());

  // Occupy the lone worker, then queue a second script behind it.
  LiveRequest running;
  running.key = MakeLiveKey(1, 1);
  running.type = 1;
  ASSERT_TRUE(server.Submit(running));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ClientWaiter queued_waiter;
  LiveRequest queued;
  queued.key = MakeLiveKey(1, 2);
  queued.type = 1;
  queued.waiter = &queued_waiter;
  ASSERT_TRUE(server.Submit(queued));

  // Not on any board slot -> the queue-slot abort must take it.
  ASSERT_TRUE(server.DeliverCancel(queued.key));
  // Cancel the runner so the worker reaches the aborted slot promptly.
  ASSERT_TRUE(server.DeliverCancel(running.key));
  EXPECT_EQ(queued_waiter.Wait(), LiveOutcome::kCancelled);

  server.Stop();
  EXPECT_EQ(server.queued_cancelled(), 1u);
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(1), 1u);
  EXPECT_EQ(stats.at(1).cancelled, 2u);  // the runner and the queued task
  EXPECT_EQ(stats.at(1).completed, 0u);
}

TEST_F(LiveServerTest, ShutdownAbortCountsAsShedNotCancelled) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(30.0);
  app_opt.script_slice = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(1, 1);
  req.type = 1;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it start

  server.Stop();  // aborts the in-flight script via RequestCancelAll
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kShed);
  // The abort is shutdown bookkeeping, not an Atropos decision: it must not
  // inflate the cancellation stats the bench reports.
  const auto& stats = server.stats_by_type();
  if (stats.count(1) != 0) {
    EXPECT_EQ(stats.at(1).cancelled, 0u);
  }
  EXPECT_GE(server.shed(), 1u);
}

}  // namespace
}  // namespace atropos
