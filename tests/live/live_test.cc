// Unit tests for the live-threads execution mode: key packing, the cancel
// board, the decision digest + cross-check, and the LiveServer lifecycle
// (complete / shed / targeted cancel / shutdown-abort accounting).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/atropos/capi.h"
#include "src/atropos/concurrent_frontend.h"
#include "src/live/cancel_board.h"
#include "src/live/decision_digest.h"
#include "src/live/live_app.h"
#include "src/live/live_clock.h"
#include "src/live/live_server.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// Key packing.

TEST(LiveKeyTest, TypeRoundTripsThroughKey) {
  for (int type = 0; type < 4; type++) {
    for (uint64_t seq : {0ull, 1ull, 12345ull, (1ull << 48) - 1}) {
      EXPECT_EQ(TypeOfLiveKey(MakeLiveKey(type, seq)), type);
    }
  }
  // Keys of distinct (type, seq) pairs never collide within the seq space.
  EXPECT_NE(MakeLiveKey(0, 7), MakeLiveKey(1, 7));
  EXPECT_NE(MakeLiveKey(0, 7), MakeLiveKey(0, 8));
}

// ---------------------------------------------------------------------------
// Cancel board.

TEST(CancelBoardTest, DeliversToInFlightMissesOtherwise) {
  CancelBoard board(2);
  board.BeginTask(0, 42);
  EXPECT_TRUE(board.RequestCancel(42));
  EXPECT_TRUE(board.flag(0).load());
  EXPECT_FALSE(board.RequestCancel(99));  // not on any worker
  EXPECT_EQ(board.delivered(), 1u);
  EXPECT_EQ(board.missed(), 1u);
}

TEST(CancelBoardTest, BeginTaskClearsStaleFlag) {
  CancelBoard board(1);
  board.BeginTask(0, 1);
  board.RequestCancel(1);  // flag raised against task 1
  board.EndTask(0);
  board.BeginTask(0, 2);  // next task must start with a clean flag
  EXPECT_FALSE(board.flag(0).load());
}

// ---------------------------------------------------------------------------
// Decision digest.

FlightEvent Ev(ObsEventKind kind, TimeMicros t, const std::string& label = "") {
  FlightEvent ev;
  ev.kind = kind;
  ev.time = t;
  ev.label = label;
  return ev;
}

TEST(DecisionDigestTest, NormalizeCountsKindsAndLabels) {
  std::vector<FlightEvent> events;
  events.push_back(Ev(ObsEventKind::kWindowClosed, Millis(100)));
  events.push_back(Ev(ObsEventKind::kWindowClosed, Millis(200)));
  events.push_back(Ev(ObsEventKind::kOverloadEntered, Millis(200)));
  FlightEvent snap = Ev(ObsEventKind::kContentionSnapshot, Millis(200));
  ObsResourceSample rs;
  rs.cls = "queue";
  rs.overloaded = true;
  snap.resources.push_back(rs);
  rs.cls = "lock";
  rs.overloaded = false;  // not flagged -> must not show up
  snap.resources.push_back(rs);
  events.push_back(snap);
  events.push_back(Ev(ObsEventKind::kPolicyDecision, Millis(250)));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(250), "script"));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(300), "script"));
  events.push_back(Ev(ObsEventKind::kCancelIssued, Millis(400), "static"));

  DecisionDigest d = NormalizeDecisions(events, Seconds(1.0));
  EXPECT_EQ(d.windows, 2u);
  EXPECT_EQ(d.overload_entered, 1u);
  EXPECT_EQ(d.snapshots, 1u);
  EXPECT_EQ(d.policy_decisions, 1u);
  EXPECT_EQ(d.cancels, 3u);
  EXPECT_EQ(d.cancels_by_label.at("script"), 2u);
  EXPECT_EQ(d.DominantCancelLabel(), "script");
  EXPECT_EQ(d.overloaded_classes.count("queue"), 1u);
  EXPECT_EQ(d.overloaded_classes.count("lock"), 0u);
  EXPECT_EQ(d.DominantOverloadedClass(), "queue");
  EXPECT_DOUBLE_EQ(d.first_cancel_frac, 0.25);
  EXPECT_DOUBLE_EQ(d.CancelRate(), 3.0);
}

TEST(DecisionDigestTest, NoCancelsLeavesFractionNegative) {
  DecisionDigest d = NormalizeDecisions({}, Seconds(1.0));
  EXPECT_EQ(d.cancels, 0u);
  EXPECT_LT(d.first_cancel_frac, 0.0);
  EXPECT_EQ(d.DominantCancelLabel(), "");
}

DecisionDigest CancellingDigest() {
  DecisionDigest d;
  d.duration_s = 10.0;
  d.windows = 100;
  d.overload_entered = 2;
  d.cancels = 8;
  d.cancels_by_label["script"] = 8;
  d.overloaded_classes["queue"] = 5;
  d.first_cancel_frac = 0.4;
  return d;
}

TEST(CrossCheckTest, MatchingDigestsPass) {
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), CancellingDigest(),
                                         ToleranceBands{});
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.checks.size(), 5u);
  for (const CrossCheckReport::Check& c : r.checks) {
    EXPECT_TRUE(c.pass) << c.name << ": " << c.detail;
  }
}

TEST(CrossCheckTest, OverloadMismatchFails) {
  DecisionDigest sim = CancellingDigest();
  sim.overload_entered = 0;
  sim.cancels = 0;
  sim.cancels_by_label.clear();
  sim.first_cancel_frac = -1.0;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);
}

TEST(CrossCheckTest, CulpritLabelMismatchFails) {
  DecisionDigest sim = CancellingDigest();
  sim.cancels_by_label.clear();
  sim.cancels_by_label["range_read"] = 8;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);
}

TEST(CrossCheckTest, CancelRateBandIsRatioOrAbsoluteSlack) {
  // The rate check accepts a ratio within the band OR an absolute count gap
  // within the slack, whichever is more permissive. With the ratio band
  // tightened to 1.1: 8 vs 2 (ratio 4, gap 6) fails both arms; 8 vs 6
  // (ratio 1.33, gap 2) fails the ratio but passes on the slack of 3.
  ToleranceBands bands;
  bands.cancel_rate_ratio = 1.1;

  DecisionDigest sim = CancellingDigest();
  sim.cancels = 2;
  sim.cancels_by_label.clear();
  sim.cancels_by_label["script"] = 2;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, bands);
  EXPECT_FALSE(r.pass);

  sim.cancels = 6;
  sim.cancels_by_label["script"] = 6;
  CrossCheckReport r2 = CrossCheckDigests(CancellingDigest(), sim, bands);
  EXPECT_TRUE(r2.pass);
}

TEST(CrossCheckTest, SimResourceClassMustAppearInLiveSet) {
  DecisionDigest sim = CancellingDigest();
  sim.overloaded_classes.clear();
  sim.overloaded_classes["lock"] = 3;
  CrossCheckReport r = CrossCheckDigests(CancellingDigest(), sim, ToleranceBands{});
  EXPECT_FALSE(r.pass);  // live flagged {queue}, sim blames lock

  DecisionDigest live = CancellingDigest();
  live.overloaded_classes["lock"] = 1;  // live flagged {queue, lock}
  CrossCheckReport r2 = CrossCheckDigests(live, sim, ToleranceBands{});
  EXPECT_TRUE(r2.pass);
}

// ---------------------------------------------------------------------------
// LiveServer lifecycle. Each fixture instance installs its own frontend so
// the capi default resources resolve before the server is built.

AtroposConfig ServerConfig() {
  AtroposConfig cfg;
  cfg.window = Millis(50);
  cfg.baseline_p99 = Millis(30);
  return cfg;
}

class LiveServerTest : public ::testing::Test {
 protected:
  LiveServerTest() : frontend_(&clock_, ServerConfig()) {
    InstallGlobalFrontend(&frontend_);
  }
  ~LiveServerTest() override { InstallGlobalFrontend(nullptr); }

  RunClock clock_;
  ConcurrentFrontend frontend_;
};

TEST_F(LiveServerTest, CompletesRequestAndRecordsStats) {
  LiveMiniWebOptions app_opt;
  app_opt.static_cost = 1000;  // 1 ms
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 2;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(0, 1);
  req.type = 0;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kOk);

  server.Stop();
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(0), 1u);
  EXPECT_EQ(stats.at(0).completed, 1u);
  EXPECT_EQ(stats.at(0).cancelled, 0u);
  EXPECT_EQ(stats.at(0).latency.count(), 1u);
}

TEST_F(LiveServerTest, ShedsWhenQueueFullOrStopped) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(5.0);  // park the lone worker
  app_opt.script_slice = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  LiveRequest script;
  script.key = MakeLiveKey(1, 1);
  script.type = 1;
  ASSERT_TRUE(server.Submit(script));
  // Give the worker time to pop it so the queue is empty again.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LiveRequest queued;
  queued.key = MakeLiveKey(0, 2);
  queued.type = 0;
  ASSERT_TRUE(server.Submit(queued));  // fills the 1-slot queue

  LiveRequest rejected;
  rejected.key = MakeLiveKey(0, 3);
  rejected.type = 0;
  EXPECT_FALSE(server.Submit(rejected));  // queue full -> shed at the door
  EXPECT_GE(server.shed(), 1u);

  server.Stop();  // drains `queued` as shed, aborts `script`
  EXPECT_GE(server.shed(), 2u);

  LiveRequest after;
  after.key = MakeLiveKey(0, 4);
  after.type = 0;
  EXPECT_FALSE(server.Submit(after));  // stopped server rejects
}

TEST_F(LiveServerTest, TargetedCancelReachesHandler) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(10.0);
  app_opt.script_slice = 1000;  // 1 ms checkpoints
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(1, 1);
  req.type = 1;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));

  // Wait for the worker to publish the task, then cancel it by key — the
  // same call the Atropos initiator makes from the drainer thread.
  bool delivered = false;
  for (int i = 0; i < 2000 && !delivered; i++) {
    delivered = server.board().RequestCancel(req.key);
    if (!delivered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(delivered);
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kCancelled);

  server.Stop();
  const auto& stats = server.stats_by_type();
  ASSERT_EQ(stats.count(1), 1u);
  EXPECT_EQ(stats.at(1).cancelled, 1u);
  EXPECT_EQ(stats.at(1).completed, 0u);
}

TEST_F(LiveServerTest, ShutdownAbortCountsAsShedNotCancelled) {
  LiveMiniWebOptions app_opt;
  app_opt.script_cost = Seconds(30.0);
  app_opt.script_slice = 1000;
  LiveMiniWeb app(app_opt);
  LiveServerOptions opt;
  opt.workers = 1;
  LiveServer server(&frontend_, &clock_, &app, opt);
  server.Start();

  ClientWaiter waiter;
  LiveRequest req;
  req.key = MakeLiveKey(1, 1);
  req.type = 1;
  req.waiter = &waiter;
  ASSERT_TRUE(server.Submit(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it start

  server.Stop();  // aborts the in-flight script via RequestCancelAll
  EXPECT_EQ(waiter.Wait(), LiveOutcome::kShed);
  // The abort is shutdown bookkeeping, not an Atropos decision: it must not
  // inflate the cancellation stats the bench reports.
  const auto& stats = server.stats_by_type();
  if (stats.count(1) != 0) {
    EXPECT_EQ(stats.at(1).cancelled, 0u);
  }
  EXPECT_GE(server.shed(), 1u);
}

}  // namespace
}  // namespace atropos
