// Tests of the controller factory: every ControllerKind builds the right
// controller, ControllerParams reach the built instance, and the tracing-only
// configuration (cancellation_enabled=false) never issues a cancel.

#include "src/workload/controllers.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace atropos {
namespace {

struct RecordingSurface : ControlSurface {
  std::vector<std::pair<uint64_t, CancelReason>> cancels;
  void CancelTask(uint64_t key, CancelReason reason) override {
    cancels.emplace_back(key, reason);
  }
};

constexpr ControllerKind kAllKinds[] = {
    ControllerKind::kNone,    ControllerKind::kAtropos, ControllerKind::kAtroposHeuristic,
    ControllerKind::kAtroposCurrentUsage, ControllerKind::kProtego, ControllerKind::kPBox,
    ControllerKind::kDarc,    ControllerKind::kParties,
};

TEST(MakeControllerTest, EveryKindBuildsItsNamedController) {
  ManualClock clock;
  RecordingSurface surface;
  const std::pair<ControllerKind, std::string_view> expected[] = {
      {ControllerKind::kNone, "none"},
      {ControllerKind::kAtropos, "atropos"},
      {ControllerKind::kAtroposHeuristic, "atropos"},
      {ControllerKind::kAtroposCurrentUsage, "atropos"},
      {ControllerKind::kProtego, "protego"},
      {ControllerKind::kPBox, "pbox"},
      {ControllerKind::kDarc, "darc"},
      {ControllerKind::kParties, "parties"},
  };
  for (const auto& [kind, name] : expected) {
    auto controller = MakeController(kind, &clock, &surface, ControllerParams{});
    ASSERT_NE(controller, nullptr) << ControllerKindName(kind);
    EXPECT_EQ(controller->name(), name) << ControllerKindName(kind);
  }
}

TEST(MakeControllerTest, AblationKindsInjectTheirSelectionStage) {
  ManualClock clock;
  RecordingSurface surface;
  const std::pair<ControllerKind, std::string_view> expected[] = {
      {ControllerKind::kAtropos, "multi_objective"},
      {ControllerKind::kAtroposHeuristic, "heuristic"},
      {ControllerKind::kAtroposCurrentUsage, "current_usage"},
  };
  for (const auto& [kind, policy_name] : expected) {
    auto controller = MakeController(kind, &clock, &surface, ControllerParams{});
    auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get());
    ASSERT_NE(runtime, nullptr) << ControllerKindName(kind);
    ASSERT_TRUE(runtime->pipeline().complete());
    EXPECT_EQ(runtime->pipeline().selection->name(), policy_name);
    EXPECT_EQ(runtime->pipeline().detection->name(), "breakwater");
    EXPECT_EQ(runtime->pipeline().estimation->name(), "gain");
  }
}

TEST(MakeControllerTest, ParamsReachTheAtroposConfig) {
  ManualClock clock;
  RecordingSurface surface;
  ControllerParams params;
  params.window = Millis(75);
  params.slo_latency_increase = 0.35;
  params.baseline_p99 = 2500;
  params.cancellation_enabled = false;
  params.timestamp_mode = TimestampMode::kPerEvent;
  params.min_cancel_interval = Millis(333);

  auto controller = MakeController(ControllerKind::kAtropos, &clock, &surface, params);
  auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get());
  ASSERT_NE(runtime, nullptr);
  const AtroposConfig& cfg = runtime->config();
  EXPECT_EQ(cfg.window, Millis(75));
  EXPECT_DOUBLE_EQ(cfg.slo_latency_increase, 0.35);
  EXPECT_EQ(cfg.baseline_p99, 2500u);
  EXPECT_FALSE(cfg.cancellation_enabled);
  EXPECT_EQ(cfg.timestamp_mode, TimestampMode::kPerEvent);
  EXPECT_EQ(cfg.min_cancel_interval, Millis(333));
  EXPECT_TRUE(runtime->has_cancel_initiator());  // the surface is wired
}

// Fig 14's "tracing on, actions off" configuration: the runtime still
// detects and estimates, but never cancels.
TEST(MakeControllerTest, TracingOnlyConfigurationIssuesNoCancels) {
  ManualClock clock;
  RecordingSurface surface;
  ControllerParams params;
  params.baseline_p99 = 1000;  // SLO = 1.2 ms, no calibration needed
  params.cancellation_enabled = false;
  params.timestamp_mode = TimestampMode::kPerEvent;

  auto controller = MakeController(ControllerKind::kAtropos, &clock, &surface, params);
  auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get());
  ASSERT_NE(runtime, nullptr);
  ResourceId lock = runtime->RegisterResource("lock", ResourceClass::kLock);
  runtime->OnTaskRegistered(100, false);  // culprit
  runtime->OnTaskRegistered(200, false);  // victim
  runtime->OnGet(100, lock, 1);
  runtime->OnWaitBegin(200, lock);
  for (int w = 0; w < 5; w++) {
    for (int i = 0; i < 20; i++) {
      runtime->OnRequestEnd(9999, /*latency=*/50000, 0, 0);
    }
    clock.Advance(params.window);
    runtime->Tick();
  }
  // Tracing ran (the overload was seen and confirmed)...
  EXPECT_GT(runtime->stats().trace_events, 0u);
  EXPECT_GE(runtime->stats().resource_overload_windows, 1u);
  // ...but no action was ever taken.
  EXPECT_EQ(runtime->stats().cancels_issued, 0u);
  EXPECT_TRUE(surface.cancels.empty());
}

TEST(MakeControllerTest, EveryKindSurvivesAGenericDrive) {
  // Smoke: each controller accepts the shared instrumentation stream.
  for (ControllerKind kind : kAllKinds) {
    ManualClock clock;
    RecordingSurface surface;
    auto controller = MakeController(kind, &clock, &surface, ControllerParams{});
    ResourceId res = controller->RegisterResource("r", ResourceClass::kLock);
    controller->OnTaskRegistered(1, false, true);
    controller->OnRequestStart(1, 0, 0);
    controller->OnGet(1, res, 1);
    controller->OnUsage(1, res, /*waited=*/100, /*used=*/200);
    controller->OnFree(1, res, 1);
    controller->OnRequestEnd(1, /*latency=*/500, 0, 0);
    controller->OnTaskFreed(1);
    clock.Advance(Millis(50));
    controller->Tick();
    EXPECT_FALSE(controller->name().empty()) << ControllerKindName(kind);
  }
}

}  // namespace
}  // namespace atropos
