// Property-style sweeps over whole-system invariants.

#include <gtest/gtest.h>

#include "src/workload/cases.h"

namespace atropos {
namespace {

// Bit-for-bit determinism: the same case, seed, and controller must produce
// identical metrics — the property every benchmark in this repo relies on.
class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, SameSeedSameResult) {
  int case_id = GetParam();
  CaseRunOptions opt;
  opt.controller = ControllerKind::kAtropos;
  opt.duration = Seconds(10);
  opt.seed = 42;
  CaseResult a = RunCase(case_id, opt);
  CaseResult b = RunCase(case_id, opt);
  EXPECT_EQ(a.metrics.arrivals, b.metrics.arrivals);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.metrics.cancelled, b.metrics.cancelled);
  EXPECT_EQ(a.metrics.dropped, b.metrics.dropped);
  EXPECT_EQ(a.metrics.P99(), b.metrics.P99());
  EXPECT_EQ(a.controller_actions, b.controller_actions);
}

INSTANTIATE_TEST_SUITE_P(SampledCases, DeterminismTest, ::testing::Values(1, 5, 9, 12, 16));

// Different seeds change arrival timing but not the qualitative outcome.
TEST(DeterminismTest, DifferentSeedsStillRecover) {
  for (uint64_t seed : {7ull, 99ull, 12345ull}) {
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    base_opt.duration = Seconds(10);
    base_opt.seed = seed;
    CaseResult base = RunCase(4, base_opt);

    CaseRunOptions opt;
    opt.controller = ControllerKind::kAtropos;
    opt.duration = Seconds(10);
    opt.seed = seed;
    CaseResult atr = RunCase(4, opt);
    EXPECT_GT(atr.metrics.ThroughputQps(), 0.9 * base.metrics.ThroughputQps())
        << "seed " << seed;
  }
}

// Metric sanity across every (case, controller) pair: rates are rates,
// fractions are fractions, and the books stay consistent.
class MetricBoundsTest
    : public ::testing::TestWithParam<std::tuple<int, ControllerKind>> {};

TEST_P(MetricBoundsTest, MetricsWithinBounds) {
  auto [case_id, kind] = GetParam();
  CaseRunOptions opt;
  opt.controller = kind;
  opt.duration = Seconds(10);
  CaseResult r = RunCase(case_id, opt);
  const RunMetrics& m = r.metrics;
  EXPECT_GT(m.arrivals, 0u);
  EXPECT_GE(m.DropRate(), 0.0);
  EXPECT_LE(m.DropRate(), 1.0);
  // Completions cannot exceed class-0 arrivals plus retries.
  EXPECT_LE(m.completed, m.arrivals + m.retried);
  // Dropped + rejected never exceed what arrived.
  EXPECT_LE(m.dropped + m.rejected, m.arrivals);
  if (m.completed > 0) {
    EXPECT_GE(m.P99(), m.P50());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricBoundsTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 11, 15, 16),
                       ::testing::Values(ControllerKind::kNone, ControllerKind::kAtropos,
                                         ControllerKind::kProtego, ControllerKind::kPBox)));

// Atropos-specific invariants hold across all cases.
class AtroposInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(AtroposInvariantsTest, ContentionBoundedAndCancelsAccounted) {
  CaseRunOptions opt;
  opt.controller = ControllerKind::kAtropos;
  opt.duration = Seconds(10);
  CaseResult r = RunCase(GetParam(), opt);
  const AtroposStats& s = r.atropos_stats;
  EXPECT_GT(s.windows, 0u);
  // Resource-overload windows are a subset of suspected windows.
  EXPECT_LE(s.resource_overload_windows, s.suspected_overload_windows);
  // Every cancellation came from a resource-overload window.
  EXPECT_LE(s.cancels_issued, s.resource_overload_windows);
  // Ignored events arise only from cache-eviction attribution to owners that
  // already completed (pages outlive their loading request, Fig 8); they must
  // stay a small fraction of the stream.
  EXPECT_LT(s.ignored_events, s.trace_events / 5 + 1);
}

INSTANTIATE_TEST_SUITE_P(AllCases, AtroposInvariantsTest, ::testing::Range(1, 17));

}  // namespace
}  // namespace atropos
