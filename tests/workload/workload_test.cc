// Frontend (traffic generation, metrics, retry/drop semantics) and
// end-to-end case integration tests.

#include <gtest/gtest.h>

#include "src/apps/minikv.h"
#include "src/workload/cases.h"
#include "src/workload/frontend.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

// --------------------------------------------------------------------------
// Frontend mechanics (driven against MiniKv, the simplest app).

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() : kv_(ex_, &ctl_, Options()) {}

  static MiniKvOptions Options() {
    MiniKvOptions opt;
    opt.store.point_op_cost = 100;
    return opt;
  }

  Executor ex_;
  RecordingController ctl_;
  MiniKv kv_;
};

TEST_F(FrontendTest, OpenLoopTrafficDeliversApproximateRate) {
  FrontendOptions fopt;
  fopt.duration = Seconds(5);
  fopt.warmup = Seconds(1);
  fopt.seed = 3;
  Frontend frontend(ex_, kv_, ctl_, fopt);
  TrafficSpec spec;
  spec.type = kKvPointOp;
  spec.qps = 500;
  frontend.AddTraffic(spec);
  RunMetrics m = frontend.Run();
  EXPECT_NEAR(m.ThroughputQps(), 500, 50);
  EXPECT_NEAR(static_cast<double>(m.arrivals), 2000, 200);
  EXPECT_EQ(m.DropRate(), 0.0);
  EXPECT_EQ(ex_.live_procs(), 0);  // the simulation fully drained
}

TEST_F(FrontendTest, WarmupExcludedFromMetrics) {
  FrontendOptions fopt;
  fopt.duration = Seconds(2);
  fopt.warmup = Seconds(1);
  Frontend frontend(ex_, kv_, ctl_, fopt);
  TrafficSpec spec;
  spec.type = kKvPointOp;
  spec.qps = 100;
  spec.end = Seconds(1);  // all traffic in the warmup period
  frontend.AddTraffic(spec);
  RunMetrics m = frontend.Run();
  EXPECT_EQ(m.arrivals, 0u);
  EXPECT_EQ(m.completed, 0u);
}

TEST_F(FrontendTest, OneShotFiresAtItsTime) {
  FrontendOptions fopt;
  fopt.duration = Seconds(3);
  fopt.warmup = 0;
  Frontend frontend(ex_, kv_, ctl_, fopt);
  OneShotSpec shot;
  shot.type = kKvRangeRead;
  shot.at = Seconds(1);
  shot.arg = 100;
  shot.client_class = 0;
  frontend.AddOneShot(shot);
  RunMetrics m = frontend.Run();
  EXPECT_EQ(m.completed, 1u);
  ASSERT_EQ(ctl_.Count("request_start"), 1);
}

TEST_F(FrontendTest, CulpritClassExcludedFromLatencyMetrics) {
  FrontendOptions fopt;
  fopt.duration = Seconds(3);
  fopt.warmup = Seconds(1);
  Frontend frontend(ex_, kv_, ctl_, fopt);
  TrafficSpec victims;
  victims.type = kKvPointOp;
  victims.qps = 200;
  frontend.AddTraffic(victims);
  OneShotSpec slow;
  slow.type = kKvRangeRead;
  slow.at = Seconds(2);
  slow.arg = 50'000;  // long request in class 1
  slow.client_class = 1;
  frontend.AddOneShot(slow);
  RunMetrics m = frontend.Run();
  // The 200ms+ range read is not a class-0 latency sample; p99 reflects the
  // point ops (plus their waits behind the range read).
  EXPECT_LT(m.P50(), 1000u);
}

TEST_F(FrontendTest, ClosedLoopClientsSelfPace) {
  FrontendOptions fopt;
  fopt.duration = Seconds(4);
  fopt.warmup = Seconds(1);
  Frontend frontend(ex_, kv_, ctl_, fopt);
  TrafficSpec spec;
  spec.type = kKvPointOp;  // 100 us service
  spec.closed_loop_clients = 4;
  spec.think_time = 900;  // ~1 ms per iteration per client => ~4 k qps
  frontend.AddTraffic(spec);
  RunMetrics m = frontend.Run();
  EXPECT_NEAR(m.ThroughputQps(), 4000, 600);
  EXPECT_EQ(m.DropRate(), 0.0);
  EXPECT_EQ(ex_.live_procs(), 0);
}

TEST_F(FrontendTest, ClosedLoopBacksOffUnderSlowdown) {
  // Closed-loop clients self-throttle: a slow server reduces offered load
  // instead of building an unbounded queue.
  Executor ex;
  RecordingController ctl;
  MiniKvOptions opt;
  opt.store.point_op_cost = 10'000;  // 10 ms service, one keyspace lock
  MiniKv kv(ex, &ctl, opt);
  FrontendOptions fopt;
  fopt.duration = Seconds(4);
  fopt.warmup = Seconds(1);
  Frontend frontend(ex, kv, ctl, fopt);
  TrafficSpec spec;
  spec.type = kKvPointOp;
  spec.closed_loop_clients = 8;
  frontend.AddTraffic(spec);
  RunMetrics m = frontend.Run();
  // The serialized lock caps throughput at ~100 qps regardless of clients.
  EXPECT_NEAR(m.ThroughputQps(), 100, 10);
}

// Controller that cancels a specific key at a specific tick, for retry tests.
class CancelOnceController : public RecordingController {
 public:
  CancelOnceController(uint64_t key, int at_tick, ControlSurface** surface, bool allow_reexec)
      : key_(key), at_tick_(at_tick), surface_(surface), allow_reexec_(allow_reexec) {}

  void Tick() override {
    if (++ticks_ == at_tick_ && *surface_ != nullptr) {
      (*surface_)->CancelTask(key_, CancelReason::kCulprit);
    }
  }
  bool ReexecutionRecommended() const override { return allow_reexec_; }

 private:
  uint64_t key_;
  int at_tick_;
  int ticks_ = 0;
  ControlSurface** surface_;
  bool allow_reexec_;
};

TEST(FrontendRetryTest, CancelledRequestIsReexecutedUnderSameKey) {
  Executor ex;
  ControlSurface* surface = nullptr;
  CancelOnceController ctl(/*key=*/1, /*at_tick=*/2, &surface, /*allow_reexec=*/true);
  MiniKvOptions opt;
  opt.store.scan_cost_per_key = 100;
  MiniKv kv(ex, &ctl, opt);
  surface = &kv;

  FrontendOptions fopt;
  fopt.duration = Seconds(4);
  fopt.warmup = 0;
  fopt.tick_window = Millis(50);
  Frontend frontend(ex, kv, ctl, fopt);
  OneShotSpec shot;
  shot.type = kKvRangeRead;
  shot.arg = 5000;  // 0.5 s
  shot.at = 0;
  shot.client_class = 0;
  frontend.AddOneShot(shot);
  RunMetrics m = frontend.Run();
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.retried, 1u);
  EXPECT_EQ(m.completed, 1u);  // the retry completed
  EXPECT_EQ(m.dropped, 0u);
}

TEST(FrontendRetryTest, RetryDroppedWhenCalmNeverComes) {
  Executor ex;
  ControlSurface* surface = nullptr;
  CancelOnceController ctl(1, 2, &surface, /*allow_reexec=*/false);
  MiniKvOptions opt;
  opt.store.scan_cost_per_key = 100;
  MiniKv kv(ex, &ctl, opt);
  surface = &kv;

  FrontendOptions fopt;
  fopt.duration = Seconds(4);
  fopt.warmup = 0;
  fopt.tick_window = Millis(50);
  fopt.max_retry_wait = Seconds(1);
  Frontend frontend(ex, kv, ctl, fopt);
  OneShotSpec shot;
  shot.type = kKvRangeRead;
  shot.arg = 5000;
  shot.at = 0;
  shot.client_class = 0;
  frontend.AddOneShot(shot);
  RunMetrics m = frontend.Run();
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.retried, 0u);
  EXPECT_EQ(m.dropped, 1u);  // exceeded max_retry_wait (§4)
}

// Controller that sheds every other request.
class SheddingController : public RecordingController {
 public:
  bool AdmitRequest(uint64_t key, int request_type, int client_class) override {
    return (n_++ % 2) == 0;
  }

 private:
  int n_ = 0;
};

TEST(FrontendAdmissionTest, ShedRequestsCountAsDrops) {
  Executor ex;
  SheddingController ctl;
  MiniKvOptions opt;
  MiniKv kv(ex, &ctl, opt);
  FrontendOptions fopt;
  fopt.duration = Seconds(2);
  fopt.warmup = 0;
  Frontend frontend(ex, kv, ctl, fopt);
  TrafficSpec spec;
  spec.type = kKvPointOp;
  spec.qps = 100;
  frontend.AddTraffic(spec);
  RunMetrics m = frontend.Run();
  EXPECT_NEAR(m.DropRate(), 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(m.completed), static_cast<double>(m.dropped), 30.0);
}

// --------------------------------------------------------------------------
// End-to-end case integration (parameterized over all 16 cases).

class CaseIntegrationTest : public ::testing::TestWithParam<int> {};

TEST_P(CaseIntegrationTest, OverloadReproducesAndAtroposRecovers) {
  int case_id = GetParam();

  CaseRunOptions base_opt;
  base_opt.inject_culprits = false;
  CaseResult base = RunCase(case_id, base_opt);
  ASSERT_GT(base.metrics.completed, 100u);

  CaseRunOptions over_opt;
  CaseResult over = RunCase(case_id, over_opt);

  CaseRunOptions atr_opt;
  atr_opt.controller = ControllerKind::kAtropos;
  CaseResult atr = RunCase(case_id, atr_opt);

  double base_tput = base.metrics.ThroughputQps();
  double base_p99 = static_cast<double>(base.metrics.P99());
  double over_tput = over.metrics.ThroughputQps() / base_tput;
  double over_p99 = static_cast<double>(over.metrics.P99()) / base_p99;
  double atr_tput = atr.metrics.ThroughputQps() / base_tput;
  double atr_p99 = static_cast<double>(atr.metrics.P99()) / base_p99;

  // The culprits materially degrade the system...
  EXPECT_TRUE(over_tput < 0.9 || over_p99 > 2.0)
      << "overload did not reproduce: tput=" << over_tput << " p99x=" << over_p99;
  // ...Atropos restores throughput,...
  EXPECT_GT(atr_tput, 0.93);
  // ...improves (or at minimum does not worsen) p99 vs the uncontrolled
  // run,...
  EXPECT_LT(atr_p99, over_p99 * 1.05 + 1.0);
  // ...and drops almost nothing (paper: <0.01-1%).
  EXPECT_LT(atr.metrics.DropRate(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllCases, CaseIntegrationTest, ::testing::Range(1, 17));

TEST(CaseCatalogTest, CatalogIsComplete) {
  const auto& catalog = CaseCatalog();
  ASSERT_EQ(catalog.size(), 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(catalog[static_cast<size_t>(i)].id, i + 1);
    EXPECT_NE(std::string(catalog[static_cast<size_t>(i)].trigger), "");
  }
}

TEST(ControllerFactoryTest, AllKindsConstruct) {
  ManualClock clock;
  for (auto kind : {ControllerKind::kNone, ControllerKind::kAtropos,
                    ControllerKind::kAtroposHeuristic, ControllerKind::kAtroposCurrentUsage,
                    ControllerKind::kProtego, ControllerKind::kPBox, ControllerKind::kDarc,
                    ControllerKind::kParties}) {
    auto controller = MakeController(kind, &clock, nullptr, ControllerParams{});
    ASSERT_NE(controller, nullptr);
    // The Atropos policy variants share the runtime's name.
    if (kind != ControllerKind::kAtroposHeuristic &&
        kind != ControllerKind::kAtroposCurrentUsage) {
      EXPECT_EQ(controller->name(), ControllerKindName(kind));
    }
  }
}

}  // namespace
}  // namespace atropos
