#include "src/db/buffer_pool.h"

#include <gtest/gtest.h>

#include "src/sim/coro.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolOptions SmallPool() {
    BufferPoolOptions opt;
    opt.capacity_pages = 4;
    opt.hit_cost = 1;
    opt.miss_cost = 100;
    opt.clean_evict_cost = 10;
    opt.dirty_evict_cost = 200;
    return opt;
  }

  Executor ex_;
  RecordingController ctl_;
};

Coro AccessPage(Executor& ex, BufferPool& pool, uint64_t key, uint64_t page, bool write,
                CancelToken* token, std::vector<PageAccess>& out) {
  co_await BindExecutor{ex};
  out.push_back(co_await pool.Access(key, page, write, token));
}

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 42, false, nullptr, out);
  ex_.Run();
  AccessPage(ex_, pool, 1, 42, false, nullptr, out);
  ex_.Run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].hit);
  EXPECT_TRUE(out[1].hit);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST_F(BufferPoolTest, CapacityTriggersLruEviction) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  for (uint64_t p = 0; p < 5; p++) {
    AccessPage(ex_, pool, 1, p, false, nullptr, out);
    ex_.Run();
  }
  EXPECT_EQ(pool.resident_pages(), 4u);
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_TRUE(out[4].evicted);
  // Page 0 (LRU) was evicted; accessing it again misses.
  AccessPage(ex_, pool, 1, 0, false, nullptr, out);
  ex_.Run();
  EXPECT_FALSE(out[5].hit);
}

TEST_F(BufferPoolTest, TouchingPageProtectsItFromEviction) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  for (uint64_t p = 0; p < 4; p++) {
    AccessPage(ex_, pool, 1, p, false, nullptr, out);
    ex_.Run();
  }
  // Re-touch page 0 so page 1 becomes the LRU victim.
  AccessPage(ex_, pool, 1, 0, false, nullptr, out);
  ex_.Run();
  AccessPage(ex_, pool, 1, 99, false, nullptr, out);
  ex_.Run();
  AccessPage(ex_, pool, 1, 0, false, nullptr, out);
  ex_.Run();
  EXPECT_TRUE(out.back().hit);  // page 0 survived
}

TEST_F(BufferPoolTest, DirtyEvictionCostsMore) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  // Fill with dirty pages.
  for (uint64_t p = 0; p < 4; p++) {
    AccessPage(ex_, pool, 1, p, /*write=*/true, nullptr, out);
    ex_.Run();
  }
  AccessPage(ex_, pool, 1, 50, false, nullptr, out);
  ex_.Run();
  EXPECT_TRUE(out[4].evicted);
  EXPECT_EQ(out[4].stall, 200u);  // dirty_evict_cost
}

TEST_F(BufferPoolTest, EvictionAttributedToPageOwner) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  for (uint64_t p = 0; p < 4; p++) {
    AccessPage(ex_, pool, 10, p, false, nullptr, out);  // owner 10 loads the pool
    ex_.Run();
  }
  AccessPage(ex_, pool, 20, 99, false, nullptr, out);  // task 20 evicts
  ex_.Run();
  // freeResource charged to the page's owner (Fig 8 semantics).
  EXPECT_EQ(ctl_.CountFor("free", 10), 1);
  // The evicting task gets the wait bracket and the get for the new page.
  EXPECT_EQ(ctl_.CountFor("wait_begin", 20), 1);
  EXPECT_EQ(ctl_.CountFor("get", 20), 1);
}

TEST_F(BufferPoolTest, ResidentOwnedByTracksOwners) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 10, 1, false, nullptr, out);
  ex_.Run();
  AccessPage(ex_, pool, 20, 2, false, nullptr, out);
  ex_.Run();
  EXPECT_EQ(pool.ResidentOwnedBy(10), 1u);
  EXPECT_EQ(pool.ResidentOwnedBy(20), 1u);
  EXPECT_EQ(pool.ResidentOwnedBy(30), 0u);
}

TEST_F(BufferPoolTest, CancelledAccessReturnsCancelled) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  CancelToken token(ex_);
  token.Cancel();
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 7, false, &token, out);
  ex_.Run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].status.IsCancelled());
}

TEST_F(BufferPoolTest, DeviceBackedMissesShareTheDisk) {
  IoDevice disk(ex_, 1e6);  // 1 MB/s
  BufferPoolOptions opt = SmallPool();
  opt.device = &disk;
  opt.page_bytes = 100000;  // 0.1 s per page read
  BufferPool pool(ex_, opt, &ctl_, 1);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 1, false, nullptr, out);
  AccessPage(ex_, pool, 2, 2, false, nullptr, out);
  ex_.Run();
  ASSERT_EQ(out.size(), 2u);
  // Two misses serialized through the device: 0.1 s + 0.1 s.
  EXPECT_EQ(ex_.now(), Millis(200));
}

TEST_F(BufferPoolTest, AdmissionGateSerializesMisses) {
  BufferPoolOptions opt = SmallPool();
  opt.admission_limit = 1;  // one evict-and-read section at a time
  BufferPool pool(ex_, opt, &ctl_, 1);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 1, false, nullptr, out);
  AccessPage(ex_, pool, 2, 2, false, nullptr, out);
  ex_.Run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[1].status.ok());
  // Two 100 us miss reads serialized by the gate instead of overlapping.
  EXPECT_EQ(ex_.now(), 200u);
  EXPECT_EQ(pool.admission_aborts(), 0u);
}

TEST_F(BufferPoolTest, CancelAbortsMissParkedAtAdmission) {
  BufferPoolOptions opt = SmallPool();
  opt.admission_limit = 1;
  BufferPool pool(ex_, opt, &ctl_, 1);
  CancelToken token(ex_);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 1, false, nullptr, out);   // holds the gate [0,100)
  AccessPage(ex_, pool, 2, 2, false, &token, out);    // parked at admission
  ex_.CallAt(20, [&] { token.Cancel(); });
  ex_.Run();
  ASSERT_EQ(out.size(), 2u);
  // Completion order: the abort resolves at t=20, the gate holder at t=100.
  // Aborted in place — without the abortable gate the second access would
  // have been admitted at t=100 and only then observed the cancellation.
  EXPECT_TRUE(out[0].status.IsCancelled());
  EXPECT_TRUE(out[1].status.ok());
  EXPECT_EQ(pool.admission_aborts(), 1u);
  // The slot was never taken, so the gate is immediately reusable.
  AccessPage(ex_, pool, 3, 3, false, nullptr, out);
  ex_.Run();
  EXPECT_TRUE(out[2].status.ok());
}

TEST_F(BufferPoolTest, ConcurrentMissesOnSamePageDoNotDoubleInsert) {
  BufferPool pool(ex_, SmallPool(), &ctl_, 1);
  std::vector<PageAccess> out;
  AccessPage(ex_, pool, 1, 7, false, nullptr, out);
  AccessPage(ex_, pool, 2, 7, false, nullptr, out);
  ex_.Run();
  EXPECT_EQ(pool.resident_pages(), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[1].status.ok());
}

}  // namespace
}  // namespace atropos
