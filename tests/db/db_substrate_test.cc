// Tests for the lock manager, WAL, undo log, and MVCC substrate pieces.

#include <gtest/gtest.h>

#include "src/db/lock_manager.h"
#include "src/db/mvcc.h"
#include "src/db/undo_log.h"
#include "src/db/wal.h"
#include "src/sim/coro.h"
#include "src/testing/recording_controller.h"

namespace atropos {
namespace {

// --------------------------------------------------------------------------
// TableLockManager

Coro RunBackup(Executor& ex, TableLockManager& locks, uint64_t key, CancelToken* token,
               TimeMicros hold, std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  int acquired = 0;
  Status s = co_await locks.AcquireAllExclusive(key, token, &acquired);
  log.emplace_back(ex.now(), s);
  if (!s.ok()) {
    locks.ReleaseAllExclusive(key, acquired);
    co_return;
  }
  co_await Delay{ex, hold};
  locks.ReleaseAllExclusive(key, acquired);
}

Coro HoldShared(Executor& ex, TableLockManager& locks, int table, uint64_t key, TimeMicros hold,
                std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await locks.table(table).AcquireShared(key, nullptr);
  log.emplace_back(ex.now(), s);
  if (s.ok()) {
    co_await Delay{ex, hold};
    locks.table(table).ReleaseShared(key);
  }
}

TEST(TableLockManagerTest, BackupAcquiresAllTablesInOrder) {
  Executor ex;
  RecordingController ctl;
  TableLockManager locks(ex, 3, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> log;
  RunBackup(ex, locks, 100, nullptr, 50, log);
  ex.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].second.ok());
  EXPECT_EQ(ctl.CountFor("get", 100), 3);
  EXPECT_EQ(ctl.CountFor("free", 100), 3);
}

TEST(TableLockManagerTest, BackupBlockedMidwayHoldsEarlierTables) {
  Executor ex;
  RecordingController ctl;
  TableLockManager locks(ex, 3, &ctl, 1);
  std::vector<std::pair<TimeMicros, Status>> scan_log;
  std::vector<std::pair<TimeMicros, Status>> backup_log;
  std::vector<std::pair<TimeMicros, Status>> victim_log;
  HoldShared(ex, locks, 1, 1, 1000, scan_log);    // scan holds table 1
  RunBackup(ex, locks, 2, nullptr, 10, backup_log);  // blocks at table 1, holds table 0
  HoldShared(ex, locks, 0, 3, 10, victim_log);    // convoyed behind backup's X on table 0
  ex.Run();
  ASSERT_EQ(backup_log.size(), 1u);
  EXPECT_EQ(backup_log[0].first, 1000u);  // waited for the scan
  ASSERT_EQ(victim_log.size(), 1u);
  EXPECT_EQ(victim_log[0].first, 1010u);  // blocked until the backup finished
}

TEST(TableLockManagerTest, CancellingBlockedBackupReleasesHeldTables) {
  Executor ex;
  RecordingController ctl;
  TableLockManager locks(ex, 3, &ctl, 1);
  CancelToken token(ex);
  std::vector<std::pair<TimeMicros, Status>> scan_log;
  std::vector<std::pair<TimeMicros, Status>> backup_log;
  std::vector<std::pair<TimeMicros, Status>> victim_log;
  HoldShared(ex, locks, 1, 1, 1000, scan_log);
  RunBackup(ex, locks, 2, &token, 10, backup_log);
  HoldShared(ex, locks, 0, 3, 10, victim_log);
  ex.CallAt(200, [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(backup_log.size(), 1u);
  EXPECT_TRUE(backup_log[0].second.IsCancelled());
  // The victim on table 0 proceeds right after the cancelled backup's cleanup.
  ASSERT_EQ(victim_log.size(), 1u);
  EXPECT_EQ(victim_log[0].first, 200u);
}

// --------------------------------------------------------------------------
// WriteAheadLog

Coro CommitOne(Executor& ex, WriteAheadLog& wal, uint64_t key, uint64_t records,
               std::vector<std::pair<TimeMicros, Status>>& log) {
  co_await BindExecutor{ex};
  Status s = co_await wal.AppendAndCommit(key, records, nullptr);
  log.emplace_back(ex.now(), s);
}

TEST(WriteAheadLogTest, GroupCommitFlushesBatch) {
  Executor ex;
  RecordingController ctl;
  WalOptions opt;
  opt.flush_interval = 1000;
  opt.flush_base_cost = 100;
  opt.flush_per_record = 10;
  WriteAheadLog wal(ex, opt, &ctl, 1);
  CancelToken stop(ex);
  wal.StartFlusher(999, &stop);
  std::vector<std::pair<TimeMicros, Status>> log;
  CommitOne(ex, wal, 1, 1, log);
  CommitOne(ex, wal, 2, 1, log);
  ex.Run(Millis(5));
  stop.Cancel();
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].second.ok());
  // Both covered by the same group flush at ~1000 + flush cost (120).
  EXPECT_EQ(log[0].first, log[1].first);
  EXPECT_GE(log[0].first, 1100u);
  EXPECT_EQ(wal.flushes(), 1u);
  EXPECT_EQ(wal.pending_records(), 0u);
}

TEST(WriteAheadLogTest, BulkAppendStretchesEveryonesCommit) {
  Executor ex;
  RecordingController ctl;
  WalOptions opt;
  opt.flush_interval = 1000;
  opt.flush_base_cost = 100;
  opt.flush_per_record = 10;
  opt.append_cost = 5;
  WriteAheadLog wal(ex, opt, &ctl, 1);
  CancelToken stop(ex);
  wal.StartFlusher(999, &stop);
  std::vector<std::pair<TimeMicros, Status>> log;
  CommitOne(ex, wal, 1, 1000, log);  // bulk: flush takes 100 + 10*1001
  CommitOne(ex, wal, 2, 1, log);
  ex.Run(Millis(60));
  stop.Cancel();
  ex.Run();
  ASSERT_EQ(log.size(), 2u);
  // The small commit waits for the giant group flush too.
  EXPECT_GE(log[1].first, 10000u);
}

// --------------------------------------------------------------------------
// UndoLog

Coro AppendUndo(Executor& ex, UndoLog& undo, uint64_t key, int n,
                std::vector<TimeMicros>& latencies) {
  co_await BindExecutor{ex};
  for (int i = 0; i < n; i++) {
    TimeMicros start = ex.now();
    co_await undo.Append(key, nullptr);
    latencies.push_back(ex.now() - start);
    co_await Delay{ex, 100};
  }
}

TEST(UndoLogTest, PurgeKeepsBacklogBounded) {
  Executor ex;
  RecordingController ctl;
  UndoLogOptions opt;
  opt.purge_interval = Millis(1);
  opt.purge_batch = 1000;
  UndoLog undo(ex, opt, &ctl, 1);
  CancelToken stop(ex);
  undo.StartPurge(999, &stop);
  std::vector<TimeMicros> latencies;
  AppendUndo(ex, undo, 1, 50, latencies);
  ex.Run(Millis(20));
  stop.Cancel();
  ex.Run();
  EXPECT_LE(undo.backlog(), 1000u);
}

TEST(UndoLogTest, PinBlocksPurgeOfNewerHistory) {
  Executor ex;
  RecordingController ctl;
  UndoLogOptions opt;
  opt.purge_interval = Millis(1);
  opt.purge_batch = 100000;
  UndoLog undo(ex, opt, &ctl, 1);
  CancelToken stop(ex);
  undo.StartPurge(999, &stop);
  undo.PinSnapshot(42);  // pins at record 0
  std::vector<TimeMicros> latencies;
  AppendUndo(ex, undo, 1, 30, latencies);
  ex.Run(Millis(10));
  EXPECT_EQ(undo.backlog(), 30u);  // nothing purgeable past the pin
  undo.UnpinSnapshot(42);
  ex.Run(Millis(15));
  EXPECT_EQ(undo.backlog(), 0u);  // purge caught up after unpin
  stop.Cancel();
  ex.Run();
}

TEST(UndoLogTest, BacklogPenaltySlowsAppends) {
  Executor ex;
  RecordingController ctl;
  UndoLogOptions opt;
  opt.append_base_cost = 10;
  opt.append_cost_per_1k_backlog = 500;
  opt.purge_interval = Seconds(100);  // purge effectively off
  UndoLog undo(ex, opt, &ctl, 1);
  std::vector<TimeMicros> latencies;
  AppendUndo(ex, undo, 1, 2200, latencies);
  ex.Run();
  // Early appends are cheap; appends past 2000 backlog pay 2x500us.
  EXPECT_EQ(latencies.front(), 10u);
  EXPECT_GE(latencies.back(), 1000u);
  // The penalty was reported as waits on the undo resource.
  EXPECT_GT(ctl.CountFor("wait_begin", 1), 0);
}

TEST(UndoLogTest, PinIsAttributedAsHolding) {
  Executor ex;
  RecordingController ctl;
  UndoLog undo(ex, UndoLogOptions{}, &ctl, 1);
  undo.PinSnapshot(7);
  EXPECT_TRUE(undo.pinned());
  EXPECT_EQ(ctl.CountFor("get", 7), 1);
  undo.UnpinSnapshot(7);
  EXPECT_FALSE(undo.pinned());
  EXPECT_EQ(ctl.CountFor("free", 7), 1);
}

// --------------------------------------------------------------------------
// MvccTable

Coro DoBulkWrite(Executor& ex, MvccTable& table, uint64_t key, uint64_t rows, CancelToken* token,
                 std::vector<Status>& out) {
  co_await BindExecutor{ex};
  out.push_back(co_await table.BulkWrite(key, rows, token));
}

Coro DoRead(Executor& ex, MvccTable& table, uint64_t key, std::vector<TimeMicros>& latencies) {
  co_await BindExecutor{ex};
  TimeMicros start = ex.now();
  co_await table.Read(key, nullptr);
  latencies.push_back(ex.now() - start);
}

TEST(MvccTableTest, BulkWriteCreatesDebtThatSlowsReaders) {
  Executor ex;
  RecordingController ctl;
  MvccOptions opt;
  opt.prune_interval = Seconds(100);
  MvccTable table(ex, opt, &ctl, 1);
  std::vector<Status> writes;
  std::vector<TimeMicros> reads;
  DoRead(ex, table, 1, reads);
  ex.Run();
  DoBulkWrite(ex, table, 2, 10000, nullptr, writes);
  ex.Run();
  DoRead(ex, table, 3, reads);
  ex.Run();
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_GT(reads[1], reads[0] + 1000);  // version-walk penalty
  EXPECT_EQ(table.version_debt(), 10000u);
}

TEST(MvccTableTest, PrunerWaitsForWritersThenDrains) {
  Executor ex;
  RecordingController ctl;
  MvccOptions opt;
  opt.prune_interval = Millis(1);
  opt.prune_batch = 100000;
  MvccTable table(ex, opt, &ctl, 1);
  CancelToken stop(ex);
  table.StartPruner(999, &stop);
  std::vector<Status> writes;
  DoBulkWrite(ex, table, 2, 5000, nullptr, writes);
  // While the writer runs, debt persists even with an aggressive pruner.
  ex.Run(Millis(50));
  EXPECT_GT(table.version_debt(), 0u);
  ex.Run(Seconds(3));
  EXPECT_EQ(table.version_debt(), 0u);  // drained after the writer finished
  stop.Cancel();
  ex.Run();
}

TEST(MvccTableTest, CancelledBulkWriteStopsAtCheckpoint) {
  Executor ex;
  RecordingController ctl;
  MvccTable table(ex, MvccOptions{}, &ctl, 1);
  CancelToken token(ex);
  std::vector<Status> writes;
  DoBulkWrite(ex, table, 2, 1'000'000, &token, writes);
  ex.CallAt(Millis(5), [&] { token.Cancel(); });
  ex.Run();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_TRUE(writes[0].IsCancelled());
  EXPECT_EQ(table.active_writers(), 0);
  // Progress was reported along the way.
  EXPECT_GT(ctl.CountFor("progress", 2), 0);
}

}  // namespace
}  // namespace atropos
