// Scenario-miner behavior: the baseline/treatment pair, the recovery
// predicate, entry construction (recipe → plan → digests), and the corpus
// replay oracle end to end on a freshly mined scenario.

#include "src/mining/miner.h"

#include <gtest/gtest.h>

#include "src/diagnose/diagnoser.h"
#include "src/mining/replay.h"

namespace atropos {
namespace {

FuzzPlanOptions MinerOptions() {
  FuzzPlanOptions options;
  options.extended_modes = true;
  return options;
}

TEST(MinerTest, BaselineDisablesOnlyTheCancellationSwitch) {
  FuzzPlan plan = PlanFromSeed(1, MinerOptions());
  ScenarioPair pair = RunScenarioPair(plan);

  // The baseline still detects and traces — snapshots exist for the offline
  // diagnoser — but never acts.
  EXPECT_EQ(pair.baseline.stats.cancels_issued, 0u);
  EXPECT_GT(pair.baseline.stats.resource_overload_windows, 0u);
  EXPECT_FALSE(pair.baseline.events.empty());
  EXPECT_GT(pair.treatment.stats.cancels_issued, 0u);
  // Same plan, different outcome: the decision streams must diverge.
  EXPECT_NE(pair.baseline.digest, pair.treatment.digest);
}

TEST(MinerTest, RecoveryPredicateAcceptsKnownScenarioAndExplainsRejects) {
  ScenarioPair pair = RunScenarioPair(PlanFromSeed(1, MinerOptions()));
  RecoveryThresholds thresholds;
  RecoveryVerdict verdict = EvaluateRecovery(pair, thresholds);
  EXPECT_TRUE(verdict.qualifies) << verdict.reject_reason;
  EXPECT_GE(verdict.p99_ratio, thresholds.min_p99_ratio);
  EXPECT_TRUE(verdict.reject_reason.empty());

  // Impossible thresholds produce a reject with a reason, never a crash.
  thresholds.min_p99_ratio = 1e9;
  RecoveryVerdict reject = EvaluateRecovery(pair, thresholds);
  EXPECT_FALSE(reject.qualifies);
  EXPECT_FALSE(reject.reject_reason.empty());
}

TEST(MinerTest, EntryRecipeRegeneratesIdenticalDigests) {
  CorpusEntry entry = EntryForPlan(PlanFromSeed(1, MinerOptions()), MinerOptions());
  EXPECT_EQ(entry.name, entry.mode + "/s1");
  EXPECT_GT(entry.cancels, 0u);
  ASSERT_FALSE(entry.blamed_class.empty());
  EXPECT_TRUE(entry.agreement) << entry.note;

  auto plan = PlanForEntry(entry);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ScenarioPair replay = RunScenarioPair(plan.value());
  EXPECT_EQ(replay.treatment.digest, entry.digest);
  EXPECT_EQ(replay.baseline.digest, entry.baseline_digest);
}

TEST(MinerTest, MineScenariosShrinksAndReplaysCleanly) {
  MineOptions options;
  options.seed_start = 1;
  options.max_seeds = 4;
  options.target = 1;
  options.shrink_budget = 20;
  options.plan_options = MinerOptions();
  MineReport report = MineScenarios(options);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_GE(report.candidates, 1);
  EXPECT_GT(report.shrink_runs, 0);

  const CorpusEntry& entry = report.entries[0];
  // Shrinking kept a strict subset of the seed's schedule.
  FuzzPlan full = PlanFromSeed(entry.seed, options.plan_options);
  EXPECT_LT(entry.requests, full.requests.size());
  EXPECT_FALSE(entry.keep.empty());

  ReplayReport replay = ReplayCorpus(report.entries, ReplayOptions{});
  EXPECT_TRUE(replay.ok()) << (replay.failures.empty() ? ""
                                                       : replay.failures[0].name + ": " +
                                                             replay.failures[0].what);
  EXPECT_EQ(replay.replayed, 1);
}

TEST(MinerTest, ReplayCatchesDigestDriftAndAttributionDrift) {
  CorpusEntry entry = EntryForPlan(PlanFromSeed(1, MinerOptions()), MinerOptions());

  CorpusEntry drifted = entry;
  drifted.digest ^= 1;
  ReplayReport digest_drift = ReplayCorpus({drifted}, ReplayOptions{});
  ASSERT_FALSE(digest_drift.ok());
  EXPECT_NE(digest_drift.failures[0].what.find("treatment digest"), std::string::npos);

  CorpusEntry misattributed = entry;
  misattributed.blamed_class = entry.blamed_class == "io" ? "lock" : "io";
  misattributed.agreement = false;
  misattributed.note = "planted drift for the replay test";
  ReplayReport attribution_drift = ReplayCorpus({misattributed}, ReplayOptions{});
  ASSERT_FALSE(attribution_drift.ok());
  bool found = false;
  for (const ReplayFailure& failure : attribution_drift.failures) {
    found |= failure.what.find("diagnoser blamed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, AgreementFloorIsEnforcedAcrossTheCorpus) {
  CorpusEntry entry = EntryForPlan(PlanFromSeed(1, MinerOptions()), MinerOptions());
  ASSERT_TRUE(entry.agreement);

  // Forge a corpus that is half disagreements (annotated, internally
  // consistent is not required for the rate check — the per-entry field
  // mismatches also fail, but the floor failure must be reported too).
  CorpusEntry disagreeing = entry;
  disagreeing.name = entry.name + "-forged";
  disagreeing.agreement = false;
  disagreeing.note = "forged disagreement";
  ReplayOptions strict;
  strict.require_agreement = 0.95;
  ReplayReport report = ReplayCorpus({entry, disagreeing}, strict);
  ASSERT_FALSE(report.ok());
  bool floor_reported = false;
  for (const ReplayFailure& failure : report.failures) {
    floor_reported |= failure.what.find("agreement rate") != std::string::npos;
  }
  EXPECT_TRUE(floor_reported);
}

}  // namespace
}  // namespace atropos
