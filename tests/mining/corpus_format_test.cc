// Corpus text-format contract: golden round-trip (parse → serialize → parse
// is a byte-for-byte identity on canonical documents), the malformed-input
// rejection table, the keep-range codec, and shard I/O.

#include "src/mining/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace atropos {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(ATROPOS_MINING_TEST_DATA_DIR) + "/golden/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CorpusFormatTest, GoldenRoundTripIsByteForByteStable) {
  std::string golden = ReadFileOrDie(GoldenPath("roundtrip.corpus"));
  auto parsed = ParseCorpus(golden);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);

  std::string serialized = SerializeCorpus(parsed.value());
  EXPECT_EQ(serialized, golden) << "canonical serialization drifted from the golden file";

  auto reparsed = ParseCorpus(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeCorpus(reparsed.value()), serialized);
}

TEST(CorpusFormatTest, GoldenFieldsParseExactly) {
  auto parsed = ParseCorpus(ReadFileOrDie(GoldenPath("roundtrip.corpus")));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CorpusEntry& first = parsed.value()[0];
  EXPECT_EQ(first.name, "db_tickets/s7");
  EXPECT_EQ(first.seed, 7u);
  EXPECT_EQ(first.mode, "db_tickets");
  EXPECT_DOUBLE_EQ(first.load_scale, 1.0);
  EXPECT_TRUE(first.extended_modes);
  EXPECT_EQ(first.force_mode, -1);
  EXPECT_EQ(first.keep, (std::vector<size_t>{0, 1, 2, 3, 4, 9, 17, 18, 19, 20, 21}));
  EXPECT_TRUE(first.quiet_faults);
  EXPECT_EQ(first.requests, 11u);
  EXPECT_EQ(first.digest, 0x00000000deadbeefull);
  EXPECT_EQ(first.baseline_digest, 0x0123456789abcdefull);
  EXPECT_EQ(first.cancels, 2u);
  EXPECT_DOUBLE_EQ(first.p99_ratio, 3.5);
  EXPECT_EQ(first.blamed_class, "queue");
  EXPECT_TRUE(first.agreement);
  EXPECT_TRUE(first.note.empty());

  const CorpusEntry& second = parsed.value()[1];
  EXPECT_FALSE(second.agreement);
  EXPECT_EQ(second.note, "diagnoser blames lock but estimator flagged queue");
  EXPECT_FALSE(second.quiet_faults);
  EXPECT_TRUE(second.keep.empty());
}

// One malformed document per failure class; every entry must be rejected
// with a message mentioning the expected fragment.
struct RejectionCase {
  const char* label;
  const char* text;
  const char* expect_in_message;
};

std::string ValidEntryBody() {
  CorpusEntry entry;
  entry.name = "kv_lock/s1";
  entry.mode = "kv_lock";
  entry.seed = 1;
  return SerializeEntry(entry);
}

TEST(CorpusFormatTest, MalformedInputsAreRejected) {
  const std::string valid = ValidEntryBody();
  const std::string two_same = std::string(kCorpusHeader) + "\n\n" + valid + "\n" + valid;
  const std::string missing_end =
      std::string(kCorpusHeader) + "\n\nscenario kv_lock/s1\nseed 1\n";
  const std::string unknown_field =
      std::string(kCorpusHeader) + "\n\nscenario kv_lock/s1\nbogus 1\nend\n";
  const std::string dup_field =
      std::string(kCorpusHeader) + "\n\nscenario kv_lock/s1\nseed 1\nseed 2\nend\n";
  const std::string bad_seed =
      std::string(kCorpusHeader) + "\n\nscenario kv_lock/s1\nseed banana\nend\n";
  const std::string unannotated = [&] {
    CorpusEntry entry;
    entry.name = "kv_lock/s2";
    entry.mode = "kv_lock";
    entry.agreement = false;  // no note
    return std::string(kCorpusHeader) + "\n\n" + SerializeEntry(entry);
  }();

  const RejectionCase cases[] = {
      {"empty input", "", "missing corpus header"},
      {"truncated header", "atropos-corpus", "unsupported corpus schema version"},
      {"unknown schema version", "atropos-corpus v2\n", "unsupported corpus schema version"},
      {"not a corpus at all", "hello world\n", "truncated or malformed corpus header"},
      {"duplicate scenario name", two_same.c_str(), "duplicate scenario name"},
      {"missing end", missing_end.c_str(), "missing \"end\""},
      {"unknown field", unknown_field.c_str(), "unknown field"},
      {"duplicate field", dup_field.c_str(), "duplicate field"},
      {"bad integer value", bad_seed.c_str(), "bad value for \"seed\""},
      {"disagreement without note", unannotated.c_str(), "no annotation note"},
  };
  for (const RejectionCase& c : cases) {
    auto parsed = ParseCorpus(c.text);
    EXPECT_FALSE(parsed.ok()) << c.label << " was accepted";
    if (!parsed.ok()) {
      EXPECT_NE(parsed.status().message().find(c.expect_in_message), std::string::npos)
          << c.label << ": got \"" << parsed.status().message() << "\"";
    }
  }
}

TEST(CorpusFormatTest, MissingRequiredFieldIsRejected) {
  // Drop the digest line from an otherwise-valid entry.
  std::string entry = ValidEntryBody();
  size_t pos = entry.find("digest ");
  ASSERT_NE(pos, std::string::npos);
  size_t eol = entry.find('\n', pos);
  entry.erase(pos, eol - pos + 1);
  auto parsed = ParseCorpus(std::string(kCorpusHeader) + "\n\n" + entry);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("missing field \"digest\""), std::string::npos)
      << parsed.status().message();
}

TEST(CorpusFormatTest, KeepRangeCodecRoundTrips) {
  const std::vector<std::vector<size_t>> masks = {
      {}, {0}, {5}, {0, 1, 2}, {0, 2, 4}, {0, 1, 2, 9, 17, 18, 19, 200}};
  for (const auto& mask : masks) {
    std::string text = FormatKeepRanges(mask);
    auto parsed = ParseKeepRanges(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value(), mask) << text;
  }
  EXPECT_EQ(FormatKeepRanges({}), "-");
  EXPECT_EQ(FormatKeepRanges({0, 1, 2, 9}), "0-2,9");
  EXPECT_FALSE(ParseKeepRanges("3-1").ok());       // inverted range
  EXPECT_FALSE(ParseKeepRanges("5,4").ok());       // not ascending
  EXPECT_FALSE(ParseKeepRanges("1,1").ok());       // duplicate
  EXPECT_FALSE(ParseKeepRanges("x").ok());         // not a number
}

TEST(CorpusFormatTest, ShardWriteAndDirectoryLoadRoundTrip) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "atropos_corpus_format_test";
  fs::remove_all(dir);

  auto golden = ParseCorpus(ReadFileOrDie(GoldenPath("roundtrip.corpus")));
  ASSERT_TRUE(golden.ok());
  Status written = WriteCorpusShards(dir.string(), golden.value());
  ASSERT_TRUE(written.ok()) << written.ToString();
  // Two modes → two shard files.
  EXPECT_TRUE(fs::exists(dir / "db_tickets.corpus"));
  EXPECT_TRUE(fs::exists(dir / "kv_lock.corpus"));

  auto loaded = LoadCorpusDir(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), golden.value().size());
  // Loading is shard-name-ordered; both entries must survive unchanged.
  EXPECT_EQ(SerializeEntry(loaded.value()[0]), SerializeEntry(golden.value()[0]));
  EXPECT_EQ(SerializeEntry(loaded.value()[1]), SerializeEntry(golden.value()[1]));

  // A duplicate name in a second shard is rejected at load time.
  std::string dup = SerializeCorpus({golden.value()[0]});
  FILE* f = fopen((dir / "zz_dup.corpus").string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(dup.data(), 1, dup.size(), f);
  fclose(f);
  auto reload = LoadCorpusDir(dir.string());
  EXPECT_FALSE(reload.ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace atropos
