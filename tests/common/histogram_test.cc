#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace atropos {
namespace {

TEST(LatencyHistogramTest, EmptyReturnsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  // Percentile bounded by exact min/max.
  EXPECT_EQ(h.P50(), 1234u);
  EXPECT_EQ(h.P99(), 1234u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 60; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 30u);
  EXPECT_EQ(h.Percentile(1.0), 59u);
}

TEST(LatencyHistogramTest, PercentileRelativeErrorBounded) {
  LatencyHistogram h;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; i++) {
    uint64_t v = 10 + rng.NextBounded(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t exact = values[static_cast<size_t>(q * static_cast<double>(values.size()))];
    uint64_t approx = h.Percentile(q);
    double rel = std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
                 static_cast<double>(exact);
    EXPECT_LT(rel, 0.03) << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  Rng rng(11);
  for (int i = 0; i < 5000; i++) {
    uint64_t v = rng.NextBounded(100000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.P99(), both.P99());
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(1000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.P99(), 0u);
}

TEST(ThroughputMeterTest, RatesPerClosedWindow) {
  ThroughputMeter m(Millis(100));
  for (int i = 0; i < 50; i++) {
    m.RecordCompletion(Millis(i));  // all within window 0
  }
  // Window 0 not yet closed.
  EXPECT_EQ(m.LastWindowRate(Millis(50)), 0.0);
  // After rolling into window 1, the closed window held 50 completions in 0.1s.
  EXPECT_DOUBLE_EQ(m.LastWindowRate(Millis(150)), 500.0);
  // Two windows later with no completions, the last closed window had none.
  EXPECT_DOUBLE_EQ(m.LastWindowRate(Millis(350)), 0.0);
  EXPECT_EQ(m.total(), 50u);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 4.571428, 1e-5);
}

}  // namespace
}  // namespace atropos
