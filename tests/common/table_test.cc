#include "src/common/table.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"case", "throughput", "p99"});
  t.AddRow({"c1", "0.96", "1.16"});
  t.AddRow({"c10-long-name", "0.50", "12.00"});
  std::string out = t.Render();
  EXPECT_NE(out.find("case"), std::string::npos);
  EXPECT_NE(out.find("c10-long-name"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"1"});
  std::string csv = t.RenderCsv();
  EXPECT_EQ(csv, "a,b,c\n1,,\n");
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
}

TEST(TextTableTest, PctFormatsFraction) {
  EXPECT_EQ(TextTable::Pct(0.034, 1), "3.4%");
  EXPECT_EQ(TextTable::Pct(1.0, 0), "100%");
}

TEST(TextTableTest, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace atropos
