#include "src/common/status.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::Cancelled("task 7 cancelled");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCancelled());
  EXPECT_EQ(s.message(), "task 7 cancelled");
  EXPECT_EQ(s.ToString(), "cancelled: task 7 cancelled");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Timeout("a"), Status::Timeout("b"));
  EXPECT_FALSE(Status::Timeout() == Status::Cancelled());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; c++) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(9);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 9);
}

}  // namespace
}  // namespace atropos
