#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace atropos {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.NextUint64() == b.NextUint64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    sum += rng.NextExponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    hits += rng.NextBernoulli(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(7);
  const uint64_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; i++) {
    uint64_t r = rng.NextZipf(n, 0.9);
    ASSERT_LT(r, n);
    counts[r]++;
  }
  // Rank 0 should be far more popular than rank 500.
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  // Child stream should not replay the parent stream.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(RngTest, HeavyTailRespectsCap) {
  Rng rng(10);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LE(rng.NextHeavyTail(100.0, 5000.0), 5000.0);
  }
}

}  // namespace
}  // namespace atropos
