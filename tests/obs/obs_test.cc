// Tests for src/obs: registry snapshots, flight-recorder ring semantics,
// exporter golden outputs, and an end-to-end c1 run asserting the trace
// names the backup culprit.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistryTest, CountersGaugesHistogramsSnapshot) {
  MetricsRegistry registry;
  Counter* reqs = registry.GetCounter("app.requests");
  reqs->Inc();
  reqs->Inc(4);
  registry.GetGauge("app.load")->Set(0.75);
  registry.GetGauge("app.load")->Add(0.25);
  LatencyHistogram* lat = registry.GetHistogram("app.latency");
  for (TimeMicros v : {100, 200, 300, 400, 500}) {
    lat->Record(v);
  }

  MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("app.requests"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("app.load"), 1.0);
  const auto& view = snap.histograms.at("app.latency");
  EXPECT_EQ(view.count, 5u);
  EXPECT_EQ(view.max, 500);
  EXPECT_DOUBLE_EQ(view.mean, 300.0);
  EXPECT_EQ(registry.instrument_count(), 3u);
}

TEST(MetricsRegistryTest, PointersAreStableAcrossResolves) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  // Force rebalancing of the name map with many other instruments.
  for (int i = 0; i < 100; i++) {
    registry.GetCounter("pad." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("x"), a);
  a->Inc(7);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("x"), 7u);
}

TEST(MetricsRegistryTest, SnapshotIsACopy) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Inc();
  MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  registry.GetCounter("c")->Inc(10);
  EXPECT_EQ(snap.counters.at("c"), 1u);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("c"), 11u);
}

TEST(SeriesRecorderTest, RowsMatchColumns) {
  SeriesRecorder series({"a", "b"});
  series.Sample(Millis(50), {1.0, 2.0});
  series.Sample(Millis(100), {3.0, 4.0});
  ASSERT_EQ(series.rows().size(), 2u);
  EXPECT_EQ(series.rows()[1].time, Millis(100));
  EXPECT_DOUBLE_EQ(series.rows()[1].values[1], 4.0);
  series.Clear();
  EXPECT_TRUE(series.rows().empty());
}

// ---------------------------------------------------------------------------
// Flight recorder ring buffer.

FlightEvent Event(ObsEventKind kind, TimeMicros t, const std::string& label = "") {
  FlightEvent ev;
  ev.kind = kind;
  ev.time = t;
  ev.label = label;
  return ev;
}

TEST(FlightRecorderTest, RecordsInOrder) {
  FlightRecorder recorder(8);
  recorder.Record(Event(ObsEventKind::kRunStart, 0));
  recorder.Record(Event(ObsEventKind::kWindowClosed, 50));
  recorder.Record(Event(ObsEventKind::kRunEnd, 100));
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, ObsEventKind::kRunStart);
  EXPECT_EQ(events[2].kind, ObsEventKind::kRunEnd);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(recorder.overwritten(), 0u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestInOrder) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 11; i++) {
    recorder.Record(Event(ObsEventKind::kWindowClosed, i * 10));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 11u);
  EXPECT_EQ(recorder.overwritten(), 7u);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: seqs 7, 8, 9, 10.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 7 + i);
    EXPECT_EQ(events[i].time, static_cast<TimeMicros>((7 + i) * 10));
  }
}

TEST(FlightRecorderTest, DisabledRecordIsANoOp) {
  FlightRecorder recorder(4);
  recorder.set_enabled(false);
  recorder.Record(Event(ObsEventKind::kRunStart, 0));
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  recorder.set_enabled(true);
  recorder.Record(Event(ObsEventKind::kRunStart, 0));
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(FlightRecorderTest, AnnotateLastFillsEmptyLabelOfNewestMatch) {
  FlightRecorder recorder(8);
  recorder.Record(Event(ObsEventKind::kCancelIssued, 10));
  recorder.Record(Event(ObsEventKind::kWindowClosed, 20, "normal"));
  recorder.Record(Event(ObsEventKind::kCancelIssued, 30));
  recorder.AnnotateLast(ObsEventKind::kCancelIssued, "backup");
  std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_EQ(events[0].label, "");        // older cancel untouched
  EXPECT_EQ(events[2].label, "backup");  // newest cancel annotated
  // A second annotation must not overwrite the existing label.
  recorder.AnnotateLast(ObsEventKind::kCancelIssued, "scan");
  EXPECT_EQ(recorder.Snapshot()[2].label, "backup");
}

TEST(FlightRecorderTest, AnnotateLastWorksAcrossWraparound) {
  FlightRecorder recorder(3);
  for (int i = 0; i < 5; i++) {
    recorder.Record(Event(ObsEventKind::kWindowClosed, i));
  }
  recorder.Record(Event(ObsEventKind::kCancelIssued, 99));
  recorder.AnnotateLast(ObsEventKind::kCancelIssued, "victim");
  std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.back().label, "victim");
}

TEST(FlightRecorderTest, ClearResetsCounters) {
  FlightRecorder recorder(2);
  recorder.Record(Event(ObsEventKind::kRunStart, 0));
  recorder.Record(Event(ObsEventKind::kRunEnd, 1));
  recorder.Record(Event(ObsEventKind::kRunStart, 2));
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.overwritten(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, EventToJsonGolden) {
  FlightEvent ev;
  ev.seq = 3;
  ev.time = 1500000;
  ev.kind = ObsEventKind::kPolicyDecision;
  ev.key = 42;
  ev.value = 0.25;
  ev.label = "victim_selected";
  ObsCandidateSample cand;
  cand.key = 42;
  cand.cancellable = true;
  cand.pareto = true;
  cand.score = 0.25;
  cand.gains = {0.25, 0.0};
  ev.candidates.push_back(cand);
  EXPECT_EQ(EventToJson(ev),
            "{\"seq\":3,\"t_us\":1500000,\"kind\":\"policy_decision\",\"key\":42,"
            "\"value\":0.25,\"label\":\"victim_selected\","
            "\"candidates\":[{\"key\":42,\"cancellable\":true,\"pareto\":true,"
            "\"score\":0.25,\"gains\":[0.25,0]}]}");
}

TEST(ExportTest, EventToJsonResourcesAndEscaping) {
  FlightEvent ev;
  ev.seq = 0;
  ev.time = 0;
  ev.kind = ObsEventKind::kContentionSnapshot;
  ev.label = "a\"b\\c\nd";
  ObsResourceSample res;
  res.id = 1;
  res.name = "buffer_pool";
  res.cls = "memory";
  res.contention_raw = 1.5;
  res.contention_norm = 0.8;
  res.delay_us = 200;
  res.overloaded = true;
  ev.resources.push_back(res);
  EXPECT_EQ(EventToJson(ev),
            "{\"seq\":0,\"t_us\":0,\"kind\":\"contention_snapshot\","
            "\"label\":\"a\\\"b\\\\c\\nd\","
            "\"resources\":[{\"id\":1,\"name\":\"buffer_pool\",\"cls\":\"memory\","
            "\"c_raw\":1.5,\"c_norm\":0.8,\"delay_us\":200,\"overloaded\":true}]}");
}

TEST(ExportTest, EventsToJsonlOneLinePerEvent) {
  std::vector<FlightEvent> events;
  events.push_back(Event(ObsEventKind::kRunStart, 0));
  events.push_back(Event(ObsEventKind::kRunEnd, 10));
  std::string jsonl = EventsToJsonl(events);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"kind\":\"run_start\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"run_end\""), std::string::npos);
}

TEST(ExportTest, SeriesToCsvGolden) {
  SeriesRecorder series({"completed", "p99_ms"});
  series.Sample(Millis(50), {120.0, 3.5});
  series.Sample(Millis(100), {240.0, 4.25});
  EXPECT_EQ(SeriesToCsv(series),
            "time_s,completed,p99_ms\n"
            "0.050,120,3.5\n"
            "0.100,240,4.25\n");
}

TEST(ExportTest, SeriesPathFor) {
  EXPECT_EQ(SeriesPathFor("out.jsonl"), "out.csv");
  EXPECT_EQ(SeriesPathFor("out"), "out.csv");
  EXPECT_EQ(SeriesPathFor("dir.d/trace"), "dir.d/trace.csv");
}

TEST(ExportTest, PostMortemListsDecisionsAndMetrics) {
  FlightEvent cancel = Event(ObsEventKind::kCancelIssued, Seconds(3), "backup");
  cancel.key = 7;
  MetricsRegistry registry;
  registry.GetCounter("minidb.outcome.cancelled")->Inc(2);
  std::string text = RenderPostMortem({cancel}, registry.TakeSnapshot());
  EXPECT_NE(text.find("cancel_issued"), std::string::npos);
  EXPECT_NE(text.find("backup"), std::string::npos);
  EXPECT_NE(text.find("minidb.outcome.cancelled"), std::string::npos);
}

TEST(ObsCliTest, ParsesTraceAndCase) {
  char arg0[] = "bench";
  char arg1[] = "--trace=/tmp/t.jsonl";
  char arg2[] = "--case=7";
  char* argv[] = {arg0, arg1, arg2, nullptr};
  ObsCliArgs cli = ParseObsCli(3, argv);
  EXPECT_TRUE(cli.ok);
  EXPECT_EQ(cli.trace_path, "/tmp/t.jsonl");
  EXPECT_EQ(cli.case_id, 7);
}

TEST(ObsCliTest, RejectsUnknownFlag) {
  char arg0[] = "bench";
  char arg1[] = "--frobnicate";
  char* argv[] = {arg0, arg1, nullptr};
  ObsCliArgs cli = ParseObsCli(2, argv);
  EXPECT_FALSE(cli.ok);
  EXPECT_FALSE(cli.error.empty());
}

// ---------------------------------------------------------------------------
// Integration: case c1 (MySQL backup lock convoy) under Atropos must leave a
// trace whose cancellation events name the backup culprit.

TEST(ObsIntegrationTest, C1TraceNamesBackupCulprit) {
  Observability obs;
  CaseRunOptions opt;
  opt.controller = ControllerKind::kAtropos;
  opt.obs = &obs;
  opt.post_mortem = false;
  CaseResult result = RunCase(1, opt);
  ASSERT_GT(result.controller_actions, 0u) << "c1 should trigger cancellations";

  std::vector<FlightEvent> events = obs.recorder.Snapshot();
  auto has = [&events](ObsEventKind kind) {
    return std::any_of(events.begin(), events.end(),
                       [kind](const FlightEvent& ev) { return ev.kind == kind; });
  };
  EXPECT_TRUE(has(ObsEventKind::kRunStart));
  EXPECT_TRUE(has(ObsEventKind::kRunEnd));
  EXPECT_TRUE(has(ObsEventKind::kWindowClosed));
  EXPECT_TRUE(has(ObsEventKind::kOverloadEntered));
  EXPECT_TRUE(has(ObsEventKind::kContentionSnapshot));
  EXPECT_TRUE(has(ObsEventKind::kPolicyDecision));

  bool backup_cancelled = std::any_of(
      events.begin(), events.end(), [](const FlightEvent& ev) {
        return ev.kind == ObsEventKind::kCancelIssued && ev.label == "backup";
      });
  EXPECT_TRUE(backup_cancelled) << "no cancel_issued event labelled 'backup'";

  // Per-app metrics were maintained through the same run.
  MetricsRegistry::Snapshot snap = obs.metrics.TakeSnapshot();
  EXPECT_GE(snap.counters.at("minidb.requests.backup"), 1u);
  EXPECT_GE(snap.counters.at("minidb.outcome.cancelled"), 1u);

  // And the per-tick series is exportable.
  EXPECT_FALSE(obs.series.rows().empty());
  std::string csv = SeriesToCsv(obs.series);
  EXPECT_EQ(csv.rfind("time_s,completed,cancelled,dropped,p99_ms\n", 0), 0u);
}

}  // namespace
}  // namespace atropos
