// Bottleneck-diagnoser attribution: synthetic-trace units for the
// calibration, degraded-window, blame, and culprit logic, plus the live
// fixture suite — recorded live_atropos traces for the three scenarios,
// asserting the blamed resource class matches each scenario's known
// bottleneck.

#include "src/diagnose/diagnoser.h"

#include <gtest/gtest.h>

#include "src/diagnose/trace_io.h"

namespace atropos {
namespace {

FlightEvent Window(uint64_t seq, TimeMicros t, double p99, const char* label) {
  FlightEvent ev;
  ev.seq = seq;
  ev.time = t;
  ev.kind = ObsEventKind::kWindowClosed;
  ev.value = p99;
  ev.label = label;
  return ev;
}

ObsResourceSample Resource(uint32_t id, const char* name, const char* cls, double raw,
                           uint64_t delay_us, bool overloaded) {
  ObsResourceSample r;
  r.id = id;
  r.name = name;
  r.cls = cls;
  r.contention_raw = raw;
  r.delay_us = delay_us;
  r.overloaded = overloaded;
  return r;
}

FlightEvent Snapshot(uint64_t seq, TimeMicros t, std::vector<ObsResourceSample> resources) {
  FlightEvent ev;
  ev.seq = seq;
  ev.time = t;
  ev.kind = ObsEventKind::kContentionSnapshot;
  ev.resources = std::move(resources);
  return ev;
}

TEST(DiagnoserTest, CalibratesFromLabeledWindowsAndCountsDegraded) {
  std::vector<FlightEvent> events;
  uint64_t seq = 0;
  for (int i = 0; i < 5; i++) {
    events.push_back(Window(seq++, 1000 * (i + 1), 1000.0, "calibrating"));
  }
  events.push_back(Window(seq++, 6000, 1200.0, "normal"));   // 1.2x: healthy
  events.push_back(Window(seq++, 7000, 5000.0, "suspected_overload"));  // degraded
  events.push_back(Window(seq++, 8000, 9000.0, "suspected_overload"));  // degraded

  Diagnosis d = DiagnoseTrace(events);
  EXPECT_EQ(d.windows, 8u);
  EXPECT_EQ(d.baseline_p99, 1000u);
  EXPECT_EQ(d.degraded_windows, 2u);
  EXPECT_EQ(d.peak_p99, 9000u);
  EXPECT_TRUE(d.overload_observed);
  // Degraded windows without snapshots: overload observed, nothing to blame.
  EXPECT_TRUE(d.blamed_class.empty());
}

TEST(DiagnoserTest, FallsBackToLeadingWindowsWithoutCalibrationLabels) {
  std::vector<FlightEvent> events;
  for (int i = 0; i < 12; i++) {
    events.push_back(Window(i, 1000 * (i + 1), 2000.0, "normal"));
  }
  events.push_back(Window(99, 99000, 50000.0, "suspected_overload"));
  Diagnosis d = DiagnoseTrace(events);
  EXPECT_EQ(d.baseline_p99, 2000u);
  EXPECT_EQ(d.degraded_windows, 1u);
}

TEST(DiagnoserTest, BlamesTheClassWithTheMostIntegratedDelay) {
  std::vector<FlightEvent> events;
  // Lock is severely contended; io shows mild, sub-floor contention.
  events.push_back(Snapshot(0, 1000,
                            {Resource(1, "table_locks", "lock", 4.0, 800000, true),
                             Resource(2, "vacuum_io", "io", 0.4, 200000, false)}));
  events.push_back(Snapshot(1, 2000,
                            {Resource(1, "table_locks", "lock", 6.0, 900000, true),
                             Resource(2, "vacuum_io", "io", 0.2, 100000, false)}));

  Diagnosis d = DiagnoseTrace(events);
  EXPECT_TRUE(d.overload_observed);
  EXPECT_EQ(d.blamed_class, "lock");
  EXPECT_EQ(d.blamed_resource, "table_locks");
  EXPECT_NEAR(d.blame_share, 1700000.0 / 2000000.0, 1e-9);
  ASSERT_EQ(d.resources.size(), 2u);
  EXPECT_EQ(d.resources[0].name, "table_locks");  // sorted by delay, desc
  EXPECT_EQ(d.resources[0].snapshots, 2u);
  EXPECT_DOUBLE_EQ(d.resources[0].mean_contention_raw, 5.0);
}

TEST(DiagnoserTest, SeverelyContendedExecutionResourceOutranksQueueBackpressure) {
  // The admission queue integrates 10x the lock's delay — workers are stuck,
  // so arrivals pile up — but the lock convoy is the root cause.
  std::vector<FlightEvent> events;
  for (int i = 0; i < 3; i++) {
    events.push_back(Snapshot(i, 1000 * (i + 1),
                              {Resource(1, "worker_pool", "queue", 12.0, 10000000, true),
                               Resource(2, "keyspace", "lock", 7.0, 1000000, true)}));
  }
  Diagnosis d = DiagnoseTrace(events);
  EXPECT_EQ(d.blamed_class, "lock");
  EXPECT_EQ(d.blamed_resource, "keyspace");

  // With the lock healthy (raw below the floor), the queue keeps the blame.
  std::vector<FlightEvent> saturated;
  for (int i = 0; i < 3; i++) {
    saturated.push_back(Snapshot(i, 1000 * (i + 1),
                                 {Resource(1, "worker_pool", "queue", 12.0, 10000000, true),
                                  Resource(2, "keyspace", "lock", 0.3, 1000000, false)}));
  }
  Diagnosis saturated_d = DiagnoseTrace(saturated);
  EXPECT_EQ(saturated_d.blamed_class, "queue");
  EXPECT_EQ(saturated_d.blamed_resource, "worker_pool");
}

TEST(DiagnoserTest, RanksCulpritsByCancelsThenPolicyEvidence) {
  std::vector<FlightEvent> events;
  FlightEvent decision;
  decision.seq = 0;
  decision.time = 1000;
  decision.kind = ObsEventKind::kPolicyDecision;
  ObsCandidateSample winner;
  winner.key = 42;
  winner.pareto = true;
  winner.score = 0.9;
  ObsCandidateSample runner_up;
  runner_up.key = 7;
  runner_up.pareto = true;
  runner_up.score = 0.4;
  decision.candidates = {winner, runner_up};
  events.push_back(decision);

  FlightEvent cancel;
  cancel.seq = 1;
  cancel.time = 1001;
  cancel.kind = ObsEventKind::kCancelIssued;
  cancel.key = 42;
  events.push_back(cancel);

  Diagnosis d = DiagnoseTrace(events);
  EXPECT_EQ(d.cancels, 1u);
  ASSERT_EQ(d.culprits.size(), 2u);
  EXPECT_EQ(d.culprits[0].key, 42u);
  EXPECT_EQ(d.culprits[0].cancels, 1u);
  EXPECT_EQ(d.culprits[0].pareto, 1u);
  EXPECT_EQ(d.culprits[1].key, 7u);
}

TEST(DiagnoserTest, EmptyTraceYieldsNoVerdict) {
  Diagnosis d = DiagnoseTrace({});
  EXPECT_FALSE(d.overload_observed);
  EXPECT_TRUE(d.blamed_class.empty());
  EXPECT_EQ(d.windows, 0u);
  EXPECT_FALSE(d.Render().empty());
}

TEST(DiagnoserTest, EstimatorVerdictCountsOverloadFlags) {
  std::vector<FlightEvent> events;
  events.push_back(Snapshot(0, 1000,
                            {Resource(1, "a", "lock", 2.0, 100, true),
                             Resource(2, "b", "queue", 2.0, 100, true)}));
  events.push_back(Snapshot(1, 2000,
                            {Resource(1, "a", "lock", 2.0, 100, false),
                             Resource(2, "b", "queue", 2.0, 100, true)}));
  EXPECT_EQ(EstimatorBlamedClass(events), "queue");
  EXPECT_EQ(EstimatorBlamedClass({}), "");
}

// ---- Live-trace fixture suite (satellite: recorded live_atropos traces).
//
// The fixtures are cancellation-off baseline runs of the three live
// scenarios, recorded once with `live_atropos --trace-baseline=...`. Each
// scenario's bottleneck class is known by construction: culprit-burst and
// noisy-neighbor saturate the miniweb worker pool (queue); lock-convoy
// convoys on the minikv keyspace lock behind the pool.

Diagnosis DiagnoseFixture(const std::string& name, std::string* estimator) {
  std::string path = std::string(ATROPOS_DIAGNOSE_TEST_DATA_DIR) + "/fixtures/" + name;
  auto events = ReadTraceFile(path);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  if (!events.ok()) {
    return Diagnosis{};
  }
  EXPECT_GT(events.value().size(), 50u) << name << " looks truncated";
  *estimator = EstimatorBlamedClass(events.value());
  return DiagnoseTrace(events.value());
}

TEST(DiagnoserFixtureTest, CulpritBurstBlamesTheWorkerQueue) {
  std::string estimator;
  Diagnosis d = DiagnoseFixture("culprit-burst.jsonl", &estimator);
  EXPECT_TRUE(d.overload_observed);
  EXPECT_EQ(d.blamed_class, "queue");
  EXPECT_EQ(estimator, "queue");
}

TEST(DiagnoserFixtureTest, NoisyNeighborBlamesTheWorkerQueue) {
  std::string estimator;
  Diagnosis d = DiagnoseFixture("noisy-neighbor.jsonl", &estimator);
  EXPECT_TRUE(d.overload_observed);
  EXPECT_EQ(d.blamed_class, "queue");
  EXPECT_EQ(estimator, "queue");
}

TEST(DiagnoserFixtureTest, LockConvoyBlamesTheLockNotTheQueueSymptom) {
  std::string estimator;
  Diagnosis d = DiagnoseFixture("lock-convoy.jsonl", &estimator);
  EXPECT_TRUE(d.overload_observed);
  // The queue integrates far more wait (every arrival sits behind the stuck
  // workers), but the convoyed lock is the root cause — the demotion rule
  // must see through the backpressure symptom.
  EXPECT_EQ(d.blamed_class, "lock");
  EXPECT_EQ(d.blamed_resource, "capi_lock");
  EXPECT_EQ(estimator, "lock");
}

}  // namespace
}  // namespace atropos
