// JSONL trace codec: EventToJson → ParseEventsJsonl must be lossless for
// every event kind, including full-width u64 keys, escaped strings, and the
// nested resource/candidate arrays; malformed documents are rejected with
// 1-based line numbers.

#include "src/diagnose/trace_io.h"

#include <gtest/gtest.h>

#include "src/obs/export.h"

namespace atropos {
namespace {

std::vector<FlightEvent> SampleEvents() {
  std::vector<FlightEvent> events;

  FlightEvent window;
  window.seq = 1;
  window.time = 100000;
  window.kind = ObsEventKind::kWindowClosed;
  window.value = 2416.5;
  window.label = "suspected_overload";
  window.completions = 120;
  window.overdue = 3;
  events.push_back(window);

  FlightEvent snapshot;
  snapshot.seq = 2;
  snapshot.time = 100000;
  snapshot.kind = ObsEventKind::kContentionSnapshot;
  ObsResourceSample lock;
  lock.id = 1;
  lock.name = "table_locks";
  lock.cls = "lock";
  lock.contention_raw = 7.25;
  lock.contention_norm = 0.875;
  lock.delay_us = 900000;
  lock.overloaded = true;
  snapshot.resources.push_back(lock);
  ObsResourceSample pool;
  pool.id = 2;
  pool.name = "buffer \"pool\"\n";  // exercises string escaping
  pool.cls = "memory";
  pool.delay_us = 0;
  snapshot.resources.push_back(pool);
  events.push_back(snapshot);

  FlightEvent decision;
  decision.seq = 3;
  decision.time = 100001;
  decision.kind = ObsEventKind::kPolicyDecision;
  decision.label = "victim_selected";
  ObsCandidateSample candidate;
  candidate.key = 0xfedcba9876543210ull;  // above 2^53: must not round-trip through double
  candidate.cancellable = true;
  candidate.pareto = true;
  candidate.score = 0.5;
  candidate.gains = {0.25, 0.75};
  decision.candidates.push_back(candidate);
  events.push_back(decision);

  FlightEvent cancel;
  cancel.seq = 4;
  cancel.time = 100002;
  cancel.kind = ObsEventKind::kCancelIssued;
  cancel.key = 0xfedcba9876543210ull;
  cancel.label = "dump_query";
  events.push_back(cancel);

  return events;
}

TEST(TraceIoTest, JsonlRoundTripIsLossless) {
  std::vector<FlightEvent> events = SampleEvents();
  std::string jsonl;
  for (const FlightEvent& ev : events) {
    jsonl += EventToJson(ev);
    jsonl += '\n';
  }
  auto parsed = ParseEventsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  for (size_t i = 0; i < events.size(); i++) {
    // Re-serializing the parsed event must reproduce the original line —
    // field-by-field equality expressed as one string compare.
    EXPECT_EQ(EventToJson(parsed.value()[i]), EventToJson(events[i])) << "event " << i;
  }
  // The full-width key survived exactly.
  EXPECT_EQ(parsed.value()[3].key, 0xfedcba9876543210ull);
  EXPECT_EQ(parsed.value()[2].candidates[0].key, 0xfedcba9876543210ull);
}

TEST(TraceIoTest, BlankLinesAndCrlfAreTolerated) {
  std::string jsonl = "\n" + EventToJson(SampleEvents()[0]) + "\r\n\n";
  auto parsed = ParseEventsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(TraceIoTest, UnknownKeysAreSkipped) {
  auto parsed = ParseEventsJsonl(
      R"({"seq":9,"t_us":5,"kind":"window_closed","future_field":{"nested":[1,2,{"a":true}]},"value":10})"
      "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].seq, 9u);
  EXPECT_EQ(parsed.value()[0].kind, ObsEventKind::kWindowClosed);
  EXPECT_DOUBLE_EQ(parsed.value()[0].value, 10.0);
}

TEST(TraceIoTest, MalformedLinesReportLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  const Case cases[] = {
      {"{\"seq\":1,\"kind\":\"window_closed\"}\nnot json\n", "line 2"},
      {"{\"seq\":1,\"kind\":\"no_such_kind\"}\n", "line 1"},
      {"{\"seq\":1\n", "line 1"},
      {"[]\n", "line 1"},
  };
  for (const Case& c : cases) {
    auto parsed = ParseEventsJsonl(c.text);
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_NE(parsed.status().message().find(c.expect), std::string::npos)
        << parsed.status().message();
  }
}

TEST(TraceIoTest, EventKindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(ObsEventKind::kTaskDropped); k++) {
    ObsEventKind kind = static_cast<ObsEventKind>(k);
    ObsEventKind back;
    ASSERT_TRUE(ParseObsEventKind(ObsEventKindName(kind), &back))
        << ObsEventKindName(kind);
    EXPECT_EQ(back, kind);
  }
  ObsEventKind out;
  EXPECT_FALSE(ParseObsEventKind("definitely_not_a_kind", &out));
}

}  // namespace
}  // namespace atropos
