// Scenario-corpus toolchain driver: mine, replay, diagnose.
//
// Subcommands:
//   mine     — scan seeds for baseline-misses/treatment-recovers scenarios,
//              shrink the survivors, and write/merge them into a sharded
//              corpus directory.
//   replay   — re-execute every corpus entry and enforce the replay oracles:
//              byte-stable digests, clean invariant oracles, and the
//              diagnoser-vs-estimator agreement floor. This is the
//              corpus_replay ctest entry point.
//   diagnose — run the offline bottleneck diagnoser over a JSONL
//              flight-recorder trace (e.g. a live_atropos --trace dump) and
//              print the attribution report.
//
// Usage:
//   atropos_mine mine --corpus=DIR [--seed-start=S] [--max-seeds=N]
//                     [--target=K] [--shrink-budget=B] [--load-scale=X]
//                     [--base-modes] [--force-mode=M] [--quiet]
//   atropos_mine replay --corpus=DIR [--require-agreement=F] [--limit=N]
//   atropos_mine diagnose --trace=FILE

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/diagnose/diagnoser.h"
#include "src/diagnose/trace_io.h"
#include "src/mining/corpus.h"
#include "src/mining/miner.h"
#include "src/mining/replay.h"

namespace {

int Usage() {
  fprintf(stderr,
          "usage: atropos_mine mine --corpus=DIR [--seed-start=S] [--max-seeds=N]\n"
          "                         [--target=K] [--shrink-budget=B] [--load-scale=X]\n"
          "                         [--base-modes] [--force-mode=M] [--quiet]\n"
          "       atropos_mine replay --corpus=DIR [--require-agreement=F] [--limit=N]\n"
          "       atropos_mine diagnose --trace=FILE\n");
  return 2;
}

const char* Value(const std::string& arg, const char* prefix) {
  return arg.c_str() + strlen(prefix);
}

int Mine(int argc, char** argv) {
  std::string corpus_dir;
  atropos::MineOptions options;
  options.plan_options.extended_modes = true;  // the miner's default search space
  bool quiet = false;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = Value(arg, "--corpus=");
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      options.seed_start = strtoull(Value(arg, "--seed-start="), nullptr, 10);
    } else if (arg.rfind("--max-seeds=", 0) == 0) {
      options.max_seeds = atoi(Value(arg, "--max-seeds="));
    } else if (arg.rfind("--target=", 0) == 0) {
      options.target = atoi(Value(arg, "--target="));
    } else if (arg.rfind("--shrink-budget=", 0) == 0) {
      options.shrink_budget = atoi(Value(arg, "--shrink-budget="));
    } else if (arg.rfind("--load-scale=", 0) == 0) {
      options.plan_options.load_scale = atof(Value(arg, "--load-scale="));
    } else if (arg == "--base-modes") {
      options.plan_options.extended_modes = false;
    } else if (arg.rfind("--force-mode=", 0) == 0) {
      options.plan_options.force_mode = atoi(Value(arg, "--force-mode="));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_dir.empty()) {
    fprintf(stderr, "mine: --corpus=DIR is required\n");
    return Usage();
  }
  if (!quiet) {
    options.progress = [](const std::string& line) { printf("  %s\n", line.c_str()); };
  }

  atropos::MineReport report = atropos::MineScenarios(options);
  printf("scanned %d seed(s): %d candidate(s), %d mined, %d disagreement(s), "
         "%d shrink probe(s)\n",
         report.seeds_scanned, report.candidates, (int)report.entries.size(),
         report.disagreements, report.shrink_runs);
  if (report.entries.empty()) {
    fprintf(stderr, "error: mined zero scenarios — nothing to write\n");
    return 1;
  }

  // Merge with any existing corpus: new entries replace same-named old ones,
  // everything else is preserved.
  std::map<std::string, atropos::CorpusEntry> merged;
  auto existing = atropos::LoadCorpusDir(corpus_dir);
  if (existing.ok()) {
    for (auto& entry : existing.value()) {
      merged[entry.name] = std::move(entry);
    }
  }
  int fresh = 0;
  for (auto& entry : report.entries) {
    fresh += merged.count(entry.name) == 0 ? 1 : 0;
    merged[entry.name] = std::move(entry);
  }
  std::vector<atropos::CorpusEntry> all;
  all.reserve(merged.size());
  for (auto& [name, entry] : merged) {
    all.push_back(std::move(entry));
  }
  atropos::Status written = atropos::WriteCorpusShards(corpus_dir, all);
  if (!written.ok()) {
    fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  printf("corpus now has %zu scenario(s) in %s (%d new this run)\n", all.size(),
         corpus_dir.c_str(), fresh);
  return 0;
}

int Replay(int argc, char** argv) {
  std::string corpus_dir;
  atropos::ReplayOptions options;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = Value(arg, "--corpus=");
    } else if (arg.rfind("--require-agreement=", 0) == 0) {
      options.require_agreement = atof(Value(arg, "--require-agreement="));
    } else if (arg.rfind("--limit=", 0) == 0) {
      options.limit = atoi(Value(arg, "--limit="));
    } else {
      fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_dir.empty()) {
    fprintf(stderr, "replay: --corpus=DIR is required\n");
    return Usage();
  }

  auto entries = atropos::LoadCorpusDir(corpus_dir);
  if (!entries.ok()) {
    fprintf(stderr, "error: %s\n", entries.status().ToString().c_str());
    return 1;
  }
  if (entries.value().empty()) {
    fprintf(stderr, "error: corpus %s is empty — an empty replay asserts nothing\n",
            corpus_dir.c_str());
    return 1;
  }

  atropos::ReplayReport report = atropos::ReplayCorpus(entries.value(), options);
  printf("replayed %d/%zu scenario(s): %d agreement(s), %d annotated disagreement(s), "
         "rate %.3f (floor %.3f)\n",
         report.replayed, entries.value().size(), report.agreements, report.disagreements,
         report.agreement_rate, options.require_agreement);
  for (const atropos::ReplayFailure& failure : report.failures) {
    fprintf(stderr, "FAIL %s: %s\n", failure.name.c_str(), failure.what.c_str());
  }
  if (!report.ok()) {
    fprintf(stderr, "%zu failure(s)\n", report.failures.size());
    return 1;
  }
  printf("corpus replay ok\n");
  return 0;
}

int Diagnose(int argc, char** argv) {
  std::string trace_path;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = Value(arg, "--trace=");
    } else {
      fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (trace_path.empty()) {
    fprintf(stderr, "diagnose: --trace=FILE is required\n");
    return Usage();
  }
  auto events = atropos::ReadTraceFile(trace_path);
  if (!events.ok()) {
    fprintf(stderr, "error: %s\n", events.status().ToString().c_str());
    return 1;
  }
  atropos::Diagnosis diagnosis = atropos::DiagnoseTrace(events.value());
  printf("%zu event(s) from %s\n", events.value().size(), trace_path.c_str());
  fputs(diagnosis.Render().c_str(), stdout);
  std::string estimator = atropos::EstimatorBlamedClass(events.value());
  printf("estimator verdict: %s\n", estimator.empty() ? "-" : estimator.c_str());
  if (!diagnosis.blamed_class.empty() && !estimator.empty()) {
    printf("agreement: %s\n", diagnosis.blamed_class == estimator ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "mine") {
    return Mine(argc, argv);
  }
  if (cmd == "replay") {
    return Replay(argc, argv);
  }
  if (cmd == "diagnose") {
    return Diagnose(argc, argv);
  }
  fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  return Usage();
}
