// Workload fuzzer driver for the Atropos runtime.
//
// Generates seed-derived randomized workloads (request mixes, runtime config
// points, fault injections) across the overload-case application modes, runs
// each through the full simulation stack, and audits every run with the
// invariant oracles. Any violation fails the process; --shrink minimizes the
// first failing seed to a small request subset and prints a replay command.
//
// Usage:
//   fuzz_atropos [--seed=S] [--runs=N | --minutes=M] [--shrink]
//                [--replay-check] [--keep=i,j,...] [--inject-drop-free=T]
//                [--load-scale=X] [--extended-modes] [--force-mode=M]
//                [--verbose]
//
// A batch invocation that ends up executing zero runs (e.g. --runs=0, or a
// --minutes deadline already in the past) is a hard error: an empty corpus
// asserts nothing, and a CI stage that silently runs nothing is worse than
// one that fails loudly.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/testing/fuzzer.h"
#include "src/testing/shrinker.h"

namespace {

struct CliArgs {
  uint64_t seed = 1;
  int runs = 1;
  double minutes = 0.0;  // >0: time-bounded instead of run-bounded
  bool shrink = false;
  bool replay_check = false;
  bool verbose = false;
  std::vector<size_t> keep;
  bool has_keep = false;
  atropos::FuzzPlanOptions plan_options;
  bool ok = true;
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + strlen(prefix);
    };
    if (arg.rfind("--seed=", 0) == 0) {
      args.seed = strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      args.runs = atoi(value("--runs="));
    } else if (arg.rfind("--minutes=", 0) == 0) {
      args.minutes = atof(value("--minutes="));
    } else if (arg == "--shrink") {
      args.shrink = true;
    } else if (arg == "--replay-check") {
      args.replay_check = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg.rfind("--keep=", 0) == 0) {
      args.has_keep = true;
      const char* p = value("--keep=");
      while (*p != '\0') {
        args.keep.push_back(strtoull(p, const_cast<char**>(&p), 10));
        if (*p == ',') {
          p++;
        }
      }
    } else if (arg.rfind("--inject-drop-free=", 0) == 0) {
      args.plan_options.drop_free_request_type = atoi(value("--inject-drop-free="));
    } else if (arg.rfind("--load-scale=", 0) == 0) {
      args.plan_options.load_scale = atof(value("--load-scale="));
    } else if (arg == "--extended-modes") {
      args.plan_options.extended_modes = true;
    } else if (arg.rfind("--force-mode=", 0) == 0) {
      args.plan_options.force_mode = atoi(value("--force-mode="));
    } else {
      fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

void PrintResult(uint64_t seed, const atropos::FuzzRunResult& result, bool verbose) {
  printf("seed=%llu mode=%s reqs=%zu windows=%llu cancels=%llu retried=%llu "
         "dropped=%llu digest=%016llx %s\n",
         (unsigned long long)seed, std::string(atropos::FuzzAppModeName(result.plan.mode)).c_str(),
         result.plan.requests.size(), (unsigned long long)result.stats.windows,
         (unsigned long long)result.stats.cancels_issued,
         (unsigned long long)result.metrics.retried, (unsigned long long)result.metrics.dropped,
         (unsigned long long)result.digest, result.ok() ? "ok" : "VIOLATION");
  if (!result.ok() || verbose) {
    fputs(atropos::FormatViolations(result.violations).c_str(), stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args = Parse(argc, argv);
  if (!args.ok) {
    fprintf(stderr,
            "usage: fuzz_atropos [--seed=S] [--runs=N | --minutes=M] [--shrink]\n"
            "                    [--replay-check] [--keep=i,j,...]\n"
            "                    [--inject-drop-free=T] [--load-scale=X]\n"
            "                    [--extended-modes] [--force-mode=M] [--verbose]\n");
    return 2;
  }

  // Replay mode: one seed, optionally restricted to a shrunk request subset.
  if (args.has_keep) {
    atropos::FuzzPlan plan = atropos::PlanFromSeed(args.seed, args.plan_options);
    plan = atropos::RestrictPlan(plan, args.keep);
    atropos::FuzzRunResult result = atropos::RunPlan(plan);
    PrintResult(args.seed, result, args.verbose);
    return result.ok() ? 0 : 1;
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(static_cast<long>(args.minutes * 60'000));
  int failures = 0;
  int executed = 0;
  for (int i = 0; args.minutes > 0 ? std::chrono::steady_clock::now() < deadline
                                   : i < args.runs;
       i++) {
    uint64_t seed = args.seed + static_cast<uint64_t>(i);
    atropos::FuzzPlan plan = atropos::PlanFromSeed(seed, args.plan_options);
    atropos::FuzzRunResult result = atropos::RunPlan(plan);
    executed++;
    PrintResult(seed, result, args.verbose);

    if (args.replay_check) {
      atropos::FuzzRunResult replay = atropos::RunPlan(plan);
      if (replay.digest != result.digest) {
        printf("seed=%llu NONDETERMINISTIC: digest %016llx vs %016llx on replay\n",
               (unsigned long long)seed, (unsigned long long)result.digest,
               (unsigned long long)replay.digest);
        failures++;
      }
    }

    if (!result.ok()) {
      failures++;
      if (args.shrink) {
        printf("shrinking seed=%llu (%zu requests)...\n", (unsigned long long)seed,
               plan.requests.size());
        atropos::ShrinkResult shrunk = atropos::ShrinkPlan(plan, args.plan_options);
        printf("minimal repro: %zu request(s) after %d runs\n", shrunk.plan.requests.size(),
               shrunk.runs);
        fputs(atropos::FormatViolations(shrunk.violations).c_str(), stdout);
        printf("replay with: %s\n", shrunk.repro.c_str());
      }
    }
  }

  printf("%d run(s), %d failure(s)\n", executed, failures);
  if (executed == 0) {
    // An empty corpus (--runs=0, or an already-expired --minutes deadline)
    // exercised nothing; exiting 0 here would let a misconfigured CI stage
    // pass forever without running a single plan.
    fprintf(stderr, "error: zero runs executed — empty corpus is a hard error\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
