// atropos_lint — domain-specific static analyzer for Atropos API contracts.
//
//   atropos_lint [--checks=a,b] [--dir=DIR]... [--json] [FILE]...
//
// Checks (all enabled by default):
//   atomics-protocol      seq_cst-only protocol words and Dekker handshake
//                         ordering in the abortable-sync layer (DESIGN.md §16)
//   capi-pairing          createCancel/freeCancel and getResource/freeResource
//                         balance per scope; double-frees and leaks
//   cancel-action-safety  no blocking, allocation, or throw reachable from
//                         cancellation initiators, across translation units
//   determinism           no ambient time/randomness in digest paths
//   guarded-by            ATROPOS_GUARDED_BY / ATROPOS_REQUIRES annotations
//                         verified against the lock scopes actually held
//   lock-order            cycles in the static mutex acquisition graph
//   stale-suppression     allow()/allow-file() markers that no longer match
//                         any diagnostic (full runs only)
//
// Exit status: 0 when no findings, 1 when findings were reported, 2 on usage
// errors. Suppress individual findings with `// atropos-lint: allow(check)`.
//
// --json emits a machine-readable report on stdout instead of the plain
// diagnostic lines; scripts/check.sh uses it to track lint wall time in the
// perf trajectory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/driver.h"

namespace {

void SplitCommaList(const char* list, std::set<std::string>* out) {
  std::string cur;
  for (const char* p = list;; p++) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) {
        out->insert(cur);
      }
      cur.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      cur.push_back(*p);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: atropos_lint [--checks=a,b] [--list-checks] [--json] [--dir=DIR]... "
               "[FILE]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  atropos::lint::DriverOptions options;
  bool quiet = false;
  bool json = false;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--checks=", 9) == 0) {
      SplitCommaList(arg + 9, &options.checks);
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      options.dirs.push_back(arg + 6);
    } else if (std::strcmp(arg, "--dir") == 0 && i + 1 < argc) {
      options.dirs.push_back(argv[++i]);
    } else if (std::strcmp(arg, "--list-checks") == 0) {
      for (const auto& check : atropos::lint::MakeAllChecks()) {
        std::printf("%s\n", std::string(check->name()).c_str());
      }
      std::printf("%s\n", std::string(atropos::lint::kStaleSuppressionCheck).c_str());
      return 0;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.dirs.empty()) {
    return Usage();
  }

  auto start = std::chrono::steady_clock::now();
  atropos::lint::RunResult result = atropos::lint::RunLint(options);
  double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  if (json) {
    std::printf("{\n  \"files\": %zu,\n  \"suppressed\": %zu,\n  \"wall_ms\": %.3f,\n",
                result.files_analyzed, result.suppressed, wall_ms);
    std::printf("  \"findings\": [");
    for (size_t i = 0; i < result.diagnostics.size(); i++) {
      const atropos::lint::Diagnostic& d = result.diagnostics[i];
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %d, \"check\": \"%s\", "
                  "\"message\": \"%s\"}",
                  i == 0 ? "" : ",", JsonEscape(d.path).c_str(), d.line,
                  JsonEscape(d.check).c_str(), JsonEscape(d.message).c_str());
    }
    std::printf("%s]\n}\n", result.diagnostics.empty() ? "" : "\n  ");
  } else {
    for (const atropos::lint::Diagnostic& d : result.diagnostics) {
      std::printf("%s\n", d.Format().c_str());
    }
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "atropos_lint: %zu file(s), %zu finding(s), %zu suppressed, %.0f ms\n",
                 result.files_analyzed, result.diagnostics.size(), result.suppressed, wall_ms);
  }
  return result.diagnostics.empty() ? 0 : 1;
}
