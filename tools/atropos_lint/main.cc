// atropos_lint — domain-specific static analyzer for Atropos API contracts.
//
//   atropos_lint [--checks=a,b] [--dir=DIR]... [FILE]...
//
// Checks (all enabled by default):
//   capi-pairing          createCancel/freeCancel and getResource/freeResource
//                         balance per scope; double-frees and leaks
//   cancel-action-safety  no blocking, allocation, or throw in cancellation
//                         initiators registered via setCancelAction
//   determinism           no ambient time/randomness in digest paths
//   lock-order            cycles in the static mutex acquisition graph
//
// Exit status: 0 when no findings, 1 when findings were reported, 2 on usage
// errors. Suppress individual findings with `// atropos-lint: allow(check)`.

#include <cstdio>
#include <cstring>
#include <string>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/driver.h"

namespace {

void SplitCommaList(const char* list, std::set<std::string>* out) {
  std::string cur;
  for (const char* p = list;; p++) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) {
        out->insert(cur);
      }
      cur.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      cur.push_back(*p);
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: atropos_lint [--checks=a,b] [--list-checks] [--dir=DIR]... [FILE]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  atropos::lint::DriverOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--checks=", 9) == 0) {
      SplitCommaList(arg + 9, &options.checks);
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      options.dirs.push_back(arg + 6);
    } else if (std::strcmp(arg, "--dir") == 0 && i + 1 < argc) {
      options.dirs.push_back(argv[++i]);
    } else if (std::strcmp(arg, "--list-checks") == 0) {
      for (const auto& check : atropos::lint::MakeAllChecks()) {
        std::printf("%s\n", std::string(check->name()).c_str());
      }
      return 0;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.dirs.empty()) {
    return Usage();
  }

  atropos::lint::RunResult result = atropos::lint::RunLint(options);
  for (const atropos::lint::Diagnostic& d : result.diagnostics) {
    std::printf("%s\n", d.Format().c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "atropos_lint: %zu file(s), %zu finding(s), %zu suppressed\n",
                 result.files_analyzed, result.diagnostics.size(), result.suppressed);
  }
  return result.diagnostics.empty() ? 0 : 1;
}
