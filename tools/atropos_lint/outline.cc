#include "tools/atropos_lint/outline.h"

#include <array>
#include <string_view>

namespace atropos::lint {

namespace {

// Keywords that can directly precede a parenthesized group followed by `{`
// without the group being a function's parameter list.
bool IsControlKeyword(std::string_view s) {
  constexpr std::array<std::string_view, 10> kControl = {
      "if", "while", "for", "switch", "catch", "return",
      "sizeof", "alignof", "constexpr", "co_return",
  };
  for (std::string_view k : kControl) {
    if (s == k) {
      return true;
    }
  }
  return false;
}

bool IsTrailingQualifier(const Token& t) {
  return t.IsIdent("const") || t.IsIdent("noexcept") || t.IsIdent("override") ||
         t.IsIdent("final") || t.IsIdent("mutable") || t.IsPunct("&") || t.IsPunct("&&");
}

// Scans back from `from` to the index of the "(" matching the ")" at `from`.
// Returns SIZE_MAX when unbalanced.
size_t MatchingOpenParen(const std::vector<Token>& toks, size_t from) {
  int depth = 0;
  for (size_t j = from; j != static_cast<size_t>(-1); j--) {
    if (toks[j].IsPunct(")")) {
      depth++;
    } else if (toks[j].IsPunct("(")) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return static_cast<size_t>(-1);
}

enum class BlockKind { kFunction, kLambda, kNamespace, kClass, kPlain };

struct Classified {
  BlockKind kind = BlockKind::kPlain;
  std::string name;
  std::string qualified;
  int line = 0;
};

// Classifies the block whose "{" sits at token index `open`.
Classified Classify(const std::vector<Token>& toks, size_t open) {
  Classified out;
  if (open == 0) {
    return out;
  }

  // Skip trailing cv/ref/noexcept/override qualifiers, then an optional
  // trailing return type (`-> Type`), to land on the parameter list's ")".
  size_t k = open - 1;
  while (k > 0 && IsTrailingQualifier(toks[k])) {
    k--;
  }
  {
    size_t probe = k;
    int steps = 0;
    while (probe > 0 && steps < 16 &&
           (toks[probe].kind == TokenKind::kIdentifier || toks[probe].IsPunct("::") ||
            toks[probe].IsPunct("<") || toks[probe].IsPunct(">") || toks[probe].IsPunct("*") ||
            toks[probe].IsPunct("&"))) {
      probe--;
      steps++;
    }
    if (toks[probe].IsPunct("->") && probe > 0 && toks[probe - 1].IsPunct(")")) {
      k = probe - 1;
    }
  }

  // Lambda: `](…) {` or a capture list directly before the brace (`[&] {`).
  if (toks[k].IsPunct(")")) {
    size_t m = MatchingOpenParen(toks, k);
    if (m != static_cast<size_t>(-1) && m > 0 && toks[m - 1].IsPunct("]")) {
      out.kind = BlockKind::kLambda;
      out.name = "<lambda>";
      out.qualified = out.name;
      out.line = toks[m].line;
      return out;
    }
  } else if (toks[k].IsPunct("]")) {
    out.kind = BlockKind::kLambda;
    out.name = "<lambda>";
    out.qualified = out.name;
    out.line = toks[k].line;
    return out;
  }

  // Declaration header: tokens since the previous statement/block boundary.
  size_t hs = open;
  while (hs > 0 && !toks[hs - 1].IsPunct(";") && !toks[hs - 1].IsPunct("{") &&
         !toks[hs - 1].IsPunct("}")) {
    hs--;
  }
  size_t he = open;  // exclusive
  if (hs >= he) {
    return out;
  }

  if (toks[hs].IsIdent("namespace") || toks[hs].IsIdent("extern")) {
    out.kind = BlockKind::kNamespace;
    return out;
  }

  // Constructor init lists and access-specifier/label prefixes: resolve any
  // top-level ":" in the header. `) : inits` truncates the header (ctor);
  // `public:` / `case x:` drops the prefix.
  for (size_t j = hs; j < he;) {
    int depth = 0;
    size_t colon = static_cast<size_t>(-1);
    for (size_t p = j; p < he; p++) {
      if (toks[p].IsPunct("(") || toks[p].IsPunct("[")) {
        depth++;
      } else if (toks[p].IsPunct(")") || toks[p].IsPunct("]")) {
        depth--;
      } else if (depth == 0 && toks[p].IsPunct(":")) {
        colon = p;
        break;
      }
    }
    if (colon == static_cast<size_t>(-1)) {
      break;
    }
    if (colon > hs && toks[colon - 1].IsPunct(")")) {
      he = colon;  // ctor-init list: the declaration is everything before ":"
      break;
    }
    hs = colon + 1;  // label / access specifier: declaration starts after ":"
    j = hs;
  }
  if (hs >= he) {
    return out;
  }

  // Class-like header: class/struct/union/enum at top level before any "(".
  {
    int depth = 0;
    for (size_t p = hs; p < he; p++) {
      if (toks[p].IsPunct("(")) {
        break;
      }
      if (toks[p].IsPunct("<")) {
        depth++;
      } else if (toks[p].IsPunct(">")) {
        depth--;
      } else if (depth == 0 && (toks[p].IsIdent("class") || toks[p].IsIdent("struct") ||
                                toks[p].IsIdent("union") || toks[p].IsIdent("enum"))) {
        out.kind = BlockKind::kClass;
        out.line = toks[p].line;
        // Class name: the last top-level identifier before the body/base
        // clause, skipping capability macros (`IDENT(...)`), attributes, and
        // the `class` of `enum class`.
        int d = 0;
        for (size_t q = p + 1; q < he; q++) {
          if (toks[q].IsPunct("<") || toks[q].IsPunct("[")) {
            d++;
          } else if (toks[q].IsPunct(">") || toks[q].IsPunct("]")) {
            d--;
          } else if (d == 0 && toks[q].IsPunct(":")) {
            break;  // base clause / enum underlying type
          } else if (d == 0 && toks[q].kind == TokenKind::kIdentifier) {
            if (toks[q].IsIdent("class") || toks[q].IsIdent("struct") ||
                toks[q].IsIdent("final") || toks[q].IsIdent("alignas")) {
              continue;
            }
            if (q + 1 < he && toks[q + 1].IsPunct("(")) {
              // Macro invocation in the header (e.g. ATROPOS_CAPABILITY(...)).
              int pd = 0;
              size_t r = q + 1;
              for (; r < he; r++) {
                if (toks[r].IsPunct("(")) {
                  pd++;
                } else if (toks[r].IsPunct(")") && --pd == 0) {
                  break;
                }
              }
              q = r;
              continue;
            }
            out.name = toks[q].text;
          }
        }
        return out;
      }
    }
  }

  // A top-level "=" means this brace is an initializer, not a body.
  {
    int depth = 0;
    for (size_t p = hs; p < he; p++) {
      if (toks[p].IsPunct("(") || toks[p].IsPunct("[")) {
        depth++;
      } else if (toks[p].IsPunct(")") || toks[p].IsPunct("]")) {
        depth--;
      } else if (depth == 0 && toks[p].IsPunct("=")) {
        return out;
      }
    }
  }

  // Function: header ends `name ( params )` (after the qualifier skip above,
  // which may have moved `k` inside the truncated header), possibly followed
  // by thread-safety annotation macros — `ATROPOS_REQUIRES(mu_)` attaches to
  // the declaration but its argument list is not the parameter list.
  size_t end = he - 1;
  while (true) {
    while (end > hs && (IsTrailingQualifier(toks[end]) ||
                        (toks[end].kind == TokenKind::kIdentifier &&
                         toks[end].text.rfind("ATROPOS_", 0) == 0))) {
      end--;  // qualifiers and paren-less macros (ATROPOS_NO_THREAD_SAFETY_ANALYSIS)
    }
    if (toks[end].IsPunct(")")) {
      size_t macro_open = MatchingOpenParen(toks, end);
      if (macro_open != static_cast<size_t>(-1) && macro_open > hs &&
          toks[macro_open - 1].kind == TokenKind::kIdentifier &&
          toks[macro_open - 1].text.rfind("ATROPOS_", 0) == 0) {
        end = macro_open - 1;  // annotation group: the loop skips its name next
        continue;
      }
    }
    break;
  }
  if (!toks[end].IsPunct(")")) {
    return out;
  }
  size_t m = MatchingOpenParen(toks, end);
  if (m == static_cast<size_t>(-1) || m <= hs) {
    return out;
  }
  size_t pre = m - 1;
  std::string name;
  if (toks[pre].kind == TokenKind::kIdentifier) {
    if (IsControlKeyword(toks[pre].text)) {
      return out;
    }
    name = toks[pre].text;
    if (pre > hs && toks[pre - 1].IsPunct("~")) {
      name = "~" + name;
      pre--;
    } else if (pre > hs && toks[pre - 1].IsIdent("operator")) {
      name = "operator " + name;
      pre--;
    }
  } else if (toks[pre].kind == TokenKind::kPunct && pre > hs && toks[pre - 1].IsIdent("operator")) {
    name = "operator" + toks[pre].text;
    pre--;
  } else {
    return out;
  }

  // Collect `Qualifier::` prefixes for the qualified name.
  std::string qualified = name;
  size_t p = pre;
  while (p >= hs + 2 && toks[p - 1].IsPunct("::") &&
         toks[p - 2].kind == TokenKind::kIdentifier) {
    qualified = toks[p - 2].text + "::" + qualified;
    p -= 2;
  }

  out.kind = BlockKind::kFunction;
  out.name = std::move(name);
  out.qualified = std::move(qualified);
  out.line = toks[m].line;
  return out;
}

}  // namespace

std::string Outline::EnclosingClass(size_t i) const {
  const ClassInfo* best = nullptr;
  for (const ClassInfo& c : classes) {
    if (c.name.empty() || c.body_begin >= i || i >= c.body_end) {
      continue;
    }
    if (best == nullptr || c.body_end - c.body_begin < best->body_end - best->body_begin) {
      best = &c;
    }
  }
  return best != nullptr ? best->name : std::string();
}

int Outline::EnclosingFunction(size_t i) const {
  int best = -1;
  size_t best_span = static_cast<size_t>(-1);
  for (size_t f = 0; f < functions.size(); f++) {
    const FunctionInfo& fn = functions[f];
    if (fn.body_begin < i && i < fn.body_end && fn.body_end - fn.body_begin < best_span) {
      best = static_cast<int>(f);
      best_span = fn.body_end - fn.body_begin;
    }
  }
  return best;
}

Outline BuildOutline(const std::vector<Token>& toks) {
  Outline out;
  struct Open {
    bool is_function;  // function or lambda: owns an entry in out.functions
    bool is_class;     // class-like: owns an entry in out.classes
    int index;         // entry owned (function or class), or the innermost
                       // function in scope after this block opens
  };
  std::vector<Open> stack;
  int current_function = -1;

  for (size_t i = 0; i < toks.size(); i++) {
    if (toks[i].IsPunct("{")) {
      Classified c = Classify(toks, i);
      if (c.kind == BlockKind::kFunction || c.kind == BlockKind::kLambda) {
        FunctionInfo fn;
        fn.name = c.name;
        fn.qualified = c.qualified;
        fn.line = c.line;
        fn.body_begin = i;
        fn.is_lambda = c.kind == BlockKind::kLambda;
        fn.parent = current_function;
        out.functions.push_back(std::move(fn));
        current_function = static_cast<int>(out.functions.size()) - 1;
        stack.push_back(Open{true, false, current_function});
      } else if (c.kind == BlockKind::kClass) {
        ClassInfo cls;
        cls.name = c.name;
        cls.line = c.line;
        cls.body_begin = i;
        out.classes.push_back(std::move(cls));
        stack.push_back(
            Open{false, true, static_cast<int>(out.classes.size()) - 1});
      } else {
        stack.push_back(Open{false, false, current_function});
      }
    } else if (toks[i].IsPunct("}")) {
      if (stack.empty()) {
        continue;  // stray brace; keep going
      }
      Open top = stack.back();
      stack.pop_back();
      if (top.is_function) {
        out.functions[static_cast<size_t>(top.index)].body_end = i;
        current_function = out.functions[static_cast<size_t>(top.index)].parent;
      } else if (top.is_class) {
        out.classes[static_cast<size_t>(top.index)].body_end = i;
      }
    }
  }
  // Unterminated bodies (malformed input): close them at EOF.
  for (FunctionInfo& fn : out.functions) {
    if (fn.body_end == 0) {
      fn.body_end = toks.size() - 1;
    }
  }
  for (ClassInfo& cls : out.classes) {
    if (cls.body_end == 0) {
      cls.body_end = toks.size() - 1;
    }
  }
  return out;
}

}  // namespace atropos::lint
