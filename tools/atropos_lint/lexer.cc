#include "tools/atropos_lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace atropos::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Two-character operators lexed as one token. Three-char ops (<<=, ...) are
// irrelevant to every check, so two is enough.
constexpr const char* kTwoCharOps[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

struct Directive {
  int line = 0;
  bool code_before = false;  // code tokens already emitted on this line
  std::set<std::string> allow;       // per-line suppressions
  std::set<std::string> allow_file;  // file-wide suppressions
  bool digest_path = false;
  bool alloc_free = false;
  bool atomics_protocol = false;
};

std::string Trimmed(std::string_view s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

// Parses the body of an `atropos-lint:` directive out of a comment's text.
// The tag must START the comment (after whitespace): comments that merely
// mention the directive syntax mid-prose are documentation, not directives.
void ParseDirective(std::string_view comment, Directive* out) {
  constexpr std::string_view kTag = "atropos-lint:";
  size_t at = comment.find_first_not_of(" \t");
  if (at == std::string_view::npos || comment.substr(at).size() < kTag.size() ||
      comment.substr(at, kTag.size()) != kTag) {
    return;
  }
  std::string_view rest = comment.substr(at + kTag.size());
  auto parse_list = [&](std::string_view keyword, std::set<std::string>* into) {
    size_t kw = rest.find(keyword);
    if (kw == std::string_view::npos) {
      return;
    }
    size_t open = rest.find('(', kw);
    size_t close = rest.find(')', kw);
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      return;
    }
    std::string_view list = rest.substr(open + 1, close - open - 1);
    while (!list.empty()) {
      size_t comma = list.find(',');
      std::string name = Trimmed(list.substr(0, comma));
      if (!name.empty()) {
        into->insert(name);
      }
      if (comma == std::string_view::npos) {
        break;
      }
      list.remove_prefix(comma + 1);
    }
  };
  // allow-file first: a plain `allow(` search would also match inside it.
  parse_list("allow-file", &out->allow_file);
  if (out->allow_file.empty()) {
    parse_list("allow", &out->allow);
  }
  if (rest.find("digest-path") != std::string_view::npos) {
    out->digest_path = true;
  }
  // The alloc-free marker must be the directive's entire body, so that
  // `allow(alloc-free)` (a suppression naming the check) is not mistaken for
  // a marker. Same for the atomics-protocol opt-in marker.
  if (Trimmed(rest) == "alloc-free") {
    out->alloc_free = true;
  }
  if (Trimmed(rest) == "atomics-protocol") {
    out->atomics_protocol = true;
  }
}

}  // namespace

LexedFile Lex(std::string_view src) {
  LexedFile out;
  std::vector<Directive> directives;
  size_t i = 0;
  int line = 1;
  int last_token_line = 0;  // line of the most recently emitted token

  auto emit = [&](TokenKind kind, std::string text, int at_line) {
    out.tokens.push_back(Token{kind, std::move(text), at_line});
    last_token_line = at_line;
  };

  auto record_comment = [&](std::string_view text, int at_line) {
    Directive d;
    d.line = at_line;
    d.code_before = (last_token_line == at_line);
    ParseDirective(text, &d);
    if (!d.allow.empty() || !d.allow_file.empty() || d.digest_path || d.alloc_free ||
        d.atomics_protocol) {
      directives.push_back(std::move(d));
    }
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Preprocessor directive: only when '#' starts the line's code. Consumed
    // to end of line, honoring backslash continuations.
    if (c == '#' && last_token_line != line) {
      while (i < src.size() && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
          line++;
          i++;
        }
        i++;
      }
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t start = i + 2;
      while (i < src.size() && src[i] != '\n') {
        i++;
      }
      record_comment(src.substr(start, i - start), line);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      int start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          line++;
        }
        i++;
      }
      record_comment(src.substr(start, i - start), start_line);
      i = std::min(src.size(), i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim", with optional encoding prefix.
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      size_t open = src.find('(', i + 2);
      if (open != std::string_view::npos) {
        std::string delim(src.substr(i + 2, open - (i + 2)));
        std::string closer = ")" + delim + "\"";
        size_t end = src.find(closer, open + 1);
        if (end == std::string_view::npos) {
          end = src.size();
        }
        int start_line = line;
        line += static_cast<int>(
            std::count(src.begin() + static_cast<long>(i), src.begin() + static_cast<long>(end), '\n'));
        emit(TokenKind::kString, std::string(src.substr(open + 1, end - open - 1)), start_line);
        i = std::min(src.size(), end + closer.size());
        continue;
      }
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) {
        i++;
      }
      // An encoding prefix (u8"...", L'x') tokenizes as identifier + literal,
      // which is fine for every check in this tool.
      emit(TokenKind::kIdentifier, std::string(src.substr(start, i - start)), line);
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < src.size() && IsDigit(src[i + 1]))) {
      size_t start = i;
      while (i < src.size()) {
        char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          i++;
        } else if (d == '\'' && i + 1 < src.size() && IsIdentChar(src[i + 1])) {
          i += 2;  // digit separator: 100'000
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          i++;  // exponent sign
        } else {
          break;
        }
      }
      emit(TokenKind::kNumber, std::string(src.substr(start, i - start)), line);
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      size_t start = ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          i++;
        }
        if (src[i] == '\n') {
          line++;
        }
        i++;
      }
      emit(quote == '"' ? TokenKind::kString : TokenKind::kChar,
           std::string(src.substr(start, i - start)), start_line);
      i = std::min(src.size(), i + 1);
      continue;
    }
    // Punctuation: try a two-char operator, else a single char.
    if (i + 1 < src.size()) {
      std::string two(src.substr(i, 2));
      bool matched = false;
      for (const char* op : kTwoCharOps) {
        if (two == op) {
          emit(TokenKind::kPunct, two, line);
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
    }
    emit(TokenKind::kPunct, std::string(1, c), line);
    i++;
  }
  emit(TokenKind::kEof, "", line);

  // Resolve directives: an end-of-line comment suppresses its own line; a
  // standalone comment suppresses the next line that has code.
  for (const Directive& d : directives) {
    for (const std::string& check : d.allow_file) {
      out.file_suppressions.insert(check);
      out.file_suppression_lines.emplace(check, d.line);  // first marker wins
    }
    if (d.digest_path) {
      out.digest_path_marker = true;
    }
    if (d.atomics_protocol) {
      out.atomics_protocol_marker = true;
    }
    if (d.alloc_free) {
      out.alloc_free_lines.push_back(d.line);
    }
    if (d.allow.empty()) {
      continue;
    }
    int target = d.line;
    if (!d.code_before) {
      target = 0;
      for (const Token& t : out.tokens) {
        if (t.kind != TokenKind::kEof && t.line > d.line) {
          target = t.line;
          break;
        }
      }
      if (target == 0) {
        target = d.line;
      }
    }
    out.line_suppressions[target].insert(d.allow.begin(), d.allow.end());
    for (const std::string& check : d.allow) {
      out.suppression_sites.push_back(SuppressionSite{d.line, target, check});
    }
  }
  return out;
}

}  // namespace atropos::lint
