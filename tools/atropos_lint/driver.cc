#include "tools/atropos_lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string NormalizeSlashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

// Paths never linted when reached through --dir walking: build trees and the
// lint fixture corpus (fixtures are lint *inputs* with seeded violations).
bool IsExcludedFromWalk(const std::string& normalized) {
  return normalized.find("/build") != std::string::npos ||
         normalized.rfind("build", 0) == 0 ||
         normalized.find("lint/fixtures") != std::string::npos ||
         normalized.find("lint/golden") != std::string::npos;
}

bool CheckEnabled(const std::set<std::string>& enabled, std::string_view name) {
  return enabled.empty() || enabled.count(std::string(name)) > 0;
}

// A suppression grant is only judged stale when everything it names actually
// ran: under a --checks subset, a grant for a disabled check is unknowable
// (it may well suppress a diagnostic on a full run), and a "*" grant is only
// knowable when every check ran.
bool StaleEvaluable(const std::set<std::string>& enabled, const std::string& name) {
  if (name == "*") {
    return enabled.empty();
  }
  return CheckEnabled(enabled, name);
}

// The whole pipeline behind both RunLint and the test entry points: lex +
// outline every source, build the cross-file call graph, run each enabled
// check over the whole program, then apply suppressions per file (with a
// usage audit) and flag stale markers. Stale-suppression findings are
// reported after filtering, so they are themselves unsuppressable.
RunResult LintSources(std::vector<std::pair<std::string, std::string>> sources,
                      const std::set<std::string>& enabled, DiagnosticSink* seeded_sink) {
  Program program;
  program.files.reserve(sources.size());
  for (std::pair<std::string, std::string>& src : sources) {
    SourceFile file;
    file.path = src.first;
    file.repo_path = NormalizeSlashes(src.first);
    file.lex = Lex(src.second);
    file.outline = BuildOutline(file.lex.tokens);
    program.files.push_back(std::move(file));
  }
  program.call_graph.Build(program.files);

  DiagnosticSink local_sink;
  DiagnosticSink& sink = seeded_sink != nullptr ? *seeded_sink : local_sink;
  for (const std::unique_ptr<Check>& check : MakeAllChecks()) {
    if (!CheckEnabled(enabled, check->name())) {
      continue;
    }
    check->AnalyzeProgram(program, &sink);
  }

  std::vector<SuppressionUsage> usages(program.files.size());
  for (size_t i = 0; i < program.files.size(); i++) {
    const SourceFile& file = program.files[i];
    sink.ApplySuppressions(file.path, file.lex.line_suppressions, file.lex.file_suppressions,
                           &usages[i]);
  }

  if (CheckEnabled(enabled, kStaleSuppressionCheck)) {
    for (size_t i = 0; i < program.files.size(); i++) {
      const SourceFile& file = program.files[i];
      for (const SuppressionSite& site : file.lex.suppression_sites) {
        if (!StaleEvaluable(enabled, site.check)) {
          continue;
        }
        if (usages[i].line_used.count({site.target_line, site.check}) == 0) {
          sink.Report(file.path, site.directive_line, std::string(kStaleSuppressionCheck),
                      "suppression 'allow(" + site.check +
                          ")' does not match any diagnostic; remove the stale marker");
        }
      }
      for (const auto& [check, line] : file.lex.file_suppression_lines) {
        if (!StaleEvaluable(enabled, check)) {
          continue;
        }
        if (usages[i].file_used.count(check) == 0) {
          sink.Report(file.path, line, std::string(kStaleSuppressionCheck),
                      "suppression 'allow-file(" + check +
                          ")' does not match any diagnostic; remove the stale marker");
        }
      }
    }
  }

  sink.Finalize();
  RunResult result;
  result.diagnostics = sink.diagnostics();
  result.suppressed = sink.suppressed_count();
  result.files_analyzed = program.files.size();
  return result;
}

}  // namespace

void Check::AnalyzeProgram(const Program& program, DiagnosticSink* sink) {
  for (const SourceFile& file : program.files) {
    Analyze(file, sink);
  }
}

std::vector<std::unique_ptr<Check>> MakeAllChecks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(MakeAllocFreeCheck());
  checks.push_back(MakeAtomicsProtocolCheck());
  checks.push_back(MakeCapiPairingCheck());
  checks.push_back(MakeCancelActionSafetyCheck());
  checks.push_back(MakeDeterminismCheck());
  checks.push_back(MakeGuardedByCheck());
  checks.push_back(MakeLockOrderCheck());
  return checks;
}

RunResult RunLint(const DriverOptions& options) {
  std::vector<std::string> paths = options.files;
  for (const std::string& dir : options.dirs) {
    std::error_code ec;
    fs::recursive_directory_iterator it(dir, ec);
    if (ec) {
      continue;
    }
    for (const fs::directory_entry& entry : it) {
      if (!entry.is_regular_file() || !HasLintableExtension(entry.path())) {
        continue;
      }
      std::string p = NormalizeSlashes(entry.path().generic_string());
      if (IsExcludedFromWalk(p)) {
        continue;
      }
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  DiagnosticSink sink;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      sink.Report(path, 0, "driver", "cannot open file");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.emplace_back(path, buf.str());
  }
  return LintSources(std::move(sources), options.checks, &sink);
}

RunResult LintBuffer(const std::string& display_path, const std::string& contents,
                     const std::set<std::string>& checks) {
  return LintBuffers({{display_path, contents}}, checks);
}

RunResult LintBuffers(const std::vector<std::pair<std::string, std::string>>& buffers,
                      const std::set<std::string>& checks) {
  return LintSources(buffers, checks, nullptr);
}

}  // namespace atropos::lint
