#include "tools/atropos_lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string NormalizeSlashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

// Paths never linted when reached through --dir walking: build trees and the
// lint fixture corpus (fixtures are lint *inputs* with seeded violations).
bool IsExcludedFromWalk(const std::string& normalized) {
  return normalized.find("/build") != std::string::npos ||
         normalized.rfind("build", 0) == 0 ||
         normalized.find("lint/fixtures") != std::string::npos ||
         normalized.find("lint/golden") != std::string::npos;
}

void AnalyzeSource(const std::string& display_path, const std::string& contents,
                   const std::set<std::string>& enabled, DiagnosticSink* sink) {
  SourceFile file;
  file.path = display_path;
  file.repo_path = NormalizeSlashes(display_path);
  file.lex = Lex(contents);
  file.outline = BuildOutline(file.lex.tokens);

  for (const std::unique_ptr<Check>& check : MakeAllChecks()) {
    if (!enabled.empty() && enabled.count(std::string(check->name())) == 0) {
      continue;
    }
    check->Analyze(file, sink);
  }
  sink->ApplySuppressions(file.path, file.lex.line_suppressions, file.lex.file_suppressions);
}

}  // namespace

std::vector<std::unique_ptr<Check>> MakeAllChecks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(MakeAllocFreeCheck());
  checks.push_back(MakeCapiPairingCheck());
  checks.push_back(MakeCancelActionSafetyCheck());
  checks.push_back(MakeDeterminismCheck());
  checks.push_back(MakeLockOrderCheck());
  return checks;
}

RunResult RunLint(const DriverOptions& options) {
  std::vector<std::string> paths = options.files;
  for (const std::string& dir : options.dirs) {
    std::error_code ec;
    fs::recursive_directory_iterator it(dir, ec);
    if (ec) {
      continue;
    }
    for (const fs::directory_entry& entry : it) {
      if (!entry.is_regular_file() || !HasLintableExtension(entry.path())) {
        continue;
      }
      std::string p = NormalizeSlashes(entry.path().generic_string());
      if (IsExcludedFromWalk(p)) {
        continue;
      }
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  RunResult result;
  DiagnosticSink sink;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      sink.Report(path, 0, "driver", "cannot open file");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    AnalyzeSource(path, buf.str(), options.checks, &sink);
    result.files_analyzed++;
  }
  sink.Finalize();
  result.diagnostics = sink.diagnostics();
  result.suppressed = sink.suppressed_count();
  return result;
}

RunResult LintBuffer(const std::string& display_path, const std::string& contents,
                     const std::set<std::string>& checks) {
  DiagnosticSink sink;
  AnalyzeSource(display_path, contents, checks, &sink);
  sink.Finalize();
  RunResult result;
  result.diagnostics = sink.diagnostics();
  result.suppressed = sink.suppressed_count();
  result.files_analyzed = 1;
  return result;
}

}  // namespace atropos::lint
