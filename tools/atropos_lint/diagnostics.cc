#include "tools/atropos_lint/diagnostics.h"

namespace atropos::lint {

std::string Diagnostic::Format() const {
  return path + ":" + std::to_string(line) + ": [" + check + "] " + message;
}

void DiagnosticSink::ApplySuppressions(
    const std::string& path, const std::map<int, std::set<std::string>>& line_suppressions,
    const std::set<std::string>& file_suppressions, SuppressionUsage* usage) {
  auto matches = [](const std::set<std::string>& set, const std::string& check) {
    return set.count(check) > 0 || set.count("*") > 0;
  };
  std::vector<Diagnostic> kept;
  kept.reserve(diags_.size());
  for (Diagnostic& d : diags_) {
    bool drop = false;
    if (d.path == path) {
      if (matches(file_suppressions, d.check)) {
        drop = true;
        if (usage != nullptr) {
          if (file_suppressions.count(d.check) > 0) {
            usage->file_used.insert(d.check);
          }
          if (file_suppressions.count("*") > 0) {
            usage->file_used.insert("*");
          }
        }
      } else {
        auto it = line_suppressions.find(d.line);
        drop = it != line_suppressions.end() && matches(it->second, d.check);
        if (drop && usage != nullptr) {
          if (it->second.count(d.check) > 0) {
            usage->line_used.emplace(d.line, d.check);
          }
          if (it->second.count("*") > 0) {
            usage->line_used.emplace(d.line, "*");
          }
        }
      }
    }
    if (drop) {
      suppressed_++;
    } else {
      kept.push_back(std::move(d));
    }
  }
  diags_ = std::move(kept);
}

}  // namespace atropos::lint
