// Shared guard-scope machinery for the lock-aware checks (lock-order,
// guarded-by): recognizing RAII guard declarations, normalizing mutex
// expressions to stable identities, and splitting lock argument lists.
//
// Extracted from the lock-order check so the guarded-by verification walks
// scopes with the exact same token-level rules the lock graph is built from.

#ifndef TOOLS_ATROPOS_LINT_GUARD_SCOPE_H_
#define TOOLS_ATROPOS_LINT_GUARD_SCOPE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/atropos_lint/token.h"

namespace atropos::lint {

// std:: scope guards whose constructor acquires its mutex arguments.
bool IsStdGuardType(const std::string& s);

// std:: lock tags that make a guard argument a non-acquisition.
bool IsLockTag(const std::string& s);

// Normalizes the mutex expression tokens [begin, end): joins identifiers and
// member accesses, dropping `this->`, `std::`, `&`, and `*`.
std::string NormalizeMutexExpr(const std::vector<Token>& toks, size_t begin, size_t end);

// Start index of the member-access expression ending just before `end`
// (exclusive): scans back over identifiers, ".", "->", "::", and "this",
// never crossing below `floor + 1`.
size_t LockExprStart(const std::vector<Token>& toks, size_t end, size_t floor);

// Splits the top-level comma-separated arguments of the call whose "(" is at
// `open`, normalized as mutex identities; arguments carrying a lock tag
// (std::defer_lock etc.) are dropped entirely.
std::vector<std::string> SplitLockArgs(const std::vector<Token>& toks, size_t open, size_t limit);

// Skips the template-argument list starting at `j` when toks[j] is "<";
// returns the index just past the closing ">" (or `j` unchanged when toks[j]
// is not "<"). `limit` bounds the scan.
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t j, size_t limit);

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_GUARD_SCOPE_H_
