// File collection and check execution for atropos_lint.

#ifndef TOOLS_ATROPOS_LINT_DRIVER_H_
#define TOOLS_ATROPOS_LINT_DRIVER_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/atropos_lint/diagnostics.h"

namespace atropos::lint {

struct DriverOptions {
  std::vector<std::string> files;  // explicit files
  std::vector<std::string> dirs;   // walked recursively for .h/.cc/.cpp
  std::set<std::string> checks;    // empty = all checks
};

struct RunResult {
  std::vector<Diagnostic> diagnostics;
  size_t suppressed = 0;
  size_t files_analyzed = 0;
};

// Lexes, outlines, and analyzes every collected file with the enabled
// checks; diagnostics come back suppression-filtered and sorted.
RunResult RunLint(const DriverOptions& options);

// Analyzes a single in-memory buffer (used by the fixture/golden tests).
// `display_path` is used both for diagnostics and digest-path matching.
RunResult LintBuffer(const std::string& display_path, const std::string& contents,
                     const std::set<std::string>& checks = {});

// Analyzes several in-memory buffers as one program, so tests can exercise
// cross-file call-graph resolution. Buffers are (display_path, contents).
RunResult LintBuffers(const std::vector<std::pair<std::string, std::string>>& buffers,
                      const std::set<std::string>& checks = {});

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_DRIVER_H_
