// Structural outline of a lexed file: function and lambda body spans.
//
// atropos_lint does not parse C++; it recovers just enough structure for
// scope-based checks by classifying every brace-delimited block. A block is a
// function body when its declaration header looks like `name ( params )`
// (possibly qualified, possibly with cv/ref/noexcept/trailing-return after
// the parameter list), a lambda body when the parameter list is preceded by a
// capture list `]`, and otherwise a namespace / class / plain block that is
// transparent to the enclosing function.

#ifndef TOOLS_ATROPOS_LINT_OUTLINE_H_
#define TOOLS_ATROPOS_LINT_OUTLINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/atropos_lint/token.h"

namespace atropos::lint {

struct FunctionInfo {
  std::string name;       // simple name; "<lambda>" for lambdas
  std::string qualified;  // Class::name when written qualified, else == name
  int line = 0;           // line of the opening brace's declaration
  size_t body_begin = 0;  // token index of '{'
  size_t body_end = 0;    // token index of the matching '}'
  bool is_lambda = false;
  int parent = -1;        // index of the lexically enclosing function, or -1
};

struct ClassInfo {
  std::string name;       // simple name; "" for anonymous class-like blocks
  int line = 0;           // line of the opening brace
  size_t body_begin = 0;  // token index of '{'
  size_t body_end = 0;    // token index of the matching '}'
};

struct Outline {
  std::vector<FunctionInfo> functions;
  std::vector<ClassInfo> classes;

  // Innermost function whose body span contains token index `i`, or -1.
  int EnclosingFunction(size_t i) const;

  // Name of the innermost named class/struct whose body span contains token
  // index `i`, or "" when not inside a class body.
  std::string EnclosingClass(size_t i) const;
};

Outline BuildOutline(const std::vector<Token>& tokens);

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_OUTLINE_H_
