#include "tools/atropos_lint/call_graph.h"

#include <algorithm>
#include <array>
#include <set>
#include <string_view>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

bool IsCallPositionKeyword(std::string_view s) {
  constexpr std::array<std::string_view, 16> kSkip = {
      "if",       "while",    "for",      "switch",   "catch",     "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",  "static_assert",
      "co_return", "co_await", "co_yield", "defined",
  };
  for (std::string_view k : kSkip) {
    if (s == k) {
      return true;
    }
  }
  return false;
}

// The class qualifier immediately before the method name in an out-of-line
// qualified definition: "atropos::CancelBoard::TryDeliver" -> "CancelBoard".
std::string ImmediateQualifier(const std::string& qualified, const std::string& name) {
  if (qualified.size() <= name.size() + 2) {
    return "";
  }
  std::string_view prefix(qualified);
  prefix.remove_suffix(name.size() + 2);  // drop "::name"
  size_t last = prefix.rfind("::");
  return std::string(last == std::string_view::npos ? prefix : prefix.substr(last + 2));
}

void SortUnique(std::vector<FunctionRef>* refs) {
  std::sort(refs->begin(), refs->end());
  refs->erase(std::unique(refs->begin(), refs->end()), refs->end());
}

}  // namespace

void CallGraph::Build(const std::vector<SourceFile>& files) {
  calls_.assign(files.size(), {});
  class_of_.assign(files.size(), {});
  by_name_.clear();
  methods_.clear();

  // Pass 1: class names known anywhere in the program — from class-like block
  // outlines and from the qualifiers of out-of-line method definitions.
  std::set<std::string> known_classes;
  for (const SourceFile& file : files) {
    for (const ClassInfo& cls : file.outline.classes) {
      if (!cls.name.empty()) {
        known_classes.insert(cls.name);
      }
    }
    for (const FunctionInfo& fn : file.outline.functions) {
      std::string cls = ImmediateQualifier(fn.qualified, fn.name);
      if (!cls.empty()) {
        known_classes.insert(cls);
      }
    }
  }

  // Pass 2: definition indexes (by name, by class) and per-definition class.
  for (size_t fi = 0; fi < files.size(); fi++) {
    const Outline& outline = files[fi].outline;
    class_of_[fi].resize(outline.functions.size());
    for (size_t fj = 0; fj < outline.functions.size(); fj++) {
      const FunctionInfo& fn = outline.functions[fj];
      if (fn.is_lambda) {
        continue;
      }
      FunctionRef ref{static_cast<int>(fi), static_cast<int>(fj)};
      by_name_[fn.name].push_back(ref);
      std::string cls = ImmediateQualifier(fn.qualified, fn.name);
      if (cls.empty()) {
        cls = outline.EnclosingClass(fn.body_begin);
      }
      class_of_[fi][fj] = cls;
      if (!cls.empty()) {
        methods_[cls][fn.name].push_back(ref);
      }
    }
  }

  // Pass 3: per-file variable/member declared types, restricted to types that
  // are known program classes ("CancelBoard board_;" -> board_: CancelBoard).
  std::vector<std::map<std::string, std::string>> var_types(files.size());
  for (size_t fi = 0; fi < files.size(); fi++) {
    const std::vector<Token>& toks = files[fi].tokens();
    for (size_t i = 0; i + 1 < toks.size(); i++) {
      if (toks[i].kind != TokenKind::kIdentifier || known_classes.count(toks[i].text) == 0) {
        continue;
      }
      if (i > 0 && (toks[i - 1].IsPunct("::") || toks[i - 1].IsPunct(".") ||
                    toks[i - 1].IsPunct("->") || toks[i - 1].IsIdent("class") ||
                    toks[i - 1].IsIdent("struct") || toks[i - 1].IsIdent("enum"))) {
        continue;  // qualifier use or the type's own definition, not a declaration
      }
      size_t j = i + 1;
      if (j < toks.size() && toks[j].IsPunct("<")) {  // template arguments
        int depth = 0;
        for (; j < toks.size(); j++) {
          if (toks[j].IsPunct("<")) {
            depth++;
          } else if (toks[j].IsPunct(">") && --depth == 0) {
            j++;
            break;
          } else if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) {
            break;  // stray comparison, not template args
          }
        }
      }
      while (j < toks.size() &&
             (toks[j].IsPunct("*") || toks[j].IsPunct("&") || toks[j].IsPunct("&&") ||
              toks[j].IsIdent("const"))) {
        j++;
      }
      if (j + 1 >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      const Token& after = toks[j + 1];
      if (after.IsPunct(";") || after.IsPunct("=") || after.IsPunct("{") || after.IsPunct(",") ||
          after.IsPunct(")") || after.IsPunct("(")) {
        var_types[fi].emplace(toks[j].text, toks[i].text);
      }
    }
  }

  // Pass 4: call sites, resolved.
  for (size_t fi = 0; fi < files.size(); fi++) {
    const SourceFile& file = files[fi];
    const std::vector<Token>& toks = file.tokens();
    calls_[fi].resize(file.outline.functions.size());
    for (size_t fj = 0; fj < file.outline.functions.size(); fj++) {
      const FunctionInfo& fn = file.outline.functions[fj];
      std::string cls_context = fn.is_lambda
                                    ? file.outline.EnclosingClass(fn.body_begin)
                                    : class_of_[fi][fj];
      for (size_t i = fn.body_begin + 1; i < fn.body_end && i + 1 < toks.size(); i++) {
        if (toks[i].kind != TokenKind::kIdentifier || !toks[i + 1].IsPunct("(") ||
            IsCallPositionKeyword(toks[i].text)) {
          continue;
        }
        CallSite site;
        site.name = toks[i].text;
        site.line = toks[i].line;
        site.token = i;

        std::string receiver_type;
        std::string qualifier;
        if (i >= 2 && toks[i - 1].IsPunct("::") && toks[i - 2].kind == TokenKind::kIdentifier) {
          qualifier = toks[i - 2].text;
        } else if (i >= 2 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
          if (toks[i - 2].kind == TokenKind::kIdentifier) {
            const std::string& recv = toks[i - 2].text;
            if (recv == "this") {
              receiver_type = cls_context;
            } else {
              auto it = var_types[fi].find(recv);
              if (it != var_types[fi].end()) {
                receiver_type = it->second;
              }
            }
          }
          if (receiver_type.empty()) {
            receiver_type = "?";  // member call on an unknown receiver
          }
        }

        if (!qualifier.empty()) {
          site.targets = MethodsOf(qualifier, site.name);
        } else if (!receiver_type.empty() && receiver_type != "?") {
          site.targets = MethodsOf(receiver_type, site.name);
          if (site.targets.empty()) {
            // Virtual dispatch through a base type: fall back to name lookup
            // so overrides defined on derived classes stay reachable.
            site.targets =
                Resolve(files, static_cast<int>(fi), "", site.name, kMaxCrossFileCandidates);
          }
        } else if (receiver_type == "?") {
          // A member call on a receiver whose type we could not infer: a
          // cross-file fallback is accepted only when the method name is
          // unambiguous program-wide — fanning out to every class that
          // happens to define e.g. a `Cancel` method creates speculative
          // edges into unrelated subsystems.
          site.targets = Resolve(files, static_cast<int>(fi), "", site.name, 1);
        } else {
          site.targets = Resolve(files, static_cast<int>(fi), cls_context, site.name,
                                 kMaxCrossFileCandidates);
        }
        SortUnique(&site.targets);
        calls_[fi][fj].push_back(std::move(site));
      }
    }
  }
}

std::vector<FunctionRef> CallGraph::Resolve(const std::vector<SourceFile>& files, int file_index,
                                            const std::string& cls_context,
                                            const std::string& name,
                                            size_t max_cross_file) const {
  // Same-class methods win for bare calls inside a method body.
  if (!cls_context.empty()) {
    std::vector<FunctionRef> same_class = MethodsOf(cls_context, name);
    if (!same_class.empty()) {
      return same_class;
    }
  }
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return {};
  }
  std::vector<FunctionRef> same_file;
  for (const FunctionRef& ref : it->second) {
    if (ref.file == file_index) {
      same_file.push_back(ref);
    }
  }
  if (!same_file.empty()) {
    return same_file;
  }
  if (it->second.size() > max_cross_file) {
    return {};  // too ambiguous to fan out
  }
  (void)files;
  return it->second;
}

const std::vector<CallSite>& CallGraph::CallsIn(const FunctionRef& ref) const {
  static const std::vector<CallSite> kEmpty;
  if (!ref.valid() || static_cast<size_t>(ref.file) >= calls_.size() ||
      static_cast<size_t>(ref.fn) >= calls_[static_cast<size_t>(ref.file)].size()) {
    return kEmpty;
  }
  return calls_[static_cast<size_t>(ref.file)][static_cast<size_t>(ref.fn)];
}

std::vector<FunctionRef> CallGraph::DefinitionsNamed(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<FunctionRef>{} : it->second;
}

std::vector<FunctionRef> CallGraph::MethodsOf(const std::string& cls,
                                              const std::string& name) const {
  auto ci = methods_.find(cls);
  if (ci == methods_.end()) {
    return {};
  }
  auto mi = ci->second.find(name);
  return mi == ci->second.end() ? std::vector<FunctionRef>{} : mi->second;
}

const std::string& CallGraph::ClassOf(const FunctionRef& ref) const {
  static const std::string kEmpty;
  if (!ref.valid() || static_cast<size_t>(ref.file) >= class_of_.size() ||
      static_cast<size_t>(ref.fn) >= class_of_[static_cast<size_t>(ref.file)].size()) {
    return kEmpty;
  }
  return class_of_[static_cast<size_t>(ref.file)][static_cast<size_t>(ref.fn)];
}

}  // namespace atropos::lint
