// Static lock-acquisition graph and cycle detection for the lock-order check.
//
// Nodes are mutex identities (normalized source expressions like
// `registry_mu_`); a directed edge A -> B records a site that acquires B
// while holding A. A cycle in this graph is a potential deadlock: two code
// paths that acquire the same mutexes in opposite orders.
//
// Detection is deterministic: nodes and edges are visited in lexicographic
// order, so the same input graph always reports the same cycle first.

#ifndef TOOLS_ATROPOS_LINT_LOCK_GRAPH_H_
#define TOOLS_ATROPOS_LINT_LOCK_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace atropos::lint {

class LockGraph {
 public:
  struct Site {
    std::string function;  // function containing the acquisition
    int line = 0;          // line of the inner acquisition
  };

  // Records "acquired `to` while holding `from`". The first site per edge is
  // kept for the report.
  void AddEdge(const std::string& from, const std::string& to, Site site);

  bool HasEdge(const std::string& from, const std::string& to) const;
  size_t edge_count() const;

  struct Cycle {
    // Nodes in order, starting and ending at the lexicographically smallest
    // node of the cycle: {a, b, a} for a two-lock inversion.
    std::vector<std::string> nodes;
    // One representative site per edge of the cycle (nodes.size() - 1 sites).
    std::vector<Site> sites;
  };

  // Finds all elementary cycles reachable via DFS, reporting each cycle once
  // (canonicalized to start at its smallest node). Sorted by node sequence.
  std::vector<Cycle> FindCycles() const;

 private:
  // from -> to -> first site observed. std::map keeps iteration ordered.
  std::map<std::string, std::map<std::string, Site>> edges_;
};

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_LOCK_GRAPH_H_
