// guarded-by: lockset verification of the ATROPOS_GUARDED_BY /
// ATROPOS_REQUIRES contracts (src/common/thread_annotations.h).
//
// Those macros expand to Clang's thread-safety attributes, but the reference
// toolchain is GCC, where they expand to nothing — the contracts are
// documentation unless something checks them. This check does, token-level,
// program-wide:
//
//   - Every `Type member ATROPOS_GUARDED_BY(mu);` declaration is collected
//     per class. Any access to that member from one of the class's own
//     function bodies (bare `member` or `this->member`; accesses through
//     other objects are out of token-level reach) must occur with `mu` held:
//     lexically inside a scope guard's block (std::lock_guard / unique_lock /
//     scoped_lock / shared_lock / MalthusianLockGuard), after a bare
//     `.lock()` without a matching `.unlock()`, or inside a function
//     annotated ATROPOS_REQUIRES(mu).
//   - Every call that the cross-file call graph resolves to a function
//     annotated ATROPOS_REQUIRES(mu) must occur with `mu` held.
//
// Held-lock tracking reuses the lock-order check's guard-scope machinery
// (guard_scope.h) so both checks agree on what "holding" means. Nested
// lambdas are scanned lexically inside their enclosing function: a guard in
// scope at the lambda's definition site counts as held in its body, which is
// exactly the condition-variable-predicate shape
// (`cv_.wait(lk, [this] { return done_; })`) the annotations are used with.
//
// Deliberate token-level limits: constructors/destructors are skipped
// (members are not yet / no longer shared), functions annotated
// ATROPOS_ACQUIRE / ATROPOS_RELEASE / ATROPOS_TRY_ACQUIRE /
// ATROPOS_NO_THREAD_SAFETY_ANALYSIS are skipped (lock implementations), and
// accesses through a different object (`other.member`) are not checked.

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/guard_scope.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "guarded-by";

bool IsGuardedByMacro(const std::string& s) {
  return s == "ATROPOS_GUARDED_BY" || s == "ATROPOS_PT_GUARDED_BY";
}

bool IsRequiresMacro(const std::string& s) {
  return s == "ATROPOS_REQUIRES" || s == "ATROPOS_REQUIRES_SHARED";
}

// Annotations whose presence exempts the function body from verification:
// the function *implements* the locking (or explicitly opts out).
bool IsSkipMacro(const std::string& s) {
  return s == "ATROPOS_ACQUIRE" || s == "ATROPOS_RELEASE" || s == "ATROPOS_TRY_ACQUIRE" ||
         s == "ATROPOS_NO_THREAD_SAFETY_ANALYSIS" || s == "ATROPOS_SCOPED_CAPABILITY";
}

// Guard types whose constructor acquires: the std guards plus this repo's
// Malthusian intake guard.
bool IsAcquiringGuardType(const std::string& s) {
  return IsStdGuardType(s) || s == "MalthusianLockGuard";
}

size_t BackwardMatchingOpenParen(const std::vector<Token>& toks, size_t from) {
  int depth = 0;
  for (size_t j = from; j != static_cast<size_t>(-1); j--) {
    if (toks[j].IsPunct(")")) {
      depth++;
    } else if (toks[j].IsPunct("(")) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return static_cast<size_t>(-1);
}

struct GuardedMember {
  std::string mutex;
  int decl_line = 0;
};

struct AnnotationIndex {
  // class -> member -> guarding mutex (normalized).
  std::map<std::string, std::map<std::string, GuardedMember>> guarded;
  // (class, function) -> mutexes the caller must hold (normalized).
  std::map<std::pair<std::string, std::string>, std::set<std::string>> requires_held;
  // (class, function) whose bodies are exempt from verification.
  std::set<std::pair<std::string, std::string>> skip;
};

class GuardedByCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void AnalyzeProgram(const Program& program, DiagnosticSink* sink) override {
    AnnotationIndex index;
    for (const SourceFile& file : program.files) {
      CollectAnnotations(file, &index);
    }
    if (index.guarded.empty() && index.requires_held.empty()) {
      return;
    }
    for (size_t fi = 0; fi < program.files.size(); fi++) {
      const SourceFile& file = program.files[fi];
      for (size_t fj = 0; fj < file.outline.functions.size(); fj++) {
        if (file.outline.functions[fj].parent != -1) {
          continue;  // nested lambdas are scanned inside their root function
        }
        VerifyFunction(program, FunctionRef{static_cast<int>(fi), static_cast<int>(fj)}, index,
                       sink);
      }
    }
  }

 private:
  // Finds the name and class of the function declaration an annotation macro
  // at token `i` is attached to: walks back over trailing qualifiers and
  // sibling annotations to the parameter list's ")", then takes the
  // identifier before its "(". Returns false when no declaration is found
  // (e.g. a macro mentioned in a non-declaration context).
  static bool DeclaredFunctionFor(const SourceFile& file, size_t i, std::string* cls,
                                  std::string* fn_name) {
    const std::vector<Token>& toks = file.tokens();
    size_t k = i;
    while (k > 0) {
      const Token& t = toks[k - 1];
      if (t.IsIdent("const") || t.IsIdent("noexcept") || t.IsIdent("override") ||
          t.IsIdent("final") || t.IsIdent("ATROPOS_NO_THREAD_SAFETY_ANALYSIS")) {
        k--;
        continue;
      }
      if (t.IsPunct(")")) {
        size_t open = BackwardMatchingOpenParen(toks, k - 1);
        if (open == static_cast<size_t>(-1) || open == 0) {
          return false;
        }
        const Token& before = toks[open - 1];
        if (before.kind == TokenKind::kIdentifier && before.text.rfind("ATROPOS_", 0) == 0) {
          k = open - 1;  // a sibling annotation's argument list; keep walking
          continue;
        }
        if (before.kind != TokenKind::kIdentifier) {
          return false;
        }
        *fn_name = before.text;
        if (open >= 3 && toks[open - 2].IsPunct("::") &&
            toks[open - 3].kind == TokenKind::kIdentifier) {
          *cls = toks[open - 3].text;
        } else {
          *cls = file.outline.EnclosingClass(open - 1);
        }
        return !fn_name->empty();
      }
      return false;
    }
    return false;
  }

  static void CollectAnnotations(const SourceFile& file, AnnotationIndex* index) {
    const std::vector<Token>& toks = file.tokens();
    for (size_t i = 0; i + 1 < toks.size(); i++) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (IsGuardedByMacro(t.text) && toks[i + 1].IsPunct("(") && i > 0 &&
          toks[i - 1].kind == TokenKind::kIdentifier) {
        std::vector<std::string> args = SplitLockArgs(toks, i + 1, toks.size());
        std::string cls = file.outline.EnclosingClass(i);
        if (!args.empty() && !cls.empty()) {
          index->guarded[cls].emplace(toks[i - 1].text, GuardedMember{args[0], t.line});
        }
        continue;
      }
      if (IsRequiresMacro(t.text) && toks[i + 1].IsPunct("(")) {
        std::string cls;
        std::string fn_name;
        if (DeclaredFunctionFor(file, i, &cls, &fn_name)) {
          std::vector<std::string> args = SplitLockArgs(toks, i + 1, toks.size());
          index->requires_held[{cls, fn_name}].insert(args.begin(), args.end());
        }
        continue;
      }
      if (IsSkipMacro(t.text)) {
        std::string cls;
        std::string fn_name;
        if (DeclaredFunctionFor(file, i, &cls, &fn_name)) {
          index->skip.emplace(cls, fn_name);
        }
      }
    }
  }

  void VerifyFunction(const Program& program, FunctionRef ref, const AnnotationIndex& index,
                      DiagnosticSink* sink) {
    const SourceFile& file = program.files[static_cast<size_t>(ref.file)];
    const FunctionInfo& fn = file.outline.functions[static_cast<size_t>(ref.fn)];
    const std::vector<Token>& toks = file.tokens();
    const std::string& cls = program.call_graph.ClassOf(ref);

    if (!cls.empty() &&
        (fn.name == cls || fn.name == "~" + cls || index.skip.count({cls, fn.name}) > 0)) {
      return;
    }
    const std::map<std::string, GuardedMember>* members = nullptr;
    if (auto it = index.guarded.find(cls); it != index.guarded.end()) {
      members = &it->second;
    }

    struct Held {
      std::string mutex;
      int depth;  // block depth of the owning guard; -1 bare lock; -2 REQUIRES
    };
    std::vector<Held> held;
    if (auto it = index.requires_held.find({cls, fn.name}); it != index.requires_held.end()) {
      for (const std::string& m : it->second) {
        held.push_back(Held{m, -2});
      }
    }
    auto holds = [&held](const std::string& mutex) {
      for (const Held& h : held) {
        if (h.mutex == mutex) {
          return true;
        }
      }
      return false;
    };

    std::map<size_t, const CallSite*> sites;
    for (const CallSite& site : program.call_graph.CallsIn(ref)) {
      sites[site.token] = &site;
    }

    std::set<std::pair<int, std::string>> reported;  // (line, member/callee)
    int depth = 0;
    for (size_t i = fn.body_begin + 1; i < fn.body_end && i + 1 < toks.size(); i++) {
      const Token& t = toks[i];
      if (t.IsPunct("{")) {
        depth++;
        continue;
      }
      if (t.IsPunct("}")) {
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].depth == depth) {
            held.erase(held.begin() + static_cast<long>(h));
          }
        }
        depth--;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }

      if (IsAcquiringGuardType(t.text)) {
        size_t j = SkipTemplateArgs(toks, i + 1, fn.body_end);
        if (toks[j].kind == TokenKind::kIdentifier && toks[j + 1].IsPunct("(")) {
          for (std::string& m : SplitLockArgs(toks, j + 1, fn.body_end)) {
            if (!m.empty()) {
              held.push_back(Held{std::move(m), depth});
            }
          }
          i = j + 1;
        }
        continue;
      }
      if ((t.text == "lock" || t.text == "lock_shared") && i > 0 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) && toks[i + 1].IsPunct("(") &&
          toks[i + 2].IsPunct(")")) {
        size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
        std::string m = NormalizeMutexExpr(toks, begin, i - 1);
        if (!m.empty()) {
          held.push_back(Held{std::move(m), -1});
        }
        continue;
      }
      if ((t.text == "unlock" || t.text == "unlock_shared") && i > 0 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) && toks[i + 1].IsPunct("(")) {
        size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
        std::string m = NormalizeMutexExpr(toks, begin, i - 1);
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].mutex == m) {
            held.erase(held.begin() + static_cast<long>(h));
            break;
          }
        }
        continue;
      }

      // Guarded-member access: bare `member` or `this->member` only; accesses
      // through another object are beyond token-level resolution.
      if (members != nullptr) {
        auto mit = members->find(t.text);
        if (mit != members->end()) {
          bool self_access = true;
          if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                        toks[i - 1].IsPunct("::"))) {
            self_access = toks[i - 1].IsPunct("->") && i >= 2 && toks[i - 2].IsIdent("this");
          }
          if (self_access && !holds(mit->second.mutex) &&
              reported.emplace(t.line, t.text).second) {
            sink->Report(file.path, t.line, kCheckName,
                         "member '" + t.text + "' is guarded by '" + mit->second.mutex +
                             "' but accessed without holding it");
          }
        }
      }

      // Calls into ATROPOS_REQUIRES functions, resolved via the call graph.
      auto site = sites.find(i);
      if (site != sites.end()) {
        for (const FunctionRef& target : site->second->targets) {
          if (target == ref) {
            continue;
          }
          const std::string& target_cls = program.call_graph.ClassOf(target);
          const SourceFile& tf = program.files[static_cast<size_t>(target.file)];
          const std::string& target_name =
              tf.outline.functions[static_cast<size_t>(target.fn)].name;
          auto rit = index.requires_held.find({target_cls, target_name});
          if (rit == index.requires_held.end()) {
            continue;
          }
          for (const std::string& m : rit->second) {
            if (!holds(m) && reported.emplace(t.line, target_name).second) {
              sink->Report(file.path, t.line, kCheckName,
                           "call to '" + target_name + "' requires holding '" + m +
                               "' (ATROPOS_REQUIRES) but it is not held here");
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeGuardedByCheck() { return std::make_unique<GuardedByCheck>(); }

}  // namespace atropos::lint
