// Check interface and the per-file analysis unit.
//
// A check receives one fully lexed + outlined SourceFile at a time and emits
// diagnostics into the sink. Checks must be deterministic: given the same
// file bytes they produce the same diagnostics in the same order (the golden
// corpus in tests/lint/ pins this).

#ifndef TOOLS_ATROPOS_LINT_CHECK_H_
#define TOOLS_ATROPOS_LINT_CHECK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tools/atropos_lint/diagnostics.h"
#include "tools/atropos_lint/lexer.h"
#include "tools/atropos_lint/outline.h"

namespace atropos::lint {

struct SourceFile {
  std::string path;          // as provided to the driver (used in diagnostics)
  std::string repo_path;     // normalized path relative to the repo root, or path
  LexedFile lex;
  Outline outline;

  const std::vector<Token>& tokens() const { return lex.tokens; }
};

class Check {
 public:
  virtual ~Check() = default;
  virtual std::string_view name() const = 0;
  virtual void Analyze(const SourceFile& file, DiagnosticSink* sink) = 0;
};

// Factory per check; `MakeAllChecks` returns them in canonical order.
std::unique_ptr<Check> MakeAllocFreeCheck();
std::unique_ptr<Check> MakeCapiPairingCheck();
std::unique_ptr<Check> MakeCancelActionSafetyCheck();
std::unique_ptr<Check> MakeDeterminismCheck();
std::unique_ptr<Check> MakeLockOrderCheck();
std::vector<std::unique_ptr<Check>> MakeAllChecks();

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_CHECK_H_
