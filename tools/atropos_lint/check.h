// Check interface and the analysis units (per-file and whole-program).
//
// The driver lexes + outlines every collected file into a Program, builds the
// cross-file call graph over it, and hands the whole Program to each check.
// File-local checks override Analyze and get called once per file by the
// default AnalyzeProgram; whole-program checks (cancel-action-safety,
// guarded-by) override AnalyzeProgram directly. Checks must be deterministic:
// given the same file bytes they produce the same diagnostics in the same
// order (the golden corpus in tests/lint/ pins this).

#ifndef TOOLS_ATROPOS_LINT_CHECK_H_
#define TOOLS_ATROPOS_LINT_CHECK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tools/atropos_lint/call_graph.h"
#include "tools/atropos_lint/diagnostics.h"
#include "tools/atropos_lint/lexer.h"
#include "tools/atropos_lint/outline.h"

namespace atropos::lint {

struct SourceFile {
  std::string path;          // as provided to the driver (used in diagnostics)
  std::string repo_path;     // normalized path relative to the repo root, or path
  LexedFile lex;
  Outline outline;

  const std::vector<Token>& tokens() const { return lex.tokens; }
};

// The whole analysis unit: every collected file (sorted by path by the
// driver) plus the call graph resolved across them.
struct Program {
  std::vector<SourceFile> files;
  CallGraph call_graph;
};

class Check {
 public:
  virtual ~Check() = default;
  virtual std::string_view name() const = 0;
  // File-local analysis; the default AnalyzeProgram calls this per file.
  virtual void Analyze(const SourceFile& file, DiagnosticSink* sink) {
    (void)file;
    (void)sink;
  }
  // Whole-program analysis. Override for checks that follow cross-file edges.
  virtual void AnalyzeProgram(const Program& program, DiagnosticSink* sink);
};

// Factory per check; `MakeAllChecks` returns them in canonical order.
std::unique_ptr<Check> MakeAllocFreeCheck();
std::unique_ptr<Check> MakeAtomicsProtocolCheck();
std::unique_ptr<Check> MakeCapiPairingCheck();
std::unique_ptr<Check> MakeCancelActionSafetyCheck();
std::unique_ptr<Check> MakeDeterminismCheck();
std::unique_ptr<Check> MakeGuardedByCheck();
std::unique_ptr<Check> MakeLockOrderCheck();
std::vector<std::unique_ptr<Check>> MakeAllChecks();

// The stale-suppression pass is implemented by the driver (it needs the
// post-suppression audit), but participates in check listing/selection under
// this name.
inline constexpr std::string_view kStaleSuppressionCheck = "stale-suppression";

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_CHECK_H_
