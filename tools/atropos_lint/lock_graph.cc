#include "tools/atropos_lint/lock_graph.h"

#include <algorithm>
#include <functional>

namespace atropos::lint {

void LockGraph::AddEdge(const std::string& from, const std::string& to, Site site) {
  if (from == to) {
    return;  // re-acquisition of the same identity is not an ordering edge
  }
  edges_[from].emplace(to, std::move(site));  // keep the first site per edge
}

bool LockGraph::HasEdge(const std::string& from, const std::string& to) const {
  auto it = edges_.find(from);
  return it != edges_.end() && it->second.count(to) > 0;
}

size_t LockGraph::edge_count() const {
  size_t n = 0;
  for (const auto& [from, tos] : edges_) {
    n += tos.size();
  }
  return n;
}

std::vector<LockGraph::Cycle> LockGraph::FindCycles() const {
  std::vector<Cycle> cycles;
  std::set<std::vector<std::string>> seen;  // canonical node sequences

  // DFS from every node in order; on finding a back edge to a node on the
  // current path, extract the cycle and canonicalize it.
  std::vector<std::string> path;
  std::set<std::string> on_path;

  auto canonical = [](std::vector<std::string> nodes) {
    // nodes is the cycle without the closing repeat: {b, a} for b->a->b.
    auto smallest = std::min_element(nodes.begin(), nodes.end());
    std::rotate(nodes.begin(), smallest, nodes.end());
    nodes.push_back(nodes.front());
    return nodes;
  };

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    auto it = edges_.find(node);
    if (it == edges_.end()) {
      return;
    }
    path.push_back(node);
    on_path.insert(node);
    for (const auto& [next, site] : it->second) {
      if (on_path.count(next) > 0) {
        // Cycle: from `next`'s position in path through `node`, back to next.
        auto begin = std::find(path.begin(), path.end(), next);
        std::vector<std::string> nodes(begin, path.end());
        std::vector<std::string> canon = canonical(nodes);
        if (seen.insert(canon).second) {
          Cycle c;
          c.nodes = canon;
          for (size_t i = 0; i + 1 < canon.size(); i++) {
            auto eit = edges_.find(canon[i]);
            if (eit != edges_.end()) {
              auto sit = eit->second.find(canon[i + 1]);
              if (sit != eit->second.end()) {
                c.sites.push_back(sit->second);
              }
            }
          }
          cycles.push_back(std::move(c));
        }
        continue;
      }
      dfs(next);
    }
    on_path.erase(node);
    path.pop_back();
  };

  for (const auto& [node, tos] : edges_) {
    dfs(node);
  }
  std::sort(cycles.begin(), cycles.end(),
            [](const Cycle& a, const Cycle& b) { return a.nodes < b.nodes; });
  return cycles;
}

}  // namespace atropos::lint
