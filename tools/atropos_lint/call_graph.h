// Whole-program call graph for atropos_lint.
//
// Indexes every function/method definition across the analyzed file set and
// resolves call sites across translation units, so interprocedural checks
// (cancel-action-safety's blocking-reachability walk) can follow real
// multi-file chains like DeliverCancel -> CancelBoard::TryDeliver ->
// AbortableQueue::AbortKey instead of stopping at file boundaries.
//
// Resolution is token-level and deliberately conservative:
//
//   obj.F(...) / obj->F(...)   when `obj`'s declared type T is a class known
//                              to the program (its declaration was seen in
//                              the same file), resolve F among T's methods;
//                              otherwise fall back to name-based lookup
//   Cls::F(...)                resolve F among Cls's methods
//   F(...)                     methods of the enclosing class first, then
//                              same-file definitions, then all cross-file
//                              definitions of that name
//
// Name-based cross-file fallback is capped: a name with more than
// kMaxCrossFileCandidates definitions program-wide stays unresolved rather
// than fanning out to everything called `get`. All target lists are sorted by
// (file index, function index), so traversals are deterministic.

#ifndef TOOLS_ATROPOS_LINT_CALL_GRAPH_H_
#define TOOLS_ATROPOS_LINT_CALL_GRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace atropos::lint {

struct SourceFile;

// A function definition: index into Program::files and into that file's
// outline.functions.
struct FunctionRef {
  int file = -1;
  int fn = -1;

  bool valid() const { return file >= 0 && fn >= 0; }
  bool operator<(const FunctionRef& o) const {
    return file != o.file ? file < o.file : fn < o.fn;
  }
  bool operator==(const FunctionRef& o) const { return file == o.file && fn == o.fn; }
};

// One call site inside a function body: the callee name as written, plus
// every definition it may resolve to (empty when unresolved or ambiguous).
struct CallSite {
  std::string name;
  int line = 0;
  size_t token = 0;  // index of the callee identifier token
  std::vector<FunctionRef> targets;
};

class CallGraph {
 public:
  // Names with more definitions than this program-wide stay unresolved under
  // the name-based fallback (type- and class-qualified lookups are exempt).
  static constexpr size_t kMaxCrossFileCandidates = 4;

  void Build(const std::vector<SourceFile>& files);

  // Call sites lexically inside `ref`'s body span, in token order. Nested
  // lambda bodies are included in their enclosing function's list.
  const std::vector<CallSite>& CallsIn(const FunctionRef& ref) const;

  // Every non-lambda definition named `name` across the program.
  std::vector<FunctionRef> DefinitionsNamed(const std::string& name) const;

  // Definitions of method `name` on class `cls`: out-of-line `Cls::name`
  // definitions plus bodies defined inside `class Cls { ... }`.
  std::vector<FunctionRef> MethodsOf(const std::string& cls, const std::string& name) const;

  // The class a definition belongs to: its `Cls::` qualifier when written
  // out-of-line, else the innermost named class enclosing its body, else "".
  const std::string& ClassOf(const FunctionRef& ref) const;

 private:
  // Name-based fallback resolution: same-class, then same-file, then
  // program-wide when at most `max_cross_file` definitions share the name
  // (1 for member calls on unknown receivers, kMaxCrossFileCandidates for
  // bare calls and virtual-dispatch fallbacks).
  std::vector<FunctionRef> Resolve(const std::vector<SourceFile>& files, int file_index,
                                   const std::string& cls_context, const std::string& name,
                                   size_t max_cross_file) const;

  // calls_[file][fn] -> call sites in that function.
  std::vector<std::vector<std::vector<CallSite>>> calls_;
  // class_of_[file][fn] -> owning class name ("" for free functions/lambdas).
  std::vector<std::vector<std::string>> class_of_;
  std::map<std::string, std::vector<FunctionRef>> by_name_;
  std::map<std::string, std::map<std::string, std::vector<FunctionRef>>> methods_;
};

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_CALL_GRAPH_H_
