// lock-order: static lock-acquisition graph, per translation unit.
//
// For every function the check tracks which mutexes are held at each point
// (guard objects live to the end of their enclosing block; bare .lock() lives
// to .unlock() or function end) and records an edge A -> B whenever B is
// acquired while A is held — including one level of interprocedural edges:
// calling a same-file function that acquires B while holding A. A cycle in
// the merged graph is a potential deadlock (reported once per cycle via the
// deterministic detector in lock_graph.cc).
//
// std::lock(a, b, ...) and std::scoped_lock's multi-argument form acquire
// atomically with deadlock avoidance, so arguments of one such call gain no
// edges among themselves (edges from already-held mutexes still apply).

#include <map>
#include <string>
#include <vector>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/guard_scope.h"
#include "tools/atropos_lint/lock_graph.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "lock-order";

struct Acquisition {
  std::string mutex;
  int line = 0;
  int block_depth = 0;  // guard lifetime; -1 for .lock() (explicit unlock)
};

struct FunctionLocks {
  std::vector<Acquisition> all;  // every acquisition in source order
};

class LockOrderCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void Analyze(const SourceFile& file, DiagnosticSink* sink) override {
    LockGraph graph;
    std::map<std::string, FunctionLocks> summaries;  // by simple name

    // Pass 1: intra-function edges + per-function acquisition summaries.
    for (const FunctionInfo& fn : file.outline.functions) {
      FunctionLocks locks = ScanFunction(file, fn, &graph);
      if (!locks.all.empty() && !fn.is_lambda) {
        summaries[fn.name] = std::move(locks);
      }
    }
    // Pass 2: one level of interprocedural edges through same-file calls.
    for (const FunctionInfo& fn : file.outline.functions) {
      AddCallEdges(file, fn, summaries, &graph);
    }

    for (const LockGraph::Cycle& cycle : graph.FindCycles()) {
      std::string order;
      for (size_t i = 0; i < cycle.nodes.size(); i++) {
        order += (i > 0 ? " -> " : "") + cycle.nodes[i];
      }
      std::string sites;
      for (size_t i = 0; i < cycle.sites.size(); i++) {
        sites += (i > 0 ? ", " : "") + cycle.sites[i].function + ":" +
                 std::to_string(cycle.sites[i].line);
      }
      int line = cycle.sites.empty() ? 1 : cycle.sites.front().line;
      sink->Report(file.path, line, kCheckName,
                   "lock-order cycle " + order + " (acquisition sites: " + sites + ")");
    }
  }

 private:
  // Walks one function body; records intra-function edges into `graph` and
  // returns the function's acquisition summary.
  FunctionLocks ScanFunction(const SourceFile& file, const FunctionInfo& fn, LockGraph* graph) {
    const std::vector<Token>& toks = file.tokens();
    FunctionLocks out;
    std::vector<Acquisition> held;
    int depth = 0;

    auto acquire = [&](std::vector<std::string> mutexes, int line, int guard_depth) {
      for (const std::string& m : mutexes) {
        if (m.empty()) {
          continue;
        }
        for (const Acquisition& h : held) {
          graph->AddEdge(h.mutex, m, LockGraph::Site{fn.qualified, line});
        }
      }
      // Added after the edge pass so one std::scoped_lock(a, b) does not
      // create a->b among its own arguments.
      for (std::string& m : mutexes) {
        if (!m.empty()) {
          Acquisition a{std::move(m), line, guard_depth};
          held.push_back(a);
          out.all.push_back(held.back());
        }
      }
    };

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      const Token& t = toks[i];
      if (t.IsPunct("{")) {
        depth++;
        continue;
      }
      if (t.IsPunct("}")) {
        // Guards declared in the closing block release here.
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].block_depth == depth) {
            held.erase(held.begin() + static_cast<long>(h));
          }
        }
        depth--;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }

      // Guard declaration: [std::] guard_type [<...>] var ( args ) ;
      if (IsStdGuardType(t.text)) {
        size_t j = SkipTemplateArgs(toks, i + 1, fn.body_end);
        if (toks[j].kind == TokenKind::kIdentifier && toks[j + 1].IsPunct("(")) {
          size_t open = j + 1;
          acquire(SplitLockArgs(toks, open, fn.body_end), t.line, depth);
          i = open;
        }
        continue;
      }

      // Bare lock: expr.lock() / expr->lock(); released by expr.unlock().
      if ((t.text == "lock" || t.text == "lock_shared") && i > 0 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) && toks[i + 1].IsPunct("(") &&
          toks[i + 2].IsPunct(")")) {
        size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
        acquire({NormalizeMutexExpr(toks, begin, i - 1)}, t.line, -1);
        continue;
      }
      if ((t.text == "unlock" || t.text == "unlock_shared") && i > 0 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) && toks[i + 1].IsPunct("(")) {
        size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
        std::string m = NormalizeMutexExpr(toks, begin, i - 1);
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].mutex == m) {
            held.erase(held.begin() + static_cast<long>(h));
            break;
          }
        }
        continue;
      }
    }
    return out;
  }

  // Second pass: for calls to same-file functions made while holding locks,
  // add edges from each held mutex to everything the callee acquires.
  void AddCallEdges(const SourceFile& file, const FunctionInfo& fn,
                    const std::map<std::string, FunctionLocks>& summaries, LockGraph* graph) {
    const std::vector<Token>& toks = file.tokens();
    std::vector<Acquisition> held;
    int depth = 0;

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      const Token& t = toks[i];
      if (t.IsPunct("{")) {
        depth++;
      } else if (t.IsPunct("}")) {
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].block_depth == depth) {
            held.erase(held.begin() + static_cast<long>(h));
          }
        }
        depth--;
      } else if (t.kind == TokenKind::kIdentifier) {
        if (IsStdGuardType(t.text)) {
          size_t j = SkipTemplateArgs(toks, i + 1, fn.body_end);
          if (toks[j].kind == TokenKind::kIdentifier && toks[j + 1].IsPunct("(")) {
            for (std::string& m : SplitLockArgs(toks, j + 1, fn.body_end)) {
              if (!m.empty()) {
                held.push_back(Acquisition{std::move(m), t.line, depth});
              }
            }
            i = j + 1;
          }
        } else if ((t.text == "lock" || t.text == "lock_shared") && i > 0 &&
                   (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
                   toks[i + 1].IsPunct("(") && toks[i + 2].IsPunct(")")) {
          size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
          held.push_back(Acquisition{NormalizeMutexExpr(toks, begin, i - 1), t.line, -1});
        } else if ((t.text == "unlock" || t.text == "unlock_shared") && i > 0 &&
                   (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
          size_t begin = LockExprStart(toks, i - 1, fn.body_begin);
          std::string m = NormalizeMutexExpr(toks, begin, i - 1);
          for (size_t h = held.size(); h-- > 0;) {
            if (held[h].mutex == m) {
              held.erase(held.begin() + static_cast<long>(h));
              break;
            }
          }
        } else if (!held.empty() && toks[i + 1].IsPunct("(") && t.text != fn.name) {
          auto it = summaries.find(t.text);
          if (it != summaries.end()) {
            for (const Acquisition& callee_acq : it->second.all) {
              for (const Acquisition& h : held) {
                graph->AddEdge(h.mutex, callee_acq.mutex,
                               LockGraph::Site{fn.qualified, t.line});
              }
            }
          }
        }
      }
    }
  }

};

}  // namespace

std::unique_ptr<Check> MakeLockOrderCheck() { return std::make_unique<LockOrderCheck>(); }

}  // namespace atropos::lint
