// C++ lexer for atropos_lint.
//
// Produces the token stream the structural outliner and the checks walk, and
// extracts `atropos-lint:` control directives from comments:
//
//   // atropos-lint: allow(check-a, check-b)   suppress on this line (or, when
//                                              the comment stands alone, on the
//                                              next line that has code)
//   // atropos-lint: allow-file(check-a)       suppress for the whole file
//   // atropos-lint: digest-path               mark this file as a digest path
//                                              for the determinism check
//   // atropos-lint: alloc-free                mark the next function as a
//                                              steady-state allocation-free
//                                              hot path (alloc-free check)
//
// Comments and preprocessor lines are consumed here and never reach the
// checks, so API names mentioned in prose don't trigger findings.

#ifndef TOOLS_ATROPOS_LINT_LEXER_H_
#define TOOLS_ATROPOS_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/atropos_lint/token.h"

namespace atropos::lint {

struct LexedFile {
  std::vector<Token> tokens;  // terminated by a kEof token

  // line -> checks suppressed on that line ("*" suppresses all checks).
  std::map<int, std::set<std::string>> line_suppressions;
  std::set<std::string> file_suppressions;
  bool digest_path_marker = false;
  // Lines carrying a standalone `alloc-free` marker; each binds to the next
  // function definition (resolved by the alloc-free check against the
  // outline).
  std::vector<int> alloc_free_lines;
};

// Lexes `source`. Never fails: unrecognized bytes become single-char punct
// tokens, so a malformed file degrades to noise rather than an error.
LexedFile Lex(std::string_view source);

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_LEXER_H_
