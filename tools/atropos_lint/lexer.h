// C++ lexer for atropos_lint.
//
// Produces the token stream the structural outliner and the checks walk, and
// extracts `atropos-lint:` control directives from comments:
//
//   // atropos-lint: allow(check-a, check-b)   suppress on this line (or, when
//                                              the comment stands alone, on the
//                                              next line that has code)
//   // atropos-lint: allow-file(check-a)       suppress for the whole file
//   // atropos-lint: digest-path               mark this file as a digest path
//                                              for the determinism check
//   // atropos-lint: alloc-free                mark the next function as a
//                                              steady-state allocation-free
//                                              hot path (alloc-free check)
//   // atropos-lint: atomics-protocol          opt this file into the
//                                              atomics-protocol check (src/sync
//                                              and src/live are always in)
//
// A directive only counts when `atropos-lint:` starts the comment's text
// (leading whitespace aside): prose that merely *mentions* the syntax, as this
// header does above, never registers a directive. Comments and preprocessor
// lines are consumed here and never reach the checks, so API names mentioned
// in prose don't trigger findings.

#ifndef TOOLS_ATROPOS_LINT_LEXER_H_
#define TOOLS_ATROPOS_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/atropos_lint/token.h"

namespace atropos::lint {

// One `allow(check)` grant: the line of the directive comment itself plus the
// code line it suppresses on. Kept alongside the resolved line_suppressions
// map so the stale-suppression pass can point its finding at the marker.
struct SuppressionSite {
  int directive_line = 0;
  int target_line = 0;
  std::string check;
};

struct LexedFile {
  std::vector<Token> tokens;  // terminated by a kEof token

  // line -> checks suppressed on that line ("*" suppresses all checks).
  std::map<int, std::set<std::string>> line_suppressions;
  std::set<std::string> file_suppressions;
  // Audit trail for the stale-suppression pass: every per-line grant with the
  // directive's own line, and the declaration line of each allow-file grant.
  std::vector<SuppressionSite> suppression_sites;
  std::map<std::string, int> file_suppression_lines;
  bool digest_path_marker = false;
  bool atomics_protocol_marker = false;
  // Lines carrying a standalone `alloc-free` marker; each binds to the next
  // function definition (resolved by the alloc-free check against the
  // outline).
  std::vector<int> alloc_free_lines;
};

// Lexes `source`. Never fails: unrecognized bytes become single-char punct
// tokens, so a malformed file degrades to noise rather than an error.
LexedFile Lex(std::string_view source);

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_LEXER_H_
