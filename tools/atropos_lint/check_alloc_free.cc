// alloc-free: no allocation idioms in functions marked steady-state
// allocation-free.
//
// The SoA hot path (DESIGN.md §17) promises zero heap allocations per event
// once the registries are warm; functions carrying that promise are marked
// with a standalone `// atropos-lint: alloc-free` comment directly above the
// definition. This check scans each marked function's body for token-level
// allocation idioms: `new`/`delete`, the C allocator family, the std::
// factory helpers, string building, and capacity-growing container member
// calls.
//
// Known limitation (DESIGN.md §13): the check is token-local. It cannot see
// through helper calls, cannot prove a `push_back` will hit capacity, and
// does not flag `push_back` at all — pushing onto a free-list vector whose
// capacity was established during warm-up is the sanctioned slot-recycling
// idiom, indistinguishable from a growing push at token level. The hard gate
// for the promise is the runtime allocation oracle
// (tests/atropos/alloc_oracle_test.cc); this check exists to catch the
// obvious regressions at lint time, before a binary ever runs.

#include <string>
#include <string_view>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "alloc-free";

// A marker binds to the first function whose declaration starts within this
// many lines below it; anything further away is a dangling marker.
constexpr int kMarkerBindWindow = 10;

// Identifiers that are allocation calls when they appear in call position
// (followed by '(').
bool IsAllocCall(std::string_view s) {
  return s == "malloc" || s == "calloc" || s == "realloc" || s == "strdup" ||
         s == "aligned_alloc" || s == "to_string";
}

// Factory helpers flagged on any use: a template argument list usually sits
// between the name and the '(', and the names are unambiguous anyway.
bool IsAllocFactory(std::string_view s) {
  return s == "make_unique" || s == "make_shared";
}

// Container member calls that (may) grow capacity — banned in marked
// functions even though some uses could be capacity-neutral; the hot path
// has no business calling them. push_back is deliberately absent (see file
// comment).
bool IsGrowthMemberCall(std::string_view s) {
  return s == "resize" || s == "reserve" || s == "insert" || s == "emplace" ||
         s == "emplace_back" || s == "try_emplace" || s == "push_front" ||
         s == "emplace_front" || s == "append" || s == "shrink_to_fit";
}

class AllocFreeCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void Analyze(const SourceFile& file, DiagnosticSink* sink) override {
    for (int marker_line : file.lex.alloc_free_lines) {
      // Bind the marker to the nearest function starting at or below it.
      const FunctionInfo* bound = nullptr;
      for (const FunctionInfo& fn : file.outline.functions) {
        if (fn.is_lambda || fn.line < marker_line) {
          continue;
        }
        if (bound == nullptr || fn.line < bound->line) {
          bound = &fn;
        }
      }
      if (bound == nullptr || bound->line > marker_line + kMarkerBindWindow) {
        sink->Report(file.path, marker_line, kCheckName,
                     "alloc-free marker does not precede a function definition");
        continue;
      }
      ScanBody(file, *bound, sink);
    }
  }

 private:
  void ScanBody(const SourceFile& file, const FunctionInfo& fn, DiagnosticSink* sink) {
    const std::vector<Token>& toks = file.tokens();
    for (size_t i = fn.body_begin; i < fn.body_end && i < toks.size(); i++) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (t.text == "new" || t.text == "delete" || IsAllocFactory(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     "'" + t.text + "' in alloc-free function '" + fn.name +
                         "'; the steady-state hot path must not touch the heap");
        continue;
      }
      const bool called = i + 1 < toks.size() && toks[i + 1].IsPunct("(");
      if (!called) {
        continue;
      }
      const bool member =
          i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"));
      if (IsAllocCall(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     "call of '" + t.text + "' in alloc-free function '" + fn.name +
                         "'; the steady-state hot path must not allocate");
      } else if (member && IsGrowthMemberCall(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     "container '." + t.text + "(...)' in alloc-free function '" + fn.name +
                         "'; growth belongs in warm-up/registration, not the hot path");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeAllocFreeCheck() { return std::make_unique<AllocFreeCheck>(); }

}  // namespace atropos::lint
