// cancel-action-safety: the cancellation initiator registered through
// setCancelAction / SetCancelAction must be safe to run from inside the
// Atropos control loop (paper §3.6): it only *requests* cancellation — sets a
// flag, signals a token — and returns. Blocking, allocating, or throwing
// inside the initiator turns the mitigation path itself into a liability
// under exactly the overload conditions it exists for.
//
// The check finds every registration site whose argument is a lambda or a
// function (`&F` / `F`), then walks the initiator body plus callees resolved
// through the whole-program call graph (DFS, nested lambdas included,
// cross-file edges followed) flagging:
//   - throw statements and co_await suspensions,
//   - blocking calls: sleeps, joins, condition-variable waits, explicit
//     mutex locking (.lock(), std::lock_guard/unique_lock/scoped_lock),
//   - allocation: new-expressions, malloc family, make_unique/make_shared,
//     and growing container mutations (push_back, insert, resize, ...).
//
// Additionally, the in-place abort entry points of the abortable-sync layer
// (DESIGN.md §16) — DeliverCancel, RequestCancel, RequestCancelAll,
// AbortCell::TryAbort, AbortableQueue::AbortKey — are walked as initiator
// roots wherever they are *defined*, registration site or not: SetCancelAction
// installs DeliverCancel, and the others are the paths it fans out to, so a
// lock or allocation added to any of them reintroduces the §3.6 hazard even
// though the registration lives in another file. With the call graph the walk
// follows the real chain DeliverCancel -> CancelBoard::TryDeliver ->
// AbortCell::TryAbort across translation units.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "cancel-action-safety";

// Interprocedural DFS depth. Cross-file chains are longer than the old
// same-file walks (registration -> DeliverCancel -> board -> cell), so this
// is deeper than the historical limit of 4.
constexpr int kMaxWalkDepth = 6;

const char* BlockingCallReason(const std::string& name) {
  static const std::set<std::string> kBlocking = {
      "sleep",      "usleep",     "nanosleep", "sleep_for", "sleep_until",
      "wait",       "wait_for",   "wait_until", "join",     "lock",
      "lock_guard", "unique_lock", "scoped_lock", "lock_shared",
  };
  return kBlocking.count(name) > 0 ? "blocking call" : nullptr;
}

const char* AllocatingCallReason(const std::string& name) {
  static const std::set<std::string> kAlloc = {
      "malloc",     "calloc",       "realloc", "strdup",      "make_unique",
      "make_shared", "push_back",   "emplace_back", "emplace", "insert",
      "resize",     "reserve",      "append",  "push_front",  "emplace_front",
  };
  return kAlloc.count(name) > 0 ? "allocating call" : nullptr;
}

class CancelActionSafetyCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void AnalyzeProgram(const Program& program, DiagnosticSink* sink) override {
    std::set<FunctionRef> analyzed;

    for (size_t fi = 0; fi < program.files.size(); fi++) {
      const SourceFile& file = program.files[fi];
      const std::vector<Token>& toks = file.tokens();

      for (size_t i = 0; i + 1 < toks.size(); i++) {
        if (toks[i].kind != TokenKind::kIdentifier ||
            (toks[i].text != "setCancelAction" && toks[i].text != "SetCancelAction") ||
            !toks[i + 1].IsPunct("(")) {
          continue;
        }
        // Registration *call sites* only: a definition's parameter list is
        // followed by `{` (or `)` ... `{`), and its name is preceded by a type.
        // Distinguish cheaply: a call is inside some function body.
        if (file.outline.EnclosingFunction(i) < 0) {
          continue;
        }
        size_t arg = i + 2;
        if (toks[arg].IsPunct("&") && toks[arg + 1].kind == TokenKind::kIdentifier) {
          WalkNamedInitiator(program, static_cast<int>(fi), toks[arg + 1].text, &analyzed, sink);
        } else if (toks[arg].kind == TokenKind::kIdentifier && toks[arg + 1].IsPunct(")")) {
          WalkNamedInitiator(program, static_cast<int>(fi), toks[arg].text, &analyzed, sink);
        } else if (toks[arg].IsPunct("[")) {
          // Lambda argument: the outline has a lambda whose body starts after
          // this capture list; find the first lambda at or after `arg`.
          int lambda = FindLambdaAt(file, arg);
          if (lambda >= 0) {
            Walk(program, FunctionRef{static_cast<int>(fi), lambda}, 0, &analyzed, sink);
          }
        }
      }

      // Initiator-root rule: the abortable-sync entry points are reachable
      // from the cancel action by contract; walk their definitions
      // unconditionally.
      static const std::set<std::string> kInitiatorRoots = {
          "DeliverCancel", "RequestCancel", "RequestCancelAll", "TryAbort", "AbortKey",
      };
      for (size_t f = 0; f < file.outline.functions.size(); f++) {
        const FunctionInfo& fn = file.outline.functions[f];
        if (!fn.is_lambda && kInitiatorRoots.count(fn.name) > 0) {
          Walk(program, FunctionRef{static_cast<int>(fi), static_cast<int>(f)}, 0, &analyzed,
               sink);
        }
      }
    }
  }

 private:
  static int FindLambdaAt(const SourceFile& file, size_t token_index) {
    int best = -1;
    size_t best_begin = static_cast<size_t>(-1);
    for (size_t f = 0; f < file.outline.functions.size(); f++) {
      const FunctionInfo& fn = file.outline.functions[f];
      if (fn.is_lambda && fn.body_begin >= token_index && fn.body_begin < best_begin) {
        best = static_cast<int>(f);
        best_begin = fn.body_begin;
      }
    }
    return best;
  }

  // A named initiator (`SetCancelAction(&Kill)`): same-file definitions win;
  // otherwise every program-wide definition of the name is a candidate root,
  // capped like any other name-based resolution.
  void WalkNamedInitiator(const Program& program, int file_index, const std::string& name,
                          std::set<FunctionRef>* analyzed, DiagnosticSink* sink) {
    std::vector<FunctionRef> defs = program.call_graph.DefinitionsNamed(name);
    std::vector<FunctionRef> same_file;
    for (const FunctionRef& ref : defs) {
      if (ref.file == file_index) {
        same_file.push_back(ref);
      }
    }
    const std::vector<FunctionRef>& roots =
        !same_file.empty()
            ? same_file
            : (defs.size() <= CallGraph::kMaxCrossFileCandidates ? defs : same_file);
    for (const FunctionRef& ref : roots) {
      Walk(program, ref, 0, analyzed, sink);
    }
  }

  // Walks a function's body (including nested lambdas, which belong to the
  // initiator's execution), recursing into call-graph-resolved callees.
  void Walk(const Program& program, FunctionRef ref, int depth, std::set<FunctionRef>* analyzed,
            DiagnosticSink* sink) {
    if (depth > kMaxWalkDepth || !analyzed->insert(ref).second) {
      return;
    }
    const SourceFile& file = program.files[static_cast<size_t>(ref.file)];
    const FunctionInfo& fn = file.outline.functions[static_cast<size_t>(ref.fn)];
    const std::vector<Token>& toks = file.tokens();
    const std::string where =
        fn.is_lambda ? "cancellation initiator" : "initiator path through '" + fn.name + "'";

    std::map<size_t, const CallSite*> sites;
    for (const CallSite& site : program.call_graph.CallsIn(ref)) {
      sites[site.token] = &site;
    }

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (t.text == "throw") {
        sink->Report(file.path, t.line, kCheckName,
                     "throw inside the " + where + "; initiators must not throw");
        continue;
      }
      if (t.text == "co_await") {
        sink->Report(file.path, t.line, kCheckName,
                     "co_await inside the " + where + "; initiators must not suspend");
        continue;
      }
      if (t.text == "new" && !toks[i + 1].IsPunct("(")) {
        // `new T(...)` — operator new allocates. (Placement new is rare
        // enough to annotate explicitly.)
        sink->Report(file.path, t.line, kCheckName,
                     "new-expression inside the " + where + "; initiators must not allocate");
        continue;
      }
      const bool is_call = i + 1 < toks.size() && toks[i + 1].IsPunct("(");
      if (!is_call) {
        continue;
      }
      // Guard objects are "calls" too: std::lock_guard<std::mutex> lk(mu).
      if (const char* reason = BlockingCallReason(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     std::string(reason) + " '" + t.text + "' inside the " + where);
        continue;
      }
      if (const char* reason = AllocatingCallReason(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     std::string(reason) + " '" + t.text + "' inside the " + where);
        continue;
      }
      // Recurse into every definition the call graph resolves this call to —
      // same-file by preference, across translation units otherwise.
      auto site = sites.find(i);
      if (site != sites.end()) {
        for (const FunctionRef& target : site->second->targets) {
          if (!(target == ref)) {
            Walk(program, target, depth + 1, analyzed, sink);
          }
        }
      }
    }

    // Guard declarations without a call-shaped "(": std::lock_guard<std::mutex>
    // lk(mu); — the guard type name is followed by "<", not "(".
    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kIdentifier && toks[i + 1].IsPunct("<") &&
          (t.text == "lock_guard" || t.text == "unique_lock" || t.text == "scoped_lock" ||
           t.text == "shared_lock")) {
        sink->Report(file.path, t.line, kCheckName,
                     "blocking call '" + t.text + "' inside the " + where);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeCancelActionSafetyCheck() {
  return std::make_unique<CancelActionSafetyCheck>();
}

}  // namespace atropos::lint
