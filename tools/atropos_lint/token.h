// Token model for the atropos_lint lexer.
//
// The linter works on a token stream, not an AST: every check in this tool is
// a structural pattern over identifiers, punctuation, and brace/paren nesting,
// which a full C++ grammar is not needed for (and which keeps the tool
// dependency-free — it builds wherever GCC does, no libclang).

#ifndef TOOLS_ATROPOS_LINT_TOKEN_H_
#define TOOLS_ATROPOS_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace atropos::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (checks match on text)
  kNumber,      // integer / float literals, including digit separators
  kString,      // "..." / R"(...)" (text excludes the quotes)
  kChar,        // '...'
  kPunct,       // operators and punctuation; multi-char ops are one token
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;  // 1-based

  bool Is(TokenKind k, const char* t) const { return kind == k && text == t; }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdentifier, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_TOKEN_H_
