// Diagnostic collection, suppression filtering, and rendering.

#ifndef TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_
#define TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace atropos::lint {

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;

  // Renders `path:line: [check] message`.
  std::string Format() const;

  bool operator<(const Diagnostic& other) const {
    if (path != other.path) return path < other.path;
    if (line != other.line) return line < other.line;
    if (check != other.check) return check < other.check;
    return message < other.message;
  }
};

class DiagnosticSink {
 public:
  void Report(std::string path, int line, std::string check, std::string message) {
    diags_.push_back(Diagnostic{std::move(path), line, std::move(check), std::move(message)});
  }

  // Drops diagnostics matched by `allow` / `allow-file` directives and counts
  // them separately. "*" in a suppression set matches every check.
  void ApplySuppressions(const std::string& path,
                         const std::map<int, std::set<std::string>>& line_suppressions,
                         const std::set<std::string>& file_suppressions);

  // Sorts by (path, line, check, message) for deterministic output.
  void Finalize() { std::sort(diags_.begin(), diags_.end()); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t suppressed_count() const { return suppressed_; }

 private:
  std::vector<Diagnostic> diags_;
  size_t suppressed_ = 0;
};

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_
