// Diagnostic collection, suppression filtering, and rendering.

#ifndef TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_
#define TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace atropos::lint {

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;

  // Renders `path:line: [check] message`.
  std::string Format() const;

  bool operator<(const Diagnostic& other) const {
    if (path != other.path) return path < other.path;
    if (line != other.line) return line < other.line;
    if (check != other.check) return check < other.check;
    return message < other.message;
  }
};

// Which suppression grants actually dropped a diagnostic, recorded per file
// during ApplySuppressions. The driver's stale-suppression pass flags any
// grant that is absent here.
struct SuppressionUsage {
  std::set<std::pair<int, std::string>> line_used;  // (code line, check name or "*")
  std::set<std::string> file_used;                  // check name or "*"
};

class DiagnosticSink {
 public:
  void Report(std::string path, int line, std::string check, std::string message) {
    diags_.push_back(Diagnostic{std::move(path), line, std::move(check), std::move(message)});
  }

  // Drops diagnostics matched by `allow` / `allow-file` directives and counts
  // them separately. "*" in a suppression set matches every check. When
  // `usage` is non-null, records which grants matched at least one diagnostic.
  void ApplySuppressions(const std::string& path,
                         const std::map<int, std::set<std::string>>& line_suppressions,
                         const std::set<std::string>& file_suppressions,
                         SuppressionUsage* usage = nullptr);

  // Sorts by (path, line, check, message) for deterministic output.
  void Finalize() { std::sort(diags_.begin(), diags_.end()); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t suppressed_count() const { return suppressed_; }

 private:
  std::vector<Diagnostic> diags_;
  size_t suppressed_ = 0;
};

}  // namespace atropos::lint

#endif  // TOOLS_ATROPOS_LINT_DIAGNOSTICS_H_
