#include "tools/atropos_lint/guard_scope.h"

namespace atropos::lint {

bool IsStdGuardType(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" || s == "shared_lock";
}

bool IsLockTag(const std::string& s) {
  return s == "defer_lock" || s == "adopt_lock" || s == "try_to_lock";
}

std::string NormalizeMutexExpr(const std::vector<Token>& toks, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end; i++) {
    const Token& t = toks[i];
    if (t.IsIdent("this") || t.IsIdent("std") || t.IsPunct("&") || t.IsPunct("*")) {
      continue;
    }
    if (t.IsPunct("->") || t.IsPunct("::")) {
      if (!out.empty()) {
        out += t.text == "->" ? "." : "::";
      }
      continue;
    }
    if (t.kind == TokenKind::kIdentifier || t.IsPunct(".")) {
      out += t.text;
    }
  }
  // `this->mu_` normalized above leaves a leading "." — strip it.
  while (!out.empty() && out.front() == '.') {
    out.erase(out.begin());
  }
  return out;
}

size_t LockExprStart(const std::vector<Token>& toks, size_t end, size_t floor) {
  size_t begin = end;
  while (begin > floor + 1) {
    const Token& p = toks[begin - 1];
    if (p.kind == TokenKind::kIdentifier || p.IsPunct(".") || p.IsPunct("->") ||
        p.IsPunct("::")) {
      begin--;
    } else {
      break;
    }
  }
  return begin;
}

namespace {

void AppendLockArg(const std::vector<Token>& toks, size_t begin, size_t end,
                   std::vector<std::string>* out) {
  for (size_t i = begin; i < end; i++) {
    if (toks[i].kind == TokenKind::kIdentifier && IsLockTag(toks[i].text)) {
      return;  // std::defer_lock etc.: not an acquisition
    }
  }
  std::string m = NormalizeMutexExpr(toks, begin, end);
  if (!m.empty()) {
    out->push_back(std::move(m));
  }
}

}  // namespace

std::vector<std::string> SplitLockArgs(const std::vector<Token>& toks, size_t open,
                                       size_t limit) {
  std::vector<std::string> out;
  int depth = 0;
  size_t arg_begin = open + 1;
  for (size_t i = open; i < limit; i++) {
    if (toks[i].IsPunct("(") || toks[i].IsPunct("[")) {
      depth++;
    } else if (toks[i].IsPunct(")") || toks[i].IsPunct("]")) {
      depth--;
      if (depth == 0) {
        AppendLockArg(toks, arg_begin, i, &out);
        break;
      }
    } else if (depth == 1 && toks[i].IsPunct(",")) {
      AppendLockArg(toks, arg_begin, i, &out);
      arg_begin = i + 1;
    }
  }
  return out;
}

size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t j, size_t limit) {
  if (j >= limit || !toks[j].IsPunct("<")) {
    return j;
  }
  int tdepth = 0;
  for (; j < limit; j++) {
    if (toks[j].IsPunct("<")) {
      tdepth++;
    } else if (toks[j].IsPunct(">") || toks[j].Is(TokenKind::kPunct, ">>")) {
      tdepth -= toks[j].text == ">>" ? 2 : 1;
      if (tdepth <= 0) {
        return j + 1;
      }
    }
  }
  return j;
}

}  // namespace atropos::lint
