// atomics-protocol: the AbortCell / CancelBoard Dekker discipline, checked.
//
// DESIGN.md §16 states the lost-wakeup-freedom argument of the abortable-sync
// layer in prose: every operation on a protocol word is seq_cst, the
// initiator stores the keyed cancel word and then re-checks the waiter's key
// (store-then-re-load), and the waiter publishes its wait key and then
// re-checks the cancel signal before parking (publish-then-re-check). Each of
// the last three PRs shipped a race that was a violation of exactly one of
// those sentences; this check encodes them as token rules so the next
// violation is a lint finding, not a TSan storm repro.
//
// Scope: files under src/sync/ and src/live/ (the abortable-sync layer and
// its live-mode consumers), plus any file opting in with a standalone
// `// atropos-lint: atomics-protocol` marker. Protocol words are recognized
// by name: atomic members containing "state", "key", or "word"; names
// containing "time" are exempt (timestamps are observational).
//
// Rules:
//   (a) no weak memory order on a protocol word: .load/.store/.exchange/
//       .compare_exchange_*/.fetch_*/.wait on a protocol word with an
//       explicit relaxed/acquire/release/acq_rel/consume order is a finding
//       (implicit = seq_cst is fine);
//   (b) initiator handshake: a non-zero .store to a *cancel* word must be
//       followed, in the same function, by a TryAbort/AbortKey call or a
//       .load of a different protocol word (the key re-load half of the
//       Dekker pair);
//   (c) waiter handshake: a Park() call must be preceded, in the same
//       function and after the last BeginWait, by a cancel-signal re-check
//       (Raised() or a cancel-word .load) — re-checking before publishing
//       the key does not close the race.
//
// Token-level limits: receiver identity is the member's *name*, so a
// protocol word on a different object aliases one on `this` (fine in
// practice — the rules are per-function and the functions touch one cell),
// and rule (b) cannot see a re-load delegated to a callee (the reference
// implementations keep store and re-load in one function precisely so the
// pairing is locally auditable).

#include <array>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/atropos_lint/check.h"
#include "tools/atropos_lint/guard_scope.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "atomics-protocol";

bool InScope(const SourceFile& file) {
  return file.repo_path.find("src/sync/") != std::string::npos ||
         file.repo_path.find("src/live/") != std::string::npos ||
         file.lex.atomics_protocol_marker;
}

std::string Lowered(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

// A state/key/cancel word participating in the abort protocol, by name.
bool IsProtocolWord(const std::string& name) {
  std::string n = Lowered(name);
  if (n.find("time") != std::string::npos) {
    return false;  // timestamps ride along, observational only
  }
  return n.find("state") != std::string::npos || n.find("key") != std::string::npos ||
         n.find("word") != std::string::npos;
}

// The initiator-side cancel word specifically (rule b).
bool IsCancelWord(const std::string& name) {
  std::string n = Lowered(name);
  if (n.find("time") != std::string::npos) {
    return false;
  }
  return n.find("cancel") != std::string::npos &&
         (n.find("key") != std::string::npos || n.find("word") != std::string::npos);
}

bool IsAtomicOp(const std::string& s) {
  constexpr std::array<std::string_view, 11> kOps = {
      "load",      "store",     "exchange",  "compare_exchange_strong",
      "compare_exchange_weak", "fetch_add", "fetch_sub", "fetch_or",
      "fetch_and", "fetch_xor", "wait",
  };
  for (std::string_view op : kOps) {
    if (s == op) {
      return true;
    }
  }
  return false;
}

bool IsWeakOrderName(const std::string& s, std::string* shown) {
  constexpr std::array<std::string_view, 5> kWeak = {
      "memory_order_relaxed", "memory_order_acquire", "memory_order_release",
      "memory_order_acq_rel", "memory_order_consume",
  };
  for (std::string_view w : kWeak) {
    if (s == w) {
      *shown = std::string(w);
      return true;
    }
  }
  return false;
}

// Last member segment of a normalized receiver expression: "s.cell.state_"
// -> "state_".
std::string LastSegment(const std::string& expr) {
  size_t dot = expr.rfind('.');
  return dot == std::string::npos ? expr : expr.substr(dot + 1);
}

// Index of the ")" matching the "(" at `open` (forward scan), or `limit`.
size_t MatchingCloseParen(const std::vector<Token>& toks, size_t open, size_t limit) {
  int depth = 0;
  for (size_t i = open; i < limit; i++) {
    if (toks[i].IsPunct("(")) {
      depth++;
    } else if (toks[i].IsPunct(")") && --depth == 0) {
      return i;
    }
  }
  return limit;
}

class AtomicsProtocolCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void Analyze(const SourceFile& file, DiagnosticSink* sink) override {
    if (!InScope(file)) {
      return;
    }
    CheckOrders(file, sink);
    for (const FunctionInfo& fn : file.outline.functions) {
      if (fn.parent != -1) {
        continue;  // nested lambdas are scanned within their root's span
      }
      CheckInitiatorHandshake(file, fn, sink);
      CheckWaiterHandshake(file, fn, sink);
    }
  }

 private:
  // An atomic member-op call at token `i` ("op" preceded by . or ->, followed
  // by "("): fills the receiver word name and the arg-list close paren.
  static bool AtomicOpAt(const SourceFile& file, size_t i, std::string* word, size_t* close) {
    const std::vector<Token>& toks = file.tokens();
    if (toks[i].kind != TokenKind::kIdentifier || !IsAtomicOp(toks[i].text) || i < 2 ||
        (!toks[i - 1].IsPunct(".") && !toks[i - 1].IsPunct("->")) || i + 1 >= toks.size() ||
        !toks[i + 1].IsPunct("(")) {
      return false;
    }
    size_t begin = LockExprStart(toks, i - 1, 0);
    *word = LastSegment(NormalizeMutexExpr(toks, begin, i - 1));
    *close = MatchingCloseParen(toks, i + 1, toks.size());
    return !word->empty();
  }

  // Rule (a): explicit weak orders on protocol words, anywhere in the file.
  void CheckOrders(const SourceFile& file, DiagnosticSink* sink) {
    const std::vector<Token>& toks = file.tokens();
    for (size_t i = 0; i < toks.size(); i++) {
      std::string word;
      size_t close = 0;
      if (!AtomicOpAt(file, i, &word, &close) || !IsProtocolWord(word)) {
        continue;
      }
      for (size_t j = i + 2; j < close; j++) {
        std::string shown;
        if (toks[j].kind == TokenKind::kIdentifier && IsWeakOrderName(toks[j].text, &shown)) {
          // fallthrough to report
        } else if (toks[j].kind == TokenKind::kIdentifier && j >= 2 &&
                   toks[j - 1].IsPunct("::") && toks[j - 2].IsIdent("memory_order") &&
                   (toks[j].text == "relaxed" || toks[j].text == "acquire" ||
                    toks[j].text == "release" || toks[j].text == "acq_rel" ||
                    toks[j].text == "consume")) {
          shown = "memory_order::" + toks[j].text;
        } else {
          continue;
        }
        sink->Report(file.path, toks[j].line, kCheckName,
                     "weak order '" + shown + "' on protocol word '" + word +
                         "'; abort-protocol words are seq_cst only (DESIGN.md §16)");
      }
    }
  }

  // Rule (b): non-zero cancel-word store must be followed by TryAbort /
  // AbortKey / a re-load of a different protocol word in the same function.
  void CheckInitiatorHandshake(const SourceFile& file, const FunctionInfo& fn,
                               DiagnosticSink* sink) {
    const std::vector<Token>& toks = file.tokens();
    struct PendingStore {
      std::string word;
      int line;
      size_t pos;
    };
    std::vector<PendingStore> stores;
    struct Reload {
      std::string word;  // "" for TryAbort/AbortKey calls
      size_t pos;
    };
    std::vector<Reload> reloads;

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      if (toks[i].kind != TokenKind::kIdentifier) {
        continue;
      }
      if ((toks[i].text == "TryAbort" || toks[i].text == "AbortKey") && i + 1 < toks.size() &&
          toks[i + 1].IsPunct("(")) {
        reloads.push_back(Reload{"", i});
        continue;
      }
      std::string word;
      size_t close = 0;
      if (!AtomicOpAt(file, i, &word, &close)) {
        continue;
      }
      if (toks[i].text == "store" && IsCancelWord(word)) {
        // Zero stores clear the word (retract), not a cancellation publish.
        bool zero_store = i + 2 < toks.size() && toks[i + 2].Is(TokenKind::kNumber, "0");
        if (!zero_store) {
          stores.push_back(PendingStore{word, toks[i].line, i});
        }
      } else if (toks[i].text == "load" && IsProtocolWord(word)) {
        reloads.push_back(Reload{word, i});
      }
    }

    for (const PendingStore& s : stores) {
      bool validated = false;
      for (const Reload& r : reloads) {
        if (r.pos > s.pos && (r.word.empty() || r.word != s.word)) {
          validated = true;
          break;
        }
      }
      if (!validated) {
        sink->Report(file.path, s.line, kCheckName,
                     "cancel-word store to '" + s.word +
                         "' without a key re-load or TryAbort afterwards in this function; "
                         "the initiator handshake is store-then-re-load (DESIGN.md §16)");
      }
    }
  }

  // Rule (c): Park() must be preceded by a cancel-signal re-check after the
  // last BeginWait (publish-then-re-check).
  void CheckWaiterHandshake(const SourceFile& file, const FunctionInfo& fn,
                            DiagnosticSink* sink) {
    const std::vector<Token>& toks = file.tokens();
    std::vector<size_t> parks;
    std::vector<size_t> publishes;  // BeginWait call sites
    std::vector<size_t> rechecks;   // Raised() calls or cancel-word loads

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      if (toks[i].kind != TokenKind::kIdentifier || i + 1 >= toks.size() ||
          !toks[i + 1].IsPunct("(")) {
        continue;
      }
      if (toks[i].text == "Park" &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
        parks.push_back(i);
      } else if (toks[i].text == "BeginWait") {
        publishes.push_back(i);
      } else if (toks[i].text == "Raised") {
        rechecks.push_back(i);
      } else if (toks[i].text == "load") {
        std::string word;
        size_t close = 0;
        if (AtomicOpAt(file, i, &word, &close) && IsCancelWord(word)) {
          rechecks.push_back(i);
        }
      }
    }

    for (size_t park : parks) {
      size_t last_publish = fn.body_begin;
      for (size_t p : publishes) {
        if (p < park && p > last_publish) {
          last_publish = p;
        }
      }
      bool rechecked = false;
      for (size_t r : rechecks) {
        if (r > last_publish && r < park) {
          rechecked = true;
          break;
        }
      }
      if (!rechecked) {
        sink->Report(file.path, toks[park].line, kCheckName,
                     "Park() without re-checking the cancel signal after the key publish; "
                     "the waiter handshake is publish-then-re-check (DESIGN.md §16)");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeAtomicsProtocolCheck() {
  return std::make_unique<AtomicsProtocolCheck>();
}

}  // namespace atropos::lint
