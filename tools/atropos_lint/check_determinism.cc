// determinism: no ambient time or randomness in digest paths.
//
// The fuzzer's replay guarantee (PR 3/4: byte-for-byte identical flight-
// recorder streams for identical plans) holds only if every value feeding the
// decision pipeline and its digest comes through the Clock interface or a
// seeded Rng. A stray wall-clock read or libc rand() in those layers breaks
// replay silently — exactly the class of regression this check pins down.
//
// Digest paths: src/atropos/, src/obs/, src/testing/, src/common/ (the
// decision pipeline, its event stream, and the fuzz harness), minus the
// sanctioned clock shim src/common/clock.h, which is the one place allowed to
// touch std::chrono. Fixture files opt in with `// atropos-lint: digest-path`.

#include <array>
#include <string>
#include <string_view>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "determinism";

constexpr std::array<std::string_view, 6> kDigestPrefixes = {
    "src/atropos/",
    "src/obs/",
    "src/testing/",
    "src/common/",
    "src/mining/",    // corpus entries must replay to byte-stable digests
    "src/diagnose/",  // offline diagnosis must be a pure function of the trace
};

constexpr std::string_view kSanctionedShim = "src/common/clock.h";

// Identifiers banned outright in digest paths (any use).
bool IsBannedIdentifier(std::string_view s) {
  return s == "system_clock" || s == "high_resolution_clock" || s == "steady_clock" ||
         s == "random_device" || s == "gettimeofday" || s == "clock_gettime" ||
         s == "timespec_get" || s == "srand" || s == "localtime" || s == "gmtime" ||
         s == "mktime";
}

// Identifiers banned only when invoked as a free function: `time(...)`,
// `rand()`, `clock()`. Member accessors like `executor.clock()` stay legal —
// they resolve to the injected Clock, which is the sanctioned path.
bool IsBannedFreeCall(std::string_view s) {
  return s == "time" || s == "rand" || s == "clock";
}

class DeterminismCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void Analyze(const SourceFile& file, DiagnosticSink* sink) override {
    if (!AppliesTo(file)) {
      return;
    }
    const std::vector<Token>& toks = file.tokens();
    for (size_t i = 0; i < toks.size(); i++) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (IsBannedIdentifier(t.text)) {
        sink->Report(file.path, t.line, kCheckName,
                     "'" + t.text + "' in a digest path; read time through the Clock " +
                         "interface (src/common/clock.h) and randomness through a seeded Rng");
        continue;
      }
      if (IsBannedFreeCall(t.text) && i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
        // Free-function position only: not obj.time(...), not x->clock(),
        // and not a qualified member like Foo::clock(...). std::time(...) is
        // still banned, so "std" is the one qualifier that doesn't exempt.
        bool member = false;
        if (i > 0) {
          const Token& prev = toks[i - 1];
          if (prev.IsPunct(".") || prev.IsPunct("->")) {
            member = true;
          } else if (prev.IsPunct("::") && i >= 2 && !toks[i - 2].IsIdent("std")) {
            member = true;
          }
        }
        // Declarations (`uint64_t time(...)`) and definitions would match
        // too, but digest-path code has no business declaring those names
        // either, so flagging them is intended.
        if (!member) {
          sink->Report(file.path, t.line, kCheckName,
                       "call of '" + t.text + "()' in a digest path; ambient time/randomness " +
                           "breaks replay determinism");
        }
      }
    }
  }

 private:
  static bool AppliesTo(const SourceFile& file) {
    if (file.lex.digest_path_marker) {
      return true;
    }
    // Substring / suffix matching so both repo-relative and absolute paths
    // resolve (ctest invokes the tool with absolute --dir arguments).
    if (file.repo_path.size() >= kSanctionedShim.size() &&
        file.repo_path.compare(file.repo_path.size() - kSanctionedShim.size(),
                               kSanctionedShim.size(), kSanctionedShim) == 0) {
      return false;
    }
    for (std::string_view prefix : kDigestPrefixes) {
      if (file.repo_path.find(prefix) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Check> MakeDeterminismCheck() { return std::make_unique<DeterminismCheck>(); }

}  // namespace atropos::lint
