// capi-pairing: createCancel/freeCancel balance and getResource/freeResource
// unit balance, per function scope (paper Fig 6, §3.1–§3.2).
//
// The analysis is scope-local by design: Atropos' integration pattern brackets
// a task's lifetime and its resource usage inside one function (quickstart and
// integrate_your_app are the reference shapes), so create/free pairs that span
// functions are rare enough to annotate with `atropos-lint: allow(...)`.
//
// Per non-lambda-nested scope it reports:
//   - a createCancel whose handle is neither freed, returned, nor handed to
//     an owning sink (leak),
//   - a createCancel whose result is discarded outright,
//   - freeCancel called twice on the same handle without re-creation
//     (double-free),
//   - getResource/freeResource unit imbalance per resource type when every
//     amount is an integer literal, call-count imbalance otherwise,
//   - slowByResourceBegin/End bracket imbalance per resource type.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "tools/atropos_lint/check.h"

namespace atropos::lint {

namespace {

constexpr char kCheckName[] = "capi-pairing";

// Sinks that borrow a Cancellable* without taking ownership; passing a handle
// to anything else is treated as an ownership transfer (escape).
bool IsNonOwningSink(const std::string& name) {
  return name == "freeCancel" || name == "SetCurrentCancellable" ||
         name == "CancellableScope" || name == "EnterCancellableScope" ||
         name == "ExitCancellableScope";
}

struct HandleState {
  int created_line = 0;
  bool freed = false;
  bool escaped = false;
};

struct ResourceBalance {
  int first_get_line = 0;
  uint64_t get_calls = 0;
  uint64_t free_calls = 0;
  uint64_t get_units = 0;
  uint64_t free_units = 0;
  bool units_known = true;  // all amounts were integer literals
  int begin_calls = 0;      // slowByResourceBegin
  int end_calls = 0;        // slowByResourceEnd
  int first_begin_line = 0;
};

// Extracts the resource-type key of a getResource/freeResource-style call:
// the last identifier of the second argument (e.g. `CApiResourceType::LOCK`
// -> "LOCK"). `open` indexes the call's "(".
std::optional<std::string> ResourceTypeKey(const std::vector<Token>& toks, size_t open,
                                           size_t limit, int arg_index) {
  int depth = 0;
  int commas = 0;
  std::string last_ident;
  for (size_t i = open; i < limit; i++) {
    const Token& t = toks[i];
    if (t.IsPunct("(") || t.IsPunct("[")) {
      depth++;
    } else if (t.IsPunct(")") || t.IsPunct("]")) {
      depth--;
      if (depth == 0) {
        break;
      }
    } else if (depth == 1 && t.IsPunct(",")) {
      if (commas == arg_index) {
        break;
      }
      commas++;
      last_ident.clear();
    } else if (depth >= 1 && commas == arg_index && t.kind == TokenKind::kIdentifier) {
      last_ident = t.text;
    }
  }
  if (last_ident.empty()) {
    return std::nullopt;
  }
  return last_ident;
}

// First argument of the call at `open` when it is a single integer literal.
std::optional<uint64_t> LiteralFirstArg(const std::vector<Token>& toks, size_t open) {
  if (toks[open + 1].kind != TokenKind::kNumber) {
    return std::nullopt;
  }
  if (!toks[open + 2].IsPunct(",") && !toks[open + 2].IsPunct(")")) {
    return std::nullopt;
  }
  std::string digits;
  for (char c : toks[open + 1].text) {
    if (c != '\'') {
      digits.push_back(c);
    }
  }
  try {
    return std::stoull(digits, nullptr, 0);
  } catch (...) {
    return std::nullopt;
  }
}

class CapiPairingCheck final : public Check {
 public:
  std::string_view name() const override { return kCheckName; }

  void Analyze(const SourceFile& file, DiagnosticSink* sink) override {
    for (size_t f = 0; f < file.outline.functions.size(); f++) {
      AnalyzeScope(file, f, sink);
    }
  }

 private:
  // Tokens of function `f`'s body excluding nested function/lambda bodies.
  static bool InOwnScope(const SourceFile& file, size_t f, size_t i) {
    return file.outline.EnclosingFunction(i) == static_cast<int>(f);
  }

  void AnalyzeScope(const SourceFile& file, size_t f, DiagnosticSink* sink) {
    const FunctionInfo& fn = file.outline.functions[f];
    const std::vector<Token>& toks = file.tokens();

    std::map<std::string, HandleState> handles;
    std::map<std::string, ResourceBalance> resources;

    for (size_t i = fn.body_begin + 1; i < fn.body_end; i++) {
      if (!InOwnScope(file, f, i)) {
        continue;
      }
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      const bool is_call = toks[i + 1].IsPunct("(");

      if (t.text == "createCancel" && is_call) {
        // `X* var = createCancel(...)` / `auto var = createCancel(...)`.
        std::string var;
        if (i >= 2 && toks[i - 1].IsPunct("=") &&
            toks[i - 2].kind == TokenKind::kIdentifier) {
          var = toks[i - 2].text;
        }
        if (var.empty()) {
          sink->Report(file.path, t.line, kCheckName,
                       "result of createCancel is discarded; the task handle leaks");
        } else {
          handles[var] = HandleState{t.line, false, false};
        }
        continue;
      }
      if (t.text == "freeCancel" && is_call) {
        if (toks[i + 2].kind == TokenKind::kIdentifier && toks[i + 3].IsPunct(")")) {
          const std::string& var = toks[i + 2].text;
          auto it = handles.find(var);
          if (it != handles.end()) {
            if (it->second.freed) {
              sink->Report(file.path, t.line, kCheckName,
                           "double freeCancel of handle '" + var + "' (created at line " +
                               std::to_string(it->second.created_line) + ")");
            }
            it->second.freed = true;
          }
        }
        i += 1;  // skip the "(" so the argument isn't treated as a use
        continue;
      }
      if ((t.text == "getResource" || t.text == "freeResource") && is_call) {
        std::optional<std::string> key = ResourceTypeKey(toks, i + 1, fn.body_end, 1);
        if (!key.has_value()) {
          continue;
        }
        ResourceBalance& bal = resources[*key];
        std::optional<uint64_t> units = LiteralFirstArg(toks, i + 1);
        if (t.text == "getResource") {
          if (bal.get_calls == 0) {
            bal.first_get_line = t.line;
          }
          bal.get_calls++;
          bal.get_units += units.value_or(0);
        } else {
          bal.free_calls++;
          bal.free_units += units.value_or(0);
        }
        if (!units.has_value()) {
          bal.units_known = false;
        }
        continue;
      }
      if ((t.text == "slowByResourceBegin" || t.text == "slowByResourceEnd") && is_call) {
        std::optional<std::string> key = ResourceTypeKey(toks, i + 1, fn.body_end, 0);
        if (!key.has_value()) {
          continue;
        }
        ResourceBalance& bal = resources[*key];
        if (t.text == "slowByResourceBegin") {
          if (bal.begin_calls == 0) {
            bal.first_begin_line = t.line;
          }
          bal.begin_calls++;
        } else {
          bal.end_calls++;
        }
        continue;
      }

      // Escape analysis for tracked handles: returns and uses outside the
      // non-owning sink set transfer ownership out of this scope.
      auto it = handles.find(t.text);
      if (it != handles.end()) {
        if (i >= 1 && toks[i - 1].IsIdent("return")) {
          it->second.escaped = true;
        } else if (i >= 1 && (toks[i - 1].IsPunct("(") || toks[i - 1].IsPunct(","))) {
          // Argument position: find the callee identifier before the "(".
          size_t open = i - 1;
          int depth = 0;
          while (open > fn.body_begin && !(toks[open].IsPunct("(") && depth == 0)) {
            if (toks[open].IsPunct(")")) {
              depth++;
            } else if (toks[open].IsPunct("(")) {
              depth--;
            }
            open--;
          }
          // `sink(c)` names the callee at open-1; `CancellableScope scope(c)`
          // names the type at open-2 — accept a non-owning sink in either.
          bool non_owning = false;
          for (size_t back = 1; back <= 2 && open >= back; back++) {
            if (toks[open - back].kind == TokenKind::kIdentifier &&
                IsNonOwningSink(toks[open - back].text)) {
              non_owning = true;
            }
          }
          if (!non_owning) {
            it->second.escaped = true;
          }
        } else if (toks[i + 1].IsPunct("=") || (i >= 1 && toks[i - 1].IsPunct("="))) {
          // Reassigned or assigned elsewhere: stop tracking conservatively.
          it->second.escaped = true;
        }
      }
    }

    for (const auto& [var, state] : handles) {
      if (!state.freed && !state.escaped) {
        sink->Report(file.path, state.created_line, kCheckName,
                     "handle '" + var + "' from createCancel is never passed to freeCancel " +
                         "in this scope (leak)");
      }
    }
    for (const auto& [key, bal] : resources) {
      if (bal.get_calls > 0) {
        if (bal.free_calls == 0) {
          sink->Report(file.path, bal.first_get_line, kCheckName,
                       "getResource(" + key + ") has no matching freeResource in this scope");
        } else if (bal.units_known && bal.get_units != bal.free_units) {
          sink->Report(file.path, bal.first_get_line, kCheckName,
                       "unbalanced units for resource " + key + ": getResource total " +
                           std::to_string(bal.get_units) + " vs freeResource total " +
                           std::to_string(bal.free_units));
        }
      }
      if (bal.begin_calls != bal.end_calls && (bal.begin_calls > 0 || bal.end_calls > 0)) {
        int line = bal.first_begin_line != 0 ? bal.first_begin_line : bal.first_get_line;
        sink->Report(file.path, line, kCheckName,
                     "slowByResourceBegin/End bracket imbalance for resource " + key + " (" +
                         std::to_string(bal.begin_calls) + " begins, " +
                         std::to_string(bal.end_calls) + " ends)");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeCapiPairingCheck() { return std::make_unique<CapiPairingCheck>(); }

}  // namespace atropos::lint
