// quickstart — the paper's Fig 6/7 integration pattern in ~100 lines.
//
// A toy "database" serves point queries against a table protected by a lock.
// One heavy query grabs the lock and sits on it. We integrate Atropos with
// exactly the paper's API surface:
//
//   createCancel / freeCancel      — mark the scope of cancellable tasks
//   setCancelAction                — register the app's cancellation initiator
//   getResource / freeResource /
//   slowByResource                 — trace application resource usage
//
// Atropos detects the overload, identifies the lock holder as the culprit,
// and invokes the initiator — which in this toy app sets a kill flag the
// query observes at its next checkpoint (the §2.4 pattern).

#include <cstdio>
#include <unordered_map>

#include "src/atropos/atropos.h"
#include "src/sim/coro.h"
#include "src/sim/sync.h"

namespace {

using namespace atropos;  // NOLINT: example brevity

struct ToyDb {
  explicit ToyDb(Executor& ex) : executor(ex), table_lock(ex) {}

  Executor& executor;
  SimMutex table_lock;
  // The app's own kill flags — what sql_kill() flips in MySQL.
  std::unordered_map<uint64_t, CancelToken*> kill_flags;

  void Kill(uint64_t key) {
    auto it = kill_flags.find(key);
    if (it != kill_flags.end()) {
      std::printf("[%.2fs] ToyDb: killing query %llu (the cancellation initiator ran)\n",
                  ToSeconds(executor.now()), static_cast<unsigned long long>(key));
      it->second->Cancel();
    }
  }
};

ToyDb* g_db = nullptr;

// The cancellation initiator handed to setCancelAction (Fig 7's sql_kill).
void SqlKill(uint64_t key) { g_db->Kill(key); }

// A short point query: lock, do 1 ms of work, unlock.
Coro PointQuery(ToyDb& db, uint64_t key) {
  co_await BindExecutor{db.executor};
  CancelToken token(db.executor);
  db.kill_flags[key] = &token;
  Cancellable* c = createCancel(key);  // register the cancellable task
  CancellableScope scope(c);
  GlobalRuntime()->OnRequestStart(key, 0, 0);

  TimeMicros wait_start = db.executor.now();
  bool contended = db.table_lock.held();
  if (contended) {
    slowByResourceBegin(CApiResourceType::LOCK);  // in-progress stalls count
  }
  Status s = co_await db.table_lock.Acquire(&token);
  // The paper's API keys tracing off the calling thread; coroutines interleave
  // across suspensions, so re-assert the current task after every await.
  SetCurrentCancellable(c);
  if (contended) {
    slowByResourceEnd(CApiResourceType::LOCK);
  }
  if (s.ok()) {
    getResource(1, CApiResourceType::LOCK);  // we now hold the table lock
    co_await Delay{db.executor, 200};        // 0.2 ms of work under the lock
    SetCurrentCancellable(c);
    freeResource(1, CApiResourceType::LOCK);
    db.table_lock.Release();
  }
  GlobalRuntime()->OnRequestEnd(key, db.executor.now() - wait_start, 0, 0);
  db.kill_flags.erase(key);
  freeCancel(c);
}

// The culprit: takes the lock and "processes" 100k rows, checking its kill
// flag at row-batch checkpoints (the common pattern of §2.4).
Coro HeavyQuery(ToyDb& db, uint64_t key) {
  co_await BindExecutor{db.executor};
  CancelToken token(db.executor);
  db.kill_flags[key] = &token;
  Cancellable* c = createCancel(key);
  CancellableScope scope(c);

  Status s = co_await db.table_lock.Acquire(&token);
  SetCurrentCancellable(c);
  if (s.ok()) {
    getResource(1, CApiResourceType::LOCK);
    const uint64_t total_rows = 100'000;
    for (uint64_t row = 0; row < total_rows; row += 1000) {
      if (token.cancelled()) {
        std::printf("[%.2fs] heavy query observed its kill flag at row %llu and stopped\n",
                    ToSeconds(db.executor.now()), static_cast<unsigned long long>(row));
        break;
      }
      co_await Delay{db.executor, Millis(2)};  // 2 ms per 1000 rows
      SetCurrentCancellable(c);
      reportProgress(row, total_rows);         // GetNext-style progress (§3.4)
    }
    SetCurrentCancellable(c);
    freeResource(1, CApiResourceType::LOCK);
    db.table_lock.Release();
  }
  db.kill_flags.erase(key);
  freeCancel(c);
}

Coro ClientLoad(ToyDb& db) {
  co_await BindExecutor{db.executor};
  for (uint64_t key = 1; key <= 4000; key++) {
    co_await Delay{db.executor, Millis(1)};
    PointQuery(db, key);
  }
}

Coro ControlLoop(ToyDb& db, AtroposRuntime& runtime, bool* stop) {
  co_await BindExecutor{db.executor};
  while (!*stop) {
    co_await Delay{db.executor, Millis(50)};
    runtime.Tick();
  }
}

}  // namespace

int main() {
  Executor executor;
  ToyDb db(executor);
  g_db = &db;

  AtroposConfig config;
  config.window = Millis(50);
  AtroposRuntime runtime(executor.clock(), config);
  InstallGlobalRuntime(&runtime);
  setCancelAction(&SqlKill);  // Fig 7: register the initiator once, at startup

  std::printf("quickstart: 1000 qps of 0.2ms point queries; a heavy query grabs the table lock\n");
  std::printf("at t=2s and would hold it for 200 ms of work per 100k rows...\n\n");

  bool stop = false;
  ClientLoad(db);
  ControlLoop(db, runtime, &stop);
  executor.CallAt(Seconds(2), [&] { HeavyQuery(db, 777); });

  executor.Run(Seconds(4));
  stop = true;
  executor.Run();

  const AtroposStats& stats = runtime.stats();
  std::printf("\natropos: %llu windows, %llu suspected-overload, %llu cancellations\n",
              static_cast<unsigned long long>(stats.windows),
              static_cast<unsigned long long>(stats.suspected_overload_windows),
              static_cast<unsigned long long>(stats.cancels_issued));
  std::printf("(the culprit was cancelled through the app's own initiator; the\n"
              " victims blocked behind it were never dropped)\n");
  InstallGlobalRuntime(nullptr);
  return 0;
}
