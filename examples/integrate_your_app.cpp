// integrate_your_app — integrating Atropos into an application you own,
// using the full C++ API (explicit resources, task keys, and a control
// surface) rather than the thread-local C facade.
//
// The app is a toy image-processing service: requests claim a slot in a
// bounded worker queue, allocate scratch memory from a shared arena, and
// process tiles. A "panorama stitch" request allocates most of the arena and
// runs for seconds — the culprit. The example shows the three integration
// steps the paper describes (§3.1-§3.2):
//
//   1. register application resources (a QUEUE and a MEMORY resource),
//   2. bracket resource usage with OnGet/OnFree/OnWaitBegin/OnWaitEnd,
//   3. expose a cancellation initiator and register tasks as cancellable.

#include <cstdio>
#include <unordered_map>

#include "src/atropos/atropos.h"
#include "src/atropos/instrument.h"
#include "src/sim/coro.h"

namespace {

using namespace atropos;  // NOLINT: example brevity

class ImageService {
 public:
  ImageService(Executor& ex, AtroposRuntime& runtime)
      : executor_(ex),
        runtime_(runtime),
        // Step 1: declare the application resources.
        queue_resource_(runtime.RegisterResource("worker_queue", ResourceClass::kQueue)),
        arena_resource_(runtime.RegisterResource("scratch_arena", ResourceClass::kMemory)),
        workers_(ex, /*capacity=*/2, &runtime, queue_resource_),
        arena_capacity_kb_(512 * 1024) {
    // Step 3: the cancellation initiator — Atropos calls this with the key of
    // the task it decided to cancel.
    runtime_.SetCancelAction([this](uint64_t key) {
      auto it = tokens_.find(key);
      if (it != tokens_.end()) {
        std::printf("[%.2fs] ImageService: aborting request %llu\n",
                    ToSeconds(executor_.now()), static_cast<unsigned long long>(key));
        it->second->Cancel();
      }
    });
  }

  // A small request: one tile, 8 MB of scratch, ~4 ms of work.
  Coro HandleTile(uint64_t key) {
    co_await BindExecutor{executor_};
    CancelToken token(executor_);
    tokens_[key] = &token;
    runtime_.OnTaskRegistered(key, /*background=*/false);
    runtime_.OnRequestStart(key, /*request_type=*/0, /*client_class=*/0);
    TimeMicros start = executor_.now();

    // Step 2a: the worker queue is a QUEUE resource; the instrumented
    // semaphore emits the wait/get/free events for us.
    Status s = co_await workers_.Acquire(key, &token);
    if (s.ok()) {
      co_await AllocateScratch(key, 8 * 1024, &token);
      co_await Delay{executor_, 4000};
      FreeScratch(key, 8 * 1024);
      workers_.Release(key);
    }
    runtime_.OnRequestEnd(key, executor_.now() - start, 0, 0);
    runtime_.OnTaskFreed(key);
    tokens_.erase(key);
    completed_ += s.ok() ? 1 : 0;
  }

  // The culprit: stitches 400 tiles, holding ~400 MB of scratch throughout.
  Coro HandlePanorama(uint64_t key) {
    co_await BindExecutor{executor_};
    CancelToken token(executor_);
    tokens_[key] = &token;
    runtime_.OnTaskRegistered(key, /*background=*/false);
    runtime_.OnRequestStart(key, /*request_type=*/1, /*client_class=*/1);
    TimeMicros start = executor_.now();

    Status s = co_await workers_.Acquire(key, &token);
    if (s.ok()) {
      uint64_t held_kb = 0;
      const int total_tiles = 400;
      for (int tile = 0; tile < total_tiles; tile++) {
        if (token.cancelled()) {
          s = Status::Cancelled("panorama aborted at tile checkpoint");
          break;
        }
        co_await AllocateScratch(key, 1024, &token);
        held_kb += 1024;
        co_await Delay{executor_, 10'000};  // 10 ms per tile
        runtime_.OnProgress(key, static_cast<uint64_t>(tile + 1),
                            static_cast<uint64_t>(total_tiles));
      }
      FreeScratch(key, held_kb);
      workers_.Release(key);
    }
    runtime_.OnRequestEnd(key, executor_.now() - start, 1, 1);
    runtime_.OnTaskFreed(key);
    tokens_.erase(key);
    if (s.IsCancelled()) {
      cancelled_panoramas_++;
    }
  }

  uint64_t completed() const { return completed_; }
  uint64_t cancelled_panoramas() const { return cancelled_panoramas_; }

 private:
  // Step 2b: a hand-instrumented MEMORY resource. When the arena is full the
  // allocator stalls until space frees up — that stall is the slowByResource
  // bracket; the grant is the getResource event.
  Task<Status> AllocateScratch(uint64_t key, uint64_t kb, CancelToken* token) {
    bool stalled = arena_used_kb_ + kb > arena_capacity_kb_;
    if (stalled) {
      runtime_.OnWaitBegin(key, arena_resource_);
      while (arena_used_kb_ + kb > arena_capacity_kb_) {
        if (token != nullptr && token->cancelled()) {
          runtime_.OnWaitEnd(key, arena_resource_);
          co_return Status::Cancelled("arena wait cancelled");
        }
        co_await Delay{executor_, 1000};
      }
      runtime_.OnWaitEnd(key, arena_resource_);
    }
    arena_used_kb_ += kb;
    runtime_.OnGet(key, arena_resource_, kb);
    co_return Status::Ok();
  }

  void FreeScratch(uint64_t key, uint64_t kb) {
    arena_used_kb_ -= kb;
    runtime_.OnFree(key, arena_resource_, kb);
  }

  Executor& executor_;
  AtroposRuntime& runtime_;
  ResourceId queue_resource_;
  ResourceId arena_resource_;
  InstrumentedSemaphore workers_;
  uint64_t arena_capacity_kb_;
  uint64_t arena_used_kb_ = 0;
  std::unordered_map<uint64_t, CancelToken*> tokens_;
  uint64_t completed_ = 0;
  uint64_t cancelled_panoramas_ = 0;
};

Coro TileLoad(Executor& ex, ImageService& service) {
  co_await BindExecutor{ex};
  for (uint64_t key = 1; key <= 1500; key++) {
    co_await Delay{ex, 3000};
    service.HandleTile(key);
  }
}

Coro ControlLoop(Executor& ex, AtroposRuntime& runtime, bool* stop) {
  co_await BindExecutor{ex};
  while (!*stop) {
    co_await Delay{ex, Millis(50)};
    runtime.Tick();
  }
}

}  // namespace

int main() {
  Executor executor;
  AtroposConfig config;
  config.window = Millis(50);
  AtroposRuntime runtime(executor.clock(), config);
  ImageService service(executor, runtime);

  std::printf("integrate_your_app: tile requests at ~330 qps on 2 workers;\n");
  std::printf("a panorama stitch at t=2s occupies a worker for 4s...\n\n");

  bool stop = false;
  TileLoad(executor, service);
  ControlLoop(executor, runtime, &stop);
  executor.CallAt(Seconds(2), [&] { service.HandlePanorama(9999); });

  executor.Run(Seconds(5));
  stop = true;
  executor.Run();

  std::printf("\ntiles completed: %llu, panoramas cancelled: %llu, atropos cancels: %llu\n",
              static_cast<unsigned long long>(service.completed()),
              static_cast<unsigned long long>(service.cancelled_panoramas()),
              static_cast<unsigned long long>(runtime.stats().cancels_issued));
  return 0;
}
