// case_explorer — run any of the 16 reproduced overload cases under any
// controller and inspect what happened.
//
//   ./case_explorer <case 1..16> [controller] [--no-culprits] [--slo=0.2]
//
// controller: none | atropos | atropos-heuristic | atropos-current-usage |
//             protego | pbox | darc | parties

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/logging.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

ControllerKind ParseController(const std::string& name) {
  if (name == "atropos") {
    return ControllerKind::kAtropos;
  }
  if (name == "atropos-heuristic") {
    return ControllerKind::kAtroposHeuristic;
  }
  if (name == "atropos-current-usage") {
    return ControllerKind::kAtroposCurrentUsage;
  }
  if (name == "protego") {
    return ControllerKind::kProtego;
  }
  if (name == "pbox") {
    return ControllerKind::kPBox;
  }
  if (name == "darc") {
    return ControllerKind::kDarc;
  }
  if (name == "parties") {
    return ControllerKind::kParties;
  }
  return ControllerKind::kNone;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <case 1..16> [controller] [--no-culprits] [--slo=0.2]\n", argv[0]);
    return 1;
  }
  int case_id = std::atoi(argv[1]);
  if (case_id < 1 || case_id > kNumCases) {
    std::printf("case must be in 1..%d\n", kNumCases);
    return 1;
  }

  CaseRunOptions options;
  options.verbose = true;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (arg == "--no-culprits") {
      options.inject_culprits = false;
    } else if (arg.rfind("--slo=", 0) == 0) {
      options.slo_latency_increase = std::atof(arg.c_str() + 6);
    } else {
      options.controller = ParseController(arg);
    }
  }

  const CaseInfo& info = CaseCatalog()[static_cast<size_t>(case_id - 1)];
  std::printf("case c%d: %s (%s) — %s / %s\n", info.id, info.app, info.paper_app,
              info.resource_type, info.resource);
  std::printf("trigger: %s\n", info.trigger);
  std::printf("controller: %s, culprits: %s\n\n",
              std::string(ControllerKindName(options.controller)).c_str(),
              options.inject_culprits ? "on" : "off");

  CaseResult result = RunCase(case_id, options);
  const RunMetrics& m = result.metrics;
  std::printf("\narrivals            %llu\n", static_cast<unsigned long long>(m.arrivals));
  std::printf("completed           %llu (%.1f qps)\n",
              static_cast<unsigned long long>(m.completed), m.ThroughputQps());
  std::printf("p50 / p99 latency   %.2f ms / %.2f ms\n", ToMillis(m.P50()), ToMillis(m.P99()));
  std::printf("cancelled / retried %llu / %llu\n", static_cast<unsigned long long>(m.cancelled),
              static_cast<unsigned long long>(m.retried));
  std::printf("dropped / rejected  %llu / %llu (drop rate %.3f%%)\n",
              static_cast<unsigned long long>(m.dropped),
              static_cast<unsigned long long>(m.rejected), m.DropRate() * 100.0);
  std::printf("controller actions  %llu\n",
              static_cast<unsigned long long>(result.controller_actions));
  const AtroposStats& s = result.atropos_stats;
  if (s.windows > 0) {
    std::printf(
        "atropos: windows=%llu suspected=%llu resource-overload=%llu cancels=%llu "
        "suppressed(interval)=%llu suppressed(no-victim)=%llu\n",
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.suspected_overload_windows),
        static_cast<unsigned long long>(s.resource_overload_windows),
        static_cast<unsigned long long>(s.cancels_issued),
        static_cast<unsigned long long>(s.cancels_suppressed_interval),
        static_cast<unsigned long long>(s.cancels_suppressed_no_victim));
  }
  return 0;
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) { return atropos::Run(argc, argv); }
