#!/usr/bin/env bash
# Repo gate: full build + ctest (including the fuzz_smoke and corpus_replay
# corpora), the corpus_smoke stage (mine 5 scenarios from a fixed seed,
# replay them, diagnoser agreement oracle), then the static-analysis stage
# (atropos_lint always; clang-tidy and clang's thread-safety analysis when
# clang is installed), then the obs/workload/atropos tests, a fuzz corpus,
# and a corpus-replay slice under ASan/UBSan, then the concurrent intake
# tests, the live-mode tests (incl. live_smoke), the abortable-sync storms
# (sync_test — the CQS oracle gate), and the mt_ingest smoke under TSan.
#
#   scripts/check.sh          # build + tests + perf trajectory + lint +
#                             # ASan/UBSan + TSan
#   scripts/check.sh --fast   # skip the perf, lint and sanitizer stages
#   scripts/check.sh --lint   # configure + run only the static-analysis stage
#   scripts/check.sh --perf   # configure + run only the perf-trajectory stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

# Static analysis, three sub-stages:
#   1. atropos_lint (tools/atropos_lint): the domain checks — capi-pairing,
#      cancel-action-safety, alloc-free, determinism, lock-order, guarded-by,
#      atomics-protocol, stale-suppression — resolved over the whole-program
#      call graph. Always runs; the tool is built from this repo so there is
#      nothing to install. The stderr summary includes the wall time; the
#      perf stage tracks it via BENCH_lint.json.
#   2. clang-tidy over the decision-pipeline layers, driven by the compile
#      database the main configure exports. Skipped when not installed.
#   3. clang thread-safety analysis: a clang compile of the concurrent intake
#      with -Werror=thread-safety, validating the
#      src/common/thread_annotations.h contracts. Skipped without clang.
run_lint() {
  echo "== lint: atropos_lint (src, examples, tests, tools) =="
  cmake --build build -j "$JOBS" --target atropos_lint >/dev/null
  ./build/tools/atropos_lint/atropos_lint --dir=src --dir=examples --dir=tests --dir=tools

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy over src/atropos + src/testing =="
    local files
    files=$(ls src/atropos/*.cc src/testing/*.cc)
    clang-tidy -p build --quiet $files
  else
    echo "== lint: clang-tidy not found, skipping =="
  fi

  if command -v clang++ >/dev/null 2>&1; then
    echo "== lint: clang thread-safety analysis (concurrent intake) =="
    clang++ -std=c++20 -I. -Wthread-safety -Werror=thread-safety \
      -fsyntax-only src/atropos/concurrent_frontend.cc
  else
    echo "== lint: clang++ not found, skipping thread-safety analysis =="
  fi
}

# Perf trajectory (DESIGN.md §17): regenerate the machine-readable benchmark
# outputs with pinned invocations, then compare every tracked metric against
# the baselines committed under bench/baselines/. Warns on >1.25x noise-band
# drift; fails only on a >2x regression — the accidental-allocation /
# O(n)-scan-on-the-hot-path class this gate exists to catch.
run_perf() {
  echo "== perf trajectory: regenerate BENCH_*.json (pinned invocations) =="
  cmake --build build -j "$JOBS" --target fig14_overhead mt_ingest obs_overhead \
    atropos_lint >/dev/null
  # Single-thread micro benches first; mt_ingest's saturation runs oversubscribe
  # the box and would inflate a micro loop that runs right after them.
  ./build/bench/fig14_overhead --json --skip-sim
  ./build/bench/obs_overhead --json
  ./build/bench/mt_ingest --events=2000000 --max-threads=8 --json
  # The analyzer's own wall time is a tracked metric: the whole-program call
  # graph must stay cheap enough to run on every gate.
  ./build/tools/atropos_lint/atropos_lint --dir=src --dir=examples --dir=tests \
    --dir=tools --json > BENCH_lint.json

  echo "== perf trajectory: compare against bench/baselines/ =="
  python3 scripts/perf_trajectory.py
}

echo "== configure + build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [[ "${1:-}" == "--lint" ]]; then
  run_lint
  exit 0
fi
if [[ "${1:-}" == "--perf" ]]; then
  run_perf
  exit 0
fi

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== fuzz smoke (deterministic corpus, replay-checked) =="
./build/tools/fuzz_atropos --seed=1 --runs=25 --replay-check

echo "== corpus smoke (mine 5 scenarios from a fixed seed, replay, diagnoser oracle) =="
rm -rf build/corpus-smoke
./build/tools/atropos_mine mine --corpus=build/corpus-smoke --seed-start=1 \
  --max-seeds=40 --target=5 --shrink-budget=20 --quiet
./build/tools/atropos_mine replay --corpus=build/corpus-smoke --require-agreement=0.95

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping perf + lint + sanitizer stages (--fast) =="
  exit 0
fi

run_perf

run_lint

echo "== configure + build with ASan/UBSan (build-asan/) =="
cmake -B build-asan -S . -DATROPOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target obs_test workload_test atropos_test sync_test \
  fuzz_atropos atropos_mine

echo "== obs + workload + atropos + sync tests under ASan/UBSan =="
./build-asan/tests/obs_test
./build-asan/tests/workload_test
./build-asan/tests/atropos_test
./build-asan/tests/sync_test

echo "== fuzz corpus under ASan/UBSan =="
./build-asan/tools/fuzz_atropos --seed=1 --runs=10 --replay-check

echo "== corpus replay under ASan/UBSan (first 10 scenarios) =="
./build-asan/tools/atropos_mine replay --corpus=corpus --require-agreement=0.95 --limit=10

echo "== configure + build with TSan (build-tsan/) =="
cmake -B build-tsan -S . -DATROPOS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrent_test live_test sync_test mt_ingest

echo "== concurrent intake + capi facade tests under TSan =="
./build-tsan/tests/concurrent_test

echo "== live-mode tests + live_smoke under TSan =="
./build-tsan/tests/live_test

echo "== abortable-sync units + CQS storms under TSan =="
./build-tsan/tests/sync_test

echo "== mt_ingest smoke under TSan =="
./build-tsan/bench/mt_ingest --events=20000 --max-threads=4

echo "== all checks passed =="
