#!/usr/bin/env bash
# Repo gate: full build + ctest (including the fuzz_smoke corpus), then the
# obs/workload tests and a fuzz corpus under ASan/UBSan, then the concurrent
# intake tests and mt_ingest smoke under TSan.
#
#   scripts/check.sh          # build + all tests + ASan/UBSan + TSan stages
#   scripts/check.sh --fast   # skip the sanitizer stages
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "== configure + build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== fuzz smoke (deterministic corpus, replay-checked) =="
./build/tools/fuzz_atropos --seed=1 --runs=25 --replay-check

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping sanitizer stage (--fast) =="
  exit 0
fi

echo "== configure + build with ASan/UBSan (build-asan/) =="
cmake -B build-asan -S . -DATROPOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target obs_test workload_test fuzz_atropos

echo "== obs + workload tests under ASan/UBSan =="
./build-asan/tests/obs_test
./build-asan/tests/workload_test

echo "== fuzz corpus under ASan/UBSan =="
./build-asan/tools/fuzz_atropos --seed=1 --runs=10 --replay-check

echo "== configure + build with TSan (build-tsan/) =="
cmake -B build-tsan -S . -DATROPOS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrent_test mt_ingest

echo "== concurrent intake tests under TSan =="
./build-tsan/tests/concurrent_test

echo "== mt_ingest smoke under TSan =="
./build-tsan/bench/mt_ingest --events=20000 --max-threads=4

echo "== all checks passed =="
