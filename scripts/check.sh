#!/usr/bin/env bash
# Repo gate: full build + ctest (including the fuzz_smoke corpus), then a
# clang-tidy pass over the runtime layers, then the obs/workload/atropos tests
# and a fuzz corpus under ASan/UBSan, then the concurrent intake tests and
# mt_ingest smoke under TSan.
#
#   scripts/check.sh          # build + all tests + lint + ASan/UBSan + TSan
#   scripts/check.sh --fast   # skip the lint and sanitizer stages
#   scripts/check.sh --lint   # configure + run only the clang-tidy stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

# clang-tidy over the decision-pipeline layers (src/atropos) and the fuzzing
# harness (src/testing), driven by the compile database the main configure
# exports. Skips with a notice when clang-tidy isn't installed so the gate
# stays runnable in minimal containers.
run_lint() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy not found, skipping =="
    return 0
  fi
  echo "== lint: clang-tidy over src/atropos + src/testing =="
  local files
  files=$(ls src/atropos/*.cc src/testing/*.cc)
  clang-tidy -p build --quiet $files
}

echo "== configure + build (build/) =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$JOBS"

if [[ "${1:-}" == "--lint" ]]; then
  run_lint
  exit 0
fi

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== fuzz smoke (deterministic corpus, replay-checked) =="
./build/tools/fuzz_atropos --seed=1 --runs=25 --replay-check

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping lint + sanitizer stages (--fast) =="
  exit 0
fi

run_lint

echo "== configure + build with ASan/UBSan (build-asan/) =="
cmake -B build-asan -S . -DATROPOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target obs_test workload_test atropos_test fuzz_atropos

echo "== obs + workload + atropos tests under ASan/UBSan =="
./build-asan/tests/obs_test
./build-asan/tests/workload_test
./build-asan/tests/atropos_test

echo "== fuzz corpus under ASan/UBSan =="
./build-asan/tools/fuzz_atropos --seed=1 --runs=10 --replay-check

echo "== configure + build with TSan (build-tsan/) =="
cmake -B build-tsan -S . -DATROPOS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrent_test mt_ingest

echo "== concurrent intake tests under TSan =="
./build-tsan/tests/concurrent_test

echo "== mt_ingest smoke under TSan =="
./build-tsan/bench/mt_ingest --events=20000 --max-threads=4

echo "== all checks passed =="
