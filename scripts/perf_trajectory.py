#!/usr/bin/env python3
"""Pinned performance trajectory gate (DESIGN.md 17).

Compares the machine-readable benchmark outputs at the repo root
(BENCH_*.json, produced by the pinned invocations in scripts/check.sh --perf)
against the baselines committed under bench/baselines/. Every tracked metric
is direction-aware: for lower-is-better metrics the regression factor is
current/baseline, for higher-is-better it is baseline/current, so a factor
above 1.0 is always "worse than the pin".

Thresholds are deliberately loose because these are wall-clock numbers from
whatever machine runs the gate:

  factor <= 1.25   OK (within noise)
  factor <= 2.00   WARN (printed, does not fail the gate)
  factor >  2.00   FAIL (exit 1) -- an order-of-magnitude-ish regression,
                   e.g. an accidental allocation or O(n) scan on the hot path,
                   which is exactly what this gate exists to catch

Usage:
  scripts/perf_trajectory.py          compare current vs bench/baselines/
  scripts/perf_trajectory.py --pin    copy current BENCH_*.json into
                                      bench/baselines/ (re-pinning the
                                      trajectory; commit the result)
"""

import json
import os
import shutil
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO, "bench", "baselines")

WARN_FACTOR = 1.25
FAIL_FACTOR = 2.00

# Lower-is-better metrics where both sides sit under this are sub-noise: a
# fully dead-code-eliminated loop or a single predicted branch. Ratios of
# numbers that small are meaningless, so they always pass (counter_inc_ns
# measures ~1e-5 ns; a "3x regression" there is measurement dust).
SUB_NOISE_NS = 2.0

# file -> {metric: direction}; metrics are top-level scalar fields.
TRACKED = {
    "BENCH_fig14.json": {
        "on_get_sampled_ns": "lower",
        "on_get_per_event_ns": "lower",
        "wait_pair_per_event_ns": "lower",
        "on_request_end_ns": "lower",
        "tick_100_tasks_us": "lower",
    },
    "BENCH_mt_ingest.json": {
        "lossfree_ns_per_event_1p": "lower",
        "speedup_at_8": "higher",
    },
    "BENCH_obs_overhead.json": {
        "counter_inc_ns": "lower",
        "recorder_record_ns": "lower",
        "recorder_disabled_ns": "lower",
    },
    # atropos_lint over the whole tree (scripts/check.sh --perf pins the same
    # --dir set as the lint stage). Guards the analyzer itself: the cross-file
    # call graph and the lockset walk must stay cheap enough to gate on.
    "BENCH_lint.json": {
        "wall_ms": "lower",
    },
}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"perf_trajectory: {path}: malformed JSON ({e})", file=sys.stderr)
        sys.exit(2)


def pin():
    os.makedirs(BASELINE_DIR, exist_ok=True)
    pinned = 0
    for name in TRACKED:
        src = os.path.join(REPO, name)
        if not os.path.exists(src):
            print(f"  skip {name}: not present at repo root (run the bench first)")
            continue
        shutil.copyfile(src, os.path.join(BASELINE_DIR, name))
        print(f"  pinned {name} -> bench/baselines/{name}")
        pinned += 1
    if pinned == 0:
        print("perf_trajectory: nothing to pin", file=sys.stderr)
        return 1
    print(f"perf_trajectory: pinned {pinned} baseline(s); commit bench/baselines/")
    return 0


def compare():
    rows = []
    failures = 0
    warnings = 0
    missing_baseline = 0
    for name, metrics in TRACKED.items():
        current = load(os.path.join(REPO, name))
        baseline = load(os.path.join(BASELINE_DIR, name))
        if current is None:
            print(f"perf_trajectory: {name} missing at repo root; "
                  f"run scripts/check.sh --perf to generate it", file=sys.stderr)
            return 2
        if baseline is None:
            print(f"  {name}: no pinned baseline (bench/baselines/{name}); "
                  f"run with --pin to establish one")
            missing_baseline += 1
            continue
        for metric, direction in metrics.items():
            cur = current.get(metric)
            base = baseline.get(metric)
            if not isinstance(cur, (int, float)) or not isinstance(base, (int, float)):
                print(f"perf_trajectory: {name}:{metric} missing or non-numeric "
                      f"(current={cur!r}, baseline={base!r})", file=sys.stderr)
                return 2
            if metric.endswith("_ns") and max(cur, base) < SUB_NOISE_NS:
                rows.append((name, metric, direction, base, cur, 1.0, "sub-noise"))
                continue
            if base <= 0 or cur <= 0:
                # Degenerate pin (e.g. a zeroed field): report, never divide.
                print(f"perf_trajectory: {name}:{metric} non-positive "
                      f"(current={cur}, baseline={base})", file=sys.stderr)
                return 2
            factor = cur / base if direction == "lower" else base / cur
            if factor > FAIL_FACTOR:
                verdict = "FAIL"
                failures += 1
            elif factor > WARN_FACTOR:
                verdict = "WARN"
                warnings += 1
            elif factor < 1 / WARN_FACTOR:
                verdict = "BETTER"
            else:
                verdict = "ok"
            rows.append((name, metric, direction, base, cur, factor, verdict))

    if rows:
        width = max(len(f"{n}:{m}") for n, m, *_ in rows)
        print(f"  {'metric'.ljust(width)}  {'dir':6} {'baseline':>12} "
              f"{'current':>12} {'factor':>7}  verdict")
        for name, metric, direction, base, cur, factor, verdict in rows:
            print(f"  {(name + ':' + metric).ljust(width)}  {direction:6} "
                  f"{base:12.3f} {cur:12.3f} {factor:7.3f}  {verdict}")

    if failures:
        print(f"perf_trajectory: {failures} metric(s) regressed more than "
              f"{FAIL_FACTOR:.0f}x vs the pinned baseline", file=sys.stderr)
        return 1
    if warnings:
        print(f"perf_trajectory: {warnings} metric(s) in the warn band "
              f"(> {WARN_FACTOR}x, <= {FAIL_FACTOR:.0f}x); not failing the gate")
    if missing_baseline and not rows:
        # Nothing compared at all: fresh checkout without pins is not a pass.
        print("perf_trajectory: no baselines pinned; run with --pin first",
              file=sys.stderr)
        return 1
    print("perf_trajectory: trajectory holds")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--pin":
        return pin()
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    return compare()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
