# Empty compiler generated dependencies file for atropos_test.
# This may be replaced when dependencies are built.
