file(REMOVE_RECURSE
  "CMakeFiles/atropos_test.dir/atropos/capi_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/capi_test.cc.o.d"
  "CMakeFiles/atropos_test.dir/atropos/detector_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/detector_test.cc.o.d"
  "CMakeFiles/atropos_test.dir/atropos/estimator_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/estimator_test.cc.o.d"
  "CMakeFiles/atropos_test.dir/atropos/policy_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/policy_test.cc.o.d"
  "CMakeFiles/atropos_test.dir/atropos/runtime_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/runtime_test.cc.o.d"
  "CMakeFiles/atropos_test.dir/atropos/task_tree_test.cc.o"
  "CMakeFiles/atropos_test.dir/atropos/task_tree_test.cc.o.d"
  "atropos_test"
  "atropos_test.pdb"
  "atropos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
