
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/atropos/capi_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/capi_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/capi_test.cc.o.d"
  "/root/repo/tests/atropos/detector_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/detector_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/detector_test.cc.o.d"
  "/root/repo/tests/atropos/estimator_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/estimator_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/estimator_test.cc.o.d"
  "/root/repo/tests/atropos/policy_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/policy_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/policy_test.cc.o.d"
  "/root/repo/tests/atropos/runtime_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/runtime_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/runtime_test.cc.o.d"
  "/root/repo/tests/atropos/task_tree_test.cc" "tests/CMakeFiles/atropos_test.dir/atropos/task_tree_test.cc.o" "gcc" "tests/CMakeFiles/atropos_test.dir/atropos/task_tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atropos/CMakeFiles/atropos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
