
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/properties_test.cc" "tests/CMakeFiles/workload_test.dir/workload/properties_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/properties_test.cc.o.d"
  "/root/repo/tests/workload/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/atropos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/atropos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/atropos_db.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/atropos_search.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/atropos_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/atropos/CMakeFiles/atropos_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atropos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/atropos_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/atropos/CMakeFiles/atropos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
