# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/atropos_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
