file(REMOVE_RECURSE
  "CMakeFiles/integrate_your_app.dir/integrate_your_app.cpp.o"
  "CMakeFiles/integrate_your_app.dir/integrate_your_app.cpp.o.d"
  "integrate_your_app"
  "integrate_your_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_your_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
