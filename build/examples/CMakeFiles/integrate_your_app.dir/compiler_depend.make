# Empty compiler generated dependencies file for integrate_your_app.
# This may be replaced when dependencies are built.
