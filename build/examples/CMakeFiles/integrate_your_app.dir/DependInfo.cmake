
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/integrate_your_app.cpp" "examples/CMakeFiles/integrate_your_app.dir/integrate_your_app.cpp.o" "gcc" "examples/CMakeFiles/integrate_your_app.dir/integrate_your_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atropos/CMakeFiles/atropos_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/atropos/CMakeFiles/atropos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atropos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
