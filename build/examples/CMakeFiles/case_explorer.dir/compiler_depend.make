# Empty compiler generated dependencies file for case_explorer.
# This may be replaced when dependencies are built.
