file(REMOVE_RECURSE
  "CMakeFiles/case_explorer.dir/case_explorer.cpp.o"
  "CMakeFiles/case_explorer.dir/case_explorer.cpp.o.d"
  "case_explorer"
  "case_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
