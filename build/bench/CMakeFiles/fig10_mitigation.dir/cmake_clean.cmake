file(REMOVE_RECURSE
  "CMakeFiles/fig10_mitigation.dir/fig10_mitigation.cc.o"
  "CMakeFiles/fig10_mitigation.dir/fig10_mitigation.cc.o.d"
  "fig10_mitigation"
  "fig10_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
