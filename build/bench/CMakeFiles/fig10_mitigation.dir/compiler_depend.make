# Empty compiler generated dependencies file for fig10_mitigation.
# This may be replaced when dependencies are built.
