file(REMOVE_RECURSE
  "CMakeFiles/fig2_bufferpool_dump.dir/fig2_bufferpool_dump.cc.o"
  "CMakeFiles/fig2_bufferpool_dump.dir/fig2_bufferpool_dump.cc.o.d"
  "fig2_bufferpool_dump"
  "fig2_bufferpool_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bufferpool_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
