# Empty dependencies file for fig4_motivation_comparison.
# This may be replaced when dependencies are built.
