file(REMOVE_RECURSE
  "CMakeFiles/fig13_policy_ablation.dir/fig13_policy_ablation.cc.o"
  "CMakeFiles/fig13_policy_ablation.dir/fig13_policy_ablation.cc.o.d"
  "fig13_policy_ablation"
  "fig13_policy_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_policy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
