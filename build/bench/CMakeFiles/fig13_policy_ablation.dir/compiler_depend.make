# Empty compiler generated dependencies file for fig13_policy_ablation.
# This may be replaced when dependencies are built.
