# Empty compiler generated dependencies file for fig11_drop_rate.
# This may be replaced when dependencies are built.
