file(REMOVE_RECURSE
  "CMakeFiles/fig9_sota_comparison.dir/fig9_sota_comparison.cc.o"
  "CMakeFiles/fig9_sota_comparison.dir/fig9_sota_comparison.cc.o.d"
  "fig9_sota_comparison"
  "fig9_sota_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sota_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
