file(REMOVE_RECURSE
  "CMakeFiles/table1_cancellation_survey.dir/table1_cancellation_survey.cc.o"
  "CMakeFiles/table1_cancellation_survey.dir/table1_cancellation_survey.cc.o.d"
  "table1_cancellation_survey"
  "table1_cancellation_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cancellation_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
