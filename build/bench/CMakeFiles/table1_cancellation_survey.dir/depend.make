# Empty dependencies file for table1_cancellation_survey.
# This may be replaced when dependencies are built.
