# Empty compiler generated dependencies file for fig3_lock_contention.
# This may be replaced when dependencies are built.
