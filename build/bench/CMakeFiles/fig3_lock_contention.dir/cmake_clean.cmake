file(REMOVE_RECURSE
  "CMakeFiles/fig3_lock_contention.dir/fig3_lock_contention.cc.o"
  "CMakeFiles/fig3_lock_contention.dir/fig3_lock_contention.cc.o.d"
  "fig3_lock_contention"
  "fig3_lock_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lock_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
