# Empty dependencies file for table3_integration_effort.
# This may be replaced when dependencies are built.
