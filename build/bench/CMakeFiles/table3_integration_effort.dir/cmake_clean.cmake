file(REMOVE_RECURSE
  "CMakeFiles/table3_integration_effort.dir/table3_integration_effort.cc.o"
  "CMakeFiles/table3_integration_effort.dir/table3_integration_effort.cc.o.d"
  "table3_integration_effort"
  "table3_integration_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_integration_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
