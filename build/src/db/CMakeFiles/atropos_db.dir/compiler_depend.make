# Empty compiler generated dependencies file for atropos_db.
# This may be replaced when dependencies are built.
