
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/buffer_pool.cc" "src/db/CMakeFiles/atropos_db.dir/buffer_pool.cc.o" "gcc" "src/db/CMakeFiles/atropos_db.dir/buffer_pool.cc.o.d"
  "/root/repo/src/db/lock_manager.cc" "src/db/CMakeFiles/atropos_db.dir/lock_manager.cc.o" "gcc" "src/db/CMakeFiles/atropos_db.dir/lock_manager.cc.o.d"
  "/root/repo/src/db/mvcc.cc" "src/db/CMakeFiles/atropos_db.dir/mvcc.cc.o" "gcc" "src/db/CMakeFiles/atropos_db.dir/mvcc.cc.o.d"
  "/root/repo/src/db/undo_log.cc" "src/db/CMakeFiles/atropos_db.dir/undo_log.cc.o" "gcc" "src/db/CMakeFiles/atropos_db.dir/undo_log.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/db/CMakeFiles/atropos_db.dir/wal.cc.o" "gcc" "src/db/CMakeFiles/atropos_db.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atropos/CMakeFiles/atropos_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/atropos/CMakeFiles/atropos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atropos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
