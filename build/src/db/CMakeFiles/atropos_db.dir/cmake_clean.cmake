file(REMOVE_RECURSE
  "CMakeFiles/atropos_db.dir/buffer_pool.cc.o"
  "CMakeFiles/atropos_db.dir/buffer_pool.cc.o.d"
  "CMakeFiles/atropos_db.dir/lock_manager.cc.o"
  "CMakeFiles/atropos_db.dir/lock_manager.cc.o.d"
  "CMakeFiles/atropos_db.dir/mvcc.cc.o"
  "CMakeFiles/atropos_db.dir/mvcc.cc.o.d"
  "CMakeFiles/atropos_db.dir/undo_log.cc.o"
  "CMakeFiles/atropos_db.dir/undo_log.cc.o.d"
  "CMakeFiles/atropos_db.dir/wal.cc.o"
  "CMakeFiles/atropos_db.dir/wal.cc.o.d"
  "libatropos_db.a"
  "libatropos_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
