file(REMOVE_RECURSE
  "libatropos_db.a"
)
