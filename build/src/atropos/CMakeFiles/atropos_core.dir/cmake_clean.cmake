file(REMOVE_RECURSE
  "CMakeFiles/atropos_core.dir/capi.cc.o"
  "CMakeFiles/atropos_core.dir/capi.cc.o.d"
  "CMakeFiles/atropos_core.dir/detector.cc.o"
  "CMakeFiles/atropos_core.dir/detector.cc.o.d"
  "CMakeFiles/atropos_core.dir/estimator.cc.o"
  "CMakeFiles/atropos_core.dir/estimator.cc.o.d"
  "CMakeFiles/atropos_core.dir/policy.cc.o"
  "CMakeFiles/atropos_core.dir/policy.cc.o.d"
  "CMakeFiles/atropos_core.dir/runtime.cc.o"
  "CMakeFiles/atropos_core.dir/runtime.cc.o.d"
  "CMakeFiles/atropos_core.dir/task_tree.cc.o"
  "CMakeFiles/atropos_core.dir/task_tree.cc.o.d"
  "libatropos_core.a"
  "libatropos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
