
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atropos/capi.cc" "src/atropos/CMakeFiles/atropos_core.dir/capi.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/capi.cc.o.d"
  "/root/repo/src/atropos/detector.cc" "src/atropos/CMakeFiles/atropos_core.dir/detector.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/detector.cc.o.d"
  "/root/repo/src/atropos/estimator.cc" "src/atropos/CMakeFiles/atropos_core.dir/estimator.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/estimator.cc.o.d"
  "/root/repo/src/atropos/policy.cc" "src/atropos/CMakeFiles/atropos_core.dir/policy.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/policy.cc.o.d"
  "/root/repo/src/atropos/runtime.cc" "src/atropos/CMakeFiles/atropos_core.dir/runtime.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/runtime.cc.o.d"
  "/root/repo/src/atropos/task_tree.cc" "src/atropos/CMakeFiles/atropos_core.dir/task_tree.cc.o" "gcc" "src/atropos/CMakeFiles/atropos_core.dir/task_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
