# Empty dependencies file for atropos_core.
# This may be replaced when dependencies are built.
