file(REMOVE_RECURSE
  "libatropos_core.a"
)
