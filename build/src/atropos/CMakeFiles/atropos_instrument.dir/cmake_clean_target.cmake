file(REMOVE_RECURSE
  "libatropos_instrument.a"
)
