# Empty compiler generated dependencies file for atropos_instrument.
# This may be replaced when dependencies are built.
