file(REMOVE_RECURSE
  "CMakeFiles/atropos_instrument.dir/instrument.cc.o"
  "CMakeFiles/atropos_instrument.dir/instrument.cc.o.d"
  "libatropos_instrument.a"
  "libatropos_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
