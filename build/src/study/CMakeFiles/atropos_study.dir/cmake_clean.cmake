file(REMOVE_RECURSE
  "CMakeFiles/atropos_study.dir/cancellation_survey.cc.o"
  "CMakeFiles/atropos_study.dir/cancellation_survey.cc.o.d"
  "CMakeFiles/atropos_study.dir/integration_effort.cc.o"
  "CMakeFiles/atropos_study.dir/integration_effort.cc.o.d"
  "libatropos_study.a"
  "libatropos_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
