# Empty compiler generated dependencies file for atropos_study.
# This may be replaced when dependencies are built.
