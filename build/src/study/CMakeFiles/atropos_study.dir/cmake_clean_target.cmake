file(REMOVE_RECURSE
  "libatropos_study.a"
)
