# Empty dependencies file for atropos_baselines.
# This may be replaced when dependencies are built.
