file(REMOVE_RECURSE
  "CMakeFiles/atropos_baselines.dir/darc.cc.o"
  "CMakeFiles/atropos_baselines.dir/darc.cc.o.d"
  "CMakeFiles/atropos_baselines.dir/parties.cc.o"
  "CMakeFiles/atropos_baselines.dir/parties.cc.o.d"
  "CMakeFiles/atropos_baselines.dir/pbox.cc.o"
  "CMakeFiles/atropos_baselines.dir/pbox.cc.o.d"
  "CMakeFiles/atropos_baselines.dir/protego.cc.o"
  "CMakeFiles/atropos_baselines.dir/protego.cc.o.d"
  "libatropos_baselines.a"
  "libatropos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
