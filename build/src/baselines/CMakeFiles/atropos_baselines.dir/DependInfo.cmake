
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/darc.cc" "src/baselines/CMakeFiles/atropos_baselines.dir/darc.cc.o" "gcc" "src/baselines/CMakeFiles/atropos_baselines.dir/darc.cc.o.d"
  "/root/repo/src/baselines/parties.cc" "src/baselines/CMakeFiles/atropos_baselines.dir/parties.cc.o" "gcc" "src/baselines/CMakeFiles/atropos_baselines.dir/parties.cc.o.d"
  "/root/repo/src/baselines/pbox.cc" "src/baselines/CMakeFiles/atropos_baselines.dir/pbox.cc.o" "gcc" "src/baselines/CMakeFiles/atropos_baselines.dir/pbox.cc.o.d"
  "/root/repo/src/baselines/protego.cc" "src/baselines/CMakeFiles/atropos_baselines.dir/protego.cc.o" "gcc" "src/baselines/CMakeFiles/atropos_baselines.dir/protego.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atropos/CMakeFiles/atropos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atropos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
