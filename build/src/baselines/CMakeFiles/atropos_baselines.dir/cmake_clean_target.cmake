file(REMOVE_RECURSE
  "libatropos_baselines.a"
)
