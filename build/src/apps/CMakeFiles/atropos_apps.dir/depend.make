# Empty dependencies file for atropos_apps.
# This may be replaced when dependencies are built.
