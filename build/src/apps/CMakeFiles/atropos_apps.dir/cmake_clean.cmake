file(REMOVE_RECURSE
  "CMakeFiles/atropos_apps.dir/app.cc.o"
  "CMakeFiles/atropos_apps.dir/app.cc.o.d"
  "CMakeFiles/atropos_apps.dir/minidb.cc.o"
  "CMakeFiles/atropos_apps.dir/minidb.cc.o.d"
  "CMakeFiles/atropos_apps.dir/minikv.cc.o"
  "CMakeFiles/atropos_apps.dir/minikv.cc.o.d"
  "CMakeFiles/atropos_apps.dir/minisearch.cc.o"
  "CMakeFiles/atropos_apps.dir/minisearch.cc.o.d"
  "CMakeFiles/atropos_apps.dir/miniweb.cc.o"
  "CMakeFiles/atropos_apps.dir/miniweb.cc.o.d"
  "libatropos_apps.a"
  "libatropos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
