file(REMOVE_RECURSE
  "libatropos_apps.a"
)
