file(REMOVE_RECURSE
  "libatropos_workload.a"
)
