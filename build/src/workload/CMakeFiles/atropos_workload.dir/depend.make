# Empty dependencies file for atropos_workload.
# This may be replaced when dependencies are built.
