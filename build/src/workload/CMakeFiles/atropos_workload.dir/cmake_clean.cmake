file(REMOVE_RECURSE
  "CMakeFiles/atropos_workload.dir/cases.cc.o"
  "CMakeFiles/atropos_workload.dir/cases.cc.o.d"
  "CMakeFiles/atropos_workload.dir/controllers.cc.o"
  "CMakeFiles/atropos_workload.dir/controllers.cc.o.d"
  "CMakeFiles/atropos_workload.dir/frontend.cc.o"
  "CMakeFiles/atropos_workload.dir/frontend.cc.o.d"
  "libatropos_workload.a"
  "libatropos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
