file(REMOVE_RECURSE
  "CMakeFiles/atropos_common.dir/histogram.cc.o"
  "CMakeFiles/atropos_common.dir/histogram.cc.o.d"
  "CMakeFiles/atropos_common.dir/logging.cc.o"
  "CMakeFiles/atropos_common.dir/logging.cc.o.d"
  "CMakeFiles/atropos_common.dir/status.cc.o"
  "CMakeFiles/atropos_common.dir/status.cc.o.d"
  "CMakeFiles/atropos_common.dir/table.cc.o"
  "CMakeFiles/atropos_common.dir/table.cc.o.d"
  "libatropos_common.a"
  "libatropos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
