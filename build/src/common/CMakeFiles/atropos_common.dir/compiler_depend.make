# Empty compiler generated dependencies file for atropos_common.
# This may be replaced when dependencies are built.
