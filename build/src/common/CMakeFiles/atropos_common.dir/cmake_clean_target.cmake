file(REMOVE_RECURSE
  "libatropos_common.a"
)
