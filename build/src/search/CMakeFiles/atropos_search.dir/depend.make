# Empty dependencies file for atropos_search.
# This may be replaced when dependencies are built.
