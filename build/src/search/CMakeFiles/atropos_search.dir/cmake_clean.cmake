file(REMOVE_RECURSE
  "CMakeFiles/atropos_search.dir/heap.cc.o"
  "CMakeFiles/atropos_search.dir/heap.cc.o.d"
  "libatropos_search.a"
  "libatropos_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
