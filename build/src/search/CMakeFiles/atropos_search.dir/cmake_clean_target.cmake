file(REMOVE_RECURSE
  "libatropos_search.a"
)
