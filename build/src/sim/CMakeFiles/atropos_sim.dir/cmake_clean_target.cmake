file(REMOVE_RECURSE
  "libatropos_sim.a"
)
