file(REMOVE_RECURSE
  "CMakeFiles/atropos_sim.dir/cpu.cc.o"
  "CMakeFiles/atropos_sim.dir/cpu.cc.o.d"
  "CMakeFiles/atropos_sim.dir/executor.cc.o"
  "CMakeFiles/atropos_sim.dir/executor.cc.o.d"
  "CMakeFiles/atropos_sim.dir/sync.cc.o"
  "CMakeFiles/atropos_sim.dir/sync.cc.o.d"
  "libatropos_sim.a"
  "libatropos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
