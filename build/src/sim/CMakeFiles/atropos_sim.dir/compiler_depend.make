# Empty compiler generated dependencies file for atropos_sim.
# This may be replaced when dependencies are built.
