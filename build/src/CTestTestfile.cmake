# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("atropos")
subdirs("db")
subdirs("web")
subdirs("search")
subdirs("kv")
subdirs("apps")
subdirs("baselines")
subdirs("workload")
subdirs("study")
