file(REMOVE_RECURSE
  "CMakeFiles/atropos_kv.dir/store.cc.o"
  "CMakeFiles/atropos_kv.dir/store.cc.o.d"
  "libatropos_kv.a"
  "libatropos_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atropos_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
