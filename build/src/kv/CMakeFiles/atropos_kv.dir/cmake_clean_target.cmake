file(REMOVE_RECURSE
  "libatropos_kv.a"
)
