# Empty compiler generated dependencies file for atropos_kv.
# This may be replaced when dependencies are built.
