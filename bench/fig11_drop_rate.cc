// Figure 11 — drop rate of Atropos and Protego on the ten cases the paper
// plots (c1, c3, c4, c6, c7, c8, c9, c12, c13, c14).
//
// Expected shape: Protego must drop many victim requests to bound latency
// (paper average ~25%), while Atropos cancels only the culprits (average drop
// rate below 0.01–0.1%).

#include <cstdio>

#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run(const ObsCliArgs& cli) {
  std::printf("Figure 11: drop rate of Atropos and Protego\n\n");
  if (!cli.trace_path.empty()) {
    WriteFile(cli.trace_path, "");
  }

  const int kCases[] = {1, 3, 4, 6, 7, 8, 9, 12, 13, 14};
  TextTable table({"case", "atropos drop", "protego drop", "atropos cancels", "protego drops"});
  double atr_sum = 0;
  double pro_sum = 0;
  int cases_run = 0;
  for (int c : kCases) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    Observability obs;
    obs.trace_path = cli.trace_path;
    CaseRunOptions atr_opt;
    atr_opt.controller = ControllerKind::kAtropos;
    if (!cli.trace_path.empty()) {
      atr_opt.obs = &obs;
    }
    CaseResult atr = RunCase(c, atr_opt);
    if (atr_opt.obs != nullptr) {
      obs.Flush();
    }

    CaseRunOptions pro_opt;
    pro_opt.controller = ControllerKind::kProtego;
    CaseResult pro = RunCase(c, pro_opt);

    atr_sum += atr.metrics.DropRate();
    pro_sum += pro.metrics.DropRate();
    cases_run++;
    table.AddRow({"c" + std::to_string(c), TextTable::Pct(atr.metrics.DropRate(), 3),
                  TextTable::Pct(pro.metrics.DropRate(), 2),
                  std::to_string(atr.controller_actions),
                  std::to_string(pro.controller_actions)});
  }
  if (cases_run > 0) {
    table.AddRow({"avg", TextTable::Pct(atr_sum / cases_run, 3),
                  TextTable::Pct(pro_sum / cases_run, 2), "", ""});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape: Protego's drop rate is orders of magnitude above Atropos'\n"
      "(it drops victims of the contention; Atropos cancels only the culprits).\n");
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
