// Figure 11 — drop rate of Atropos and Protego on the ten cases the paper
// plots (c1, c3, c4, c6, c7, c8, c9, c12, c13, c14).
//
// Expected shape: Protego must drop many victim requests to bound latency
// (paper average ~25%), while Atropos cancels only the culprits (average drop
// rate below 0.01–0.1%).

#include <cstdio>

#include "src/common/table.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run() {
  std::printf("Figure 11: drop rate of Atropos and Protego\n\n");

  const int kCases[] = {1, 3, 4, 6, 7, 8, 9, 12, 13, 14};
  TextTable table({"case", "atropos drop", "protego drop", "atropos cancels", "protego drops"});
  double atr_sum = 0;
  double pro_sum = 0;
  for (int c : kCases) {
    CaseRunOptions atr_opt;
    atr_opt.controller = ControllerKind::kAtropos;
    CaseResult atr = RunCase(c, atr_opt);

    CaseRunOptions pro_opt;
    pro_opt.controller = ControllerKind::kProtego;
    CaseResult pro = RunCase(c, pro_opt);

    atr_sum += atr.metrics.DropRate();
    pro_sum += pro.metrics.DropRate();
    table.AddRow({"c" + std::to_string(c), TextTable::Pct(atr.metrics.DropRate(), 3),
                  TextTable::Pct(pro.metrics.DropRate(), 2),
                  std::to_string(atr.controller_actions),
                  std::to_string(pro.controller_actions)});
  }
  table.AddRow({"avg", TextTable::Pct(atr_sum / 10, 3), TextTable::Pct(pro_sum / 10, 2), "", ""});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape: Protego's drop rate is orders of magnitude above Atropos'\n"
      "(it drops victims of the contention; Atropos cancels only the culprits).\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
