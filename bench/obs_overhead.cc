// Observability overhead (Fig 14 companion for src/obs).
//
// Part 1 (google-benchmark, real clock): per-call micro-costs of the obs
// primitives — a counter increment, recording a flight event, and the
// disabled-recorder path that every emission site reduces to when tracing is
// off.
//
// Part 2 (wall clock): case c1 under Atropos, run repeatedly with (a) no
// observability attached, (b) an attached but disabled recorder (the
// "flight recorder stays on a production system" configuration), and
// (c) full tracing. The acceptance bar is (b) within 5% of (a): an idle
// recorder must be cheap enough to leave enabled everywhere.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// Part 1: micro costs.

void BM_CounterInc(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterInc);

void BM_RecorderRecord(benchmark::State& state) {
  FlightRecorder recorder;
  for (auto _ : state) {
    FlightEvent ev;
    ev.time = 1000;
    ev.kind = ObsEventKind::kWindowClosed;
    ev.value = 42.0;
    ev.completions = 100;
    recorder.Record(std::move(ev));
  }
  benchmark::DoNotOptimize(recorder.total_recorded());
}
BENCHMARK(BM_RecorderRecord);

void BM_RecorderDisabled(benchmark::State& state) {
  FlightRecorder recorder;
  recorder.set_enabled(false);
  for (auto _ : state) {
    // Emission sites guard payload construction on enabled(), so the
    // disabled path is this branch alone.
    if (recorder.enabled()) {
      FlightEvent ev;
      ev.kind = ObsEventKind::kWindowClosed;
      recorder.Record(std::move(ev));
    }
  }
  benchmark::DoNotOptimize(recorder.total_recorded());
}
BENCHMARK(BM_RecorderDisabled);

void BM_RegistrySnapshot100(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; i++) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Inc(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.TakeSnapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot100);

// Steady-clock versions of the part-1 micro loops, so BENCH_obs_overhead.json
// carries per-event nanosecond figures the perf trajectory can compare
// without parsing google-benchmark console output.
struct ObsMicroCosts {
  double counter_inc_ns = 0;
  double recorder_record_ns = 0;
  double recorder_disabled_ns = 0;
};

// Best-of-3: the minimum over repetitions is the least-scheduler-noise
// estimate of the true cost, which is what a pinned trajectory must compare
// (a single timed pass on a shared core can read 2x high and trip the gate).
template <typename Body>
double TimeLoopNs(uint64_t iters, Body&& body) {
  body();  // warm-up pass
  double best = 0;
  for (int rep = 0; rep < 3; rep++) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; i++) {
      body();
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(end - start).count() /
                      static_cast<double>(iters);
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

ObsMicroCosts MeasureObsMicroCosts() {
  constexpr uint64_t kIters = 4'000'000;
  ObsMicroCosts costs;
  {
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("bench.counter");
    costs.counter_inc_ns = TimeLoopNs(kIters, [&] { counter->Inc(); });
    benchmark::DoNotOptimize(counter->value());
  }
  {
    FlightRecorder recorder;
    costs.recorder_record_ns = TimeLoopNs(kIters, [&] {
      FlightEvent ev;
      ev.time = 1000;
      ev.kind = ObsEventKind::kWindowClosed;
      ev.value = 42.0;
      ev.completions = 100;
      recorder.Record(std::move(ev));
    });
    benchmark::DoNotOptimize(recorder.total_recorded());
  }
  {
    FlightRecorder recorder;
    recorder.set_enabled(false);
    costs.recorder_disabled_ns = TimeLoopNs(kIters, [&] {
      if (recorder.enabled()) {
        FlightEvent ev;
        ev.kind = ObsEventKind::kWindowClosed;
        recorder.Record(std::move(ev));
      }
    });
    benchmark::DoNotOptimize(recorder.total_recorded());
  }
  return costs;
}

// ---------------------------------------------------------------------------
// Part 2: end-to-end wall-clock cost on case c1.

double RunC1Seconds(Observability* obs) {
  // One sample = several back-to-back 60 s-sim runs, so the measurement is
  // well above timer granularity and allocator warm-up noise.
  constexpr int kRunsPerSample = 5;
  CaseRunOptions opt;
  opt.controller = ControllerKind::kAtropos;
  opt.duration = Seconds(60);
  opt.obs = obs;
  opt.post_mortem = false;  // measure instrumentation, not stdout rendering
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRunsPerSample; i++) {
    CaseResult r = RunCase(1, opt);
    benchmark::DoNotOptimize(r.metrics.completed);
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void RunWallClockPart(const std::string& json_path, const ObsMicroCosts& micro) {
  constexpr int kReps = 3;
  double off = 1e300;
  double idle = 1e300;
  double on = 1e300;
  // Simulated runs are deterministic, so wall-clock time is the only thing
  // observability can change; min-of-N suppresses scheduler noise.
  for (int i = 0; i < kReps; i++) {
    off = std::min(off, RunC1Seconds(nullptr));

    Observability idle_obs;
    idle_obs.recorder.set_enabled(false);
    idle = std::min(idle, RunC1Seconds(&idle_obs));

    Observability on_obs;
    on = std::min(on, RunC1Seconds(&on_obs));
  }

  TextTable table({"configuration", "wall time (s)", "delta vs off"});
  table.AddRow({"obs off", TextTable::Num(off, 3), "-"});
  table.AddRow({"recorder idle (attached, disabled)", TextTable::Num(idle, 3),
                TextTable::Pct(idle / off - 1.0, 2)});
  table.AddRow({"full tracing", TextTable::Num(on, 3), TextTable::Pct(on / off - 1.0, 2)});
  std::printf("%s\n", table.Render().c_str());

  double idle_delta = idle / off - 1.0;
  std::printf("idle-recorder delta: %.2f%% (acceptance bar: < 5%%) -> %s\n", idle_delta * 100.0,
              idle_delta < 0.05 ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Field("bench", "obs_overhead");
    json.Field("off_seconds", off);
    json.Field("idle_recorder_seconds", idle);
    json.Field("full_tracing_seconds", on);
    json.Field("idle_delta", idle_delta);
    json.Field("full_delta", on / off - 1.0);
    json.Field("idle_bar", 0.05);
    json.Field("pass", idle_delta < 0.05);
    json.Field("counter_inc_ns", micro.counter_inc_ns);
    json.Field("recorder_record_ns", micro.recorder_record_ns);
    json.Field("recorder_disabled_ns", micro.recorder_disabled_ns);
    // Headline per-event observability cost: recording one flight event.
    json.Field("ns_per_event", micro.recorder_record_ns);
    json.EndObject();
    if (json.WriteFile(json_path)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  std::printf("Observability overhead\n\n");
  std::printf("Part 1: obs primitive micro-costs (real clock, google-benchmark)\n");
  // Peel off --json[=path] before handing argv to google-benchmark, which
  // rejects flags it does not know.
  std::string json_path;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_obs_overhead.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = 2;
  char arg0[] = "obs_overhead";
  char arg1[] = "--benchmark_min_time=0.05s";
  char* bench_argv[] = {arg0, arg1, nullptr};
  if (bench_args.size() > 1) {
    int filtered_argc = static_cast<int>(bench_args.size());
    bench_args.push_back(nullptr);
    benchmark::Initialize(&filtered_argc, bench_args.data());
  } else {
    benchmark::Initialize(&bench_argc, bench_argv);
  }
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nPart 1b: steady-clock micro costs for the perf trajectory\n");
  const atropos::ObsMicroCosts micro = atropos::MeasureObsMicroCosts();
  std::printf("  counter inc %.2f ns | record %.2f ns | disabled path %.2f ns\n",
              micro.counter_inc_ns, micro.recorder_record_ns, micro.recorder_disabled_ns);

  std::printf("\nPart 2: case c1 wall-clock with observability off / idle / on (min of 3)\n");
  atropos::RunWallClockPart(json_path, micro);
  return 0;
}
