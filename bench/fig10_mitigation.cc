// Figure 10 — mitigation effectiveness of Atropos across all 16 cases:
// (a) normalized throughput, (b) normalized p99, for the uncontrolled
// overload run and the Atropos run, both normalized by the case's baseline
// performance without overload.
//
// Expected shape (paper): Atropos sustains ~96% of baseline throughput on
// average and bounds normalized p99 (paper average 1.16 over multi-minute
// runs; short simulated runs put the detection transient inside the p99).

#include <cstdio>

#include "src/common/table.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run() {
  std::printf("Figure 10: mitigation effectiveness of Atropos across 16 cases\n\n");

  TextTable table({"case", "overload tput", "atropos tput", "overload p99x", "atropos p99x",
                   "cancels", "drop rate"});
  double sums[4] = {0};
  for (int c = 1; c <= 16; c++) {
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(c, base_opt);
    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());

    CaseRunOptions over_opt;
    CaseResult over = RunCase(c, over_opt);

    CaseRunOptions atr_opt;
    atr_opt.controller = ControllerKind::kAtropos;
    CaseResult atr = RunCase(c, atr_opt);

    double vals[4] = {
        base_tput == 0 ? 0 : over.metrics.ThroughputQps() / base_tput,
        base_tput == 0 ? 0 : atr.metrics.ThroughputQps() / base_tput,
        base_p99 == 0 ? 0 : static_cast<double>(over.metrics.P99()) / base_p99,
        base_p99 == 0 ? 0 : static_cast<double>(atr.metrics.P99()) / base_p99,
    };
    for (int i = 0; i < 4; i++) {
      sums[i] += vals[i];
    }
    table.AddRow({"c" + std::to_string(c), TextTable::Num(vals[0], 2),
                  TextTable::Num(vals[1], 2), TextTable::Num(vals[2], 1),
                  TextTable::Num(vals[3], 1), std::to_string(atr.controller_actions),
                  TextTable::Pct(atr.metrics.DropRate(), 3)});
  }
  table.AddRow({"avg", TextTable::Num(sums[0] / 16, 2), TextTable::Num(sums[1] / 16, 2),
                TextTable::Num(sums[2] / 16, 1), TextTable::Num(sums[3] / 16, 1), "", ""});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "tput / p99x normalized by each case's non-overloaded baseline. Expected:\n"
      "Atropos throughput ~1.0 everywhere with p99x orders of magnitude below the\n"
      "uncontrolled overload run, at a drop rate far below 1%%.\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
