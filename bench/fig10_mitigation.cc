// Figure 10 — mitigation effectiveness of Atropos across all 16 cases:
// (a) normalized throughput, (b) normalized p99, for the uncontrolled
// overload run and the Atropos run, both normalized by the case's baseline
// performance without overload.
//
// Expected shape (paper): Atropos sustains ~96% of baseline throughput on
// average and bounds normalized p99 (paper average 1.16 over multi-minute
// runs; short simulated runs put the detection transient inside the p99).

#include <cstdio>

#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run(const ObsCliArgs& cli) {
  std::printf("Figure 10: mitigation effectiveness of Atropos across 16 cases\n\n");

  int first = cli.case_id > 0 ? cli.case_id : 1;
  int last = cli.case_id > 0 ? cli.case_id : 16;
  int ncases = last - first + 1;

  if (!cli.trace_path.empty()) {
    // Start from an empty trace; per-case flushes append to it.
    WriteFile(cli.trace_path, "");
  }

  TextTable table({"case", "overload tput", "atropos tput", "overload p99x", "atropos p99x",
                   "cancels", "drop rate"});
  double sums[4] = {0};
  for (int c = first; c <= last; c++) {
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(c, base_opt);
    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());

    CaseRunOptions over_opt;
    CaseResult over = RunCase(c, over_opt);

    // Only the Atropos run is traced: that is the run whose decisions the
    // flight recorder explains.
    Observability obs;
    obs.trace_path = cli.trace_path;
    CaseRunOptions atr_opt;
    atr_opt.controller = ControllerKind::kAtropos;
    if (!cli.trace_path.empty()) {
      atr_opt.obs = &obs;
    }
    CaseResult atr = RunCase(c, atr_opt);
    if (atr_opt.obs != nullptr) {
      Status flushed = obs.Flush();
      if (!flushed.ok()) {
        std::fprintf(stderr, "trace flush failed: %s\n", flushed.ToString().c_str());
      }
    }

    double vals[4] = {
        base_tput == 0 ? 0 : over.metrics.ThroughputQps() / base_tput,
        base_tput == 0 ? 0 : atr.metrics.ThroughputQps() / base_tput,
        base_p99 == 0 ? 0 : static_cast<double>(over.metrics.P99()) / base_p99,
        base_p99 == 0 ? 0 : static_cast<double>(atr.metrics.P99()) / base_p99,
    };
    for (int i = 0; i < 4; i++) {
      sums[i] += vals[i];
    }
    table.AddRow({"c" + std::to_string(c), TextTable::Num(vals[0], 2),
                  TextTable::Num(vals[1], 2), TextTable::Num(vals[2], 1),
                  TextTable::Num(vals[3], 1), std::to_string(atr.controller_actions),
                  TextTable::Pct(atr.metrics.DropRate(), 3)});
  }
  table.AddRow({"avg", TextTable::Num(sums[0] / ncases, 2), TextTable::Num(sums[1] / ncases, 2),
                TextTable::Num(sums[2] / ncases, 1), TextTable::Num(sums[3] / ncases, 1), "",
                ""});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "tput / p99x normalized by each case's non-overloaded baseline. Expected:\n"
      "Atropos throughput ~1.0 everywhere with p99x orders of magnitude below the\n"
      "uncontrolled overload run, at a drop rate far below 1%%.\n");
  if (!cli.trace_path.empty()) {
    std::printf("trace: %s (events), %s (series)\n", cli.trace_path.c_str(),
                SeriesPathFor(cli.trace_path).c_str());
  }
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
