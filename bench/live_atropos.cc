// Live-threads execution mode driver.
//
// Runs one overload scenario three ways and prints them side by side:
//
//   1. live, cancellation on  — real worker threads, Atropos ticking on a
//      drainer thread, targeted cancellation via the CancelBoard;
//   2. live, cancellation off — same threads, tracing on, actions disabled
//      (the Fig-14 "no-cancel" shape), showing what the overload costs;
//   3. simulator counterpart  — the same scenario shape on the coroutine
//      apps, for the sim-vs-live digest cross-check.
//
// The lock-convoy scenario adds a fourth run: cancellation on but abortable
// synchronization off (checkpoint polling, DESIGN.md §16) — a cancelled
// waiter still acquires the contended lock before it can observe the order,
// so the cancel-to-release latency tracks the culprit's hold time instead of
// collapsing to delivery cost.
//
// Usage: live_atropos [--scenario=culprit-burst|noisy-neighbor|lock-convoy]
//                     [--duration=SECONDS] [--workers=N] [--load-scale=F]
//                     [--seed=N] [--no-crosscheck] [--json[=path]]
//                     [--trace=path] [--trace-baseline=path]
//
// --trace / --trace-baseline dump the flight-recorder stream of the
// cancellation-on / cancellation-off run as JSONL, consumable by
// `atropos_mine diagnose --trace=...` (the offline bottleneck diagnoser).
//
// Exit status: 0 when the digest cross-check passes (or was disabled),
// 1 when it fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/live/live_run.h"
#include "src/obs/export.h"

namespace atropos {
namespace {

struct CliOptions {
  LiveScenarioKind scenario = LiveScenarioKind::kCulpritBurst;
  double duration_s = 8.0;
  size_t workers = 8;
  double load_scale = 1.0;
  uint64_t seed = 1;
  bool crosscheck = true;
  std::string json_path;
  std::string trace_path;           // cancellation-on run's event stream
  std::string trace_baseline_path;  // cancellation-off run's event stream
};

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scenario=", 11) == 0) {
      if (!ParseScenario(arg + 11, &opt->scenario)) {
        std::fprintf(stderr, "unknown scenario '%s'\n", arg + 11);
        return false;
      }
    } else if (std::strncmp(arg, "--duration=", 11) == 0) {
      opt->duration_s = std::strtod(arg + 11, nullptr);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opt->workers = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--load-scale=", 13) == 0) {
      opt->load_scale = std::strtod(arg + 13, nullptr);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt->seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--no-crosscheck") == 0) {
      opt->crosscheck = false;
    } else if (std::strcmp(arg, "--json") == 0) {
      opt->json_path = "BENCH_live.json";
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opt->json_path = arg + 7;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      opt->trace_path = arg + 8;
    } else if (std::strncmp(arg, "--trace-baseline=", 17) == 0) {
      opt->trace_baseline_path = arg + 17;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return false;
    }
  }
  return true;
}

void AddLiveRow(TextTable& table, const char* label, const LiveRunResult& r) {
  table.AddRow({label, TextTable::Num(r.goodput_qps, 1),
                TextTable::Num(static_cast<double>(r.victim_p50) / 1000.0, 1),
                TextTable::Num(static_cast<double>(r.victim_p99) / 1000.0, 1),
                std::to_string(r.culprit_completed), std::to_string(r.culprit_cancelled),
                std::to_string(r.stats.cancels_issued), std::to_string(r.shed)});
}

void JsonLiveRun(JsonWriter& json, const char* name, const LiveRunResult& r) {
  json.Key(name).BeginObject();
  json.Field("goodput_qps", r.goodput_qps);
  json.Field("victim_p50_us", static_cast<uint64_t>(r.victim_p50));
  json.Field("victim_p99_us", static_cast<uint64_t>(r.victim_p99));
  json.Field("victim_completed", r.victim_completed);
  json.Field("culprit_completed", r.culprit_completed);
  json.Field("culprit_cancelled", r.culprit_cancelled);
  json.Field("arrivals", r.arrivals);
  json.Field("shed", r.shed);
  json.Field("cancels_issued", r.stats.cancels_issued);
  json.Field("cancels_delivered", r.cancels_delivered);
  json.Field("cancels_missed", r.cancels_missed);
  json.Field("lock_waits_aborted", r.lock_waits_aborted);
  json.Field("queued_cancelled", r.queued_cancelled);
  json.Field("cancel_to_release_count", r.cancel_to_release_count);
  json.Field("cancel_to_release_p50_us", static_cast<uint64_t>(r.cancel_to_release_p50));
  json.Field("cancel_to_release_p99_us", static_cast<uint64_t>(r.cancel_to_release_p99));
  json.Field("windows", r.stats.windows);
  json.Field("overload_windows", r.stats.suspected_overload_windows);
  json.Field("trace_events_drained", r.intake.drained_total);
  json.Field("trace_events_dropped", r.intake.dropped_total);
  json.Field("producers_seen", r.intake.producers_seen);
  json.Field("producers_retired", r.intake.producers_retired);
  json.EndObject();
}

void JsonDigest(JsonWriter& json, const char* name, const DecisionDigest& d) {
  json.Key(name).BeginObject();
  json.Field("windows", d.windows);
  json.Field("overload_entered", d.overload_entered);
  json.Field("cancels", d.cancels);
  json.Field("dominant_cancel_label", d.DominantCancelLabel());
  json.Field("dominant_overloaded_class", d.DominantOverloadedClass());
  json.Field("first_cancel_frac", d.first_cancel_frac);
  json.EndObject();
}

int Main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    return 2;
  }

  LiveScenario scenario = MakeScenario(opt.scenario, opt.workers,
                                       Seconds(opt.duration_s), opt.load_scale, opt.seed);
  std::printf("live_atropos: scenario %s, %zu workers, %.1f s (%.1f s warmup), seed %llu\n\n",
              std::string(ScenarioName(opt.scenario)).c_str(), scenario.workers,
              ToSeconds(scenario.duration), ToSeconds(scenario.warmup),
              static_cast<unsigned long long>(opt.seed));

  LiveRunOptions with_cancel;
  with_cancel.cancellation_enabled = true;
  const LiveRunResult live = RunLiveScenario(scenario, with_cancel);

  LiveRunOptions no_cancel;
  no_cancel.cancellation_enabled = false;
  const LiveRunResult baseline = RunLiveScenario(scenario, no_cancel);

  // Lock-convoy only: the checkpoint-polling counterpart isolates the value
  // of in-place waiter abort with cancellation otherwise identical.
  const bool convoy = opt.scenario == LiveScenarioKind::kLockConvoy;
  LiveRunResult polling;
  if (convoy) {
    LiveRunOptions poll_opts;
    poll_opts.cancellation_enabled = true;
    poll_opts.abortable_sync = false;
    polling = RunLiveScenario(scenario, poll_opts);
  }

  TextTable table({"run", "goodput qps", "victim p50 ms", "victim p99 ms", "culprits done",
                   "culprits cancelled", "cancels issued", "shed"});
  AddLiveRow(table, "live + atropos", live);
  if (convoy) {
    AddLiveRow(table, "live + atropos, polling sync", polling);
  }
  AddLiveRow(table, "live, no cancellation", baseline);
  std::printf("%s\n", table.Render().c_str());

  if (convoy) {
    std::printf("cancel-to-release: in-place abort p50 %.1f ms / p99 %.1f ms (%llu waits aborted, "
                "%llu queued tasks cancelled unexecuted)\n",
                static_cast<double>(live.cancel_to_release_p50) / 1000.0,
                static_cast<double>(live.cancel_to_release_p99) / 1000.0,
                static_cast<unsigned long long>(live.lock_waits_aborted),
                static_cast<unsigned long long>(live.queued_cancelled));
    std::printf("cancel-to-release: checkpoint polling p50 %.1f ms / p99 %.1f ms (cancelled "
                "waiters acquire before observing the order)\n\n",
                static_cast<double>(polling.cancel_to_release_p50) / 1000.0,
                static_cast<double>(polling.cancel_to_release_p99) / 1000.0);
  }

  const double recovery = baseline.goodput_qps > 0
                              ? live.goodput_qps / baseline.goodput_qps
                              : (live.goodput_qps > 0 ? 1e9 : 1.0);
  std::printf("goodput with targeted cancellation: %.1f qps vs %.1f qps without (%.2fx)\n",
              live.goodput_qps, baseline.goodput_qps, recovery);
  std::printf("intake: %llu events drained, %llu dropped, %llu producers (%llu retired)\n\n",
              static_cast<unsigned long long>(live.intake.drained_total),
              static_cast<unsigned long long>(live.intake.dropped_total),
              static_cast<unsigned long long>(live.intake.producers_seen),
              static_cast<unsigned long long>(live.intake.producers_retired));

  for (const auto& [path, run] :
       {std::pair<const std::string&, const LiveRunResult&>{opt.trace_path, live},
        {opt.trace_baseline_path, baseline}}) {
    if (path.empty()) {
      continue;
    }
    Status written = WriteJsonl(path, run.events);
    if (written.ok()) {
      std::printf("wrote %zu flight event(s) to %s\n", run.events.size(), path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }

  SimCounterpartResult sim;
  CrossCheckReport report;
  if (opt.crosscheck) {
    sim = RunSimCounterpart(scenario);
    std::printf("sim counterpart: %.1f qps, p99 %.1f ms, %llu cancels\n",
                sim.metrics.ThroughputQps(), static_cast<double>(sim.metrics.P99()) / 1000.0,
                static_cast<unsigned long long>(sim.stats.cancels_issued));
    report = CrossCheckDigests(live.digest, sim.digest, ToleranceBands{});
    std::printf("%s\n", report.Render().c_str());
  }

  if (!opt.json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Field("bench", "live_atropos");
    json.Field("scenario", ScenarioName(opt.scenario));
    json.Field("workers", static_cast<uint64_t>(scenario.workers));
    json.Field("duration_s", ToSeconds(scenario.duration));
    json.Field("seed", opt.seed);
    JsonLiveRun(json, "live_with_cancel", live);
    if (convoy) {
      JsonLiveRun(json, "live_with_cancel_polling", polling);
    }
    JsonLiveRun(json, "live_no_cancel", baseline);
    json.Field("goodput_recovery", recovery);
    JsonDigest(json, "live_digest", live.digest);
    if (opt.crosscheck) {
      json.Key("sim").BeginObject();
      json.Field("throughput_qps", sim.metrics.ThroughputQps());
      json.Field("p99_us", static_cast<uint64_t>(sim.metrics.P99()));
      json.Field("cancels_issued", sim.stats.cancels_issued);
      json.EndObject();
      JsonDigest(json, "sim_digest", sim.digest);
      json.Key("crosscheck").BeginObject();
      json.Field("pass", report.pass);
      json.Key("checks").BeginArray();
      for (const CrossCheckReport::Check& c : report.checks) {
        json.BeginObject();
        json.Field("name", c.name);
        json.Field("pass", c.pass);
        json.Field("detail", c.detail);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndObject();
    if (json.WriteFile(opt.json_path)) {
      std::printf("wrote %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
    }
  }

  return opt.crosscheck && !report.pass ? 1 : 0;
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) { return atropos::Main(argc, argv); }
