// Table 2 — the 16 reproduced real-world overload cases.
//
// For each case this harness prints the catalog row and verifies the
// reproduction: baseline (no culprits) vs overload (culprits, no controller)
// vs Atropos. A case "reproduces" when the culprits materially degrade
// normalized throughput or p99, and Atropos recovers most of it.

#include <cstdio>

#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run(const ObsCliArgs& cli) {
  std::printf("Table 2: 16 real-world application resource overload cases\n\n");
  if (!cli.trace_path.empty()) {
    WriteFile(cli.trace_path, "");
  }

  TextTable catalog({"id", "app (paper)", "resource type", "resource", "trigger"});
  for (const CaseInfo& info : CaseCatalog()) {
    catalog.AddRow({"c" + std::to_string(info.id),
                    std::string(info.app) + " (" + info.paper_app + ")", info.resource_type,
                    info.resource, info.trigger});
  }
  std::printf("%s\n", catalog.Render().c_str());

  TextTable results({"case", "base kQPS", "base p99(ms)", "overload tput", "overload p99x",
                     "atropos tput", "atropos p99x", "cancels", "reproduced"});
  for (const CaseInfo& info : CaseCatalog()) {
    if (cli.case_id > 0 && info.id != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(info.id, base_opt);

    CaseRunOptions over_opt;
    over_opt.controller = ControllerKind::kNone;
    CaseResult over = RunCase(info.id, over_opt);

    Observability obs;
    obs.trace_path = cli.trace_path;
    CaseRunOptions atr_opt;
    atr_opt.controller = ControllerKind::kAtropos;
    if (!cli.trace_path.empty()) {
      atr_opt.obs = &obs;
    }
    CaseResult atr = RunCase(info.id, atr_opt);
    if (atr_opt.obs != nullptr) {
      obs.Flush();
    }

    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());
    auto norm_tput = [&](const CaseResult& r) {
      return base_tput == 0 ? 0.0 : r.metrics.ThroughputQps() / base_tput;
    };
    auto norm_p99 = [&](const CaseResult& r) {
      return base_p99 == 0 ? 0.0 : static_cast<double>(r.metrics.P99()) / base_p99;
    };

    bool reproduced = norm_tput(over) < 0.85 || norm_p99(over) > 2.0;
    results.AddRow({"c" + std::to_string(info.id), TextTable::Num(base_tput / 1000.0, 2),
                    TextTable::Num(base_p99 / 1000.0, 2), TextTable::Num(norm_tput(over), 2),
                    TextTable::Num(norm_p99(over), 1), TextTable::Num(norm_tput(atr), 2),
                    TextTable::Num(norm_p99(atr), 1), std::to_string(atr.controller_actions),
                    reproduced ? "yes" : "NO"});
  }
  std::printf("%s\n", results.Render().c_str());
  std::printf(
      "overload tput / p99x are normalized against the non-overloaded baseline;\n"
      "'reproduced' = culprits cut normalized throughput below 0.85 or raised p99 over 2x.\n");
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
