// Figure 13 — effectiveness of the multi-objective cancellation policy.
//
// All 16 cases under three Atropos victim-selection policies:
//   multi-objective — Pareto non-dominated set + contention-weighted
//                     scalarization over predicted future gains (§3.5);
//   heuristic       — greedy: max gain on the single most contended resource;
//   current-usage   — multi-objective shape, but scoring current holdings
//                     instead of predicted future gain.
// Normalized throughput against the non-overloaded baseline. Expected shape:
// multi-objective >= the baselines, with the gap largest where multiple
// resources are contended or where near-complete hogs would fool the
// current-usage metric.

#include <cstdio>

#include "src/apps/minidb.h"
#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

struct AblationResult {
  int first_victim_type = -1;
  uint64_t first_victim_key = 0;
  TimeMicros first_cancel_time = 0;
  uint64_t cancels = 0;
  uint64_t overload_windows = 0;
  TimeMicros p99 = 0;
};

// Runs an ablation scenario under one policy and reports which task was
// cancelled first plus how long the overload lasted (resource-overload
// windows are a direct recovery-time proxy at 50 ms per window).
AblationResult RunAblation(bool multi_resource, ControllerKind kind) {
  Executor executor;
  ControllerParams params;
  auto MakeSurface = [](App* app) { return app; };
  (void)MakeSurface;

  // Build controller and app directly (same wiring as RunCase).
  struct Proxy final : ControlSurface {
    ControlSurface* real = nullptr;
    void CancelTask(uint64_t key, CancelReason reason) override {
      if (real != nullptr) {
        real->CancelTask(key, reason);
      }
    }
    void ThrottleTask(uint64_t key, double factor) override {
      if (real != nullptr) {
        real->ThrottleTask(key, factor);
      }
    }
  } proxy;
  auto controller = MakeController(kind, executor.clock(), &proxy, params);

  MiniDbOptions opt;
  opt.use_buffer_pool = true;
  opt.use_io = true;  // misses go to a shared disk: dumps actually thrash
  opt.use_table_locks = multi_resource;
  // Large enough that ONE dump displaces the hot set only partially (below
  // the SLO breach); overload needs both culprits, so the first decision
  // point sees both.
  opt.pool.capacity_pages = multi_resource ? 1500 : 5000;
  opt.pages_per_table = 8192;
  opt.hot_pages_per_table = 256;
  opt.point_select_cost = 1000;
  opt.row_update_cost = 1000;
  MiniDb app(executor, controller.get(), opt);
  proxy.real = &app;

  FrontendOptions fopt;
  fopt.duration = Seconds(10);
  fopt.warmup = Seconds(2);
  fopt.tick_window = params.window;
  Frontend frontend(executor, app, *controller, fopt);

  TrafficSpec victims;
  victims.type = kDbPointSelect;
  victims.qps = 1500;
  victims.arg_modulo = 5;
  frontend.AddTraffic(victims);

  if (!multi_resource) {
    // Progress-contrast ablation: a short dump (nearly done at detection
    // time) and a full dump that just started. Current-usage picks the
    // nearly-finished one (it holds more pages); future gain picks the
    // fresh one.
    // The small dump alone stays under the SLO breach; the big dump arriving
    // at 4 s tips the system over, so the first cancellation decision sees a
    // ~75%-complete small dump next to a ~10%-complete big one.
    OneShotSpec small_dump{kDbDumpQuery, Seconds(3), (4096ull << 8) | 0, 1, false};
    OneShotSpec big_dump{kDbDumpQuery, Seconds(4), (8192ull << 8) | 1, 1, false};
    frontend.AddOneShot(small_dump);
    frontend.AddOneShot(big_dump);
  } else {
    // Multi-resource ablation: an ALTER TABLE (gains on the table lock AND
    // the buffer pool) next to a SELECT FOR UPDATE (lock only). The greedy
    // single-resource heuristic scores only the most contended resource.
    TrafficSpec lock_victims;
    lock_victims.type = kDbInsert;
    lock_victims.qps = 400;
    lock_victims.arg_modulo = 1;  // all on the ALTER's table
    frontend.AddTraffic(lock_victims);
    // The table lock is the single most contended resource, but its only
    // holder is a non-cancellable maintenance operation (marked unsafe to
    // kill). The greedy heuristic fixates on that resource and finds no
    // victim; multi-objective still relieves the buffer pool by cancelling
    // the dump.
    OneShotSpec sfu{kDbSelectForUpdate, Seconds(3), 0, 1, false, /*non_cancellable=*/true};
    OneShotSpec dump{kDbDumpQuery, Seconds(3) + Millis(100), (8192ull << 8) | 2, 1, false};
    frontend.AddOneShot(sfu);
    frontend.AddOneShot(dump);
  }

  AblationResult out;
  if (auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get()); runtime != nullptr) {
    runtime->SetCancelObserver([&out, &frontend, &executor](uint64_t key, double score) {
      if (out.first_victim_type < 0) {
        out.first_victim_type = frontend.TypeOfKey(key);
        out.first_victim_key = key;
        out.first_cancel_time = executor.now();
      }
    });
  }
  RunMetrics m = frontend.Run();
  out.p99 = m.P99();
  if (auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get()); runtime != nullptr) {
    out.cancels = runtime->stats().cancels_issued;
    out.overload_windows = runtime->stats().resource_overload_windows;
  }
  return out;
}

const char* TypeName(int type) {
  switch (type) {
    case kDbDumpQuery:
      return "dump";
    case kDbSelectForUpdate:
      return "select-for-update";
    case kDbAlterTable:
      return "alter-table";
    case kDbPointSelect:
      return "point-select(!)";
    case kDbInsert:
      return "insert(!)";
    default:
      return "?";
  }
}

void Run(const ObsCliArgs& cli) {
  std::printf("Figure 13: comparison of cancellation policies\n\n");
  if (!cli.trace_path.empty()) {
    WriteFile(cli.trace_path, "");
  }

  const ControllerKind kPolicies[] = {ControllerKind::kAtropos, ControllerKind::kAtroposHeuristic,
                                      ControllerKind::kAtroposCurrentUsage};

  TextTable tput({"case", "multi-objective", "heuristic", "current-usage"});
  TextTable p99({"case", "multi-objective", "heuristic", "current-usage"});
  double sums[3] = {0};
  int cases_run = 0;
  for (int c = 1; c <= 16; c++) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(c, base_opt);
    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());

    std::vector<std::string> trow{"c" + std::to_string(c)};
    std::vector<std::string> lrow{"c" + std::to_string(c)};
    for (int k = 0; k < 3; k++) {
      Observability obs;
      obs.trace_path = cli.trace_path;
      CaseRunOptions opt;
      opt.controller = kPolicies[k];
      if (!cli.trace_path.empty()) {
        opt.obs = &obs;
      }
      CaseResult r = RunCase(c, opt);
      if (opt.obs != nullptr) {
        obs.Flush();
      }
      double nt = base_tput == 0 ? 0 : r.metrics.ThroughputQps() / base_tput;
      sums[k] += nt;
      trow.push_back(TextTable::Num(nt, 3));
      lrow.push_back(TextTable::Num(
          base_p99 == 0 ? 0 : static_cast<double>(r.metrics.P99()) / base_p99, 1));
    }
    cases_run++;
    tput.AddRow(trow);
    p99.AddRow(lrow);
  }
  if (cases_run > 0) {
    tput.AddRow({"avg", TextTable::Num(sums[0] / cases_run, 3),
                 TextTable::Num(sums[1] / cases_run, 3), TextTable::Num(sums[2] / cases_run, 3)});
  }
  std::printf("(a) Normalized throughput across the 16 cases\n%s\n", tput.Render().c_str());
  std::printf("(b) Normalized p99 latency across the 16 cases\n%s\n", p99.Render().c_str());
  std::printf(
      "Single-culprit cases barely differentiate the policies (any of them\n"
      "finds the lone hog); the decision-level differences show in the\n"
      "targeted ablations below.\n\n");

  // ---- Decision-level ablations.
  const ControllerKind kKinds[] = {ControllerKind::kAtropos, ControllerKind::kAtroposHeuristic,
                                   ControllerKind::kAtroposCurrentUsage};
  const char* kNames2[] = {"multi-objective", "heuristic", "current-usage"};

  std::printf(
      "(c) Progress-contrast ablation: a nearly-finished short dump next to a\n"
      "    just-started full dump on the buffer pool.\n");
  TextTable abl1({"policy", "first victim", "at (s)", "cancels", "overload windows", "p99(ms)"});
  for (int k = 0; k < 3; k++) {
    AblationResult r = RunAblation(/*multi_resource=*/false, kKinds[k]);
    abl1.AddRow({kNames2[k],
                 std::string(TypeName(r.first_victim_type)) + "#" +
                     std::to_string(r.first_victim_key),
                 TextTable::Num(ToSeconds(r.first_cancel_time), 2), std::to_string(r.cancels),
                 std::to_string(r.overload_windows), TextTable::Num(ToMillis(r.p99), 2)});
  }
  std::printf("%s\n", abl1.Render().c_str());

  std::printf(
      "(d) Multi-resource ablation: the most contended resource (table lock)\n"
      "    is held by a non-cancellable maintenance op while a dump hogs the\n"
      "    buffer pool.\n");
  TextTable abl2({"policy", "first victim", "at (s)", "cancels", "overload windows", "p99(ms)"});
  for (int k = 0; k < 3; k++) {
    AblationResult r = RunAblation(/*multi_resource=*/true, kKinds[k]);
    abl2.AddRow({kNames2[k],
                 std::string(TypeName(r.first_victim_type)) + "#" +
                     std::to_string(r.first_victim_key),
                 TextTable::Num(ToSeconds(r.first_cancel_time), 2), std::to_string(r.cancels),
                 std::to_string(r.overload_windows), TextTable::Num(ToMillis(r.p99), 2)});
  }
  std::printf("%s\n", abl2.Render().c_str());
  std::printf(
      "expected: in (c) current-usage wastes its cancellation on the\n"
      "nearly-finished dump and pays for it in p99; in (d) the greedy\n"
      "heuristic fixates on the lock (no cancellable victim there) and never\n"
      "relieves the pool, while the multi-objective policy cancels the dump.\n");
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
