// Figure 4 — Protego vs pBox vs Atropos on the table-lock overload (case c1),
// across offered loads. Metrics normalized by the non-overloaded run at the
// same load: normalized throughput (4a), normalized p99 (4b), drop rate (4c).
//
// Expected shape: Protego bounds latency by dropping many victim requests
// (high drop rate, reduced throughput); pBox throttles but cannot release the
// held locks (latency unbounded); Atropos cancels the culprits and keeps
// throughput ~1 with a negligible drop rate.

#include <cstdio>

#include "src/common/table.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run() {
  std::printf("Figure 4: Protego, pBox, and Atropos on the table-lock overload (case c1)\n\n");

  const ControllerKind kControllers[] = {ControllerKind::kProtego, ControllerKind::kPBox,
                                         ControllerKind::kAtropos};

  TextTable tput({"load x", "protego", "pbox", "atropos"});
  TextTable p99({"load x", "protego", "pbox", "atropos"});
  TextTable drop({"load x", "protego", "pbox", "atropos"});

  for (double scale : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    base_opt.load_scale = scale;
    CaseResult base = RunCase(1, base_opt);
    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());

    std::vector<std::string> trow{TextTable::Num(scale, 1)};
    std::vector<std::string> lrow{TextTable::Num(scale, 1)};
    std::vector<std::string> drow{TextTable::Num(scale, 1)};
    for (ControllerKind kind : kControllers) {
      CaseRunOptions opt;
      opt.controller = kind;
      opt.load_scale = scale;
      CaseResult r = RunCase(1, opt);
      trow.push_back(
          TextTable::Num(base_tput == 0 ? 0 : r.metrics.ThroughputQps() / base_tput, 2));
      lrow.push_back(TextTable::Num(
          base_p99 == 0 ? 0 : static_cast<double>(r.metrics.P99()) / base_p99, 1));
      drow.push_back(TextTable::Pct(r.metrics.DropRate(), 2));
    }
    tput.AddRow(trow);
    p99.AddRow(lrow);
    drop.AddRow(drow);
  }

  std::printf("(a) Normalized throughput\n%s\n", tput.Render().c_str());
  std::printf("(b) Normalized p99 latency\n%s\n", p99.Render().c_str());
  std::printf("(c) Drop rate\n%s\n", drop.Render().c_str());
  std::printf(
      "expected shape: Atropos sustains ~1.0 normalized throughput with ~0%% drops;\n"
      "Protego trades a large drop rate for bounded latency; pBox cannot release\n"
      "held locks and leaves p99 orders of magnitude above baseline.\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
