// Table 3 — evaluated software and integration effort.
//
// Prints the paper's per-application integration cost (lines of code added)
// alongside live measurements from this repository's simulated applications:
// registered resources, background tasks, and the tracing-event volume of a
// one-second reference workload.

#include <cstdio>

#include "src/common/table.h"
#include "src/study/integration_effort.h"

namespace atropos {
namespace {

void Run() {
  std::printf("Table 3: evaluated software and integration effort\n\n");
  TextTable paper({"Software", "Language", "Category", "SLOC", "SLOC Added"});
  for (const IntegrationEffort& row : PaperIntegrationEffort()) {
    paper.AddRow({row.software, row.language, row.category, row.sloc,
                  std::to_string(row.sloc_added)});
  }
  std::printf("(a) Paper-reported integration effort\n%s\n", paper.Render().c_str());

  TextTable repo({"Simulated app", "Resources registered", "Background tasks",
                  "Trace events (1s reference run)"});
  for (const RepoIntegration& row : MeasureRepoIntegration()) {
    repo.AddRow({row.app, std::to_string(row.resources_registered),
                 std::to_string(row.background_tasks), std::to_string(row.trace_events)});
  }
  std::printf("(b) This repository's integration surface (measured live)\n%s\n",
              repo.Render().c_str());
  std::printf(
      "Apps with more application resources need more instrumentation sites —\n"
      "the paper's MySQL (74 lines, ~20 resources) vs etcd (22 lines) gradient.\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
