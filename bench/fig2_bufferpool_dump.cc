// Figure 2 — impact of dump queries on buffer pool contention.
//
// MiniDb with an InnoDB-style ticket limit and a buffer pool sized well below
// the data set. Three workloads: no dump queries, dump queries at 0.001% of
// offered load, and at 0.01%. For each offered load the harness reports
// throughput and p99 — reproducing the paper's shape: even a tiny fraction of
// dump queries caps maximum throughput far below the baseline and drags tail
// latency up at much lower loads.

#include <cstdio>

#include "src/apps/minidb.h"
#include "src/common/table.h"
#include "src/workload/frontend.h"

namespace atropos {
namespace {

struct Point {
  double tput_kqps = 0;
  TimeMicros p99 = 0;
};

Point RunPoint(double offered_qps, double dump_ratio) {
  Executor executor;
  NullController controller;  // Fig 2 is motivation: no overload control

  MiniDbOptions opt;
  opt.use_tickets = true;
  opt.use_buffer_pool = true;
  opt.use_io = true;  // misses and flushes share the disk (thrashing path)
  opt.innodb_tickets = 8;
  opt.point_select_cost = 260;
  opt.row_update_cost = 300;
  opt.point_pages = 2;
  opt.pool.capacity_pages = 1500;
  opt.pages_per_table = 8192;  // "2 GB data" vs "512 MB pool"
  opt.hot_pages_per_table = 300;
  opt.pool.page_bytes = 16 * 1024;
  opt.io_bytes_per_second = 100e6;  // 16 KB page reads cost 160 us
  MiniDb app(executor, &controller, opt);

  FrontendOptions fopt;
  fopt.duration = Seconds(6);
  fopt.warmup = static_cast<TimeMicros>(Seconds(1.5));
  fopt.retry_cancelled = false;
  Frontend frontend(executor, app, controller, fopt);

  TrafficSpec selects;
  selects.type = kDbPointSelect;
  selects.qps = offered_qps * 0.8;
  selects.arg_modulo = 5;
  frontend.AddTraffic(selects);

  TrafficSpec updates;
  updates.type = kDbRowUpdate;
  updates.qps = offered_qps * 0.2;
  updates.arg_modulo = 5;
  frontend.AddTraffic(updates);

  if (dump_ratio > 0) {
    TrafficSpec dumps;
    dumps.type = kDbDumpQuery;
    dumps.qps = offered_qps * dump_ratio;
    dumps.arg_modulo = 5;
    dumps.client_class = 1;
    frontend.AddTraffic(dumps);
  }

  RunMetrics m = frontend.Run();
  return {m.ThroughputQps() / 1000.0, m.P99()};
}

void Run() {
  std::printf("Figure 2: impact of dump queries on buffer pool contention\n");
  std::printf("(dump ratios: none, 0.001%% = 1:100K, 0.01%% = 1:10K of offered load)\n\n");

  const double kRatios[] = {0.0, 1e-5, 1e-4};
  const char* kNames[] = {"no-dump", "0.001%-dump", "0.01%-dump"};

  TextTable tput({"offered kQPS", "tput no-dump", "tput 0.001%", "tput 0.01%"});
  TextTable p99({"offered kQPS", "p99(ms) no-dump", "p99(ms) 0.001%", "p99(ms) 0.01%"});
  for (double offered : {5000.0, 10000.0, 15000.0, 20000.0, 25000.0, 30000.0}) {
    std::vector<std::string> trow{TextTable::Num(offered / 1000.0, 0)};
    std::vector<std::string> lrow{TextTable::Num(offered / 1000.0, 0)};
    for (double ratio : kRatios) {
      Point p = RunPoint(offered, ratio);
      trow.push_back(TextTable::Num(p.tput_kqps, 2));
      lrow.push_back(TextTable::Num(ToMillis(p.p99), 2));
    }
    tput.AddRow(trow);
    p99.AddRow(lrow);
  }
  std::printf("(a) Throughput (kQPS)\n%s\n", tput.Render().c_str());
  std::printf("(b) p99 latency (ms)\n%s\n", p99.Render().c_str());
  std::printf("series: %s | %s | %s\n", kNames[0], kNames[1], kNames[2]);
  std::printf(
      "expected shape: dump queries cap max throughput well below the no-dump\n"
      "peak, and p99 rises sharply at much lower offered loads.\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
