// Figure 9 — Atropos vs state-of-the-art systems across cases c1–c15:
// (a) normalized throughput, (b) normalized p99 latency. Metrics are
// normalized against each case's baseline performance without overload.
//
// Expected shape (paper averages): Atropos ~0.96 normalized throughput;
// Protego ~0.51, pBox ~0.54, DARC ~0.36, PARTIES ~0.38. Atropos bounds tail
// latency everywhere; Protego bounds it only for synchronization/system
// cases; the others leave it orders of magnitude high.

#include <cstdio>

#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

void Run(const ObsCliArgs& cli) {
  std::printf("Figure 9: comparison with state-of-the-art systems (c1-c15)\n\n");
  if (!cli.trace_path.empty()) {
    WriteFile(cli.trace_path, "");
  }

  const ControllerKind kControllers[] = {ControllerKind::kAtropos, ControllerKind::kProtego,
                                         ControllerKind::kPBox, ControllerKind::kDarc,
                                         ControllerKind::kParties};
  const char* kNames[] = {"atropos", "protego", "pbox", "darc", "parties"};

  TextTable tput({"case", "atropos", "protego", "pbox", "darc", "parties"});
  TextTable p99({"case", "atropos", "protego", "pbox", "darc", "parties"});
  double tput_sum[5] = {0};
  double p99_sum[5] = {0};
  int cases_run = 0;

  for (int c = 1; c <= 15; c++) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(c, base_opt);
    double base_tput = base.metrics.ThroughputQps();
    double base_p99 = static_cast<double>(base.metrics.P99());

    std::vector<std::string> trow{"c" + std::to_string(c)};
    std::vector<std::string> lrow{"c" + std::to_string(c)};
    for (int k = 0; k < 5; k++) {
      Observability obs;
      obs.trace_path = cli.trace_path;
      CaseRunOptions opt;
      opt.controller = kControllers[k];
      // Trace the Atropos runs only — the flight recorder explains the
      // cancellation decisions, which the baselines don't make.
      if (!cli.trace_path.empty() && kControllers[k] == ControllerKind::kAtropos) {
        opt.obs = &obs;
      }
      CaseResult r = RunCase(c, opt);
      if (opt.obs != nullptr) {
        obs.Flush();
      }
      double nt = base_tput == 0 ? 0 : r.metrics.ThroughputQps() / base_tput;
      double np = base_p99 == 0 ? 0 : static_cast<double>(r.metrics.P99()) / base_p99;
      tput_sum[k] += nt;
      p99_sum[k] += np;
      trow.push_back(TextTable::Num(nt, 2));
      lrow.push_back(TextTable::Num(np, 1));
    }
    cases_run++;
    tput.AddRow(trow);
    p99.AddRow(lrow);
  }

  if (cases_run > 0) {
    std::vector<std::string> tavg{"avg"};
    std::vector<std::string> lavg{"avg"};
    for (int k = 0; k < 5; k++) {
      tavg.push_back(TextTable::Num(tput_sum[k] / cases_run, 2));
      lavg.push_back(TextTable::Num(p99_sum[k] / cases_run, 1));
    }
    tput.AddRow(tavg);
    p99.AddRow(lavg);
  }

  std::printf("(a) Normalized throughput\n%s\n", tput.Render().c_str());
  std::printf("(b) Normalized p99 latency\n%s\n", p99.Render().c_str());
  std::printf("series: %s %s %s %s %s\n", kNames[0], kNames[1], kNames[2], kNames[3], kNames[4]);
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
