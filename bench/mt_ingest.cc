// Multi-threaded ingestion throughput of the ConcurrentFrontend.
//
// Real OS threads hammer the §3.2 instrumentation hooks while one drainer
// thread runs Tick() concurrently, measuring the producer-side cost the
// paper's overhead argument depends on: a trace call must stay a clock read
// plus one SPSC ring write, with no shared cache lines between producers, so
// aggregate throughput scales with producer count instead of collapsing onto
// a lock.
//
// Each thread count is measured in two modes:
//
//   loss-free   producers apply backpressure (spin-yield until ring space),
//               so every event is delivered and drained. events_per_second
//               and ns_per_event measure *sustainable* end-to-end intake —
//               the number the perf trajectory tracks against the ROADMAP
//               ~10ns/event target.
//   saturation  producers push at maximum rate and a full ring drops the
//               event (the production overload posture). The drop rate is
//               reported explicitly; events_per_second here measures raw
//               producer-side push cost, not delivered throughput.
//
// The acceptance bar from the intake design is >=4x aggregate loss-free
// throughput at 8 producers vs 1 — only meaningful on a machine with >=8
// cores, so the bench prints the core count it actually had and marks the
// comparison informational when the hardware can't show it.
//
// Usage: mt_ingest [--events=N] [--max-threads=N] [--ring-capacity=N]
//                  [--json[=path]]   (writes BENCH_mt_ingest.json)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/atropos/concurrent_frontend.h"
#include "src/common/clock.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"

namespace atropos {
namespace {

struct BenchOptions {
  uint64_t events = 2'000'000;  // total per thread-count measurement
  int max_threads = 16;
  size_t ring_capacity = 1 << 16;
};

uint64_t ParseFlag(const char* arg, const char* name, uint64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::strtoull(arg + len + 1, nullptr, 10);
  }
  return fallback;
}

struct RunResult {
  double wall_seconds = 0;
  uint64_t pushed = 0;     // events that reached a ring (delivered)
  uint64_t attempted = 0;  // events the producers tried to push
  uint64_t dropped = 0;    // ring-overflow losses (saturation mode only)
};

// Pushes `events` trace calls from `threads` producer threads through the
// OverloadController hook surface (the path an instrumented application
// uses), with a concurrent drainer ticking the control loop. In loss-free
// mode a full ring makes the producer yield and retry instead of dropping.
RunResult RunOnce(int threads, uint64_t events, size_t ring_capacity, bool loss_free) {
  SteadyClock clock;
  AtroposConfig config;
  config.baseline_p99 = 1000;  // skip calibration; keep the drainer realistic
  ConcurrentFrontend::Options options;
  options.ring_capacity = ring_capacity;
  ConcurrentFrontend frontend(&clock, config, options);
  const ResourceId lock = frontend.RegisterResource("ingest_lock", ResourceClass::kLock);

  const uint64_t per_thread = events / static_cast<uint64_t>(threads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop_drainer{false};

  std::thread drainer([&] {
    while (!stop_drainer.load(std::memory_order_acquire)) {
      frontend.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    frontend.Tick();  // final sweep so `drained + dropped == pushed`
  });

  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    producers.emplace_back([&, t] {
      // Bind this thread's ring before the clock starts: registration is the
      // one mutex-protected step and must not count against the hot path.
      ConcurrentFrontend::Producer* p = frontend.RegisterProducer();
      const uint64_t base_key = 1'000'000ull * static_cast<uint64_t>(t + 1);
      p->OnTaskRegistered(base_key, /*background=*/false);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      if (loss_free) {
        // Backpressure: a full ring stalls the producer until the drainer
        // catches up. spins-then-yield keeps the 1-core case live.
        for (uint64_t i = 1; i + 1 < per_thread; i += 2) {
          int spins = 0;
          while (!p->OnGet(base_key, lock, 1)) {
            if (++spins > 64) {
              std::this_thread::yield();
            }
          }
          spins = 0;
          while (!p->OnFree(base_key, lock, 1)) {
            if (++spins > 64) {
              std::this_thread::yield();
            }
          }
        }
      } else {
        for (uint64_t i = 1; i + 1 < per_thread; i += 2) {
          p->OnGet(base_key, lock, 1);
          p->OnFree(base_key, lock, 1);
        }
      }
      int spins = 0;
      while (!p->OnTaskFreed(base_key) && loss_free) {
        if (++spins > 64) {
          std::this_thread::yield();
        }
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : producers) {
    th.join();
  }
  const auto end = std::chrono::steady_clock::now();

  stop_drainer.store(true, std::memory_order_release);
  drainer.join();

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  const ConcurrentFrontend::IntakeStats& intake = frontend.intake_stats();
  r.pushed = intake.drained_total;
  r.dropped = intake.dropped_total;
  r.attempted = intake.drained_total + intake.dropped_total;
  return r;
}

// Returns the output path when `arg` is --json or --json=path, else "".
std::string ParseJsonFlag(const char* arg, const char* fallback) {
  if (std::strcmp(arg, "--json") == 0) {
    return fallback;
  }
  if (std::strncmp(arg, "--json=", 7) == 0) {
    return arg + 7;
  }
  return "";
}

int Main(int argc, char** argv) {
  BenchOptions opt;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    opt.events = ParseFlag(argv[i], "--events", opt.events);
    opt.max_threads =
        static_cast<int>(ParseFlag(argv[i], "--max-threads", static_cast<uint64_t>(opt.max_threads)));
    opt.ring_capacity =
        static_cast<size_t>(ParseFlag(argv[i], "--ring-capacity", opt.ring_capacity));
    if (std::string p = ParseJsonFlag(argv[i], "BENCH_mt_ingest.json"); !p.empty()) {
      json_path = p;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("mt_ingest: %llu events per run, ring capacity %zu, %u hardware threads\n\n",
              static_cast<unsigned long long>(opt.events), opt.ring_capacity, cores);

  TextTable table({"producers", "mode", "delivered", "wall_ms", "Mev/s", "ns/event", "speedup",
                   "drop_rate"});
  struct Row {
    int threads;
    bool loss_free;
    RunResult r;
    double throughput;   // delivered events / wall second
    double ns_per_event;
    double drop_rate;
    double speedup;
  };
  std::vector<Row> rows;
  double base_lossfree_throughput = 0;
  double lossfree_ns_1p = 0;
  double speedup_at_8 = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    if (threads > opt.max_threads) {
      break;
    }
    for (bool loss_free : {true, false}) {
      // Warm-up pass absorbs first-touch page faults in the rings.
      RunOnce(threads, opt.events / 10 + 1, opt.ring_capacity, loss_free);
      const RunResult r = RunOnce(threads, opt.events, opt.ring_capacity, loss_free);
      // In loss-free mode a failed push is retried, so the ring's drop counter
      // measures backpressure stalls, not losses: every intended event is
      // delivered and the true drop rate is zero by construction.
      const uint64_t moved = loss_free ? r.pushed : r.attempted;
      const double throughput = static_cast<double>(moved) / r.wall_seconds;
      const double ns_per_event = moved > 0 ? r.wall_seconds * 1e9 / static_cast<double>(moved) : 0;
      const double drop_rate =
          loss_free ? 0.0
                    : (r.attempted > 0
                           ? static_cast<double>(r.dropped) / static_cast<double>(r.attempted)
                           : 0);
      double speedup = 0;
      if (loss_free) {
        if (threads == 1) {
          base_lossfree_throughput = throughput;
          lossfree_ns_1p = ns_per_event;
        }
        speedup = base_lossfree_throughput > 0 ? throughput / base_lossfree_throughput : 0;
        if (threads == 8) {
          speedup_at_8 = speedup;
        }
      }
      rows.push_back({threads, loss_free, r, throughput, ns_per_event, drop_rate, speedup});
      table.AddRow({std::to_string(threads), loss_free ? "loss-free" : "saturate",
                    std::to_string(moved), TextTable::Num(r.wall_seconds * 1e3),
                    TextTable::Num(throughput / 1e6), TextTable::Num(ns_per_event, 1),
                    loss_free ? TextTable::Num(speedup) + "x" : "-",
                    TextTable::Pct(drop_rate)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  if (!json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Field("bench", "mt_ingest");
    json.Field("events_per_run", opt.events);
    json.Field("ring_capacity", static_cast<uint64_t>(opt.ring_capacity));
    json.Field("hardware_threads", static_cast<uint64_t>(cores));
    json.Key("runs").BeginArray();
    for (const Row& row : rows) {
      json.BeginObject();
      json.Field("producers", row.threads);
      json.Field("mode", row.loss_free ? "lossfree" : "saturate");
      json.Field("attempted", row.loss_free ? row.r.pushed : row.r.attempted);
      json.Field("delivered", row.r.pushed);
      json.Field("dropped", row.loss_free ? uint64_t{0} : row.r.dropped);
      json.Field("backpressure_retries", row.loss_free ? row.r.dropped : uint64_t{0});
      json.Field("drop_rate", row.drop_rate);
      json.Field("wall_seconds", row.r.wall_seconds);
      json.Field("events_per_second", row.throughput);
      json.Field("ns_per_event", row.ns_per_event);
      json.Field("speedup_vs_1", row.speedup);
      json.EndObject();
    }
    json.EndArray();
    // Headline trajectory numbers: sustainable single-producer per-event cost
    // (ROADMAP ~10ns target) and loss-free scaling at 8 producers.
    json.Field("lossfree_ns_per_event_1p", lossfree_ns_1p);
    json.Field("speedup_at_8", speedup_at_8);
    json.EndObject();
    if (json.WriteFile(json_path)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    }
  }

  if (opt.max_threads >= 8) {
    if (cores >= 8) {
      std::printf("loss-free scaling @8 producers: %.2fx vs 1 (bar: >=4x) -> %s\n", speedup_at_8,
                  speedup_at_8 >= 4.0 ? "PASS" : "FAIL");
      return speedup_at_8 >= 4.0 ? 0 : 1;
    }
    std::printf(
        "loss-free scaling @8 producers: %.2fx vs 1 (informational: only %u hardware threads, "
        ">=8 cores needed to demonstrate the >=4x bar)\n",
        speedup_at_8, cores);
  }
  return 0;
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) { return atropos::Main(argc, argv); }
