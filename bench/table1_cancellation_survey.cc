// Table 1 — prevalence of task cancellation support in 151 popular
// open-source applications, regenerated from the embedded survey dataset,
// plus the curated exemplar list with each application's documented
// cancellation initiator.

#include <cstdio>

#include "src/common/table.h"
#include "src/study/cancellation_survey.h"

namespace atropos {
namespace {

void Run() {
  if (!ValidateSurvey()) {
    std::printf("survey dataset failed validation!\n");
    return;
  }

  std::printf("Table 1: prevalence of task cancellation in 151 popular applications\n\n");
  TextTable table({"Language", "Applications", "Supporting Cancel", "With Initiator"});
  int total = 0;
  int supporting = 0;
  int initiator = 0;
  for (const SurveyAggregate& row : SurveyAggregates()) {
    table.AddRow({row.language, std::to_string(row.applications),
                  std::to_string(row.supporting_cancel), std::to_string(row.with_initiator)});
    total += row.applications;
    supporting += row.supporting_cancel;
    initiator += row.with_initiator;
  }
  char pct_support[32];
  char pct_initiator[32];
  std::snprintf(pct_support, sizeof(pct_support), "%d (%.0f%%)", supporting,
                100.0 * supporting / total);
  std::snprintf(pct_initiator, sizeof(pct_initiator), "%d (%.0f%% of %d)", initiator,
                100.0 * initiator / supporting, supporting);
  table.AddRow({"Total", std::to_string(total), pct_support, pct_initiator});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Exemplars (documented cancellation initiators):\n\n");
  TextTable ex({"Application", "Lang", "Cancel", "Initiator", "Mechanism"});
  for (const SurveyExemplar& e : SurveyExemplars()) {
    ex.AddRow({e.application, e.language, e.supports_cancel ? "yes" : "no",
               e.has_initiator ? "yes" : "no", e.mechanism});
  }
  std::printf("%s", ex.Render().c_str());
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
