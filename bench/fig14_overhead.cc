// Figure 14 — overhead of Atropos.
//
// Part 1 (google-benchmark, real clock): per-call cost of the tracing APIs in
// sampled-timestamp mode (normal operation) and per-event mode (suspected
// overload), plus the per-window Tick decision cost. This is the real
// measured cost of the instrumentation a request passes through.
//
// Part 2 (simulation): five application configurations under read, write,
// read-overload, and write-overload workloads, run with and without tracing.
// The traced runs inflate each request by (measured per-call cost x calls per
// request for that workload); cancellation is disabled in the overload runs
// so only tracing/decision overhead is measured (§5.5). Reported numbers are
// normalized throughput and p99 (traced / untraced).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/minidb.h"
#include "src/apps/minisearch.h"
#include "src/apps/miniweb.h"
#include "src/atropos/runtime.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/workload/frontend.h"

namespace atropos {
namespace {

// ---------------------------------------------------------------------------
// Part 1: micro costs (real clock).

AtroposRuntime* MakeMicroRuntime(TimestampMode mode, SteadyClock* clock) {
  AtroposConfig config;
  config.timestamp_mode = mode;
  config.baseline_p99 = Millis(100);  // keep the detector quiet
  auto* runtime = new AtroposRuntime(clock, config);
  return runtime;
}

void BM_OnGetSampled(benchmark::State& state) {
  SteadyClock clock;
  std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
  ResourceId r = rt->RegisterResource("pool", ResourceClass::kMemory);
  rt->OnTaskRegistered(1, false);
  for (auto _ : state) {
    rt->OnGet(1, r, 1);
  }
}
BENCHMARK(BM_OnGetSampled);

void BM_OnGetPerEvent(benchmark::State& state) {
  SteadyClock clock;
  std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kPerEvent, &clock));
  ResourceId r = rt->RegisterResource("pool", ResourceClass::kMemory);
  rt->OnTaskRegistered(1, false);
  for (auto _ : state) {
    rt->OnGet(1, r, 1);
  }
}
BENCHMARK(BM_OnGetPerEvent);

void BM_WaitPairPerEvent(benchmark::State& state) {
  SteadyClock clock;
  std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kPerEvent, &clock));
  ResourceId r = rt->RegisterResource("lock", ResourceClass::kLock);
  rt->OnTaskRegistered(1, false);
  for (auto _ : state) {
    rt->OnWaitBegin(1, r);
    rt->OnWaitEnd(1, r);
  }
}
BENCHMARK(BM_WaitPairPerEvent);

void BM_OnRequestEnd(benchmark::State& state) {
  SteadyClock clock;
  std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
  rt->OnTaskRegistered(1, false);
  for (auto _ : state) {
    rt->OnRequestEnd(1, 1000, 0, 0);
  }
}
BENCHMARK(BM_OnRequestEnd);

void BM_TickWith100Tasks(benchmark::State& state) {
  SteadyClock clock;
  std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
  ResourceId r = rt->RegisterResource("lock", ResourceClass::kLock);
  for (uint64_t k = 1; k <= 100; k++) {
    rt->OnTaskRegistered(k, false);
    rt->OnGet(k, r, 1);
  }
  for (auto _ : state) {
    rt->Tick();
  }
}
BENCHMARK(BM_TickWith100Tasks);

// Hand-rolled steady-clock loops mirroring the google-benchmark cases above,
// so the machine-readable trajectory (BENCH_fig14.json) carries stable
// per-event nanosecond figures without parsing benchmark console output.
struct MicroCosts {
  double on_get_sampled_ns = 0;
  double on_get_per_event_ns = 0;
  double wait_pair_per_event_ns = 0;
  double on_request_end_ns = 0;
  double tick_100_tasks_us = 0;
};

double TimeLoopNs(uint64_t iters, const std::function<void()>& body) {
  // One untimed pass warms caches and the ledger's first-touch allocations.
  body();
  // Best-of-3: the minimum over repetitions is the least-scheduler-noise
  // estimate of the true cost — a single timed pass on a shared core can
  // read 2x high and trip the perf-trajectory gate spuriously.
  double best = 0;
  for (int rep = 0; rep < 3; rep++) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; i++) {
      body();
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(end - start).count() /
                      static_cast<double>(iters);
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

MicroCosts MeasureMicroCosts() {
  constexpr uint64_t kHookIters = 2'000'000;
  constexpr uint64_t kTickIters = 2'000;
  MicroCosts costs;
  {
    SteadyClock clock;
    std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
    ResourceId r = rt->RegisterResource("pool", ResourceClass::kMemory);
    rt->OnTaskRegistered(1, false);
    costs.on_get_sampled_ns = TimeLoopNs(kHookIters, [&] { rt->OnGet(1, r, 1); });
  }
  {
    SteadyClock clock;
    std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kPerEvent, &clock));
    ResourceId r = rt->RegisterResource("pool", ResourceClass::kMemory);
    rt->OnTaskRegistered(1, false);
    costs.on_get_per_event_ns = TimeLoopNs(kHookIters, [&] { rt->OnGet(1, r, 1); });
  }
  {
    SteadyClock clock;
    std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kPerEvent, &clock));
    ResourceId r = rt->RegisterResource("lock", ResourceClass::kLock);
    rt->OnTaskRegistered(1, false);
    costs.wait_pair_per_event_ns = TimeLoopNs(kHookIters, [&] {
      rt->OnWaitBegin(1, r);
      rt->OnWaitEnd(1, r);
    });
  }
  {
    SteadyClock clock;
    std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
    rt->OnTaskRegistered(1, false);
    costs.on_request_end_ns = TimeLoopNs(kHookIters, [&] { rt->OnRequestEnd(1, 1000, 0, 0); });
  }
  {
    SteadyClock clock;
    std::unique_ptr<AtroposRuntime> rt(MakeMicroRuntime(TimestampMode::kSampled, &clock));
    ResourceId r = rt->RegisterResource("lock", ResourceClass::kLock);
    for (uint64_t k = 1; k <= 100; k++) {
      rt->OnTaskRegistered(k, false);
      rt->OnGet(k, r, 1);
    }
    costs.tick_100_tasks_us = TimeLoopNs(kTickIters, [&] { rt->Tick(); }) / 1000.0;
  }
  return costs;
}

// ---------------------------------------------------------------------------
// Part 2: simulated end-to-end overhead.

struct AppSpec {
  const char* name;
  // Builds the app; `read_type`/`write_type` are its light request types and
  // `culprit_type`/`culprit_arg` its overload trigger.
  int read_type;
  int write_type;
  int culprit_type;
  uint64_t culprit_arg;
  int flavor;  // 0 = minidb-mysql, 1 = minidb-postgres, 2 = miniweb, 3 = es, 4 = solr
};

std::unique_ptr<App> BuildApp(const AppSpec& spec, Executor& ex, OverloadController* ctl,
                              TimeMicros extra_cost) {
  switch (spec.flavor) {
    case 0: {
      MiniDbOptions opt;
      opt.use_tickets = true;
      opt.use_table_locks = true;
      opt.use_buffer_pool = true;
      opt.extra_request_cost = extra_cost;
      return std::make_unique<MiniDb>(ex, ctl, opt);
    }
    case 1: {
      MiniDbOptions opt;
      opt.use_mvcc = true;
      opt.use_wal = true;
      opt.extra_request_cost = extra_cost;
      return std::make_unique<MiniDb>(ex, ctl, opt);
    }
    case 2: {
      MiniWebOptions opt;
      opt.extra_request_cost = extra_cost;
      return std::make_unique<MiniWeb>(ex, ctl, opt);
    }
    case 3: {
      MiniSearchOptions opt;
      opt.use_cache = true;
      opt.use_heap = true;
      opt.extra_request_cost = extra_cost;
      return std::make_unique<MiniSearch>(ex, ctl, opt);
    }
    default: {
      MiniSearchOptions opt;
      opt.use_index_lock = true;
      opt.use_queue = true;
      opt.extra_request_cost = extra_cost;
      return std::make_unique<MiniSearch>(ex, ctl, opt);
    }
  }
}

struct WorkloadResult {
  double tput = 0;
  TimeMicros p99 = 0;
};

WorkloadResult RunWorkload(const AppSpec& spec, bool write_heavy, bool overload, bool traced,
                           TimeMicros per_call_cost_us_x100) {
  Executor executor;
  std::unique_ptr<OverloadController> controller;
  AtroposRuntime* runtime = nullptr;
  if (traced) {
    AtroposConfig config;
    config.cancellation_enabled = false;  // §5.5: isolate tracing + decisions
    config.timestamp_mode = overload ? TimestampMode::kPerEvent : TimestampMode::kSampled;
    runtime = new AtroposRuntime(executor.clock(), config);
    controller.reset(runtime);
  } else {
    controller = std::make_unique<NullController>();
  }

  // Tracing calls per request: more under overload (every wait/eviction is
  // bracketed); cost per call measured by part 1 (passed in 1/100 us units).
  int calls = overload ? 24 : 8;
  TimeMicros extra = traced ? (calls * per_call_cost_us_x100) / 100 : 0;

  std::unique_ptr<App> app = BuildApp(spec, executor, controller.get(), extra);
  if (runtime != nullptr) {
    runtime->SetControlSurface(app.get());
  }

  FrontendOptions fopt;
  fopt.duration = Seconds(6);
  fopt.warmup = Seconds(1);
  fopt.retry_cancelled = false;
  Frontend frontend(executor, *app, *controller, fopt);

  TrafficSpec light;
  light.type = write_heavy ? spec.write_type : spec.read_type;
  light.qps = 800;
  light.arg_modulo = 5;
  frontend.AddTraffic(light);
  if (overload) {
    OneShotSpec culprit{spec.culprit_type, Seconds(2), spec.culprit_arg, 1, false};
    frontend.AddOneShot(culprit);
  }

  RunMetrics m = frontend.Run();
  return {m.ThroughputQps(), m.P99()};
}

void RunSimPart() {
  const AppSpec kApps[] = {
      {"minidb(MySQL)", kDbPointSelect, kDbRowUpdate, kDbDumpQuery, 0, 0},
      {"minidb(PostgreSQL)", kDbMvccRead, kDbWalInsert, kDbMvccBulkWrite, 50000, 1},
      {"miniweb(Apache)", kWebStatic, kWebStatic, kWebScript, 4'000'000, 2},
      {"minisearch(ES)", kSearchQuery, kSearchQuery, kSearchAggregation, 0, 3},
      {"minisearch(Solr)", kSearchQuery, kSearchQuery, kSearchBooleanQuery, 4'000'000, 4},
  };
  const char* kWorkloads[] = {"read", "write", "read-overload", "write-overload"};

  // Nominal per-call tracing cost: 0.05 us sampled-mode equivalents (in
  // hundredths of a microsecond). Derived from the part-1 micro costs; see
  // EXPERIMENTS.md.
  const TimeMicros per_call_x100 = 5;

  std::vector<std::string> columns{"app"};
  columns.insert(columns.end(), std::begin(kWorkloads), std::end(kWorkloads));
  TextTable tput(columns);
  TextTable p99(columns);
  for (const AppSpec& spec : kApps) {
    std::vector<std::string> trow{spec.name};
    std::vector<std::string> lrow{spec.name};
    for (int w = 0; w < 4; w++) {
      bool write_heavy = (w % 2) == 1;
      bool overload = w >= 2;
      WorkloadResult off = RunWorkload(spec, write_heavy, overload, false, per_call_x100);
      WorkloadResult on = RunWorkload(spec, write_heavy, overload, true, per_call_x100);
      trow.push_back(TextTable::Num(off.tput == 0 ? 0 : on.tput / off.tput, 4));
      lrow.push_back(TextTable::Num(
          off.p99 == 0 ? 0 : static_cast<double>(on.p99) / static_cast<double>(off.p99), 4));
    }
    tput.AddRow(trow);
    p99.AddRow(lrow);
  }
  std::printf("\n(a) Normalized throughput with Atropos tracing on (vs off)\n%s\n",
              tput.Render().c_str());
  std::printf("(b) Normalized p99 latency with Atropos tracing on (vs off)\n%s\n",
              p99.Render().c_str());
  std::printf(
      "expected shape: ~1.00 under normal read/write workloads (sampled\n"
      "timestamps amortize clock reads); a few percent under overload where\n"
      "per-event timestamps and decision logic run (paper: 0.59%% / 7.09%% avg).\n");
}

}  // namespace
}  // namespace atropos

// Usage: fig14_overhead [--json[=path]] [--skip-sim] [google-benchmark flags]
//   --json      writes BENCH_fig14.json with the part-1 micro ns figures
//   --skip-sim  skips the (slow) part-2 simulation sweep; useful for the
//               perf-trajectory run, which only consumes the micro costs
int main(int argc, char** argv) {
  // Peel our flags before handing the rest to google-benchmark.
  std::string json_path;
  bool skip_sim = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_fig14.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--skip-sim") == 0) {
      skip_sim = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  std::printf("Figure 14: overhead of Atropos\n\n");
  std::printf("Part 1: tracing API micro-costs (real clock, google-benchmark)\n");
  int bench_argc = 2;
  char arg0[] = "fig14_overhead";
  char arg1[] = "--benchmark_min_time=0.05s";
  char* bench_argv[] = {arg0, arg1, nullptr};
  if (argc > 1) {
    benchmark::Initialize(&argc, argv);
  } else {
    benchmark::Initialize(&bench_argc, bench_argv);
  }
  benchmark::RunSpecifiedBenchmarks();

  if (!json_path.empty()) {
    std::printf("\nPart 1b: steady-clock micro costs for the perf trajectory\n");
    const atropos::MicroCosts costs = atropos::MeasureMicroCosts();
    std::printf(
        "  on_get sampled %.1f ns | on_get per-event %.1f ns | wait pair %.1f ns\n"
        "  on_request_end %.1f ns | tick(100 tasks) %.2f us\n",
        costs.on_get_sampled_ns, costs.on_get_per_event_ns, costs.wait_pair_per_event_ns,
        costs.on_request_end_ns, costs.tick_100_tasks_us);
    atropos::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "fig14_overhead");
    json.Field("on_get_sampled_ns", costs.on_get_sampled_ns);
    json.Field("on_get_per_event_ns", costs.on_get_per_event_ns);
    json.Field("wait_pair_per_event_ns", costs.wait_pair_per_event_ns);
    json.Field("on_request_end_ns", costs.on_request_end_ns);
    json.Field("tick_100_tasks_us", costs.tick_100_tasks_us);
    // Headline per-event cost: the sampled-mode OnGet every request pays in
    // normal operation (the ROADMAP ~10ns/event target).
    json.Field("ns_per_event", costs.on_get_sampled_ns);
    json.EndObject();
    if (json.WriteFile(json_path)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    }
  }

  if (skip_sim) {
    std::printf("\nPart 2 skipped (--skip-sim)\n");
    return 0;
  }
  std::printf("\nPart 2: end-to-end overhead in simulation\n");
  atropos::RunSimPart();
  return 0;
}
