// Figure 3 — performance impact of table lock contention.
//
// MiniDb with table locks and an InnoDB ticket limit. Three workloads:
//   Lock Contention — long scan queries (at 1.5 s and 2 s) plus a backup
//                     query (at 2.5 s): the backup queues exclusive locks
//                     behind a scan and convoys every later request;
//   Drop Scan       — backup only (no scans): locks are held briefly;
//   Drop Backup     — scans only (no backup): shared locks coexist.
// Removing either ingredient restores throughput — the paper's point that a
// single problematic interaction collapses end-to-end performance.

#include <cstdio>

#include "src/apps/minidb.h"
#include "src/common/table.h"
#include "src/workload/frontend.h"

namespace atropos {
namespace {

struct Point {
  double tput_kqps = 0;
  TimeMicros p99 = 0;
};

Point RunPoint(double offered_qps, bool with_scans, bool with_backup) {
  Executor executor;
  NullController controller;

  MiniDbOptions opt;
  opt.use_tickets = true;
  opt.use_table_locks = true;
  opt.innodb_tickets = 8;
  opt.point_select_cost = 260;
  opt.row_update_cost = 300;
  opt.scan_rows = 20'000'000;  // scans outlast the run
  opt.backup_work_cost = 20'000;  // the backup itself is brief (the convoy is the harm)
  MiniDb app(executor, &controller, opt);

  FrontendOptions fopt;
  fopt.duration = Seconds(8);
  fopt.warmup = Seconds(1);
  fopt.retry_cancelled = false;
  Frontend frontend(executor, app, controller, fopt);

  TrafficSpec selects;
  selects.type = kDbPointSelect;
  selects.qps = offered_qps * 0.7;
  selects.arg_modulo = 5;
  frontend.AddTraffic(selects);

  TrafficSpec inserts;
  inserts.type = kDbInsert;
  inserts.qps = offered_qps * 0.3;
  inserts.arg_modulo = 5;
  frontend.AddTraffic(inserts);

  if (with_scans) {
    OneShotSpec scan1{kDbTableScan, static_cast<TimeMicros>(Seconds(1.5)), 2, 1, false};
    OneShotSpec scan2{kDbTableScan, Seconds(2), 3, 1, false};
    frontend.AddOneShot(scan1);
    frontend.AddOneShot(scan2);
  }
  if (with_backup) {
    OneShotSpec backup{kDbBackup, static_cast<TimeMicros>(Seconds(2.5)), 0, 1, false};
    frontend.AddOneShot(backup);
  }

  RunMetrics m = frontend.Run();
  return {m.ThroughputQps() / 1000.0, m.P99()};
}

void Run() {
  std::printf("Figure 3: performance impact of table lock contention\n");
  std::printf(
      "(Lock Contention = scans + backup; Drop Scan = backup only;"
      " Drop Backup = scans only)\n\n");

  TextTable tput({"offered kQPS", "lock-contention", "drop-scan", "drop-backup"});
  TextTable p99({"offered kQPS", "lock-contention", "drop-scan", "drop-backup"});
  for (double offered : {5000.0, 10000.0, 15000.0, 20000.0, 25000.0, 30000.0}) {
    Point contention = RunPoint(offered, /*scans=*/true, /*backup=*/true);
    Point no_scan = RunPoint(offered, /*scans=*/false, /*backup=*/true);
    Point no_backup = RunPoint(offered, /*scans=*/true, /*backup=*/false);
    tput.AddRow({TextTable::Num(offered / 1000.0, 0), TextTable::Num(contention.tput_kqps, 2),
                 TextTable::Num(no_scan.tput_kqps, 2), TextTable::Num(no_backup.tput_kqps, 2)});
    p99.AddRow({TextTable::Num(offered / 1000.0, 0), TextTable::Num(ToMillis(contention.p99), 1),
                TextTable::Num(ToMillis(no_scan.p99), 1),
                TextTable::Num(ToMillis(no_backup.p99), 1)});
  }
  std::printf("(a) Throughput (kQPS)\n%s\n", tput.Render().c_str());
  std::printf("(b) p99 latency (ms)\n%s\n", p99.Render().c_str());
  std::printf(
      "expected shape: scans+backup collapse throughput; removing either the\n"
      "scans or the backup restores it to the no-contention curve.\n");
}

}  // namespace
}  // namespace atropos

int main() {
  atropos::Run();
  return 0;
}
