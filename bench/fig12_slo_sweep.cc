// Figure 12 + §5.3 — SLO maintenance under different thresholds.
//
// Part 1 (§5.3): all 16 cases under Atropos with the default 20% SLO; report
// each case's mean latency increase over the non-overloaded baseline and
// whether the SLO was met. The paper meets it in 14/16 cases (c3 reaches 23%
// and c12 26%, limited by the minimum interval between cancellations).
//
// Part 2 (Fig 12): the six plotted cases (c1, c2, c10, c11, c14, c15) swept
// over SLO thresholds {10, 20, 40, 60}% — a stricter SLO makes Atropos cancel
// more tasks to hold the goal.

#include <cstdio>

#include "src/common/table.h"
#include "src/obs/obs.h"
#include "src/workload/cases.h"

namespace atropos {
namespace {

// Mean-latency increase over baseline, as a fraction.
double LatencyIncrease(const CaseResult& run, const CaseResult& base) {
  double b = base.metrics.latency.Mean();
  if (b <= 0) {
    return 0;
  }
  double v = run.metrics.latency.Mean() / b - 1.0;
  return v < 0 ? 0 : v;
}

void Run(const ObsCliArgs& cli) {
  std::printf("Figure 12 / section 5.3: maintaining the SLO under resource overload\n\n");
  if (!cli.trace_path.empty()) {
    WriteFile(cli.trace_path, "");
  }

  // ---- Part 1: all 16 cases at the default 20% SLO.
  TextTable part1({"case", "latency increase", "SLO (20%) met", "cancels"});
  int met = 0;
  for (int c = 1; c <= 16; c++) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    base_opt.duration = Seconds(40);
    CaseResult base = RunCase(c, base_opt);

    // The paper reproduces each case as a single overload event over a long
    // run; a sparse culprit stream (~1-2 events in 40 s) replicates that.
    Observability obs;
    obs.trace_path = cli.trace_path;
    CaseRunOptions opt;
    opt.controller = ControllerKind::kAtropos;
    opt.slo_latency_increase = 0.20;
    opt.duration = Seconds(40);
    opt.culprit_scale = 0.15;
    if (!cli.trace_path.empty()) {
      opt.obs = &obs;
    }
    CaseResult r = RunCase(c, opt);
    if (opt.obs != nullptr) {
      obs.Flush();
    }

    double inc = LatencyIncrease(r, base);
    bool ok = inc <= 0.20;
    met += ok ? 1 : 0;
    part1.AddRow({"c" + std::to_string(c), TextTable::Pct(inc, 1), ok ? "yes" : "NO",
                  std::to_string(r.controller_actions)});
  }
  std::printf("(a) All 16 cases at the 20%% SLO — met in %d/16\n%s\n", met,
              part1.Render().c_str());

  // ---- Part 2: SLO sweep on the six plotted cases.
  const int kCases[] = {1, 2, 10, 11, 14, 15};
  const double kSlos[] = {0.10, 0.20, 0.40, 0.60};
  TextTable part2({"case", "10% SLO", "20% SLO", "40% SLO", "60% SLO",
                   "cancels @10%", "cancels @60%"});
  for (int c : kCases) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    base_opt.duration = Seconds(40);
    CaseResult base = RunCase(c, base_opt);

    std::vector<std::string> row{"c" + std::to_string(c)};
    uint64_t cancels_strict = 0;
    uint64_t cancels_loose = 0;
    for (double slo : kSlos) {
      CaseRunOptions opt;
      opt.controller = ControllerKind::kAtropos;
      opt.slo_latency_increase = slo;
      opt.duration = Seconds(40);
      opt.culprit_scale = 0.15;
      CaseResult r = RunCase(c, opt);
      row.push_back(TextTable::Pct(LatencyIncrease(r, base), 1));
      if (slo == 0.10) {
        cancels_strict = r.controller_actions;
      }
      if (slo == 0.60) {
        cancels_loose = r.controller_actions;
      }
    }
    row.push_back(std::to_string(cancels_strict));
    row.push_back(std::to_string(cancels_loose));
    part2.AddRow(row);
  }
  std::printf("(b) Latency increase under SLO thresholds 10/20/40/60%%\n%s\n",
              part2.Render().c_str());
  std::printf(
      "expected shape: latency increase stays at or below each threshold, and a\n"
      "stricter SLO drives more cancellations.\n\n");

  // ---- Part 3 (§5.3 trade-off): the minimum interval between consecutive
  // cancellations. The two cases with continuous culprit streams (c9, c12 —
  // the paper's SLO misses) need many cancellations; a conservative interval
  // trades recovery speed for cancellation safety.
  const TimeMicros kIntervals[] = {Millis(25), Millis(50), Millis(200), Millis(800)};
  TextTable part3({"case", "25ms", "50ms", "200ms", "800ms", "cancels @25ms",
                   "cancels @800ms"});
  for (int c : {9, 12}) {
    if (cli.case_id > 0 && c != cli.case_id) {
      continue;
    }
    CaseRunOptions base_opt;
    base_opt.inject_culprits = false;
    CaseResult base = RunCase(c, base_opt);
    std::vector<std::string> row{"c" + std::to_string(c)};
    uint64_t strict = 0;
    uint64_t loose = 0;
    for (TimeMicros interval : kIntervals) {
      CaseRunOptions opt;
      opt.controller = ControllerKind::kAtropos;
      opt.min_cancel_interval = interval;
      CaseResult r = RunCase(c, opt);
      row.push_back(TextTable::Pct(LatencyIncrease(r, base), 1));
      if (interval == Millis(25)) {
        strict = r.controller_actions;
      }
      if (interval == Millis(800)) {
        loose = r.controller_actions;
      }
    }
    row.push_back(std::to_string(strict));
    row.push_back(std::to_string(loose));
    part3.AddRow(row);
  }
  std::printf(
      "(c) Latency increase under min-cancel-interval 25/50/200/800 ms\n%s\n"
      "expected shape: with many concurrent culprits, a long interval between\n"
      "cancellations slows recovery — the mechanism behind the paper's two\n"
      "SLO misses (c3 at 23%%, c12 at 26%%).\n",
      part3.Render().c_str());
}

}  // namespace
}  // namespace atropos

int main(int argc, char** argv) {
  atropos::ObsCliArgs cli = atropos::ParseObsCli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    return 1;
  }
  atropos::Run(cli);
  return 0;
}
