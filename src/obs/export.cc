#include "src/obs/export.h"

#include <cstdio>
#include <sstream>

#include "src/common/clock.h"
#include "src/common/table.h"

namespace atropos {

namespace {

// Minimal JSON string escaping: quotes, backslashes, and control bytes.
// Labels are library-generated identifiers, so this covers everything we emit.
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// %g keeps the common integral values ("3", "0.25") short while preserving
// enough precision for scores and contention levels.
void AppendJsonDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string EventToJson(const FlightEvent& ev) {
  std::string out;
  out.reserve(160);
  out += "{\"seq\":";
  out += std::to_string(ev.seq);
  out += ",\"t_us\":";
  out += std::to_string(ev.time);
  out += ",\"kind\":";
  AppendJsonString(out, ObsEventKindName(ev.kind));
  if (ev.key != 0) {
    out += ",\"key\":";
    out += std::to_string(ev.key);
  }
  if (ev.value != 0.0) {
    out += ",\"value\":";
    AppendJsonDouble(out, ev.value);
  }
  if (!ev.label.empty()) {
    out += ",\"label\":";
    AppendJsonString(out, ev.label);
  }
  if (ev.completions != 0 || ev.overdue != 0) {
    out += ",\"completions\":";
    out += std::to_string(ev.completions);
    out += ",\"overdue\":";
    out += std::to_string(ev.overdue);
  }
  if (!ev.resources.empty()) {
    out += ",\"resources\":[";
    bool first = true;
    for (const ObsResourceSample& r : ev.resources) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"id\":";
      out += std::to_string(r.id);
      out += ",\"name\":";
      AppendJsonString(out, r.name);
      out += ",\"cls\":";
      AppendJsonString(out, r.cls);
      out += ",\"c_raw\":";
      AppendJsonDouble(out, r.contention_raw);
      out += ",\"c_norm\":";
      AppendJsonDouble(out, r.contention_norm);
      out += ",\"delay_us\":";
      out += std::to_string(r.delay_us);
      out += ",\"overloaded\":";
      out += r.overloaded ? "true" : "false";
      out.push_back('}');
    }
    out.push_back(']');
  }
  if (!ev.candidates.empty()) {
    out += ",\"candidates\":[";
    bool first = true;
    for (const ObsCandidateSample& c : ev.candidates) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"key\":";
      out += std::to_string(c.key);
      out += ",\"cancellable\":";
      out += c.cancellable ? "true" : "false";
      out += ",\"pareto\":";
      out += c.pareto ? "true" : "false";
      out += ",\"score\":";
      AppendJsonDouble(out, c.score);
      out += ",\"gains\":[";
      for (size_t i = 0; i < c.gains.size(); i++) {
        if (i != 0) out.push_back(',');
        AppendJsonDouble(out, c.gains[i]);
      }
      out += "]}";
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string EventsToJsonl(const std::vector<FlightEvent>& events) {
  std::string out;
  for (const FlightEvent& ev : events) {
    out += EventToJson(ev);
    out.push_back('\n');
  }
  return out;
}

Status WriteJsonl(const std::string& path, const std::vector<FlightEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace file: " + path);
  }
  std::string body = EventsToJsonl(events);
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

std::string SeriesToCsv(const SeriesRecorder& series) {
  std::string out = "time_s";
  for (const std::string& col : series.columns()) {
    out.push_back(',');
    out += col;
  }
  out.push_back('\n');
  char buf[64];
  for (const SeriesRecorder::Row& row : series.rows()) {
    std::snprintf(buf, sizeof(buf), "%.3f", ToSeconds(row.time));
    out += buf;
    for (double v : row.values) {
      std::snprintf(buf, sizeof(buf), ",%.6g", v);
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open file: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    return Status::Internal("short write to file: " + path);
  }
  return Status::Ok();
}

std::string RenderPostMortem(const std::vector<FlightEvent>& events,
                             const MetricsRegistry::Snapshot& metrics) {
  std::ostringstream out;
  out << "=== post-mortem: controller decisions ===\n";
  TextTable decisions({"t_s", "event", "key", "detail"});
  for (const FlightEvent& ev : events) {
    std::string detail;
    switch (ev.kind) {
      case ObsEventKind::kOverloadEntered:
      case ObsEventKind::kOverloadExited:
        detail = ev.label;
        break;
      case ObsEventKind::kContentionSnapshot: {
        for (const ObsResourceSample& r : ev.resources) {
          if (!r.overloaded) continue;
          if (!detail.empty()) detail += ", ";
          detail += r.name + "=" + TextTable::Num(r.contention_norm);
        }
        if (detail.empty()) detail = "no resource over threshold";
        break;
      }
      case ObsEventKind::kPolicyDecision: {
        size_t pareto = 0;
        for (const ObsCandidateSample& c : ev.candidates) pareto += c.pareto ? 1 : 0;
        detail = std::to_string(ev.candidates.size()) + " candidates, " +
                 std::to_string(pareto) + " pareto, winner score " + TextTable::Num(ev.value);
        break;
      }
      case ObsEventKind::kCancelIssued:
      case ObsEventKind::kCancelCompleted:
      case ObsEventKind::kTaskRetried:
      case ObsEventKind::kTaskDropped:
        detail = ev.label;
        break;
      default:
        continue;  // windows and run markers stay in the JSONL trace only
    }
    decisions.AddRow({TextTable::Num(ToSeconds(ev.time), 3),
                      std::string(ObsEventKindName(ev.kind)),
                      ev.key != 0 ? std::to_string(ev.key) : "",
                      detail});
  }
  if (decisions.row_count() == 0) {
    out << "(no controller decisions recorded)\n";
  } else {
    out << decisions.Render();
  }

  if (!metrics.counters.empty() || !metrics.histograms.empty()) {
    out << "\n=== post-mortem: metrics ===\n";
    TextTable table({"metric", "value"});
    for (const auto& [name, value] : metrics.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    for (const auto& [name, value] : metrics.gauges) {
      table.AddRow({name, TextTable::Num(value)});
    }
    for (const auto& [name, view] : metrics.histograms) {
      table.AddRow({name + ".count", std::to_string(view.count)});
      table.AddRow({name + ".p50_us", std::to_string(view.p50)});
      table.AddRow({name + ".p99_us", std::to_string(view.p99)});
      table.AddRow({name + ".max_us", std::to_string(view.max)});
    }
    out << table.Render();
  }
  return out.str();
}

}  // namespace atropos
