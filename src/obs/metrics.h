// Named metrics with O(1) hot-path updates and snapshot-on-demand.
//
// The registry hands out stable pointers: a caller resolves a Counter/Gauge/
// Histogram once (a map lookup + possible allocation) and then updates it
// with a plain increment — no lookup, no lock, no allocation on the hot
// path. Snapshots copy the current values into ordinary maps so exporters
// and tests never hold references into the registry.
//
// SeriesRecorder captures a fixed-column time series (one Sample per tick)
// for the CSV exporter.
//
// Threading: single-threaded by design — instruments are plain fields with
// no atomics or mutexes (so no src/common/thread_annotations.h attributes
// apply), and the registry follows the drainer-thread discipline: the thread
// that Ticks the runtime is the thread that updates and snapshots metrics.
// ConcurrentFrontend publishes its intake gauges from the drainer for
// exactly this reason.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace atropos {

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-create; returned pointers stay valid for the registry's
  // lifetime (instruments are heap-allocated, the maps only hold owners).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  struct HistogramView {
    uint64_t count = 0;
    TimeMicros p50 = 0;
    TimeMicros p99 = 0;
    TimeMicros max = 0;
    double mean = 0.0;
  };

  struct Snapshot {
    // std::map: deterministic iteration for exporters and golden tests.
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramView> histograms;
  };

  Snapshot TakeSnapshot() const;

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

// Fixed-column time series: one row per Sample() call, rendered as CSV by
// the exporter. The first column is always time_s.
class SeriesRecorder {
 public:
  explicit SeriesRecorder(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const { return columns_; }

  // Appends one row; `values` must match columns().size().
  void Sample(TimeMicros t, const std::vector<double>& values);

  struct Row {
    TimeMicros time = 0;
    std::vector<double> values;
  };
  const std::vector<Row>& rows() const { return rows_; }

  void Clear() { rows_.clear(); }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace atropos

#endif  // SRC_OBS_METRICS_H_
