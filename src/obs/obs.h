// Observability bundle: one object that owns the metrics registry, the
// decision flight recorder, and the per-tick series — everything a run
// needs to produce a trace. The workload runner owns one of these and hands
// out non-owning pointers to the layers that emit into it.
//
// Also home of the shared bench CLI: every figure bench accepts
// `--trace=<path>` (JSONL event dump; the metric series lands next to it
// as <path minus extension>.csv) and `--case=N`.

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace atropos {

struct Observability {
  Observability() = default;
  // The fuzzer audits complete event streams, so it sizes the recorder to the
  // run instead of accepting the post-mortem-oriented default capacity.
  explicit Observability(size_t recorder_capacity) : recorder(recorder_capacity) {}

  MetricsRegistry metrics;
  FlightRecorder recorder;
  SeriesRecorder series{{"completed", "cancelled", "dropped", "p99_ms"}};
  std::string trace_path;  // empty => no file export on Flush()

  // Appends the recorder's events to trace_path (JSONL) and rewrites the
  // sibling CSV with the series so far. No-op without a trace path.
  Status Flush();

  // Clears the recorder and series between cases; metrics accumulate.
  void Reset();
};

// Derived CSV path: "out.jsonl" -> "out.csv", "out" -> "out.csv".
std::string SeriesPathFor(const std::string& trace_path);

struct ObsCliArgs {
  std::string trace_path;
  int case_id = -1;  // -1 => bench default (all cases it covers)
  bool ok = true;
  std::string error;
};

// Parses the shared bench flags `--trace=<path>` and `--case=N`; unknown
// arguments set ok=false so benches can print usage and exit.
ObsCliArgs ParseObsCli(int argc, char** argv);

}  // namespace atropos

#endif  // SRC_OBS_OBS_H_
