// Structured decision events for the flight recorder.
//
// Every consequential step of the Atropos control loop — detector windows,
// contention snapshots, policy verdicts, cancellations and their client-side
// aftermath — is captured as one FlightEvent stamped with the virtual clock.
// The schema is deliberately plain (ids, doubles, strings): events are
// control-plane rate (a handful per 100 ms window), so readability of the
// exported JSONL wins over byte-packing.
//
// This header depends only on src/common so that the recorder can be linked
// from any layer (core runtime, workload, benches) without cycles.

#ifndef SRC_OBS_EVENTS_H_
#define SRC_OBS_EVENTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"

namespace atropos {

enum class ObsEventKind {
  kRunStart = 0,           // experiment begins; label = case/app name
  kRunEnd = 1,             // experiment ends; value = p99 (µs), label = verdict
  kWindowClosed = 2,       // detector window rolled; value = window p99 (µs)
  kOverloadEntered = 3,    // detector signal became SuspectedOverload
  kOverloadExited = 4,     // detector signal left SuspectedOverload
  kContentionSnapshot = 5, // per-resource contention levels (resources[])
  kPolicyDecision = 6,     // Pareto set + scalarized scores (candidates[])
  kCancelIssued = 7,       // runtime issued a cancellation; key = victim
  kCancelCompleted = 8,    // app observed the cancel; label = request type
  kTaskRetried = 9,        // §4 re-execution dispatched
  kTaskDropped = 10,       // retry deadline exceeded or victim drop
};

// Canonical lowercase event name, e.g. "cancel_issued".
std::string_view ObsEventKindName(ObsEventKind kind);

// One resource's estimator view at a window boundary.
struct ObsResourceSample {
  uint32_t id = 0;
  std::string name;          // "table_locks", "buffer_pool", ...
  std::string cls;           // "lock" / "memory" / "queue" / "cpu" / "io"
  double contention_raw = 0.0;
  double contention_norm = 0.0;
  uint64_t delay_us = 0;
  bool overloaded = false;
};

// One candidate task's policy view for a decision event.
struct ObsCandidateSample {
  uint64_t key = 0;
  bool cancellable = false;
  bool pareto = false;       // survived the non-dominated filter
  double score = 0.0;        // scalarized (0 for non-Pareto candidates)
  std::vector<double> gains; // normalized, aligned with the decision's objectives
};

struct FlightEvent {
  uint64_t seq = 0;          // assigned by the recorder, monotonically
  TimeMicros time = 0;       // virtual clock
  ObsEventKind kind = ObsEventKind::kWindowClosed;
  uint64_t key = 0;          // task key, when the event concerns one task
  double value = 0.0;        // kind-specific scalar (p99 µs, score, case id)
  std::string label;         // kind-specific text (signal, request type, verdict)
  uint64_t completions = 0;  // window completions (detector events)
  uint64_t overdue = 0;      // overdue in-flight requests (detector events)
  std::vector<ObsResourceSample> resources;   // contention snapshots
  std::vector<ObsCandidateSample> candidates; // policy decisions
};

}  // namespace atropos

#endif  // SRC_OBS_EVENTS_H_
