#include "src/obs/metrics.h"

#include <cassert>

namespace atropos {

namespace {

template <typename Map, typename T = typename Map::mapped_type::element_type>
T* Resolve(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it != map.end()) {
    return it->second.get();
  }
  auto owned = std::make_unique<T>();
  T* raw = owned.get();
  map.emplace(std::string(name), std::move(owned));
  return raw;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) { return Resolve(counters_, name); }

Gauge* MetricsRegistry::GetGauge(std::string_view name) { return Resolve(gauges_, name); }

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return Resolve(histograms_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramView view;
    view.count = hist->count();
    view.p50 = hist->P50();
    view.p99 = hist->P99();
    view.max = hist->max();
    view.mean = hist->Mean();
    snap.histograms[name] = view;
  }
  return snap;
}

SeriesRecorder::SeriesRecorder(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void SeriesRecorder::Sample(TimeMicros t, const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  rows_.push_back(Row{t, values});
}

}  // namespace atropos
