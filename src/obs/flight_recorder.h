// Fixed-capacity ring buffer of FlightEvents — the decision flight recorder.
//
// Record() is O(1) and allocation-free apart from the event payload the
// caller already built; when the ring is full the oldest event is
// overwritten, so a recorder can stay attached to a long-running system and
// always hold the most recent history (the post-mortem that matters).
// A disabled recorder reduces every Record call at the emission site to one
// branch — emitters are expected to guard payload construction with
// `recorder->enabled()` so an idle recorder costs nothing measurable.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/events.h"

namespace atropos {

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Stamps `ev.seq` and appends; overwrites the oldest event when full.
  // No-op while disabled.
  void Record(FlightEvent ev);

  // Events in recording order (oldest first), honouring wraparound.
  std::vector<FlightEvent> Snapshot() const;

  // Visits events in recording order without copying them — the iteration
  // path the invariant oracles audit a full run through.
  void ForEach(const std::function<void(const FlightEvent&)>& fn) const;

  // Sets the label of the most recently recorded event of `kind` if its
  // label is still empty. Lets a layer with more context (e.g. the workload
  // runner, which can map a task key to a request type) enrich an event the
  // runtime just emitted, without threading naming callbacks through the
  // control loop.
  void AnnotateLast(ObsEventKind kind, const std::string& label);

  void Clear();

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t total_recorded() const { return total_; }
  // Events lost to wraparound since the last Clear().
  uint64_t overwritten() const { return total_ - size_; }

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  std::vector<FlightEvent> ring_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t total_ = 0;
  bool enabled_ = true;
};

}  // namespace atropos

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
