#include "src/obs/obs.h"

#include <cstdlib>
#include <cstring>

namespace atropos {

Status Observability::Flush() {
  if (trace_path.empty()) {
    return Status::Ok();
  }
  Status s = WriteJsonl(trace_path, recorder.Snapshot());
  if (!s.ok()) {
    return s;
  }
  if (!series.rows().empty()) {
    s = WriteFile(SeriesPathFor(trace_path), SeriesToCsv(series));
  }
  return s;
}

void Observability::Reset() {
  recorder.Clear();
  series.Clear();
}

std::string SeriesPathFor(const std::string& trace_path) {
  size_t dot = trace_path.rfind('.');
  size_t slash = trace_path.rfind('/');
  std::string stem = (dot != std::string::npos && (slash == std::string::npos || dot > slash))
                         ? trace_path.substr(0, dot)
                         : trace_path;
  return stem + ".csv";
}

ObsCliArgs ParseObsCli(int argc, char** argv) {
  ObsCliArgs args;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      args.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--case=", 7) == 0) {
      char* end = nullptr;
      long v = std::strtol(arg + 7, &end, 10);
      if (end == arg + 7 || *end != '\0') {
        args.ok = false;
        args.error = std::string("invalid --case value: ") + arg;
        return args;
      }
      args.case_id = static_cast<int>(v);
    } else {
      args.ok = false;
      args.error = std::string("unknown argument: ") + arg +
                   " (supported: --trace=<path> --case=N)";
      return args;
    }
  }
  return args;
}

}  // namespace atropos
