// Structured exporters for flight-recorder events and metrics.
//
// Three formats, matching three audiences:
//   - JSONL: one event per line, machine-readable, for trace tooling and the
//     golden tests (`--trace=<path>` on the benches).
//   - CSV: the SeriesRecorder's per-tick metric series, for plotting.
//   - Post-mortem table: a human-readable recap of the decisions the
//     controller made, auto-emitted when a run ends in violation.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/events.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace atropos {

// Single-line JSON object for one event (no trailing newline). Field order
// is fixed so exports are byte-stable across runs with equal inputs.
std::string EventToJson(const FlightEvent& ev);

// All events, one JSON object per line.
std::string EventsToJsonl(const std::vector<FlightEvent>& events);

// Appends `events` as JSONL to `path` (creating it if needed). Append mode
// lets a multi-case bench accumulate every case into one trace file.
Status WriteJsonl(const std::string& path, const std::vector<FlightEvent>& events);

// CSV with header "time_s,<columns...>"; times rendered in seconds.
std::string SeriesToCsv(const SeriesRecorder& series);

Status WriteFile(const std::string& path, const std::string& contents);

// Human-readable recap: one row per consequential event (overload episodes,
// cancellations, retries, drops), plus a metrics footer. Emitted on runs
// that end with SLO violations.
std::string RenderPostMortem(const std::vector<FlightEvent>& events,
                             const MetricsRegistry::Snapshot& metrics);

}  // namespace atropos

#endif  // SRC_OBS_EXPORT_H_
