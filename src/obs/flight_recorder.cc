#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace atropos {

std::string_view ObsEventKindName(ObsEventKind kind) {
  switch (kind) {
    case ObsEventKind::kRunStart:
      return "run_start";
    case ObsEventKind::kRunEnd:
      return "run_end";
    case ObsEventKind::kWindowClosed:
      return "window_closed";
    case ObsEventKind::kOverloadEntered:
      return "overload_entered";
    case ObsEventKind::kOverloadExited:
      return "overload_exited";
    case ObsEventKind::kContentionSnapshot:
      return "contention_snapshot";
    case ObsEventKind::kPolicyDecision:
      return "policy_decision";
    case ObsEventKind::kCancelIssued:
      return "cancel_issued";
    case ObsEventKind::kCancelCompleted:
      return "cancel_completed";
    case ObsEventKind::kTaskRetried:
      return "task_retried";
    case ObsEventKind::kTaskDropped:
      return "task_dropped";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity) : ring_(std::max<size_t>(capacity, 1)) {}

void FlightRecorder::Record(FlightEvent ev) {
  if (!enabled_) {
    return;
  }
  ev.seq = total_++;
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    size_++;
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(size_);
  // Oldest event sits at head_ once the ring has wrapped, else at 0.
  size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; i++) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::ForEach(const std::function<void(const FlightEvent&)>& fn) const {
  size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; i++) {
    fn(ring_[(start + i) % ring_.size()]);
  }
}

void FlightRecorder::AnnotateLast(ObsEventKind kind, const std::string& label) {
  for (size_t i = 0; i < size_; i++) {
    size_t idx = (head_ + ring_.size() - 1 - i) % ring_.size();
    if (ring_[idx].kind == kind) {
      if (ring_[idx].label.empty()) {
        ring_[idx].label = label;
      }
      return;
    }
  }
}

void FlightRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

}  // namespace atropos
