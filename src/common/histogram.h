// Log-linear latency histogram (HdrHistogram-style) plus windowed metrics.
//
// LatencyHistogram records microsecond values into log-linear buckets with
// bounded relative error, supporting cheap percentile queries. It is the
// measurement primitive behind every throughput/p99 series in the benchmark
// harnesses.
//
// EpochLatencyHistogram is the windowed variant used on the runtime hot path
// (DESIGN.md §17): Reset() is an O(1) epoch bump instead of an O(buckets)
// memset, and stale buckets are lazily cleared on the next Record that lands
// in them. Both classes share the exact bucket geometry (hist_detail), so for
// the same recorded values their percentile output is byte-identical.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/clock.h"

namespace atropos {

// Shared bucket geometry: 64 ranges by leading bit, each split into
// kSubBuckets linear sub-buckets => ~1.6% max relative error.
namespace hist_detail {
inline constexpr int kSubBucketBits = 6;
inline constexpr int kSubBuckets = 1 << kSubBucketBits;
inline constexpr size_t kBucketCount = 64 * kSubBuckets;

int BucketIndex(uint64_t value);
uint64_t BucketMidpoint(int index);
}  // namespace hist_detail

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(TimeMicros value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  TimeMicros min() const { return count_ == 0 ? 0 : min_; }
  TimeMicros max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; returns 0 for an empty histogram.
  TimeMicros Percentile(double q) const;

  TimeMicros P50() const { return Percentile(0.50); }
  TimeMicros P99() const { return Percentile(0.99); }
  TimeMicros P999() const { return Percentile(0.999); }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  TimeMicros min_ = 0;
  TimeMicros max_ = 0;
};

// Windowed histogram with O(1) reset. A bucket's count is valid only when its
// epoch stamp matches the current epoch; Reset() bumps the epoch, logically
// zeroing every bucket at once, and Record() re-stamps (and re-zeroes) the one
// bucket it touches. Percentile/Mean treat stale buckets as empty, so the
// observable behaviour matches a LatencyHistogram that was Reset() eagerly —
// the two share hist_detail's bucket math, making percentiles byte-identical.
class EpochLatencyHistogram {
 public:
  EpochLatencyHistogram();

  void Record(TimeMicros value);
  void Reset();  // O(1): epoch bump

  uint64_t count() const { return count_; }
  TimeMicros min() const { return count_ == 0 ? 0 : min_; }
  TimeMicros max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; returns 0 for an empty histogram. Walks
  // buckets in the same order, with the same midpoint math and the same
  // `seen > target` stop rule as LatencyHistogram::Percentile.
  TimeMicros Percentile(double q) const;

  TimeMicros P50() const { return Percentile(0.50); }
  TimeMicros P99() const { return Percentile(0.99); }
  TimeMicros P999() const { return Percentile(0.999); }

 private:
  std::vector<uint64_t> buckets_;
  // 64-bit epochs never wrap in practice, so a stale stamp can never collide
  // with a re-used epoch value.
  std::vector<uint64_t> bucket_epoch_;
  uint64_t epoch_ = 1;  // bucket_epoch_ initializes to 0 == "always stale"
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  TimeMicros min_ = 0;
  TimeMicros max_ = 0;
};

// Tracks completions over fixed windows to produce a throughput series and
// detect "throughput remains flat" (the Breakwater-style overload signal).
class ThroughputMeter {
 public:
  explicit ThroughputMeter(TimeMicros window = Millis(100)) : window_(window) {}

  void RecordCompletion(TimeMicros now) {
    RollTo(now);
    current_count_++;
    total_++;
  }

  // Completions/second over the most recently *closed* window.
  double LastWindowRate(TimeMicros now) {
    RollTo(now);
    return static_cast<double>(last_count_) / ToSeconds(window_);
  }

  uint64_t total() const { return total_; }
  TimeMicros window() const { return window_; }

 private:
  void RollTo(TimeMicros now) {
    TimeMicros idx = now / window_;
    if (idx == current_window_) {
      return;
    }
    last_count_ = (idx == current_window_ + 1) ? current_count_ : 0;
    current_window_ = idx;
    current_count_ = 0;
  }

  TimeMicros window_;
  TimeMicros current_window_ = 0;
  uint64_t current_count_ = 0;
  uint64_t last_count_ = 0;
  uint64_t total_ = 0;
};

// Online mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    n_++;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double Variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace atropos

#endif  // SRC_COMMON_HISTOGRAM_H_
