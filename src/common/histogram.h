// Log-linear latency histogram (HdrHistogram-style) plus windowed metrics.
//
// LatencyHistogram records microsecond values into log-linear buckets with
// bounded relative error, supporting cheap percentile queries. It is the
// measurement primitive behind every throughput/p99 series in the benchmark
// harnesses.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/clock.h"

namespace atropos {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(TimeMicros value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  TimeMicros min() const { return count_ == 0 ? 0 : min_; }
  TimeMicros max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; returns 0 for an empty histogram.
  TimeMicros Percentile(double q) const;

  TimeMicros P50() const { return Percentile(0.50); }
  TimeMicros P99() const { return Percentile(0.99); }
  TimeMicros P999() const { return Percentile(0.999); }

 private:
  // Buckets: 64 ranges by leading bit, each split into kSubBuckets linear
  // sub-buckets => ~1.6% max relative error.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  TimeMicros min_ = 0;
  TimeMicros max_ = 0;
};

// Tracks completions over fixed windows to produce a throughput series and
// detect "throughput remains flat" (the Breakwater-style overload signal).
class ThroughputMeter {
 public:
  explicit ThroughputMeter(TimeMicros window = Millis(100)) : window_(window) {}

  void RecordCompletion(TimeMicros now) {
    RollTo(now);
    current_count_++;
    total_++;
  }

  // Completions/second over the most recently *closed* window.
  double LastWindowRate(TimeMicros now) {
    RollTo(now);
    return static_cast<double>(last_count_) / ToSeconds(window_);
  }

  uint64_t total() const { return total_; }
  TimeMicros window() const { return window_; }

 private:
  void RollTo(TimeMicros now) {
    TimeMicros idx = now / window_;
    if (idx == current_window_) {
      return;
    }
    last_count_ = (idx == current_window_ + 1) ? current_count_ : 0;
    current_window_ = idx;
    current_count_ = 0;
  }

  TimeMicros window_;
  TimeMicros current_window_ = 0;
  uint64_t current_count_ = 0;
  uint64_t last_count_ = 0;
  uint64_t total_ = 0;
};

// Online mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    n_++;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double Variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace atropos

#endif  // SRC_COMMON_HISTOGRAM_H_
