#include "src/common/table.h"

#include <cstdio>

namespace atropos {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); c++) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) {
        out += "  ";
      }
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') {
      out.pop_back();
    }
    out += '\n';
  };

  std::string out;
  append_row(out, header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); c++) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(out, row);
  }
  return out;
}

std::string TextTable::RenderCsv() const {
  std::string out;
  auto append = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) {
        out += ',';
      }
      out += row[c];
    }
    out += '\n';
  };
  append(header_);
  for (const auto& row : rows_) {
    append(row);
  }
  return out;
}

}  // namespace atropos
