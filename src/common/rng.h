// Deterministic pseudo-random number generation for workloads and simulation.
//
// Every experiment seeds its generators explicitly so that runs are exactly
// reproducible. The core generator is splitmix64 feeding xoshiro256**, which
// is fast, high quality, and has a trivially copyable state.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace atropos {

// xoshiro256** seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation; bias is negligible
    // for simulation workloads (bound << 2^64).
    __uint128_t m = static_cast<__uint128_t>(NextUint64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi].
  double NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed with the given mean (inter-arrival times of a
  // Poisson process).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(1.0 - u);
  }

  // Bounded Pareto-ish heavy tail: mean roughly `mean`, occasionally much
  // larger, capped at cap. Used for "heavy" request service times.
  double NextHeavyTail(double mean, double cap) {
    double v = NextExponential(mean);
    if (NextBernoulli(0.05)) {
      v *= 8.0;
    }
    return v < cap ? v : cap;
  }

  // Zipf-distributed rank in [0, n). theta in (0, 1); higher theta = more skew.
  // Uses the classic CDF-inversion approximation of Gray et al.
  uint64_t NextZipf(uint64_t n, double theta) {
    assert(n > 0);
    if (n == 1) {
      return 0;
    }
    // Lazily (re)compute constants when n or theta changes.
    if (zipf_n_ != n || zipf_theta_ != theta) {
      zipf_n_ = n;
      zipf_theta_ = theta;
      zeta2_ = Zeta(2, theta);
      zetan_ = Zeta(n, theta);
      zipf_alpha_ = 1.0 / (1.0 - theta);
      zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                  (1.0 - zeta2_ / zetan_);
    }
    double u = NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta)) {
      return 1;
    }
    auto rank = static_cast<uint64_t>(static_cast<double>(n) *
                                      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
    return rank >= n ? n - 1 : rank;
  }

  // Splits off an independently seeded generator; handy for giving each
  // simulated client its own stream.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  static double Zeta(uint64_t n, double theta) {
    // Exact for small n; sampled + extrapolated for large n to keep setup O(1)-ish.
    double sum = 0.0;
    uint64_t limit = n < 10000 ? n : 10000;
    for (uint64_t i = 1; i <= limit; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > limit) {
      // Integral approximation of the tail.
      double a = 1.0 - theta;
      sum += (std::pow(static_cast<double>(n), a) - std::pow(static_cast<double>(limit), a)) / a;
    }
    return sum;
  }

  uint64_t state_[4];

  // Cached Zipf constants.
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zeta2_ = 0.0;
  double zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace atropos

#endif  // SRC_COMMON_RNG_H_
