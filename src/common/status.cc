#include "src/common/status.h"

namespace atropos {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace atropos
