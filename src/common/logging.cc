#include "src/common/logging.h"

#include <cstdarg>
#include <cstring>

namespace atropos {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void LogLine(LogLevel level, const char* file, int line, const char* fmt, ...) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace atropos
