#include "src/common/histogram.h"

#include <algorithm>
#include <bit>

namespace atropos {

namespace hist_detail {

int BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>(value >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return (shift + 1) * kSubBuckets + sub;
}

uint64_t BucketMidpoint(int index) {
  if (index < kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  int shift = index / kSubBuckets - 1;
  int sub = index % kSubBuckets;
  uint64_t lo = (static_cast<uint64_t>(kSubBuckets + sub)) << shift;
  uint64_t width = 1ull << shift;
  return lo + width / 2;
}

}  // namespace hist_detail

LatencyHistogram::LatencyHistogram() : buckets_(hist_detail::kBucketCount, 0) {}

void LatencyHistogram::Record(TimeMicros value) {
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  count_++;
  sum_ += value;
  int idx = hist_detail::BucketIndex(value);
  if (idx >= static_cast<int>(buckets_.size())) {
    idx = static_cast<int>(buckets_.size()) - 1;
  }
  buckets_[static_cast<size_t>(idx)]++;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

TimeMicros LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) {
    target = count_ - 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen > target) {
      uint64_t mid = hist_detail::BucketMidpoint(static_cast<int>(i));
      return std::clamp<uint64_t>(mid, min_, max_);
    }
  }
  return max_;
}

EpochLatencyHistogram::EpochLatencyHistogram()
    : buckets_(hist_detail::kBucketCount, 0),
      bucket_epoch_(hist_detail::kBucketCount, 0) {}

// atropos-lint: alloc-free
void EpochLatencyHistogram::Record(TimeMicros value) {
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  count_++;
  sum_ += value;
  int idx = hist_detail::BucketIndex(value);
  if (idx >= static_cast<int>(buckets_.size())) {
    idx = static_cast<int>(buckets_.size()) - 1;
  }
  const size_t i = static_cast<size_t>(idx);
  if (bucket_epoch_[i] != epoch_) {
    // First touch since the last Reset: the count is left over from an
    // earlier window; clear it before counting into the new one.
    bucket_epoch_[i] = epoch_;
    buckets_[i] = 0;
  }
  buckets_[i]++;
}

void EpochLatencyHistogram::Reset() {
  epoch_++;
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double EpochLatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

TimeMicros EpochLatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) {
    target = count_ - 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    if (bucket_epoch_[i] != epoch_) {
      continue;  // stale bucket: logically zero this window
    }
    seen += buckets_[i];
    if (seen > target) {
      uint64_t mid = hist_detail::BucketMidpoint(static_cast<int>(i));
      return std::clamp<uint64_t>(mid, min_, max_);
    }
  }
  return max_;
}

}  // namespace atropos
