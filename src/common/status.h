// Lightweight error-propagation types used across the library.
//
// The library does not throw exceptions across module boundaries; fallible
// operations return Status (or StatusOr<T> when they produce a value).

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace atropos {

enum class StatusCode {
  kOk = 0,
  kCancelled = 1,        // The owning task was cancelled while blocked or running.
  kTimeout = 2,          // A bounded wait expired.
  kInvalidArgument = 3,  // Caller passed an out-of-contract value.
  kNotFound = 4,         // Lookup failed.
  kAlreadyExists = 5,    // Insertion conflicted with an existing entry.
  kResourceExhausted = 6,  // A bounded resource (queue, pool) rejected the request.
  kFailedPrecondition = 7,  // Object is in the wrong state for the operation.
  kUnavailable = 8,      // Transient refusal; the caller may retry.
  kInternal = 9,         // Invariant violation inside the library.
};

// Returns the canonical lowercase name of a status code, e.g. "cancelled".
std::string_view StatusCodeName(StatusCode code);

// Value type carrying a StatusCode and an optional human-readable message.
// The common success value is cheap to construct and copy (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string msg = "") { return Status(StatusCode::kCancelled, std::move(msg)); }
  static Status Timeout(std::string msg = "") { return Status(StatusCode::kTimeout, std::move(msg)); }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg = "") { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace atropos

#endif  // SRC_COMMON_STATUS_H_
