// Minimal streaming JSON writer for the machine-readable bench outputs
// (BENCH_*.json). Deliberately tiny: objects, arrays, scalars, correct string
// escaping, two-space indentation — no DOM, no dependencies.

#ifndef SRC_COMMON_JSON_WRITER_H_
#define SRC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace atropos {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    const bool had_items = stack_.back();
    stack_.pop_back();
    if (had_items) {
      Newline();
    }
    out_ << '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    const bool had_items = stack_.back();
    stack_.pop_back();
    if (had_items) {
      Newline();
    }
    out_ << ']';
    return *this;
  }

  // Starts a named member inside an object; follow with a value call (or
  // BeginObject/BeginArray).
  JsonWriter& Key(std::string_view key) {
    Prefix();
    Escaped(key);
    out_ << ": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view v) {
    Prefix();
    Escaped(v);
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Double(double v) {
    Prefix();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ << buf;
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }

  // Convenience single-call members.
  JsonWriter& Field(std::string_view key, std::string_view v) { return Key(key).String(v); }
  JsonWriter& Field(std::string_view key, const char* v) {
    return Key(key).String(std::string_view(v));
  }
  JsonWriter& Field(std::string_view key, double v) { return Key(key).Double(v); }
  JsonWriter& Field(std::string_view key, bool v) { return Key(key).Bool(v); }
  JsonWriter& Field(std::string_view key, int v) { return Key(key).Int(v); }
  JsonWriter& Field(std::string_view key, int64_t v) { return Key(key).Int(v); }
  JsonWriter& Field(std::string_view key, uint64_t v) { return Key(key).Uint(v); }

  std::string str() const { return out_.str(); }

  // Writes the document (plus trailing newline) to `path`; returns success.
  bool WriteFile(const std::string& path) const {
    std::ofstream file(path, std::ios::out | std::ios::trunc);
    if (!file) {
      return false;
    }
    file << out_.str() << "\n";
    return static_cast<bool>(file);
  }

 private:
  // Emits the comma/indent (or nothing, for the value after a Key) that must
  // precede the next token, and marks the enclosing container non-empty.
  void Prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) {
        out_ << ',';
      }
      stack_.back() = true;
      Newline();
    }
  }

  void Newline() {
    out_ << '\n';
    for (size_t i = 0; i < stack_.size(); i++) {
      out_ << "  ";
    }
  }

  void Escaped(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  // One entry per open container; true once it has at least one member.
  std::vector<bool> stack_;
  bool pending_value_ = false;
};

}  // namespace atropos

#endif  // SRC_COMMON_JSON_WRITER_H_
