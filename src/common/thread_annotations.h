// Thread-safety annotation macros.
//
// Under Clang these expand to the thread-safety-analysis attributes, so
// building with `-Wthread-safety -Werror=thread-safety` (scripts/check.sh
// does this when clang is available; see also ATROPOS_WERROR in the top-level
// CMakeLists.txt) turns lock-discipline violations into compile errors.
// Under GCC and MSVC they expand to nothing and serve as checked
// documentation: which mutex guards which field, which functions must (or
// must not) be called with a lock held.
//
// Most of the runtime is deliberately single-threaded (the drainer-thread
// discipline: one thread owns the ledger, dispatcher, and decision pipeline);
// only the instrumentation intake has real mutexes. Classes designed for
// single-thread use carry no annotations — the contract is documented at the
// class level instead.

#ifndef ATROPOS_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define ATROPOS_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ATROPOS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ATROPOS_THREAD_ANNOTATION(x)
#endif

// Capability declarations: mark a type (e.g. a Mutex wrapper) as a
// capability, or a RAII guard as a scoped capability.
#define ATROPOS_CAPABILITY(x) ATROPOS_THREAD_ANNOTATION(capability(x))
#define ATROPOS_SCOPED_CAPABILITY ATROPOS_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads/writes require holding the named mutex (or, for
// pointers, the pointed-to data does).
#define ATROPOS_GUARDED_BY(x) ATROPOS_THREAD_ANNOTATION(guarded_by(x))
#define ATROPOS_PT_GUARDED_BY(x) ATROPOS_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold / must not hold the named mutexes.
#define ATROPOS_REQUIRES(...) \
  ATROPOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ATROPOS_REQUIRES_SHARED(...) \
  ATROPOS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ATROPOS_EXCLUDES(...) \
  ATROPOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire/release the named mutexes themselves.
#define ATROPOS_ACQUIRE(...) \
  ATROPOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ATROPOS_RELEASE(...) \
  ATROPOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Try-lock: first argument is the value returned on successful acquisition.
#define ATROPOS_TRY_ACQUIRE(...) \
  ATROPOS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Escape hatch for code the analysis cannot model (init/teardown paths).
#define ATROPOS_NO_THREAD_SAFETY_ANALYSIS \
  ATROPOS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ATROPOS_SRC_COMMON_THREAD_ANNOTATIONS_H_
