// Minimal leveled logging. Off by default so deterministic benchmark output
// stays clean; tests and debugging sessions can raise the level.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <utility>

namespace atropos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogLine(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace internal

#define ATROPOS_LOG(level, ...)                                                  \
  do {                                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::atropos::GetLogLevel())) { \
      ::atropos::internal::LogLine(level, __FILE__, __LINE__, __VA_ARGS__);      \
    }                                                                            \
  } while (0)

#define LOG_DEBUG(...) ATROPOS_LOG(::atropos::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) ATROPOS_LOG(::atropos::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARNING(...) ATROPOS_LOG(::atropos::LogLevel::kWarning, __VA_ARGS__)
#define LOG_ERROR(...) ATROPOS_LOG(::atropos::LogLevel::kError, __VA_ARGS__)

}  // namespace atropos

#endif  // SRC_COMMON_LOGGING_H_
