// Time sources.
//
// Everything in this library reads time through the Clock interface so that the
// same Atropos runtime code runs against wall-clock time in a real deployment
// and against the deterministic virtual clock of the discrete-event simulator.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace atropos {

// Simulated / real time in microseconds since an arbitrary epoch.
using TimeMicros = uint64_t;

inline constexpr TimeMicros kMicrosPerMilli = 1000;
inline constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

constexpr TimeMicros Millis(uint64_t ms) { return ms * kMicrosPerMilli; }
constexpr TimeMicros Seconds(double s) {
  return static_cast<TimeMicros>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr double ToSeconds(TimeMicros t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}
constexpr double ToMillis(TimeMicros t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerMilli);
}

// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros NowMicros() const = 0;
};

// Clock backed by std::chrono::steady_clock, for real deployments and for
// measuring the real cost of the tracing APIs in the overhead benchmarks.
class SteadyClock final : public Clock {
 public:
  TimeMicros NowMicros() const override {
    auto d = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<TimeMicros>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }
};

// Manually advanced clock; the simulator event loop owns one and moves it
// forward as events fire. Also convenient in unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros NowMicros() const override { return now_; }

  void Advance(TimeMicros delta) { now_ += delta; }
  void SetTime(TimeMicros t) { now_ = t; }

 private:
  TimeMicros now_;
};

}  // namespace atropos

#endif  // SRC_COMMON_CLOCK_H_
