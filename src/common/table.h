// Aligned-text and CSV table rendering for the benchmark harnesses.
//
// Every figure/table bench builds one of these and prints it, so that the
// output matches the rows/series the paper reports and is trivially diffable.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace atropos {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; shorter rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 2);  // 0.034 -> "3.40%"

  // Monospace-aligned rendering with a separator under the header.
  std::string Render() const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string RenderCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atropos

#endif  // SRC_COMMON_TABLE_H_
