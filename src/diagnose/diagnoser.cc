#include "src/diagnose/diagnoser.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace atropos {

namespace {

// Median of a (copied) sample; 0 for an empty one. Deterministic for the
// caller: the sample order does not matter.
TimeMicros Median(std::vector<TimeMicros> sample) {
  if (sample.empty()) {
    return 0;
  }
  std::sort(sample.begin(), sample.end());
  return sample[sample.size() / 2];
}

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
  *out += '\n';
}

}  // namespace

Diagnosis DiagnoseTrace(const std::vector<FlightEvent>& events,
                        const DiagnoserOptions& options) {
  Diagnosis d;

  // ---- Pass 1: window p99 series. The baseline comes from windows the
  // detector spent calibrating; if the trace predates that labeling (or was
  // truncated), the first few windows stand in. Using the median keeps one
  // noisy calibration window from skewing the threshold.
  std::vector<TimeMicros> calibration_sample;
  std::vector<TimeMicros> leading_sample;
  for (const FlightEvent& ev : events) {
    if (ev.kind != ObsEventKind::kWindowClosed) {
      continue;
    }
    d.windows++;
    TimeMicros p99 = static_cast<TimeMicros>(ev.value);
    d.peak_p99 = std::max(d.peak_p99, p99);
    if (ev.label == "calibrating" && p99 > 0) {
      calibration_sample.push_back(p99);
    }
    if (leading_sample.size() < static_cast<size_t>(std::max(options.calibration_windows, 1)) &&
        p99 > 0) {
      leading_sample.push_back(p99);
    }
  }
  d.baseline_p99 =
      Median(calibration_sample.empty() ? leading_sample : calibration_sample);

  // ---- Pass 2: degraded windows against the reconstructed baseline, and
  // per-resource delay integration from the raw snapshot evidence. The
  // estimator's `overloaded` bit is deliberately ignored here — attribution
  // must stand on wait/hold data alone so the agreement oracle compares two
  // independently derived verdicts.
  std::map<uint32_t, ResourceDossier> dossiers;
  std::map<uint64_t, CulpritVerdict> culprits;
  for (const FlightEvent& ev : events) {
    switch (ev.kind) {
      case ObsEventKind::kWindowClosed: {
        TimeMicros p99 = static_cast<TimeMicros>(ev.value);
        if (d.baseline_p99 > 0 &&
            static_cast<double>(p99) >
                options.degraded_factor * static_cast<double>(d.baseline_p99)) {
          d.degraded_windows++;
        }
        break;
      }
      case ObsEventKind::kContentionSnapshot: {
        d.snapshots++;
        for (const ObsResourceSample& r : ev.resources) {
          ResourceDossier& doss = dossiers[r.id];
          if (doss.snapshots == 0) {
            doss.id = r.id;
            doss.name = r.name;
            doss.cls = r.cls;
            doss.first_at = ev.time;
          }
          doss.snapshots++;
          doss.last_at = ev.time;
          doss.total_delay_us += r.delay_us;
          doss.peak_delay_us = std::max(doss.peak_delay_us, r.delay_us);
          doss.peak_contention_raw = std::max(doss.peak_contention_raw, r.contention_raw);
          // Accumulate the raw sum here; divided out into the mean below.
          doss.mean_contention_raw += r.contention_raw;
        }
        break;
      }
      case ObsEventKind::kPolicyDecision: {
        for (const ObsCandidateSample& c : ev.candidates) {
          CulpritVerdict& v = culprits[c.key];
          v.key = c.key;
          v.decisions++;
          if (c.pareto) {
            v.pareto++;
          }
          v.score += c.score;
        }
        break;
      }
      case ObsEventKind::kCancelIssued: {
        d.cancels++;
        CulpritVerdict& v = culprits[ev.key];
        v.key = ev.key;
        v.cancels++;
        break;
      }
      default:
        break;
    }
  }

  // ---- Attribution: integrate delay per class; the class carrying the
  // largest share of total stalled time is the bottleneck, and the single
  // worst resource within it is named. Deterministic tie-breaks: class name,
  // then resource id, ascending.
  uint64_t total_delay = 0;
  std::map<std::string, uint64_t> class_delay;
  for (const auto& [id, doss] : dossiers) {
    total_delay += doss.total_delay_us;
    class_delay[doss.cls] += doss.total_delay_us;
  }
  for (auto& [id, doss] : dossiers) {
    doss.delay_share = total_delay > 0
                           ? static_cast<double>(doss.total_delay_us) /
                                 static_cast<double>(total_delay)
                           : 0.0;
    if (doss.snapshots > 0) {
      doss.mean_contention_raw /= static_cast<double>(doss.snapshots);
    }
    d.resources.push_back(doss);
  }
  std::sort(d.resources.begin(), d.resources.end(),
            [](const ResourceDossier& a, const ResourceDossier& b) {
              if (a.total_delay_us != b.total_delay_us) {
                return a.total_delay_us > b.total_delay_us;
              }
              return a.id < b.id;
            });
  // Root-cause pass first: the worst severely-contended execution-stage
  // resource, if any, outranks admission-queue backpressure (the queue backs
  // up *because* the stage behind it stalled; its integrated wait is the
  // symptom's size, not the cause's). The resources are already sorted by
  // integrated delay, so the first qualifying dossier is the worst one.
  for (const ResourceDossier& doss : d.resources) {
    if (doss.cls == "queue") {
      continue;
    }
    double floor = doss.cls == "memory" ? options.memory_raw_floor : options.exec_raw_floor;
    if (doss.mean_contention_raw >= floor && doss.delay_share >= options.exec_min_share) {
      d.blamed_class = doss.cls;
      d.blamed_resource = doss.name;
      break;
    }
  }
  // Otherwise the class carrying the most integrated delay is the verdict.
  if (d.blamed_class.empty()) {
    for (const auto& [cls, delay] : class_delay) {
      // std::map iterates classes in name order, so strictly-greater keeps
      // the lexicographically first class on ties.
      if (d.blamed_class.empty() || delay > class_delay[d.blamed_class]) {
        d.blamed_class = cls;
      }
    }
    for (const ResourceDossier& doss : d.resources) {
      if (doss.cls == d.blamed_class) {
        d.blamed_resource = doss.name;
        break;
      }
    }
  }
  if (!d.blamed_class.empty() && total_delay > 0) {
    d.blame_share = static_cast<double>(class_delay[d.blamed_class]) /
                    static_cast<double>(total_delay);
  }

  d.overload_observed = d.snapshots > 0 || d.degraded_windows > 0;
  if (total_delay == 0) {
    // Snapshots without any integrated delay carry no attributable evidence.
    d.blamed_class.clear();
    d.blamed_resource.clear();
    d.blame_share = 0.0;
  }

  // ---- Culprit ranking: cancels are the strongest signal (the runtime
  // acted on them), then Pareto survivals, then accumulated score; key
  // ascending as the final tie-break.
  std::vector<CulpritVerdict> ranked;
  ranked.reserve(culprits.size());
  for (const auto& [key, v] : culprits) {
    ranked.push_back(v);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const CulpritVerdict& a, const CulpritVerdict& b) {
              if (a.cancels != b.cancels) {
                return a.cancels > b.cancels;
              }
              if (a.pareto != b.pareto) {
                return a.pareto > b.pareto;
              }
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.key < b.key;
            });
  if (ranked.size() > options.max_culprits) {
    ranked.resize(options.max_culprits);
  }
  d.culprits = std::move(ranked);

  return d;
}

std::string EstimatorBlamedClass(const std::vector<FlightEvent>& events) {
  // Count `overloaded` flags per class across all snapshots — the recorded
  // online verdicts — and return the most frequent class. std::map's name
  // ordering plus strictly-greater gives the deterministic tie-break.
  std::map<std::string, uint64_t> flagged;
  for (const FlightEvent& ev : events) {
    if (ev.kind != ObsEventKind::kContentionSnapshot) {
      continue;
    }
    for (const ObsResourceSample& r : ev.resources) {
      if (r.overloaded) {
        flagged[r.cls]++;
      }
    }
  }
  std::string best;
  uint64_t best_count = 0;
  for (const auto& [cls, count] : flagged) {
    if (count > best_count) {
      best = cls;
      best_count = count;
    }
  }
  return best;
}

std::string Diagnosis::Render() const {
  std::string out;
  AppendLine(&out, "windows: %llu (%llu degraded)  baseline p99 %llu us, peak %llu us",
             (unsigned long long)windows, (unsigned long long)degraded_windows,
             (unsigned long long)baseline_p99, (unsigned long long)peak_p99);
  AppendLine(&out, "evidence: %llu contention snapshot(s), %llu cancel(s)",
             (unsigned long long)snapshots, (unsigned long long)cancels);
  if (!overload_observed) {
    AppendLine(&out, "verdict: no overload observed");
    return out;
  }
  if (blamed_class.empty()) {
    AppendLine(&out, "verdict: degraded windows but no attributable resource delay");
    return out;
  }
  AppendLine(&out, "verdict: bottleneck class %s (%.0f%% of integrated delay), worst resource %s",
             blamed_class.c_str(), blame_share * 100.0, blamed_resource.c_str());
  for (const ResourceDossier& r : resources) {
    AppendLine(&out,
               "  resource %s [%s] id=%u: delay %llu us over %llu snapshot(s), "
               "peak %llu us, share %.0f%%",
               r.name.c_str(), r.cls.c_str(), r.id, (unsigned long long)r.total_delay_us,
               (unsigned long long)r.snapshots, (unsigned long long)r.peak_delay_us,
               r.delay_share * 100.0);
  }
  for (const CulpritVerdict& c : culprits) {
    AppendLine(&out,
               "  culprit key=%llu: %llu cancel(s), pareto %llu/%llu decision(s), score %.3f",
               (unsigned long long)c.key, (unsigned long long)c.cancels,
               (unsigned long long)c.pareto, (unsigned long long)c.decisions, c.score);
  }
  return out;
}

}  // namespace atropos
