#include "src/diagnose/trace_io.h"

#include <cstdio>
#include <cstdlib>

namespace atropos {

namespace {

// Minimal recursive-descent parser over one line's JSON object. Scoped to
// the exporter's output shape: objects of scalars plus arrays of flat
// objects / numbers. No allocation beyond the strings handed to the event.
class LineParser {
 public:
  LineParser(std::string_view text, size_t line) : text_(text), line_(line) {}

  Status Parse(FlightEvent* out) {
    SkipSpace();
    Status st = ParseEventObject(out);
    if (!st.ok()) {
      return st;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after event object");
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("line " + std::to_string(line_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // The exporter only emits \u00xx for control bytes.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  // Unsigned integers (task keys, timestamps, counters) are parsed without a
  // double round-trip: a 64-bit key above 2^53 must survive exactly.
  Status ParseU64(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      pos_++;
    }
    if (pos_ == start) {
      return Error("expected unsigned integer");
    }
    std::string token(text_.substr(start, pos_ - start));
    *out = std::strtoull(token.c_str(), nullptr, 10);
    return Status::Ok();
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E') {
        pos_++;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Error("expected number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number: " + token);
    }
    return Status::Ok();
  }

  Status ParseBool(bool* out) {
    SkipSpace();
    if (text_.substr(pos_).rfind("true", 0) == 0) {
      pos_ += 4;
      *out = true;
      return Status::Ok();
    }
    if (text_.substr(pos_).rfind("false", 0) == 0) {
      pos_ += 5;
      *out = false;
      return Status::Ok();
    }
    return Error("expected true/false");
  }

  // Skips one value of any supported shape (unknown-key tolerance).
  Status SkipValue() {
    char c = Peek();
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == 't' || c == 'f') {
      bool ignored;
      return ParseBool(&ignored);
    }
    if (c == '[') {
      Consume('[');
      if (Consume(']')) {
        return Status::Ok();
      }
      do {
        Status st = SkipValue();
        if (!st.ok()) {
          return st;
        }
      } while (Consume(','));
      return Consume(']') ? Status::Ok() : Error("expected ]");
    }
    if (c == '{') {
      Consume('{');
      if (Consume('}')) {
        return Status::Ok();
      }
      do {
        std::string key;
        Status st = ParseString(&key);
        if (!st.ok()) {
          return st;
        }
        if (!Consume(':')) {
          return Error("expected :");
        }
        st = SkipValue();
        if (!st.ok()) {
          return st;
        }
      } while (Consume(','));
      return Consume('}') ? Status::Ok() : Error("expected }");
    }
    double ignored;
    return ParseNumber(&ignored);
  }

  Status ParseResource(ObsResourceSample* out) {
    if (!Consume('{')) {
      return Error("expected resource object");
    }
    if (Consume('}')) {
      return Status::Ok();
    }
    do {
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) {
        return st;
      }
      if (!Consume(':')) {
        return Error("expected :");
      }
      if (key == "id") {
        uint64_t num = 0;
        st = ParseU64(&num);
        out->id = static_cast<uint32_t>(num);
      } else if (key == "name") {
        st = ParseString(&out->name);
      } else if (key == "cls") {
        st = ParseString(&out->cls);
      } else if (key == "c_raw") {
        st = ParseNumber(&out->contention_raw);
      } else if (key == "c_norm") {
        st = ParseNumber(&out->contention_norm);
      } else if (key == "delay_us") {
        st = ParseU64(&out->delay_us);
      } else if (key == "overloaded") {
        st = ParseBool(&out->overloaded);
      } else {
        st = SkipValue();
      }
      if (!st.ok()) {
        return st;
      }
    } while (Consume(','));
    return Consume('}') ? Status::Ok() : Error("expected } after resource");
  }

  Status ParseCandidate(ObsCandidateSample* out) {
    if (!Consume('{')) {
      return Error("expected candidate object");
    }
    if (Consume('}')) {
      return Status::Ok();
    }
    do {
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) {
        return st;
      }
      if (!Consume(':')) {
        return Error("expected :");
      }
      if (key == "key") {
        st = ParseU64(&out->key);
      } else if (key == "cancellable") {
        st = ParseBool(&out->cancellable);
      } else if (key == "pareto") {
        st = ParseBool(&out->pareto);
      } else if (key == "score") {
        st = ParseNumber(&out->score);
      } else if (key == "gains") {
        if (!Consume('[')) {
          return Error("expected gains array");
        }
        if (!Consume(']')) {
          do {
            double g = 0.0;
            st = ParseNumber(&g);
            if (!st.ok()) {
              return st;
            }
            out->gains.push_back(g);
          } while (Consume(','));
          if (!Consume(']')) {
            return Error("expected ] after gains");
          }
        }
        st = Status::Ok();
      } else {
        st = SkipValue();
      }
      if (!st.ok()) {
        return st;
      }
    } while (Consume(','));
    return Consume('}') ? Status::Ok() : Error("expected } after candidate");
  }

  Status ParseEventObject(FlightEvent* out) {
    if (!Consume('{')) {
      return Error("expected event object");
    }
    if (Consume('}')) {
      return Error("empty event object");
    }
    bool have_kind = false;
    do {
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) {
        return st;
      }
      if (!Consume(':')) {
        return Error("expected :");
      }
      if (key == "seq") {
        st = ParseU64(&out->seq);
      } else if (key == "t_us") {
        uint64_t num = 0;
        st = ParseU64(&num);
        out->time = static_cast<TimeMicros>(num);
      } else if (key == "kind") {
        std::string name;
        st = ParseString(&name);
        if (st.ok() && !ParseObsEventKind(name, &out->kind)) {
          return Error("unknown event kind: " + name);
        }
        have_kind = st.ok();
      } else if (key == "key") {
        st = ParseU64(&out->key);
      } else if (key == "value") {
        st = ParseNumber(&out->value);
      } else if (key == "label") {
        st = ParseString(&out->label);
      } else if (key == "completions") {
        st = ParseU64(&out->completions);
      } else if (key == "overdue") {
        st = ParseU64(&out->overdue);
      } else if (key == "resources") {
        if (!Consume('[')) {
          return Error("expected resources array");
        }
        if (!Consume(']')) {
          do {
            ObsResourceSample sample;
            st = ParseResource(&sample);
            if (!st.ok()) {
              return st;
            }
            out->resources.push_back(std::move(sample));
          } while (Consume(','));
          if (!Consume(']')) {
            return Error("expected ] after resources");
          }
        }
        st = Status::Ok();
      } else if (key == "candidates") {
        if (!Consume('[')) {
          return Error("expected candidates array");
        }
        if (!Consume(']')) {
          do {
            ObsCandidateSample sample;
            st = ParseCandidate(&sample);
            if (!st.ok()) {
              return st;
            }
            out->candidates.push_back(std::move(sample));
          } while (Consume(','));
          if (!Consume(']')) {
            return Error("expected ] after candidates");
          }
        }
        st = Status::Ok();
      } else {
        st = SkipValue();
      }
      if (!st.ok()) {
        return st;
      }
    } while (Consume(','));
    if (!Consume('}')) {
      return Error("expected } after event");
    }
    if (!have_kind) {
      return Error("event missing \"kind\"");
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t line_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseObsEventKind(std::string_view name, ObsEventKind* out) {
  for (int i = 0; i <= static_cast<int>(ObsEventKind::kTaskDropped); i++) {
    ObsEventKind kind = static_cast<ObsEventKind>(i);
    if (ObsEventKindName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

StatusOr<std::vector<FlightEvent>> ParseEventsJsonl(std::string_view text) {
  std::vector<FlightEvent> events;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    line_no++;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t') {
        blank = false;
        break;
      }
    }
    if (!blank) {
      FlightEvent ev;
      Status st = LineParser(line, line_no).Parse(&ev);
      if (!st.ok()) {
        return st;
      }
      events.push_back(std::move(ev));
    }
    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 1;
  }
  return events;
}

StatusOr<std::vector<FlightEvent>> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::string body;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return ParseEventsJsonl(body);
}

}  // namespace atropos
