// Flight-recorder trace ingestion for offline analysis.
//
// The exporters (src/obs/export.h) write one JSON object per line with a
// fixed field vocabulary; this is the inverse: parse a JSONL trace — from a
// bench `--trace=` dump, a live run, or a checked-in fixture — back into
// FlightEvents so the bottleneck diagnoser can replay decision history
// without the process that produced it.
//
// The parser accepts exactly the shape EventToJson emits (flat objects,
// string/number/bool scalars, one level of object arrays for resources and
// candidates) and tolerates unknown keys by skipping their value, so traces
// from newer writers still load.

#ifndef SRC_DIAGNOSE_TRACE_IO_H_
#define SRC_DIAGNOSE_TRACE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/events.h"

namespace atropos {

// Parses one JSONL document (possibly with blank lines). Errors name the
// 1-based line and what was expected.
StatusOr<std::vector<FlightEvent>> ParseEventsJsonl(std::string_view text);

// Reads and parses a trace file.
StatusOr<std::vector<FlightEvent>> ReadTraceFile(const std::string& path);

// Parses the canonical event-kind name ("cancel_issued", ...); false on
// unknown names.
bool ParseObsEventKind(std::string_view name, ObsEventKind* out);

}  // namespace atropos

#endif  // SRC_DIAGNOSE_TRACE_IO_H_
