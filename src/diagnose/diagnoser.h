// Offline bottleneck diagnoser over flight-recorder traces.
//
// Replays a recorded decision history (src/obs FlightEvents) and answers,
// after the fact, the question the estimator answers online: which resource
// was the bottleneck, and which tasks were the culprits? The diagnoser works
// from the *raw* evidence in the trace — window p99 series and per-resource
// wait/hold delay samples — and calibrates its own healthy baseline, so its
// verdict is an independent reconstruction rather than a readback of the
// estimator's `overloaded` flags. That independence is what makes it usable
// as a test oracle: the corpus replay cross-checks the diagnoser's blamed
// resource class against the estimator's online verdict and flags
// disagreements.
//
// Everything here is pure and deterministic: no clocks, no randomness, no
// I/O (trace parsing lives in trace_io.h). Ties are broken by name/id so the
// same trace always yields the same diagnosis.

#ifndef SRC_DIAGNOSE_DIAGNOSER_H_
#define SRC_DIAGNOSE_DIAGNOSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/events.h"

namespace atropos {

struct DiagnoserOptions {
  // A window is "degraded" when its p99 exceeds this multiple of the
  // calibrated baseline p99.
  double degraded_factor = 1.5;
  // Baseline fallback: when the trace has no "calibrating"-labeled windows,
  // the first this-many windows stand in as the calibration sample.
  int calibration_windows = 10;
  // Cap on the ranked culprit list in the diagnosis.
  size_t max_culprits = 8;

  // Root-cause demotion of admission backpressure: a worker queue only backs
  // up because the stage behind it stalled, so when an execution-stage
  // resource (lock/memory/cpu/io) is itself severely contended, it outranks
  // the queue's (usually much larger) integrated wait. "Severe" means mean
  // raw contention at or above the class floor — wait >= hold on average for
  // wait-ratio classes, a quarter of gets missing for the eviction-ratio
  // memory class — with a non-trivial share of the integrated delay.
  double exec_raw_floor = 1.0;
  double memory_raw_floor = 0.25;
  double exec_min_share = 0.01;
};

// Aggregated wait/hold evidence for one resource across the trace.
struct ResourceDossier {
  uint32_t id = 0;
  std::string name;
  std::string cls;               // "lock" / "memory" / "queue" / "cpu" / "io"
  uint64_t snapshots = 0;        // snapshots in which this resource appeared
  uint64_t total_delay_us = 0;   // integrated raw delay across snapshots
  uint64_t peak_delay_us = 0;    // largest single-snapshot delay
  double peak_contention_raw = 0.0;
  double mean_contention_raw = 0.0;  // averaged over the snapshots it appeared in
  double delay_share = 0.0;      // total_delay_us / sum over all resources
  TimeMicros first_at = 0;       // first snapshot time it appeared in
  TimeMicros last_at = 0;        // last snapshot time it appeared in
};

// One task's accumulated culpability evidence.
struct CulpritVerdict {
  uint64_t key = 0;
  uint64_t decisions = 0;  // policy decisions it appeared in as a candidate
  uint64_t pareto = 0;     // ... of which it survived the Pareto filter
  uint64_t cancels = 0;    // cancel_issued events naming it
  double score = 0.0;      // summed scalarized policy scores
};

struct Diagnosis {
  // Window-level health.
  uint64_t windows = 0;
  uint64_t degraded_windows = 0;
  TimeMicros baseline_p99 = 0;  // calibrated healthy p99
  TimeMicros peak_p99 = 0;

  // Evidence volume.
  uint64_t snapshots = 0;  // contention snapshots in the trace
  uint64_t cancels = 0;    // cancel_issued events

  // The verdict. `overload_observed` is false when the trace contains no
  // degraded windows and no contention evidence; the blame fields are then
  // empty.
  bool overload_observed = false;
  std::string blamed_class;     // dominant bottleneck resource class
  std::string blamed_resource;  // the single worst resource by delay
  double blame_share = 0.0;     // blamed class's share of integrated delay

  std::vector<ResourceDossier> resources;  // sorted by total delay, desc
  std::vector<CulpritVerdict> culprits;    // ranked, capped at max_culprits

  // Multi-line human-readable report for CLI output.
  std::string Render() const;
};

// Reconstructs the bottleneck attribution from raw trace evidence.
Diagnosis DiagnoseTrace(const std::vector<FlightEvent>& events,
                        const DiagnoserOptions& options = {});

// The *estimator's* verdict as recorded in the trace: the resource class
// most often flagged `overloaded` in contention snapshots (ties broken by
// class name). Empty when the trace never flagged any resource. This is the
// other side of the diagnoser-vs-estimator agreement oracle.
std::string EstimatorBlamedClass(const std::vector<FlightEvent>& events);

}  // namespace atropos

#endif  // SRC_DIAGNOSE_DIAGNOSER_H_
