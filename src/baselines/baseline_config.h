// Shared configuration for the reimplemented baseline controllers.

#ifndef SRC_BASELINES_BASELINE_CONFIG_H_
#define SRC_BASELINES_BASELINE_CONFIG_H_

#include "src/common/clock.h"

namespace atropos {

struct BaselineConfig {
  TimeMicros window = Millis(100);
  // Non-overloaded p99 target; 0 means calibrate online from early windows.
  TimeMicros baseline_p99 = 0;
  double slo_latency_increase = 0.20;
  int calibration_windows = 10;
};

}  // namespace atropos

#endif  // SRC_BASELINES_BASELINE_CONFIG_H_
