#include "src/baselines/protego.h"

#include <algorithm>
#include <vector>

namespace atropos {

Protego::Protego(Clock* clock, ControlSurface* surface, ProtegoConfig config)
    : clock_(clock),
      surface_(surface),
      config_(config),
      baseline_p99_(config.baseline_p99),
      rng_(config.seed) {}

bool Protego::AdmitRequest(uint64_t key, int request_type, int client_class) {
  if (shed_probability_ <= 0.0) {
    return true;
  }
  if (rng_.NextBernoulli(shed_probability_)) {
    drops_++;
    return false;
  }
  return true;
}

void Protego::OnRequestStart(uint64_t key, int request_type, int client_class) {
  if (client_class != 0) {
    client_class_[key] = client_class;
  }
}

TimeMicros Protego::slo_latency() const {
  return static_cast<TimeMicros>(static_cast<double>(baseline_p99_) *
                                 (1.0 + config_.slo_latency_increase));
}

bool Protego::IsLockLike(ResourceId resource) const {
  auto it = resource_classes().find(resource);
  if (it == resource_classes().end()) {
    return false;
  }
  // Protego instruments synchronization primitives only (§2.2: it cannot see
  // buffer pools, caches, or application queues).
  return it->second == ResourceClass::kLock;
}

void Protego::OnWaitBegin(uint64_t key, ResourceId resource) {
  if (!IsLockLike(resource)) {
    return;
  }
  waiting_.emplace(key, clock_->NowMicros());
}

void Protego::OnWaitEnd(uint64_t key, ResourceId resource) {
  if (!IsLockLike(resource)) {
    return;
  }
  auto it = waiting_.find(key);
  if (it == waiting_.end()) {
    return;
  }
  lock_delay_[key] += clock_->NowMicros() - it->second;
  waiting_.erase(it);
}

void Protego::OnWaitObserved(uint64_t key, ResourceId resource, TimeMicros waited) {
  if (!IsLockLike(resource)) {
    return;
  }
  lock_delay_[key] += waited;
}

void Protego::OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                           int client_class) {
  if (client_class == 0) {
    window_latency_.Record(latency);
    window_completions_++;
  }
  lock_delay_.erase(key);
}

void Protego::OnTaskFreed(uint64_t key) {
  waiting_.erase(key);
  lock_delay_.erase(key);
  client_class_.erase(key);
}

void Protego::Tick() {
  TimeMicros now = clock_->NowMicros();
  // Baseline calibration (when not provided).
  if (baseline_p99_ == 0) {
    if (window_completions_ > 0 && ++calibration_seen_ >= config_.calibration_windows) {
      baseline_p99_ = window_latency_.P99();
    }
    window_latency_.Reset();
    window_completions_ = 0;
    return;
  }
  // Performance-driven admission: ramp the shed probability while the window
  // p99 (or any in-progress lock wait) violates the SLO, decay otherwise.
  bool violated = window_completions_ > 0 && window_latency_.P99() > slo_latency();
  for (const auto& [key, start] : waiting_) {
    if (now - start > slo_latency()) {
      violated = true;
      break;
    }
  }
  if (violated) {
    shed_probability_ = std::min(config_.shed_max, shed_probability_ + config_.shed_step);
  } else {
    shed_probability_ *= config_.shed_decay;
    if (shed_probability_ < 0.01) {
      shed_probability_ = 0.0;
    }
  }
  window_latency_.Reset();
  window_completions_ = 0;

  // Drop every request whose lock delay (including the open wait) is past the
  // drop threshold. These are victims of the contention, not its cause.
  auto threshold =
      static_cast<TimeMicros>(config_.drop_wait_fraction * static_cast<double>(slo_latency()));
  std::vector<uint64_t> to_drop;
  for (const auto& [key, start] : waiting_) {
    if (client_class_.count(key) != 0) {
      continue;  // batch/maintenance traffic is outside Protego's SLO scope
    }
    TimeMicros wait = now - start;
    auto acc = lock_delay_.find(key);
    if (acc != lock_delay_.end()) {
      wait += acc->second;
    }
    if (wait >= threshold) {
      to_drop.push_back(key);
    }
  }
  // Requests not waiting right now can still be past the threshold on
  // accumulated delay alone — closed brackets and after-the-fact
  // OnWaitObserved reports land here.
  for (const auto& [key, acc] : lock_delay_) {
    if (waiting_.count(key) != 0 || client_class_.count(key) != 0) {
      continue;
    }
    if (acc >= threshold) {
      to_drop.push_back(key);
    }
  }
  for (uint64_t key : to_drop) {
    waiting_.erase(key);
    lock_delay_.erase(key);
    drops_++;
    surface_->CancelTask(key, CancelReason::kVictimDrop);
  }
}

}  // namespace atropos
