// Protego baseline (Cho et al., NSDI'23) — lock-contention-aware overload
// control.
//
// Protego lets requests execute and monitors each one's lock wait time; when
// a request's accumulated lock delay approaches the SLO it is dropped. The
// crucial contrast with Atropos (§2.2): Protego drops the *victims* whose
// waits are long, not the culprit holding the lock — so it bounds tail
// latency at the cost of a high drop rate and reduced throughput, and it only
// observes synchronization resources.

#ifndef SRC_BASELINES_PROTEGO_H_
#define SRC_BASELINES_PROTEGO_H_

#include <unordered_map>

#include "src/atropos/controller.h"
#include "src/baselines/baseline_config.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"

namespace atropos {

struct ProtegoConfig : BaselineConfig {
  // Drop a request once its lock wait exceeds this fraction of the SLO
  // latency target.
  double drop_wait_fraction = 0.5;
  // Performance-driven admission control: while the SLO is violated the shed
  // probability ramps up by this step per window, and decays when healthy.
  double shed_step = 0.15;
  double shed_decay = 0.7;
  double shed_max = 0.9;
  uint64_t seed = 1234;
};

class Protego final : public OverloadController {
 public:
  Protego(Clock* clock, ControlSurface* surface, ProtegoConfig config);

  std::string_view name() const override { return "protego"; }

  bool AdmitRequest(uint64_t key, int request_type, int client_class) override;
  void OnRequestStart(uint64_t key, int request_type, int client_class) override;
  void OnWaitBegin(uint64_t key, ResourceId resource) override;
  void OnWaitEnd(uint64_t key, ResourceId resource) override;
  // After-the-fact waits carry their duration; credit it directly instead of
  // wall-clocking a zero-width bracket.
  void OnWaitObserved(uint64_t key, ResourceId resource, TimeMicros waited) override;
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override;
  void OnTaskFreed(uint64_t key) override;
  void Tick() override;

  uint64_t drops_issued() const { return drops_; }
  TimeMicros slo_latency() const;

 private:
  bool IsLockLike(ResourceId resource) const;

  Clock* clock_;
  ControlSurface* surface_;
  ProtegoConfig config_;

  // key -> start of its current lock wait.
  std::unordered_map<uint64_t, TimeMicros> waiting_;
  // Keys outside the SLO-bearing client class (batch / maintenance traffic):
  // Protego manages latency-sensitive requests only — it has no mandate to
  // kill maintenance operations (which is exactly why it drops victims
  // rather than culprits, §2.2).
  std::unordered_map<uint64_t, int> client_class_;
  // Accumulated lock delay per in-flight request.
  std::unordered_map<uint64_t, TimeMicros> lock_delay_;

  // Online baseline calibration.
  LatencyHistogram window_latency_;
  uint64_t window_completions_ = 0;
  int calibration_seen_ = 0;
  TimeMicros baseline_p99_ = 0;

  uint64_t drops_ = 0;

  // Admission shedding state.
  double shed_probability_ = 0.0;
  Rng rng_;
};

}  // namespace atropos

#endif  // SRC_BASELINES_PROTEGO_H_
