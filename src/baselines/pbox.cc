#include "src/baselines/pbox.h"

#include <algorithm>

namespace atropos {

PBox::PBox(Clock* clock, ControlSurface* surface, PBoxConfig config)
    : clock_(clock), surface_(surface), config_(config), window_start_(clock->NowMicros()) {}

void PBox::OnTaskRegistered(uint64_t key, bool background, bool cancellable) {
  usage_[key];
}

void PBox::OnTaskFreed(uint64_t key) {
  usage_.erase(key);
  wait_start_.erase(key);
  penalized_.erase(key);
}

void PBox::OnGet(uint64_t key, ResourceId resource, uint64_t amount) {
  auto it = usage_.find(key);
  if (it == usage_.end()) {
    return;
  }
  Usage& u = it->second[resource];
  if (u.held == 0) {
    u.hold_started = clock_->NowMicros();
  }
  u.held += amount;
}

void PBox::OnFree(uint64_t key, ResourceId resource, uint64_t amount) {
  auto it = usage_.find(key);
  if (it == usage_.end()) {
    return;
  }
  Usage& u = it->second[resource];
  uint64_t dec = std::min(u.held, amount);
  u.held -= dec;
  if (u.held == 0 && dec > 0) {
    u.hold_time += clock_->NowMicros() - u.hold_started;
  }
}

void PBox::OnWaitBegin(uint64_t key, ResourceId resource) {
  wait_start_.emplace(key, clock_->NowMicros());
}

void PBox::OnWaitEnd(uint64_t key, ResourceId resource) {
  auto it = wait_start_.find(key);
  if (it == wait_start_.end()) {
    return;
  }
  window_wait_[resource] += clock_->NowMicros() - it->second;
  wait_start_.erase(it);
}

void PBox::OnWaitObserved(uint64_t key, ResourceId resource, TimeMicros waited) {
  window_wait_[resource] += waited;
}

void PBox::OnHoldObserved(uint64_t key, ResourceId resource, TimeMicros used) {
  auto it = usage_.find(key);
  if (it == usage_.end()) {
    return;
  }
  it->second[resource].hold_time += used;
}

void PBox::Tick() {
  TimeMicros now = clock_->NowMicros();
  TimeMicros window = now > window_start_ ? now - window_start_ : 1;
  window_start_ = now;

  // Find the most-contended resource this window.
  ResourceId hot = kInvalidResourceId;
  TimeMicros hot_wait = 0;
  for (const auto& [resource, wait] : window_wait_) {
    if (wait > hot_wait) {
      hot = resource;
      hot_wait = wait;
    }
  }
  window_wait_.clear();

  double contention = static_cast<double>(hot_wait) / static_cast<double>(window);
  if (hot == kInvalidResourceId || contention < config_.contention_threshold) {
    // Calm window: eventually lift penalties.
    if (++calm_ >= config_.calm_windows && !penalized_.empty()) {
      for (uint64_t key : penalized_) {
        surface_->ThrottleTask(key, 1.0);
      }
      penalized_.clear();
    }
    return;
  }
  calm_ = 0;

  // Penalize the top holder of the hot resource (isolation, not cancellation:
  // whatever it already holds stays held).
  uint64_t top_key = 0;
  double top_score = 0.0;
  for (const auto& [key, resources] : usage_) {
    auto it = resources.find(hot);
    if (it == resources.end()) {
      continue;
    }
    double score = static_cast<double>(it->second.held) +
                   static_cast<double>(it->second.HoldAt(now)) / 1000.0;
    if (score > top_score) {
      top_score = score;
      top_key = key;
    }
  }
  if (top_key != 0 && penalized_.count(top_key) == 0) {
    penalized_.insert(top_key);
    penalties_++;
    surface_->ThrottleTask(top_key, config_.penalty_factor);
  }
}

}  // namespace atropos
