// DARC baseline (Demoulin et al., SOSP'21 "Perséphone") — request-type-aware
// core/worker reservation.
//
// DARC profiles per-type service times and reserves workers for the shortest
// request types so they are never blocked behind heavy-tailed ones. It helps
// the queue-overload cases, but knows nothing about locks, memory pools, or
// which specific request holds them.

#ifndef SRC_BASELINES_DARC_H_
#define SRC_BASELINES_DARC_H_

#include <unordered_map>

#include "src/atropos/controller.h"
#include "src/baselines/baseline_config.h"

namespace atropos {

struct DarcConfig : BaselineConfig {
  // A type is "short" when its mean service time is below this multiple of
  // the global minimum mean.
  double short_type_factor = 8.0;
  // Fraction of workers reserved for short types.
  double reserve_fraction = 0.75;
  int total_workers = 16;
  // Completions needed before a type's profile is trusted.
  int min_samples = 20;
};

class Darc final : public OverloadController {
 public:
  Darc(Clock* clock, ControlSurface* surface, DarcConfig config)
      : surface_(surface), config_(config) {}

  std::string_view name() const override { return "darc"; }

  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override {
    Profile& p = profiles_[request_type];
    p.count++;
    p.total += latency;
  }

  void Tick() override;

  int reserved_workers() const { return reserved_; }

 private:
  struct Profile {
    uint64_t count = 0;
    TimeMicros total = 0;
    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
    }
  };

  ControlSurface* surface_;
  DarcConfig config_;
  std::unordered_map<int, Profile> profiles_;
  int reserved_ = 0;
};

}  // namespace atropos

#endif  // SRC_BASELINES_DARC_H_
