#include "src/baselines/darc.h"

#include <algorithm>
#include <cmath>

namespace atropos {

void Darc::Tick() {
  // Find the fastest adequately-profiled type.
  double min_mean = 0.0;
  int short_type = -1;
  for (const auto& [type, p] : profiles_) {
    if (p.count < static_cast<uint64_t>(config_.min_samples)) {
      continue;
    }
    double mean = p.Mean();
    if (short_type < 0 || mean < min_mean) {
      min_mean = mean;
      short_type = type;
    }
  }
  if (short_type < 0) {
    return;
  }
  // Is there a meaningfully heavier type? If not, no reservation is needed.
  bool heavy_exists = false;
  for (const auto& [type, p] : profiles_) {
    if (type != short_type && p.count >= static_cast<uint64_t>(config_.min_samples) &&
        p.Mean() > min_mean * config_.short_type_factor) {
      heavy_exists = true;
      break;
    }
  }
  int reserve = heavy_exists ? static_cast<int>(std::lround(
                                   config_.reserve_fraction * config_.total_workers))
                             : 0;
  if (reserve != reserved_) {
    reserved_ = reserve;
    surface_->SetTypeReservation(short_type, reserve);
  }
}

}  // namespace atropos
