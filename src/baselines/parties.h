// PARTIES baseline (Chen et al., ASPLOS'19) — QoS-aware resource partitioning.
//
// PARTIES monitors each client class's tail latency and incrementally shifts
// resource shares from classes with slack toward classes violating their QoS
// target (upsize/downsize steps with a settle period). Partitioning cannot
// revoke resources a running request already holds, so it under-performs on
// the lock/memory overload cases (§5.2).

#ifndef SRC_BASELINES_PARTIES_H_
#define SRC_BASELINES_PARTIES_H_

#include <unordered_map>

#include "src/atropos/controller.h"
#include "src/baselines/baseline_config.h"
#include "src/common/histogram.h"

namespace atropos {

struct PartiesConfig : BaselineConfig {
  int num_classes = 2;
  double share_step = 0.10;   // share shifted per adjustment
  double min_share = 0.10;
  int settle_windows = 2;     // windows between adjustments
};

class Parties final : public OverloadController {
 public:
  Parties(Clock* clock, ControlSurface* surface, PartiesConfig config);

  std::string_view name() const override { return "parties"; }

  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override;
  void Tick() override;

  double ShareOf(int client_class) const;
  uint64_t adjustments() const { return adjustments_; }

 private:
  TimeMicros slo_latency() const {
    return static_cast<TimeMicros>(static_cast<double>(baseline_p99_) *
                                   (1.0 + config_.slo_latency_increase));
  }

  ControlSurface* surface_;
  PartiesConfig config_;

  std::unordered_map<int, LatencyHistogram> window_latency_;
  std::unordered_map<int, double> shares_;
  TimeMicros baseline_p99_ = 0;
  int calibration_seen_ = 0;
  uint64_t window_completions_ = 0;
  int since_adjustment_ = 0;
  uint64_t adjustments_ = 0;
};

}  // namespace atropos

#endif  // SRC_BASELINES_PARTIES_H_
