// pBox baseline (Hu et al., SOSP'23) — request-level performance isolation.
//
// pBox traces per-task resource usage, detects tasks consuming far more than
// their peers on a contended resource, and penalizes them by throttling their
// resource consumption. It never terminates a running request, so — as §2.2
// demonstrates — it cannot release resources a problematic request already
// holds and only partially mitigates severe overload.

#ifndef SRC_BASELINES_PBOX_H_
#define SRC_BASELINES_PBOX_H_

#include <set>
#include <unordered_map>

#include "src/atropos/controller.h"
#include "src/baselines/baseline_config.h"

namespace atropos {

struct PBoxConfig : BaselineConfig {
  // A resource is contended when waiters lost more than this fraction of the
  // window to it.
  double contention_threshold = 0.10;
  // Penalty slowdown applied to the top consumer.
  double penalty_factor = 4.0;
  // Windows of calm before penalties are lifted.
  int calm_windows = 3;
};

class PBox final : public OverloadController {
 public:
  PBox(Clock* clock, ControlSurface* surface, PBoxConfig config);

  std::string_view name() const override { return "pbox"; }

  void OnTaskRegistered(uint64_t key, bool background, bool cancellable) override;
  void OnTaskFreed(uint64_t key) override;
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnWaitBegin(uint64_t key, ResourceId resource) override;
  void OnWaitEnd(uint64_t key, ResourceId resource) override;
  // After-the-fact observations carry their durations; credit them directly
  // instead of wall-clocking zero-width brackets.
  void OnWaitObserved(uint64_t key, ResourceId resource, TimeMicros waited) override;
  void OnHoldObserved(uint64_t key, ResourceId resource, TimeMicros used) override;
  void Tick() override;

  uint64_t penalties_issued() const { return penalties_; }

 private:
  struct Usage {
    uint64_t held = 0;
    TimeMicros hold_started = 0;
    TimeMicros hold_time = 0;
    TimeMicros HoldAt(TimeMicros now) const {
      return hold_time + (held > 0 && now > hold_started ? now - hold_started : 0);
    }
  };

  Clock* clock_;
  ControlSurface* surface_;
  PBoxConfig config_;

  // (key, resource) -> usage; window wait per resource.
  std::unordered_map<uint64_t, std::unordered_map<ResourceId, Usage>> usage_;
  std::unordered_map<uint64_t, TimeMicros> wait_start_;       // key -> start
  std::unordered_map<ResourceId, TimeMicros> window_wait_;    // resource -> total wait
  std::set<uint64_t> penalized_;
  int calm_ = 0;
  TimeMicros window_start_ = 0;
  uint64_t penalties_ = 0;
};

}  // namespace atropos

#endif  // SRC_BASELINES_PBOX_H_
