#include "src/baselines/parties.h"

#include <algorithm>

namespace atropos {

Parties::Parties(Clock* clock, ControlSurface* surface, PartiesConfig config)
    : surface_(surface), config_(config), baseline_p99_(config.baseline_p99) {
  double even = 1.0 / static_cast<double>(config_.num_classes);
  for (int c = 0; c < config_.num_classes; c++) {
    shares_[c] = even;
  }
}

double Parties::ShareOf(int client_class) const {
  auto it = shares_.find(client_class);
  return it == shares_.end() ? 0.0 : it->second;
}

void Parties::OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                           int client_class) {
  window_latency_[client_class].Record(latency);
  window_completions_++;
}

void Parties::Tick() {
  if (baseline_p99_ == 0) {
    // Calibrate from class 0 (the primary workload class).
    if (window_completions_ > 0 && ++calibration_seen_ >= config_.calibration_windows) {
      baseline_p99_ = window_latency_[0].P99();
    }
    for (auto& [c, h] : window_latency_) {
      h.Reset();
    }
    window_completions_ = 0;
    return;
  }

  if (++since_adjustment_ >= config_.settle_windows) {
    // Find the most-violating and the most-comfortable class.
    int victim_class = -1;
    TimeMicros worst = 0;
    int donor_class = -1;
    TimeMicros best = 0;
    for (auto& [c, h] : window_latency_) {
      if (h.count() == 0) {
        continue;
      }
      TimeMicros p99 = h.P99();
      if (p99 > slo_latency() && p99 > worst) {
        worst = p99;
        victim_class = c;
      }
      if ((donor_class < 0 || p99 < best) && shares_[c] > config_.min_share) {
        best = p99;
        donor_class = c;
      }
    }
    if (victim_class >= 0 && donor_class >= 0 && donor_class != victim_class) {
      double step = std::min(config_.share_step, shares_[donor_class] - config_.min_share);
      shares_[donor_class] -= step;
      shares_[victim_class] += step;
      surface_->SetClientShare(donor_class, shares_[donor_class]);
      surface_->SetClientShare(victim_class, shares_[victim_class]);
      adjustments_++;
      since_adjustment_ = 0;
    }
  }

  for (auto& [c, h] : window_latency_) {
    h.Reset();
  }
  window_completions_ = 0;
}

}  // namespace atropos
