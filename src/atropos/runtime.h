// The Atropos runtime façade (paper §3, Fig 5).
//
// The control loop is decomposed into four layers with narrow interfaces:
//
//   instrumentation stream                      Tick() once per window
//        │                                            │
//        ▼                                            ▼
//   TaskLedger ───────────── window books ──► DecisionPipeline
//   (registries, §3.1–3.2    WindowAggregator  (DetectionStage §3.3 →
//    usage accounting,       (latency/T_exec    EstimationStage §3.4 →
//    conservation ledger)     convoy signals)   SelectionPolicy §3.5)
//                                                     │ victim
//                                                     ▼
//                                             CancelDispatcher
//                                             (§3.6 safe initiator routing,
//                                              pacing, §4 fairness memo)
//
// AtroposRuntime wires the layers and remains an OverloadController, so
// applications integrate it exactly like the baseline controllers: feed the
// instrumentation stream and call Tick() once per window. The decision stages
// are pluggable — the Fig-13 ablation variants are alternative
// SelectionPolicy implementations injected at construction — and RuntimeGroup
// (runtime_group.h) shards independent ledgers/windows per tenant behind one
// shared stage factory.

#ifndef SRC_ATROPOS_RUNTIME_H_
#define SRC_ATROPOS_RUNTIME_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/controller.h"
#include "src/atropos/detector.h"
#include "src/atropos/dispatcher.h"
#include "src/atropos/ledger.h"
#include "src/atropos/pipeline.h"
#include "src/atropos/stats.h"
#include "src/atropos/window.h"
#include "src/common/clock.h"
#include "src/obs/flight_recorder.h"

namespace atropos {

class AtroposRuntime final : public OverloadController {
 public:
  // Builds the paper's pipeline (Breakwater detection, gain estimation, the
  // selection policy named by config.policy).
  AtroposRuntime(Clock* clock, AtroposConfig config);
  // Injects explicit decision stages; `pipeline.complete()` must hold.
  AtroposRuntime(Clock* clock, AtroposConfig config, DecisionPipeline pipeline);

  std::string_view name() const override { return "atropos"; }

  // ---- Integration API (paper Fig 6a) -----------------------------------
  // The application's cancellation initiator; invoked with the task key.
  void SetCancelAction(std::function<void(uint64_t)> initiator) {
    dispatcher_.SetCancelAction(std::move(initiator));
  }
  void SetControlSurface(ControlSurface* surface) { dispatcher_.SetControlSurface(surface); }

  // ---- Resource registration ---------------------------------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls) override {
    return ledger_.RegisterResource(std::move(name), cls);
  }
  const ResourceRecord* FindResource(ResourceId id) const { return ledger_.FindResource(id); }

  // ---- Instrumentation stream (OverloadController) ------------------------
  void OnTaskRegistered(uint64_t key, bool background, bool cancellable = true) override;
  void OnTaskFreed(uint64_t key) override;
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override {
    ledger_.RecordGet(key, resource, amount);
  }
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override {
    ledger_.RecordFree(key, resource, amount);
  }
  void OnWaitBegin(uint64_t key, ResourceId resource) override {
    ledger_.RecordWaitBegin(key, resource);
  }
  void OnWaitEnd(uint64_t key, ResourceId resource) override {
    ledger_.RecordWaitEnd(key, resource);
  }
  void OnRequestStart(uint64_t key, int request_type, int client_class) override {
    window_.OnRequestStart(key, client_class);
  }
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override {
    window_.OnRequestEnd(key, latency, client_class);
  }
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override {
    ledger_.RecordProgress(key, done, total);
  }

  // Completed wait+use report in one call; used by CPU/IO adapters that learn
  // both durations only after the fact.
  void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used) override {
    ledger_.RecordUsage(key, resource, waited, used);
  }

  // ---- Control loop --------------------------------------------------------
  // Closes the current window: detection, estimation, and (when confirmed)
  // cancellation of the selected culprit.
  void Tick() override;

  // ---- Fairness / re-execution (§4) ---------------------------------------
  bool ReexecutionRecommended() const override {
    return dispatcher_.ReexecutionRecommended();
  }

  // ---- Introspection -------------------------------------------------------
  const AtroposStats& stats() const { return stats_; }
  const AtroposConfig& config() const { return config_; }
  // The Breakwater detection stage's detector. Only valid when the detection
  // stage is a BreakwaterDetectionStage (true for every in-repo pipeline).
  const OverloadDetector& detector() const { return breakwater_->detector(); }
  // Normalized contention of the last closed window, by resource.
  const std::vector<ResourceMetrics>& last_metrics() const { return last_metrics_; }
  TimestampMode effective_timestamp_mode() const { return ledger_.effective_mode(); }
  const TaskRecord* FindTask(uint64_t key) const { return ledger_.FindTask(key); }
  // The (task, resource) usage cell; null when unknown or never touched.
  const TaskResourceUsage* FindUsage(uint64_t key, ResourceId resource) const {
    return ledger_.FindUsage(key, resource);
  }
  // Resource ids the task's tracing events have touched, ascending.
  std::vector<ResourceId> UsedResources(uint64_t key) const {
    return ledger_.UsedResources(key);
  }
  size_t live_task_count() const { return ledger_.live_task_count(); }
  // Live entries of the §4 cancelled-key memo (bounded by calm-window aging).
  size_t cancelled_key_count() const { return dispatcher_.cancelled_key_count(); }
  // Total windows ever closed without resource overload; the aging epoch the
  // memo entries are stamped with.
  uint64_t calm_windows_total() const { return dispatcher_.calm_windows_total(); }
  bool has_cancel_initiator() const { return dispatcher_.has_initiator(); }

  // Layer access for tests and the multi-tenant group.
  const TaskLedger& ledger() const { return ledger_; }
  const DecisionPipeline& pipeline() const { return pipeline_; }

  // ---- Accounting audit (fuzzer oracles) ----------------------------------
  using ResourceAudit = atropos::ResourceAudit;
  std::vector<ResourceAudit> AuditAccounting() const { return ledger_.AuditAccounting(); }

  // Test hook observing every issued cancellation.
  void SetCancelObserver(std::function<void(uint64_t key, double score)> observer) {
    dispatcher_.SetCancelObserver(std::move(observer));
  }

  // Attach a decision flight recorder (non-owning). Every window boundary,
  // overload transition, contention snapshot, policy verdict, and issued
  // cancellation is recorded; a null or disabled recorder costs one branch
  // per Tick().
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  Clock* clock_;
  AtroposConfig config_;
  AtroposStats stats_;

  TaskLedger ledger_;
  WindowAggregator window_;
  DecisionPipeline pipeline_;
  // Non-owning view into pipeline_.detection when it is the Breakwater stage;
  // backs detector().
  const BreakwaterDetectionStage* breakwater_ = nullptr;
  CancelDispatcher dispatcher_;

  FlightRecorder* recorder_ = nullptr;
  bool recording_overload_ = false;  // tracks entered/exited transitions

  std::vector<ResourceMetrics> last_metrics_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_RUNTIME_H_
