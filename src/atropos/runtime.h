// The Atropos runtime manager (paper §3, Fig 5).
//
// Implements the full control loop: task registration (§3.1), per-task
// resource usage tracking with sampled/per-event timestamps (§3.2), overload
// detection (§3.3), contention/gain estimation (§3.4), victim selection
// (§3.5), and safe cancellation through the application's registered
// initiator with fairness bookkeeping (§3.6, §4).
//
// The runtime is itself an OverloadController, so applications integrate it
// exactly like the baseline controllers: feed the instrumentation stream and
// call Tick() once per window.

#ifndef SRC_ATROPOS_RUNTIME_H_
#define SRC_ATROPOS_RUNTIME_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/controller.h"
#include "src/atropos/detector.h"
#include "src/atropos/estimator.h"
#include "src/atropos/policy.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/obs/flight_recorder.h"

namespace atropos {

// Aggregate counters exported for tests and benches.
struct AtroposStats {
  uint64_t windows = 0;
  uint64_t suspected_overload_windows = 0;
  uint64_t demand_overload_windows = 0;
  uint64_t resource_overload_windows = 0;
  uint64_t cancels_issued = 0;
  uint64_t cancels_suppressed_interval = 0;  // skipped due to min_cancel_interval
  uint64_t cancels_suppressed_no_victim = 0;
  // Resource-overload windows where cancellation was warranted but no cancel
  // initiator (action or control surface) was registered, so none was issued
  // (§3.1: cancellation only ever routes through the app's safe initiator).
  uint64_t cancels_suppressed_no_initiator = 0;
  uint64_t trace_events = 0;
  uint64_t ignored_events = 0;  // tracing calls against unregistered keys
  // A second OnRequestStart under a live key is treated as an implicit end of
  // the prior request (the app reused the key without reporting completion).
  uint64_t request_restarts = 0;
  // Lifecycle of the §4 cancelled-key memo (bounded-set invariant: live
  // entries == inserted - consumed - evicted, audited by the fuzzer).
  uint64_t cancelled_keys_inserted = 0;
  uint64_t cancelled_keys_consumed = 0;  // erased by a re-registration
  uint64_t cancelled_keys_evicted = 0;   // aged out after sustained calm
};

class AtroposRuntime final : public OverloadController {
 public:
  AtroposRuntime(Clock* clock, AtroposConfig config);

  std::string_view name() const override { return "atropos"; }

  // ---- Integration API (paper Fig 6a) -----------------------------------
  // The application's cancellation initiator; invoked with the task key.
  void SetCancelAction(std::function<void(uint64_t)> initiator) {
    cancel_action_ = std::move(initiator);
  }
  void SetControlSurface(ControlSurface* surface) { surface_ = surface; }

  // ---- Resource registration ---------------------------------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls) override;
  const ResourceRecord* FindResource(ResourceId id) const;

  // ---- Instrumentation stream (OverloadController) ------------------------
  void OnTaskRegistered(uint64_t key, bool background, bool cancellable = true) override;
  void OnTaskFreed(uint64_t key) override;
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnWaitBegin(uint64_t key, ResourceId resource) override;
  void OnWaitEnd(uint64_t key, ResourceId resource) override;
  void OnRequestStart(uint64_t key, int request_type, int client_class) override;
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override;
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override;

  // Completed wait+use report in one call; used by CPU/IO adapters that learn
  // both durations only after the fact.
  void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used) override;

  // ---- Control loop --------------------------------------------------------
  // Closes the current window: detection, estimation, and (when confirmed)
  // cancellation of the selected culprit.
  void Tick() override;

  // ---- Fairness / re-execution (§4) ---------------------------------------
  // True after `reexec_calm_windows` consecutive windows without resource
  // overload — the "sustained resource availability" condition for retrying
  // cancelled work.
  bool ReexecutionRecommended() const override {
    return calm_windows_ >= config_.reexec_calm_windows;
  }

  // ---- Introspection -------------------------------------------------------
  const AtroposStats& stats() const { return stats_; }
  const AtroposConfig& config() const { return config_; }
  const OverloadDetector& detector() const { return detector_; }
  // Normalized contention of the last closed window, by resource.
  const std::vector<ResourceMetrics>& last_metrics() const { return last_metrics_; }
  TimestampMode effective_timestamp_mode() const { return effective_mode_; }
  const TaskRecord* FindTask(uint64_t key) const;
  size_t live_task_count() const { return key_to_task_.size(); }
  // Live entries of the §4 cancelled-key memo (bounded by calm-window aging).
  size_t cancelled_key_count() const { return cancelled_keys_.size(); }
  // Total windows ever closed without resource overload; the aging epoch the
  // memo entries are stamped with (monotone, unlike the consecutive
  // calm_windows_ streak).
  uint64_t calm_windows_total() const { return calm_windows_total_; }
  bool has_cancel_initiator() const {
    return cancel_action_ != nullptr || surface_ != nullptr;
  }

  // ---- Accounting audit (fuzzer oracles) ----------------------------------
  // Per-resource conservation ledger: every unit a task reported acquired is
  // either returned (released), still held by a live task (live_held), or was
  // held at task teardown (leaked); frees beyond a task's holdings are
  // overfreed. The identity below holds for correct runtime bookkeeping
  // regardless of application behaviour; leaked/overfreed themselves expose
  // application-side imbalance.
  struct ResourceAudit {
    ResourceId id = kInvalidResourceId;
    std::string name;
    ResourceClass cls = ResourceClass::kLock;
    uint64_t acquired = 0;   // units reported via getResource
    uint64_t released = 0;   // units reported via freeResource
    uint64_t leaked = 0;     // units held at task teardown
    uint64_t overfreed = 0;  // free amounts beyond the task's holdings
    uint64_t live_held = 0;  // units held by currently registered tasks
    bool Balanced() const { return acquired + overfreed == released + leaked + live_held; }
  };
  std::vector<ResourceAudit> AuditAccounting() const;

  // Test hook observing every issued cancellation.
  void SetCancelObserver(std::function<void(uint64_t key, double score)> observer) {
    cancel_observer_ = std::move(observer);
  }

  // Attach a decision flight recorder (non-owning). Every window boundary,
  // overload transition, contention snapshot, policy verdict, and issued
  // cancellation is recorded; a null or disabled recorder costs one branch
  // per Tick().
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  TaskRecord* Lookup(uint64_t key);
  TaskResourceUsage* UsageFor(uint64_t key, ResourceId resource);
  // Folds a departing task's open holdings into the per-resource ledger.
  void RetireTaskAccounting(const TaskRecord& task);
  // Timestamp respecting the sampled/per-event mode (§3.2).
  TimeMicros TraceNow();

  Clock* clock_;
  AtroposConfig config_;
  OverloadDetector detector_;
  Estimator estimator_;

  std::function<void(uint64_t)> cancel_action_;
  ControlSurface* surface_ = nullptr;
  std::function<void(uint64_t, double)> cancel_observer_;
  FlightRecorder* recorder_ = nullptr;
  bool recording_overload_ = false;  // tracks entered/exited transitions

  // Registries. std::map gives deterministic iteration order.
  std::map<TaskId, TaskRecord> tasks_;
  std::map<ResourceId, ResourceRecord> resources_;
  std::unordered_map<uint64_t, TaskId> key_to_task_;
  // Keys whose re-registration is non-cancellable (§4 fairness). Each entry
  // is stamped with calm_windows_total_ at insertion and aged out after
  // `reexec_calm_windows` further calm windows: once sustained calm has
  // passed, re-execution was recommended anyway, and a client that never
  // retries must not leak a memo entry forever.
  std::unordered_map<uint64_t, uint64_t> cancelled_keys_;
  TaskId next_task_id_ = 1;
  ResourceId next_resource_id_ = 1;

  // Window state.
  LatencyHistogram window_latency_;
  uint64_t window_completions_ = 0;
  TimeMicros window_exec_time_ = 0;  // T_exec accumulator (completed requests)
  TimeMicros window_start_ = 0;
  struct ActiveRequest {
    TimeMicros start = 0;
    int client_class = 0;
  };
  std::unordered_map<uint64_t, ActiveRequest> active_requests_;

  // Cancellation pacing & fairness.
  TimeMicros last_cancel_time_ = 0;
  bool ever_cancelled_ = false;
  int calm_windows_ = 0;            // consecutive, reset by resource overload
  uint64_t calm_windows_total_ = 0; // monotone, stamps the cancelled-key memo

  // Timestamp sampling.
  TimestampMode effective_mode_;
  TimeMicros cached_now_ = 0;

  std::vector<ResourceMetrics> last_metrics_;
  AtroposStats stats_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_RUNTIME_H_
