// Per-window end-to-end signal aggregation (paper §3.3 inputs).
//
// The WindowAggregator is the second layer of the decomposed runtime: it
// collects the request-lifecycle signals the detection stage consumes — the
// windowed latency histogram, completion count, in-flight request registry
// (for the overdue-convoy stall signal), and the T_exec accumulator the
// estimator uses as the normalization denominator (§3.5). It holds no
// decision state; the façade closes it once per Tick.
//
// Layout (DESIGN.md §17): the latency histogram is epoch-sliced so Roll() is
// O(1) instead of an O(buckets) memset, and the in-flight registry is a dense
// slot pool (DenseKeyIndex + intrusive live list) so the steady-state request
// lifecycle — start, end, drop — is allocation-free and CountOverdue walks a
// contiguous live list instead of a node-based hash map.

#ifndef SRC_ATROPOS_WINDOW_H_
#define SRC_ATROPOS_WINDOW_H_

#include <vector>

#include "src/atropos/config.h"
#include "src/atropos/dense_index.h"
#include "src/atropos/stats.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace atropos {

class WindowAggregator {
 public:
  WindowAggregator(Clock* clock, const AtroposConfig& config, AtroposStats* stats);

  // ---- Request lifecycle ---------------------------------------------------
  void OnRequestStart(uint64_t key, int client_class);
  void OnRequestEnd(uint64_t key, TimeMicros latency, int client_class);
  // Task teardown: any in-flight request under the key leaves with it.
  void DropKey(uint64_t key);

  // ---- Detection-stage inputs ----------------------------------------------
  uint64_t completions() const { return window_completions_; }
  TimeMicros P99() const { return window_latency_.P99(); }
  // In-flight SLO-class requests older than `slo` — the convoy signal that
  // makes a hard stall visible despite the survivor-biased completion p99.
  uint64_t CountOverdue(TimeMicros now, TimeMicros slo) const;

  // ---- Estimation-stage input ----------------------------------------------
  // T_base: the window's productive execution time — completed request time
  // attributed to the window, floored at the window length. In-flight blocked
  // time is deliberately excluded; it shows up as the per-resource delay D_r.
  TimeMicros ExecTimeFloored(TimeMicros now) const;

  // ---- Window boundary -----------------------------------------------------
  void Roll(TimeMicros now);
  TimeMicros window_start() const { return window_start_; }

 private:
  static constexpr uint32_t kNilSlot = DenseKeyIndex::kNotFound;

  // Unlinks and recycles an in-flight slot. Allocation-free.
  void ReleaseRequestSlot(uint32_t slot);

  Clock* clock_;
  const AtroposConfig config_;
  AtroposStats* stats_;

  EpochLatencyHistogram window_latency_;
  uint64_t window_completions_ = 0;
  TimeMicros window_exec_time_ = 0;  // T_exec accumulator (completed requests)
  TimeMicros window_start_ = 0;

  // In-flight registry: dense slot pool with free-list recycling. The
  // intrusive live list exists so CountOverdue can walk exactly the live
  // slots; its order is irrelevant (CountOverdue only counts, matching the
  // order-free semantics of the hash map it replaces).
  DenseKeyIndex inflight_index_;  // request key -> slot
  std::vector<TimeMicros> req_start_;
  std::vector<int> req_class_;
  std::vector<uint32_t> req_prev_;
  std::vector<uint32_t> req_next_;
  std::vector<uint32_t> free_req_slots_;
  uint32_t inflight_head_ = kNilSlot;
  uint32_t inflight_tail_ = kNilSlot;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_WINDOW_H_
