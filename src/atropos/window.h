// Per-window end-to-end signal aggregation (paper §3.3 inputs).
//
// The WindowAggregator is the second layer of the decomposed runtime: it
// collects the request-lifecycle signals the detection stage consumes — the
// windowed latency histogram, completion count, in-flight request registry
// (for the overdue-convoy stall signal), and the T_exec accumulator the
// estimator uses as the normalization denominator (§3.5). It holds no
// decision state; the façade closes it once per Tick.

#ifndef SRC_ATROPOS_WINDOW_H_
#define SRC_ATROPOS_WINDOW_H_

#include <unordered_map>

#include "src/atropos/config.h"
#include "src/atropos/stats.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace atropos {

class WindowAggregator {
 public:
  WindowAggregator(Clock* clock, const AtroposConfig& config, AtroposStats* stats);

  // ---- Request lifecycle ---------------------------------------------------
  void OnRequestStart(uint64_t key, int client_class);
  void OnRequestEnd(uint64_t key, TimeMicros latency, int client_class);
  // Task teardown: any in-flight request under the key leaves with it.
  void DropKey(uint64_t key);

  // ---- Detection-stage inputs ----------------------------------------------
  uint64_t completions() const { return window_completions_; }
  TimeMicros P99() const { return window_latency_.P99(); }
  // In-flight SLO-class requests older than `slo` — the convoy signal that
  // makes a hard stall visible despite the survivor-biased completion p99.
  uint64_t CountOverdue(TimeMicros now, TimeMicros slo) const;

  // ---- Estimation-stage input ----------------------------------------------
  // T_base: the window's productive execution time — completed request time
  // attributed to the window, floored at the window length. In-flight blocked
  // time is deliberately excluded; it shows up as the per-resource delay D_r.
  TimeMicros ExecTimeFloored(TimeMicros now) const;

  // ---- Window boundary -----------------------------------------------------
  void Roll(TimeMicros now);
  TimeMicros window_start() const { return window_start_; }

 private:
  Clock* clock_;
  const AtroposConfig config_;
  AtroposStats* stats_;

  LatencyHistogram window_latency_;
  uint64_t window_completions_ = 0;
  TimeMicros window_exec_time_ = 0;  // T_exec accumulator (completed requests)
  TimeMicros window_start_ = 0;

  struct ActiveRequest {
    TimeMicros start = 0;
    int client_class = 0;
  };
  std::unordered_map<uint64_t, ActiveRequest> active_requests_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_WINDOW_H_
