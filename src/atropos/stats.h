// Aggregate counters of the Atropos control loop, exported for tests and
// benches. One instance lives in the AtroposRuntime façade and is shared (by
// pointer) with the layers that produce the counts: the TaskLedger
// (trace/ignored events), the WindowAggregator (request restarts), and the
// CancelDispatcher (cancellation and §4 memo lifecycle).

#ifndef SRC_ATROPOS_STATS_H_
#define SRC_ATROPOS_STATS_H_

#include <cstdint>

namespace atropos {

struct AtroposStats {
  uint64_t windows = 0;
  uint64_t suspected_overload_windows = 0;
  uint64_t demand_overload_windows = 0;
  uint64_t resource_overload_windows = 0;
  uint64_t cancels_issued = 0;
  uint64_t cancels_suppressed_interval = 0;  // skipped due to min_cancel_interval
  uint64_t cancels_suppressed_no_victim = 0;
  // Resource-overload windows where cancellation was warranted but no cancel
  // initiator (action or control surface) was registered, so none was issued
  // (§3.1: cancellation only ever routes through the app's safe initiator).
  uint64_t cancels_suppressed_no_initiator = 0;
  uint64_t trace_events = 0;
  uint64_t ignored_events = 0;  // tracing calls against unregistered keys
  // A second OnRequestStart under a live key is treated as an implicit end of
  // the prior request (the app reused the key without reporting completion).
  uint64_t request_restarts = 0;
  // Lifecycle of the §4 cancelled-key memo (bounded-set invariant: live
  // entries == inserted - consumed - evicted, audited by the fuzzer).
  uint64_t cancelled_keys_inserted = 0;
  uint64_t cancelled_keys_consumed = 0;  // erased by a re-registration
  uint64_t cancelled_keys_evicted = 0;   // aged out after sustained calm
};

}  // namespace atropos

#endif  // SRC_ATROPOS_STATS_H_
