// Multi-tenant runtime group (paper §5: one controller per app instance).
//
// A RuntimeGroup hosts N independent AtroposRuntime shards — one per app
// instance or tenant — behind a single OverloadController facade. Every shard
// gets its own TaskLedger and WindowAggregator (tenants never see each
// other's tasks, windows, or overloads) while the decision stages are built
// by one shared StageFactory, so all shards run the same pipeline
// implementations with private per-shard state. Instrumentation events route
// to a shard by task key; resources are registered in every shard so ids
// agree group-wide; Tick() closes every shard's window.
//
// The isolation guarantee this encodes: a culprit detected in shard A can
// only ever be cancelled by shard A's dispatcher — no decision input crosses
// shard boundaries (runtime_group_test.cc and the fuzzer's group-ledger
// oracle hold this down).
//
// Threading: single-threaded by design, like the shards it hosts (see
// src/common/thread_annotations.h). One thread owns the group; concurrent
// producers are bridged by putting a ConcurrentFrontend in front of it, not
// by calling the group from multiple threads.

#ifndef SRC_ATROPOS_RUNTIME_GROUP_H_
#define SRC_ATROPOS_RUNTIME_GROUP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/atropos/runtime.h"

namespace atropos {

class RuntimeGroup final : public OverloadController {
 public:
  // Builds one DecisionPipeline per shard; invoked `shard_count` times at
  // construction so every shard has private stage state.
  using StageFactory = std::function<DecisionPipeline(const AtroposConfig&)>;
  // Maps a task/request key to a shard index in [0, shard_count).
  using KeyRouter = std::function<size_t(uint64_t key)>;

  RuntimeGroup(Clock* clock, AtroposConfig config, size_t shard_count,
               StageFactory factory = nullptr, KeyRouter router = nullptr);

  std::string_view name() const override { return "atropos_group"; }

  size_t shard_count() const { return shards_.size(); }
  AtroposRuntime& shard(size_t index) { return *shards_[index]; }
  const AtroposRuntime& shard(size_t index) const { return *shards_[index]; }
  size_t shard_for_key(uint64_t key) const { return router_(key); }

  // ---- Group-wide wiring ---------------------------------------------------
  void SetCancelAction(std::function<void(uint64_t)> initiator);
  void SetControlSurface(ControlSurface* surface);
  void SetRecorder(FlightRecorder* recorder);

  // Registers the resource in every shard; shards hand out ids in lockstep,
  // so the agreed id is returned.
  ResourceId RegisterResource(std::string name, ResourceClass cls) override;

  // ---- Instrumentation stream, routed by key -------------------------------
  void OnTaskRegistered(uint64_t key, bool background, bool cancellable = true) override {
    route(key).OnTaskRegistered(key, background, cancellable);
  }
  void OnTaskFreed(uint64_t key) override { route(key).OnTaskFreed(key); }
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override {
    route(key).OnGet(key, resource, amount);
  }
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override {
    route(key).OnFree(key, resource, amount);
  }
  void OnWaitBegin(uint64_t key, ResourceId resource) override {
    route(key).OnWaitBegin(key, resource);
  }
  void OnWaitEnd(uint64_t key, ResourceId resource) override {
    route(key).OnWaitEnd(key, resource);
  }
  void OnRequestStart(uint64_t key, int request_type, int client_class) override {
    route(key).OnRequestStart(key, request_type, client_class);
  }
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override {
    route(key).OnRequestEnd(key, latency, request_type, client_class);
  }
  void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used) override {
    route(key).OnUsage(key, resource, waited, used);
  }
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override {
    route(key).OnProgress(key, done, total);
  }

  // Closes every shard's window: each tenant detects, estimates, and cancels
  // over its own books only.
  void Tick() override;

  // Group-level gate: retrying is recommended only when every tenant has
  // sustained calm (per-key retry decisions should consult the shard via
  // shard(shard_for_key(key)) instead).
  bool ReexecutionRecommended() const override;

  // ---- Process-wide conservation ledger ------------------------------------
  // Per-shard audits summed by resource id. Each shard's ledger balances
  // independently; the sum is the process-wide view the fuzzer's group oracle
  // checks against the flat single-runtime ledger.
  std::vector<ResourceAudit> AuditProcessWide() const;

 private:
  AtroposRuntime& route(uint64_t key) { return *shards_[router_(key)]; }

  std::vector<std::unique_ptr<AtroposRuntime>> shards_;
  KeyRouter router_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_RUNTIME_GROUP_H_
