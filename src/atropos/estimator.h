// Resource-overload estimation (paper §3.4–3.5).
//
// Per window, the estimator computes each resource's contention level (raw,
// class-specific formula) and its normalized form C_r = D_r / T_exec, then —
// for the resources flagged overloaded — each candidate task's resource gain
// (future-usage prediction via the GetNext progress model) and the current-
// usage variant used by the Fig 13 ablation.

#ifndef SRC_ATROPOS_ESTIMATOR_H_
#define SRC_ATROPOS_ESTIMATOR_H_

#include <map>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/ledger.h"
#include "src/atropos/policy.h"

namespace atropos {

class Estimator {
 public:
  explicit Estimator(const AtroposConfig& config) : config_(config) {}

  // While calibrating (the detector is still learning the latency baseline),
  // per-resource contention levels are recorded as the healthy baseline and
  // no resource is flagged overloaded.
  void SetCalibrating(bool calibrating) { calibrating_ = calibrating; }
  double BaselineContention(ResourceId id) const {
    auto it = baseline_contention_.find(id);
    if (it == baseline_contention_.end() || it->second.windows == 0) {
      return 0.0;
    }
    return it->second.sum / static_cast<double>(it->second.windows);
  }

  struct Output {
    std::vector<ResourceMetrics> all_resources;  // one entry per registered resource
    PolicyInput policy_input;                    // objectives = overloaded resources only
    bool resource_overload = false;              // any resource over threshold
  };

  // Computes the window's metrics from the ledger's books: live tasks are
  // walked in ascending-TaskId order (the ledger's stable live list) and
  // resources in ascending-id order, so the output is deterministic.
  // `exec_time` is T_base: the window's *productive* execution time
  // (completed request time attributed to the window, floored at the window
  // length). The §3.5 normalization is then C_r = D_r / (T_base + D_r),
  // bounded and per-resource. `window_start` clips the open wait/hold
  // intervals of live tasks to this window; closed intervals are expected in
  // the resources' window counters.
  Output Estimate(TaskLedger& ledger, TimeMicros exec_time, TimeMicros window_start,
                  TimeMicros now);

 private:
  AtroposConfig config_;
  bool calibrating_ = true;
  struct Baseline {
    double sum = 0.0;
    uint64_t windows = 0;
  };
  std::map<ResourceId, Baseline> baseline_contention_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_ESTIMATOR_H_
