#include "src/atropos/detector.h"

#include <algorithm>
#include <vector>

namespace atropos {

std::string_view SignalName(OverloadDetector::Signal signal) {
  switch (signal) {
    case OverloadDetector::Signal::kCalibrating:
      return "calibrating";
    case OverloadDetector::Signal::kNormal:
      return "normal";
    case OverloadDetector::Signal::kSuspectedOverload:
      return "suspected_overload";
    case OverloadDetector::Signal::kDemandOverload:
      return "demand_overload";
  }
  return "unknown";
}

OverloadDetector::OverloadDetector(const AtroposConfig& config) : config_(config) {
  if (config_.baseline_p99 > 0) {
    SetBaseline(config_.baseline_p99);
  }
}

void OverloadDetector::SetBaseline(TimeMicros baseline_p99) {
  baseline_p99_ = baseline_p99;
  calibrated_ = true;
}

TimeMicros OverloadDetector::slo_latency() const {
  return static_cast<TimeMicros>(static_cast<double>(baseline_p99_) *
                                 (1.0 + config_.slo_latency_increase));
}

OverloadDetector::Signal OverloadDetector::OnWindow(const WindowSample& sample) {
  if (!calibrated_) {
    // Learn the baseline from the median of the first windows that actually
    // completed work; the median resists a transient spike during startup.
    if (sample.completions > 0) {
      calibration_p99s_.push_back(sample.p99);
      calibration_seen_++;
      if (calibration_seen_ >= config_.calibration_windows) {
        std::vector<TimeMicros> sorted(calibration_p99s_.begin(), calibration_p99s_.end());
        std::sort(sorted.begin(), sorted.end());
        SetBaseline(sorted[sorted.size() / 2]);
      }
    }
    // Track throughput during calibration too.
    peak_rate_ = std::max(peak_rate_, static_cast<double>(sample.completions));
    return Signal::kCalibrating;
  }

  double rate = static_cast<double>(sample.completions);
  bool flat = rate <= peak_rate_ * (1.0 + config_.throughput_flat_tolerance);
  // Slowly decay the peak so a permanent load drop doesn't pin "flat" forever.
  peak_rate_ = std::max(peak_rate_ * 0.995, rate);

  if (sample.completions == 0 && sample.overdue_actives > 0) {
    // A complete stall with a calibrated baseline is the strongest overload
    // signal of all (e.g. every worker blocked behind one lock holder).
    return Signal::kSuspectedOverload;
  }
  // A convoy of overdue in-flight requests is a stall even if fast survivors
  // keep the completion p99 looking healthy.
  if (sample.overdue_actives >= static_cast<uint64_t>(config_.stall_active_threshold)) {
    return Signal::kSuspectedOverload;
  }
  if (sample.p99 <= slo_latency()) {
    return Signal::kNormal;
  }
  return flat ? Signal::kSuspectedOverload : Signal::kDemandOverload;
}

}  // namespace atropos
