// Cancellation victim selection (paper §3.5, Algorithm 1).
//
// The multi-objective policy first filters candidate tasks to the
// non-dominated (Pareto) set over their per-resource gain vectors, then
// scalarizes with the normalized contention levels as weights. Two ablation
// policies reproduce the Fig 13 baselines.

#ifndef SRC_ATROPOS_POLICY_H_
#define SRC_ATROPOS_POLICY_H_

#include <vector>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/types.h"

namespace atropos {

// Everything victim selection needs, assembled by the estimator.
struct PolicyInput {
  // Only resources currently flagged as overloaded participate as objectives.
  std::vector<ResourceMetrics> resources;

  struct Candidate {
    TaskId task = kInvalidTaskId;
    bool cancellable = true;
    // Gains aligned with `resources` (same indexing); normalized to [0, 1]
    // per resource so units are comparable across resource classes.
    std::vector<double> gains;
    std::vector<double> current_usage;
  };
  std::vector<Candidate> candidates;
};

struct PolicyDecision {
  TaskId victim = kInvalidTaskId;
  double score = 0.0;
  bool found() const { return victim != kInvalidTaskId; }
};

// Optional decision trace: how every candidate fared, for the flight
// recorder. Filled only when a non-null pointer is passed to the selectors,
// so the normal control path pays nothing for it.
struct PolicyExplain {
  struct Entry {
    TaskId task = kInvalidTaskId;
    bool cancellable = false;
    bool pareto = false;  // survived the non-dominated filter
    double score = 0.0;   // scalarized score (0 when not scored)
    std::vector<double> gains;
  };
  std::vector<Entry> entries;
};

// Returns true iff `a` dominates `b`: a is >= b on every objective and
// strictly greater on at least one.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

// Algorithm 1: non-dominated filter + contention-weighted scalarization.
PolicyDecision SelectMultiObjective(const PolicyInput& input, PolicyExplain* explain = nullptr);

// Fig 13 baseline 1: greedy — highest gain on the single most contended
// resource.
PolicyDecision SelectHeuristic(const PolicyInput& input, PolicyExplain* explain = nullptr);

// Fig 13 baseline 2: multi-objective shape, but scores use current usage
// instead of predicted future gain.
PolicyDecision SelectCurrentUsage(const PolicyInput& input, PolicyExplain* explain = nullptr);

PolicyDecision SelectVictim(PolicyKind kind, const PolicyInput& input,
                            PolicyExplain* explain = nullptr);

}  // namespace atropos

#endif  // SRC_ATROPOS_POLICY_H_
