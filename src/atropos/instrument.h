// Drop-in instrumented synchronization primitives.
//
// These wrap the simulator's blocking primitives and emit the Atropos tracing
// stream (getResource / freeResource / slowByResource bracketing) to an
// OverloadController — the library-side equivalent of the hand-placed
// instrumentation the paper adds to MySQL (Fig 8). Applications built on them
// get per-task resource accounting for free.

#ifndef SRC_ATROPOS_INSTRUMENT_H_
#define SRC_ATROPOS_INSTRUMENT_H_

#include "src/atropos/controller.h"
#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace atropos {

// Reader-writer lock reporting waits and holds for task `key` against
// `resource`. The tracer may be null (tracing disabled, e.g. overhead
// baselines).
class InstrumentedRwLock {
 public:
  InstrumentedRwLock(Executor& executor, OverloadController* tracer, ResourceId resource,
                     CancelMode cancel_mode = CancelMode::kSmart)
      : lock_(executor), tracer_(tracer), resource_(resource) {
    lock_.set_cancel_mode(cancel_mode);
  }

  Task<Status> AcquireShared(uint64_t key, CancelToken* token);
  Task<Status> AcquireExclusive(uint64_t key, CancelToken* token);
  void ReleaseShared(uint64_t key);
  void ReleaseExclusive(uint64_t key);

  SimRwLock& raw() { return lock_; }

 private:
  SimRwLock lock_;
  OverloadController* tracer_;
  ResourceId resource_;
};

// Mutex variant (WAL lock, keyspace lock, ...).
class InstrumentedMutex {
 public:
  InstrumentedMutex(Executor& executor, OverloadController* tracer, ResourceId resource,
                    CancelMode cancel_mode = CancelMode::kSmart)
      : lock_(executor), tracer_(tracer), resource_(resource) {
    lock_.set_cancel_mode(cancel_mode);
  }

  Task<Status> Acquire(uint64_t key, CancelToken* token);
  void Release(uint64_t key);

  SimMutex& raw() { return lock_; }

 private:
  SimMutex lock_;
  OverloadController* tracer_;
  ResourceId resource_;
};

// Counting semaphore reported as a QUEUE resource: the wait is time queued,
// the hold is time executing with the slot (exactly the paper's queue
// contention definition).
class InstrumentedSemaphore {
 public:
  InstrumentedSemaphore(Executor& executor, uint64_t capacity, OverloadController* tracer,
                        ResourceId resource, CancelMode cancel_mode = CancelMode::kSmart)
      : sem_(executor, capacity), tracer_(tracer), resource_(resource) {
    sem_.set_cancel_mode(cancel_mode);
  }

  Task<Status> Acquire(uint64_t key, CancelToken* token, uint64_t units = 1);
  void Release(uint64_t key, uint64_t units = 1);

  SimSemaphore& raw() { return sem_; }

 private:
  SimSemaphore sem_;
  OverloadController* tracer_;
  ResourceId resource_;
};

// Adapter forwarding CpuPool / IoDevice per-operation usage reports to the
// controller stream for system resources (cases c8, c12).
class UsageReporter final : public UsageObserver {
 public:
  UsageReporter(OverloadController* tracer, ResourceId resource, uint64_t key)
      : tracer_(tracer), resource_(resource), key_(key) {}

  void OnUsage(TimeMicros waited, TimeMicros used) override;

 private:
  OverloadController* tracer_;
  ResourceId resource_;
  uint64_t key_;
};

// FIFO concurrency limiter with an adjustable limit; the mechanism behind
// DARC worker reservations and PARTIES client shares. Reported as a QUEUE
// resource when a tracer is supplied.
class AdjustableLimiter final : public WaiterOwner {
 public:
  AdjustableLimiter(Executor& executor, int64_t limit, OverloadController* tracer = nullptr,
                    ResourceId resource = kInvalidResourceId)
      : executor_(executor), limit_(limit), tracer_(tracer), resource_(resource) {}

  Task<Status> Acquire(uint64_t key, CancelToken* token);
  void Release(uint64_t key);

  // Raising the limit admits queued waiters immediately; lowering it takes
  // effect as current holders release.
  void SetLimit(int64_t limit);
  int64_t limit() const { return limit_; }
  int64_t in_use() const { return in_use_; }
  size_t waiter_count() const { return waiters_.size(); }

  void CancelWaiter(WaitNode& node) override;

 private:
  class Acquirer {
   public:
    Acquirer(AdjustableLimiter& limiter, CancelToken* token) : limiter_(limiter), token_(token) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() { return node_.result; }

   private:
    AdjustableLimiter& limiter_;
    CancelToken* token_;
    WaitNode node_;
  };

  void GrantWaiters();

  Executor& executor_;
  int64_t limit_;
  int64_t in_use_ = 0;
  WaitList waiters_;
  OverloadController* tracer_;
  ResourceId resource_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_INSTRUMENT_H_
