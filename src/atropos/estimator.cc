#include "src/atropos/estimator.h"

#include <algorithm>
#include <vector>

namespace atropos {

namespace {

// Future-gain factor (1 - p) / p of §3.4: a task at 10% progress with usage U
// is predicted to demand 9U more; one at 90% only U/9.
double FutureFactor(double progress) {
  return (1.0 - progress) / progress;
}

}  // namespace

Estimator::Output Estimator::Estimate(TaskLedger& ledger, TimeMicros exec_time,
                                      TimeMicros window_start, TimeMicros now) {
  Output out;
  const size_t resource_count = ledger.resource_count();

  // ---- Per-resource window wait/hold: closed intervals were folded into
  // the resource windows as they completed; add the still-open intervals of
  // live tasks, clipped to this window. Deltas are dense (indexed by
  // resource slot = id - 1); untouched usage cells are all-zero and
  // contribute nothing, exactly like absent map entries did.
  struct Delta {
    TimeMicros wait = 0;
    TimeMicros hold = 0;
  };
  std::vector<Delta> deltas(resource_count);
  for (uint32_t slot = ledger.live_head(); slot != TaskLedger::kNilSlot;
       slot = ledger.next_live(slot)) {
    const TaskResourceUsage* row = ledger.usage_row(slot);
    for (size_t r = 0; r < resource_count; r++) {
      const TaskResourceUsage& usage = row[r];
      if (usage.waiting) {
        TimeMicros from = std::max(usage.wait_started_at, window_start);
        if (now > from) {
          deltas[r].wait += now - from;
        }
      }
      if (usage.active_units > 0) {
        TimeMicros from = std::max(usage.hold_started_at, window_start);
        if (now > from) {
          deltas[r].hold += now - from;
        }
      }
    }
  }
  for (size_t r = 0; r < resource_count; r++) {
    const ResourceRecord& res = ledger.resource_at(r);
    deltas[r].wait += res.window.wait_time;
    deltas[r].hold += res.window.hold_time;
  }

  // ---- Contention levels (§3.4 formulas, §3.5 normalization).
  double t_exec = static_cast<double>(std::max<TimeMicros>(exec_time, 1));
  for (size_t r = 0; r < resource_count; r++) {
    const ResourceRecord& res = ledger.resource_at(r);
    ResourceMetrics m;
    m.id = res.id;
    m.cls = res.cls;
    const Delta d = deltas[r];
    switch (res.cls) {
      case ResourceClass::kMemory: {
        // Eviction ratio sum(E_i) / sum(M_i); D_r = eviction time weighted by
        // the contention level.
        double gets = static_cast<double>(std::max<uint64_t>(res.window.gets, 1));
        m.contention_raw = static_cast<double>(res.window.slow_events) / gets;
        m.delay = static_cast<TimeMicros>(static_cast<double>(d.wait) * std::min(m.contention_raw, 1.0));
        break;
      }
      case ResourceClass::kLock:
      case ResourceClass::kQueue:
      case ResourceClass::kCpu:
      case ResourceClass::kIo: {
        // Wait-vs-use ratio; D_r is the measured waiting time.
        double hold = static_cast<double>(std::max<TimeMicros>(d.hold, 1));
        m.contention_raw = static_cast<double>(d.wait) / hold;
        m.delay = d.wait;
        break;
      }
    }
    // Normalized per resource as the fraction of window execution lost to
    // this resource: D_r / (T_base + D_r). Bounded in [0, 1) and independent
    // of stalls on *other* resources (a lock convoy must not dilute the
    // buffer pool's contention by inflating a shared denominator).
    m.contention_norm =
        static_cast<double>(m.delay) / (t_exec + static_cast<double>(m.delay));
    if (calibrating_) {
      // Record the healthy level; nothing is overloaded while calibrating.
      Baseline& baseline = baseline_contention_[m.id];
      baseline.sum += m.contention_norm;
      baseline.windows++;
    } else {
      // Contention saturates near 1.0 in a full stall (T_exec then consists
      // of the blocked time itself), so the baseline-scaled floor is capped
      // below that ceiling.
      double floor = std::max(config_.contention_threshold,
                              std::min(config_.contention_baseline_factor *
                                           BaselineContention(m.id),
                                       0.75));
      m.overloaded = m.contention_norm >= floor;
    }
    if (m.overloaded) {
      out.resource_overload = true;
    }
    out.all_resources.push_back(m);
  }

  // ---- Policy input: objectives are the overloaded resources.
  for (const ResourceMetrics& m : out.all_resources) {
    if (m.overloaded) {
      out.policy_input.resources.push_back(m);
    }
  }
  const auto& objectives = out.policy_input.resources;
  if (objectives.empty()) {
    return out;
  }

  // Raw gains per (task, objective). Live-list order is ascending TaskId, so
  // candidate order matches the map-based estimator byte for byte.
  struct Row {
    TaskId task;
    bool cancellable;
    std::vector<double> gain;
    std::vector<double> current;
  };
  std::vector<Row> rows;
  double min_time_gain =
      config_.min_gain_window_fraction * static_cast<double>(config_.window);
  for (uint32_t slot = ledger.live_head(); slot != TaskLedger::kNilSlot;
       slot = ledger.next_live(slot)) {
    const TaskRecord& task = ledger.task_at(slot);
    if (!task.alive) {
      continue;
    }
    const TaskResourceUsage* row_cells = ledger.usage_row(slot);
    Row row;
    row.task = task.id;
    row.cancellable = task.cancellable && task.cancel_count < config_.max_cancels_per_task;
    double factor = FutureFactor(task.Progress(config_.default_progress));
    bool significant = false;
    for (const ResourceMetrics& m : objectives) {
      const TaskResourceUsage& u = row_cells[static_cast<size_t>(m.id) - 1];
      if (!u.touched) {
        // Never-touched pair: zero contribution, and — exactly like the
        // absent map entry it replaces — exempt from the significance test.
        row.gain.push_back(0.0);
        row.current.push_back(0.0);
        continue;
      }
      double current = 0.0;
      if (m.cls == ResourceClass::kMemory) {
        // Pages (units) held right now.
        current = static_cast<double>(u.held_now());
      } else {
        // Accumulated holding/usage time (µs).
        current = static_cast<double>(u.HoldTimeAt(now));
      }
      row.current.push_back(current);
      double gain = current * factor;
      row.gain.push_back(gain);
      double floor = m.cls == ResourceClass::kMemory ? config_.min_gain_memory_units
                                                     : min_time_gain;
      if (gain >= floor) {
        significant = true;
      }
    }
    // A task predicted to release less than the significance floor resolves
    // itself faster than cancelling it would; it is never a useful victim.
    if (!significant) {
      row.cancellable = false;
    }
    rows.push_back(std::move(row));
  }

  // Normalize each objective column to [0, 1] so that units (pages vs µs) are
  // comparable when scalarized (§3.5's "make contention level comparable"
  // requirement applies to gains too once multiple resources mix).
  for (size_t r = 0; r < objectives.size(); r++) {
    double max_gain = 0.0;
    double max_cur = 0.0;
    for (const Row& row : rows) {
      max_gain = std::max(max_gain, row.gain[r]);
      max_cur = std::max(max_cur, row.current[r]);
    }
    for (Row& row : rows) {
      if (max_gain > 0.0) {
        row.gain[r] /= max_gain;
      }
      if (max_cur > 0.0) {
        row.current[r] /= max_cur;
      }
    }
  }

  for (Row& row : rows) {
    PolicyInput::Candidate c;
    c.task = row.task;
    c.cancellable = row.cancellable;
    c.gains = std::move(row.gain);
    c.current_usage = std::move(row.current);
    out.policy_input.candidates.push_back(std::move(c));
  }
  return out;
}

}  // namespace atropos
