#include "src/atropos/runtime.h"

#include <algorithm>

#include "src/common/logging.h"

namespace atropos {

std::string_view ResourceClassName(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::kLock:
      return "lock";
    case ResourceClass::kMemory:
      return "memory";
    case ResourceClass::kQueue:
      return "queue";
    case ResourceClass::kCpu:
      return "cpu";
    case ResourceClass::kIo:
      return "io";
  }
  return "unknown";
}

namespace {

std::string_view SignalName(OverloadDetector::Signal signal) {
  switch (signal) {
    case OverloadDetector::Signal::kCalibrating:
      return "calibrating";
    case OverloadDetector::Signal::kNormal:
      return "normal";
    case OverloadDetector::Signal::kSuspectedOverload:
      return "suspected_overload";
    case OverloadDetector::Signal::kDemandOverload:
      return "demand_overload";
  }
  return "unknown";
}

}  // namespace

AtroposRuntime::AtroposRuntime(Clock* clock, AtroposConfig config)
    : clock_(clock),
      config_(config),
      detector_(config),
      estimator_(config),
      effective_mode_(config.timestamp_mode) {
  window_start_ = clock_->NowMicros();
  cached_now_ = window_start_;
}

ResourceId AtroposRuntime::RegisterResource(std::string name, ResourceClass cls) {
  ResourceId id = next_resource_id_++;
  ResourceRecord rec;
  rec.id = id;
  rec.cls = cls;
  rec.name = std::move(name);
  resources_.emplace(id, std::move(rec));
  return id;
}

const ResourceRecord* AtroposRuntime::FindResource(ResourceId id) const {
  auto it = resources_.find(id);
  return it == resources_.end() ? nullptr : &it->second;
}

const TaskRecord* AtroposRuntime::FindTask(uint64_t key) const {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    return nullptr;
  }
  auto t = tasks_.find(it->second);
  return t == tasks_.end() ? nullptr : &t->second;
}

TimeMicros AtroposRuntime::TraceNow() {
  if (effective_mode_ == TimestampMode::kPerEvent) {
    cached_now_ = clock_->NowMicros();
    return cached_now_;
  }
  // Sampled mode: reuse the cached timestamp within the sampling interval —
  // the batching that amortizes timestamp retrieval (§3.2). In a real
  // deployment the refresh is driven by a timer; here the interval check
  // plays that role without a second clock source.
  TimeMicros now = clock_->NowMicros();
  if (now >= cached_now_ + config_.timestamp_sample_interval) {
    cached_now_ = now - now % config_.timestamp_sample_interval;
  }
  return cached_now_;
}

void AtroposRuntime::OnTaskRegistered(uint64_t key, bool background, bool cancellable) {
  TaskId id = next_task_id_++;
  TaskRecord rec;
  rec.id = id;
  rec.key = key;
  rec.created_at = clock_->NowMicros();
  rec.background = background;
  rec.cancellable = cancellable;
  // §4: a re-executed (previously cancelled) task is non-cancellable so the
  // next overload targets a different culprit.
  auto memo = cancelled_keys_.find(key);
  if (memo != cancelled_keys_.end()) {
    rec.cancellable = false;
    cancelled_keys_.erase(memo);
    stats_.cancelled_keys_consumed++;
  }
  // Replace any stale registration under the same key.
  auto old = key_to_task_.find(key);
  if (old != key_to_task_.end()) {
    auto stale = tasks_.find(old->second);
    if (stale != tasks_.end()) {
      RetireTaskAccounting(stale->second);
      tasks_.erase(stale);
    }
  }
  key_to_task_[key] = id;
  tasks_.emplace(id, std::move(rec));
}

void AtroposRuntime::OnTaskFreed(uint64_t key) {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    return;
  }
  auto task = tasks_.find(it->second);
  if (task != tasks_.end()) {
    RetireTaskAccounting(task->second);
    tasks_.erase(task);
  }
  key_to_task_.erase(it);
  active_requests_.erase(key);
}

void AtroposRuntime::RetireTaskAccounting(const TaskRecord& task) {
  for (const auto& [rid, usage] : task.usage) {
    if (usage.active_units == 0) {
      continue;
    }
    auto res = resources_.find(rid);
    if (res != resources_.end()) {
      res->second.leaked_units += usage.active_units;
    }
  }
}

std::vector<AtroposRuntime::ResourceAudit> AtroposRuntime::AuditAccounting() const {
  std::map<ResourceId, uint64_t> live_held;
  for (const auto& [tid, task] : tasks_) {
    for (const auto& [rid, usage] : task.usage) {
      live_held[rid] += usage.active_units;
    }
  }
  std::vector<ResourceAudit> out;
  out.reserve(resources_.size());
  for (const auto& [rid, res] : resources_) {
    ResourceAudit row;
    row.id = rid;
    row.name = res.name;
    row.cls = res.cls;
    row.acquired = res.total_gets;
    row.released = res.total_frees;
    row.leaked = res.leaked_units;
    row.overfreed = res.overfreed_units;
    auto it = live_held.find(rid);
    row.live_held = it == live_held.end() ? 0 : it->second;
    out.push_back(std::move(row));
  }
  return out;
}

TaskRecord* AtroposRuntime::Lookup(uint64_t key) {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    stats_.ignored_events++;
    return nullptr;
  }
  return &tasks_.find(it->second)->second;
}

TaskResourceUsage* AtroposRuntime::UsageFor(uint64_t key, ResourceId resource) {
  TaskRecord* task = Lookup(key);
  if (task == nullptr) {
    return nullptr;
  }
  return &task->usage[resource];
}

void AtroposRuntime::OnGet(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_.trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->acquired += amount;
  if (usage->active_units == 0) {
    usage->hold_started_at = now;
  }
  usage->active_units += amount;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    // Window gets count API calls, not units: the §3.4 eviction ratio is
    // "slowByResource calls / getResource calls" regardless of whether a call
    // acquires one page or a multi-KB allocation.
    res->second.window.gets++;
    res->second.total_gets += amount;
  }
}

void AtroposRuntime::OnFree(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_.trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->released += amount;
  uint64_t dec = std::min(usage->active_units, amount);
  usage->active_units -= dec;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.total_frees += amount;
    res->second.overfreed_units += amount - dec;
  }
  if (usage->active_units == 0 && dec > 0 && now > usage->hold_started_at) {
    usage->hold_time += now - usage->hold_started_at;
    if (res != resources_.end()) {
      // Window counters take the part of the closed interval inside this
      // window; earlier parts were visible as an open interval before.
      TimeMicros from = std::max(usage->hold_started_at, window_start_);
      if (now > from) {
        res->second.window.hold_time += now - from;
      }
    }
  }
  if (res != resources_.end()) {
    res->second.window.frees += amount;
  }
}

void AtroposRuntime::OnWaitBegin(uint64_t key, ResourceId resource) {
  stats_.trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || usage->waiting) {
    return;
  }
  usage->waiting = true;
  usage->wait_started_at = TraceNow();
}

void AtroposRuntime::OnWaitEnd(uint64_t key, ResourceId resource) {
  stats_.trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || !usage->waiting) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->waiting = false;
  if (now > usage->wait_started_at) {
    usage->wait_time += now - usage->wait_started_at;
  }
  usage->slow_events++;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.window.slow_events++;
    res->second.total_slow_events++;
    TimeMicros from = std::max(usage->wait_started_at, window_start_);
    if (now > from) {
      res->second.window.wait_time += now - from;
    }
  }
}

void AtroposRuntime::OnUsage(uint64_t key, ResourceId resource, TimeMicros waited,
                             TimeMicros used) {
  stats_.trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  usage->wait_time += waited;
  usage->hold_time += used;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.window.wait_time += waited;
    res->second.window.hold_time += used;
    if (waited > 0) {
      res->second.window.slow_events++;
      res->second.total_slow_events++;
    }
  }
  if (waited > 0) {
    usage->slow_events++;
  }
}

void AtroposRuntime::OnRequestStart(uint64_t key, int request_type, int client_class) {
  auto [it, inserted] = active_requests_.try_emplace(key);
  if (!inserted) {
    // A second start under a live key: the application reused the key without
    // reporting the prior request's end. Treat it as an implicit end — the
    // stale ActiveRequest would otherwise silently vanish, mis-attributing
    // overdue_actives to the wrong start time with no trace of the loss.
    stats_.request_restarts++;
  }
  it->second = ActiveRequest{clock_->NowMicros(), client_class};
}

void AtroposRuntime::OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                                  int client_class) {
  if (config_.slo_client_class < 0 || client_class == config_.slo_client_class) {
    window_latency_.Record(latency);
    window_completions_++;
  }
  // T_exec contribution, clipped to the window so long requests don't inflate
  // the denominator with execution that belongs to earlier windows.
  TimeMicros now = clock_->NowMicros();
  TimeMicros in_window = now > window_start_ ? now - window_start_ : 0;
  window_exec_time_ += std::min(latency, in_window);
  active_requests_.erase(key);
}

void AtroposRuntime::OnProgress(uint64_t key, uint64_t done, uint64_t total) {
  TaskRecord* task = Lookup(key);
  if (task == nullptr) {
    return;
  }
  task->has_progress = true;
  task->progress_done = done;
  task->progress_total = total;
}

void AtroposRuntime::Tick() {
  TimeMicros now = clock_->NowMicros();
  stats_.windows++;

  // ---- Detection (§3.3).
  OverloadDetector::WindowSample sample;
  sample.completions = window_completions_;
  sample.p99 = window_latency_.P99();
  if (detector_.calibrated()) {
    TimeMicros slo = detector_.slo_latency();
    for (const auto& [key, req] : active_requests_) {
      if (config_.slo_client_class >= 0 && req.client_class != config_.slo_client_class) {
        continue;  // long-running batch requests are not SLO violations
      }
      if (now > req.start && now - req.start > slo) {
        sample.overdue_actives++;
      }
    }
  }
  OverloadDetector::Signal signal = detector_.OnWindow(sample);

  // ---- Flight recording. `tracing` gates all payload construction so a
  // detached or disabled recorder costs one branch per window.
  const bool tracing = recorder_ != nullptr && recorder_->enabled();
  if (tracing) {
    FlightEvent ev;
    ev.time = now;
    ev.kind = ObsEventKind::kWindowClosed;
    ev.value = static_cast<double>(sample.p99);
    ev.label = std::string(SignalName(signal));
    ev.completions = sample.completions;
    ev.overdue = sample.overdue_actives;
    recorder_->Record(std::move(ev));

    bool overloaded = signal == OverloadDetector::Signal::kSuspectedOverload;
    if (overloaded != recording_overload_) {
      FlightEvent edge;
      edge.time = now;
      edge.kind = overloaded ? ObsEventKind::kOverloadEntered : ObsEventKind::kOverloadExited;
      edge.label = std::string(SignalName(signal));
      recorder_->Record(std::move(edge));
      recording_overload_ = overloaded;
    }
  }

  // Aggressive per-event timestamps while an overload is suspected (§3.2).
  effective_mode_ = signal == OverloadDetector::Signal::kSuspectedOverload
                        ? TimestampMode::kPerEvent
                        : config_.timestamp_mode;

  // ---- Estimation (§3.4). T_base is the window's productive execution
  // time: completed request time, floored at the window length. In-flight
  // blocked time is deliberately excluded — it shows up as the per-resource
  // delay D_r, not in the shared denominator.
  TimeMicros exec = std::max<TimeMicros>(window_exec_time_, now - window_start_);
  estimator_.SetCalibrating(!detector_.calibrated());
  Estimator::Output est = estimator_.Estimate(tasks_, resources_, exec, window_start_, now);
  last_metrics_ = est.all_resources;

  calm_windows_ = est.resource_overload ? 0 : calm_windows_ + 1;
  if (!est.resource_overload) {
    calm_windows_total_++;
    // Age the §4 cancelled-key memo: an entry that survived
    // `reexec_calm_windows` calm windows since its cancellation belongs to a
    // client that never retried — without aging, such keys accumulate
    // forever under sustained traffic. The floor of one calm window keeps
    // insertion (always in an overload window) and eviction in distinct
    // windows even when reexec_calm_windows is 0.
    const uint64_t horizon =
        static_cast<uint64_t>(std::max(config_.reexec_calm_windows, 1));
    for (auto it = cancelled_keys_.begin(); it != cancelled_keys_.end();) {
      if (calm_windows_total_ - it->second >= horizon) {
        it = cancelled_keys_.erase(it);
        stats_.cancelled_keys_evicted++;
      } else {
        ++it;
      }
    }
  }

  // ---- Cancellation decision (§3.5–3.6).
  switch (signal) {
    case OverloadDetector::Signal::kSuspectedOverload: {
      stats_.suspected_overload_windows++;
      if (!est.resource_overload) {
        // Regular overload: defer to whatever admission control is in place
        // (§3.3); Atropos itself takes no action.
        break;
      }
      stats_.resource_overload_windows++;
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kContentionSnapshot;
        for (const ResourceMetrics& m : est.all_resources) {
          ObsResourceSample s;
          s.id = m.id;
          auto res = resources_.find(m.id);
          if (res != resources_.end()) {
            s.name = res->second.name;
          }
          s.cls = std::string(ResourceClassName(m.cls));
          s.contention_raw = m.contention_raw;
          s.contention_norm = m.contention_norm;
          s.delay_us = static_cast<uint64_t>(m.delay);
          s.overloaded = m.overloaded;
          ev.resources.push_back(std::move(s));
        }
        recorder_->Record(std::move(ev));
      }
      if (!config_.cancellation_enabled) {
        break;
      }
      if (!has_cancel_initiator()) {
        // §3.1: cancellation must route through the application's registered
        // safe initiator. With none registered, issuing a cancel would mark
        // the victim cancelled (fairness bookkeeping, re-registration rules)
        // without the application ever observing it.
        stats_.cancels_suppressed_no_initiator++;
        break;
      }
      if (ever_cancelled_ && now < last_cancel_time_ + config_.min_cancel_interval) {
        stats_.cancels_suppressed_interval++;
        break;
      }
      PolicyExplain explain;
      PolicyDecision decision =
          SelectVictim(config_.policy, est.policy_input, tracing ? &explain : nullptr);
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kPolicyDecision;
        ev.value = decision.score;
        for (const PolicyExplain::Entry& entry : explain.entries) {
          ObsCandidateSample c;
          auto task = tasks_.find(entry.task);
          c.key = task != tasks_.end() ? task->second.key : 0;
          if (entry.task == decision.victim) {
            ev.key = c.key;
          }
          c.cancellable = entry.cancellable;
          c.pareto = entry.pareto;
          c.score = entry.score;
          c.gains = entry.gains;
          ev.candidates.push_back(std::move(c));
        }
        ev.label = decision.found() ? "victim_selected" : "no_victim";
        recorder_->Record(std::move(ev));
      }
      if (!decision.found()) {
        stats_.cancels_suppressed_no_victim++;
        if (GetLogLevel() <= LogLevel::kDebug) {
          for (const auto& m : est.policy_input.resources) {
            LOG_DEBUG("no-victim: resource %u C=%.3f delay=%llu", m.id, m.contention_norm,
                      static_cast<unsigned long long>(m.delay));
          }
          for (const auto& c : est.policy_input.candidates) {
            double g = c.gains.empty() ? 0.0 : c.gains[0];
            if (g > 0.0 || !c.cancellable) {
              const TaskRecord& rec = tasks_.find(c.task)->second;
              LOG_DEBUG("  cand key=%llu cancellable=%d gain0=%.4f",
                        static_cast<unsigned long long>(rec.key), c.cancellable ? 1 : 0, g);
            }
          }
        }
        break;
      }
      TaskRecord& victim = tasks_.find(decision.victim)->second;
      victim.cancel_count++;
      victim.cancelled_at = now;
      if (cancelled_keys_.emplace(victim.key, calm_windows_total_).second) {
        stats_.cancelled_keys_inserted++;
      }
      last_cancel_time_ = now;
      ever_cancelled_ = true;
      stats_.cancels_issued++;
      LOG_INFO("atropos: cancelling task key=%llu score=%.3f",
               static_cast<unsigned long long>(victim.key), decision.score);
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kCancelIssued;
        ev.key = victim.key;
        ev.value = decision.score;
        // label is filled by the layer that can name the request type, via
        // FlightRecorder::AnnotateLast right after the cancel observer fires.
        recorder_->Record(std::move(ev));
      }
      if (cancel_observer_) {
        cancel_observer_(victim.key, decision.score);
      }
      // Safe cancellation through the application's initiator (§3.6).
      if (cancel_action_) {
        cancel_action_(victim.key);
      } else if (surface_ != nullptr) {
        surface_->CancelTask(victim.key, CancelReason::kCulprit);
      }
      break;
    }
    case OverloadDetector::Signal::kDemandOverload:
      stats_.demand_overload_windows++;
      break;
    case OverloadDetector::Signal::kNormal:
    case OverloadDetector::Signal::kCalibrating:
      break;
  }

  // ---- Roll the window.
  window_latency_.Reset();
  window_completions_ = 0;
  window_exec_time_ = 0;
  window_start_ = now;
  for (auto& [rid, res] : resources_) {
    res.window.Reset();
  }
}

}  // namespace atropos
