#include "src/atropos/runtime.h"

#include "src/common/logging.h"

namespace atropos {

std::string_view ResourceClassName(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::kLock:
      return "lock";
    case ResourceClass::kMemory:
      return "memory";
    case ResourceClass::kQueue:
      return "queue";
    case ResourceClass::kCpu:
      return "cpu";
    case ResourceClass::kIo:
      return "io";
  }
  return "unknown";
}

AtroposRuntime::AtroposRuntime(Clock* clock, AtroposConfig config)
    : AtroposRuntime(clock, config, DecisionPipeline::Default(config)) {}

AtroposRuntime::AtroposRuntime(Clock* clock, AtroposConfig config, DecisionPipeline pipeline)
    : clock_(clock),
      config_(config),
      ledger_(clock, config, &stats_),
      window_(clock, config, &stats_),
      pipeline_(std::move(pipeline)),
      breakwater_(dynamic_cast<const BreakwaterDetectionStage*>(pipeline_.detection.get())),
      dispatcher_(config, &stats_) {}

void AtroposRuntime::OnTaskRegistered(uint64_t key, bool background, bool cancellable) {
  // §4: a re-executed (previously cancelled) task is non-cancellable so the
  // next overload targets a different culprit.
  if (dispatcher_.ConsumeCancelledKey(key)) {
    cancellable = false;
  }
  ledger_.RegisterTask(key, background, cancellable);
}

void AtroposRuntime::OnTaskFreed(uint64_t key) {
  ledger_.FreeTask(key);
  window_.DropKey(key);
}

void AtroposRuntime::Tick() {
  TimeMicros now = clock_->NowMicros();
  stats_.windows++;

  // ---- Detection (§3.3).
  OverloadDetector::WindowSample sample;
  sample.completions = window_.completions();
  sample.p99 = window_.P99();
  if (pipeline_.detection->calibrated()) {
    sample.overdue_actives = window_.CountOverdue(now, pipeline_.detection->slo_latency());
  }
  OverloadDetector::Signal signal = pipeline_.detection->OnWindow(sample);

  // ---- Flight recording. `tracing` gates all payload construction so a
  // detached or disabled recorder costs one branch per window.
  const bool tracing = recorder_ != nullptr && recorder_->enabled();
  if (tracing) {
    FlightEvent ev;
    ev.time = now;
    ev.kind = ObsEventKind::kWindowClosed;
    ev.value = static_cast<double>(sample.p99);
    ev.label = std::string(SignalName(signal));
    ev.completions = sample.completions;
    ev.overdue = sample.overdue_actives;
    recorder_->Record(std::move(ev));

    bool overloaded = signal == OverloadDetector::Signal::kSuspectedOverload;
    if (overloaded != recording_overload_) {
      FlightEvent edge;
      edge.time = now;
      edge.kind = overloaded ? ObsEventKind::kOverloadEntered : ObsEventKind::kOverloadExited;
      edge.label = std::string(SignalName(signal));
      recorder_->Record(std::move(edge));
      recording_overload_ = overloaded;
    }
  }

  // Aggressive per-event timestamps while an overload is suspected (§3.2).
  ledger_.SetEffectiveMode(signal == OverloadDetector::Signal::kSuspectedOverload
                               ? TimestampMode::kPerEvent
                               : config_.timestamp_mode);

  // ---- Estimation (§3.4). T_base is the window's productive execution
  // time: completed request time, floored at the window length. In-flight
  // blocked time is deliberately excluded — it shows up as the per-resource
  // delay D_r, not in the shared denominator.
  pipeline_.estimation->SetCalibrating(!pipeline_.detection->calibrated());
  Estimator::Output est = pipeline_.estimation->Estimate(
      ledger_, window_.ExecTimeFloored(now), ledger_.window_start(), now);
  last_metrics_ = est.all_resources;

  // §4 calm-window accounting and memo aging.
  dispatcher_.ObserveWindow(est.resource_overload);

  // ---- Cancellation decision (§3.5–3.6).
  switch (signal) {
    case OverloadDetector::Signal::kSuspectedOverload: {
      stats_.suspected_overload_windows++;
      if (!est.resource_overload) {
        // Regular overload: defer to whatever admission control is in place
        // (§3.3); Atropos itself takes no action.
        break;
      }
      stats_.resource_overload_windows++;
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kContentionSnapshot;
        for (const ResourceMetrics& m : est.all_resources) {
          ObsResourceSample s;
          s.id = m.id;
          const ResourceRecord* res = ledger_.FindResource(m.id);
          if (res != nullptr) {
            s.name = res->name;
          }
          s.cls = std::string(ResourceClassName(m.cls));
          s.contention_raw = m.contention_raw;
          s.contention_norm = m.contention_norm;
          s.delay_us = static_cast<uint64_t>(m.delay);
          s.overloaded = m.overloaded;
          ev.resources.push_back(std::move(s));
        }
        recorder_->Record(std::move(ev));
      }
      if (!config_.cancellation_enabled) {
        break;
      }
      if (!dispatcher_.has_initiator()) {
        // §3.1: cancellation must route through the application's registered
        // safe initiator. With none registered, issuing a cancel would mark
        // the victim cancelled (fairness bookkeeping, re-registration rules)
        // without the application ever observing it.
        stats_.cancels_suppressed_no_initiator++;
        break;
      }
      if (!dispatcher_.AdmitByPacing(now)) {
        break;
      }
      PolicyExplain explain;
      PolicyDecision decision =
          pipeline_.selection->Select(est.policy_input, tracing ? &explain : nullptr);
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kPolicyDecision;
        ev.value = decision.score;
        for (const PolicyExplain::Entry& entry : explain.entries) {
          ObsCandidateSample c;
          TaskRecord* task = ledger_.FindTaskById(entry.task);
          c.key = task != nullptr ? task->key : 0;
          if (entry.task == decision.victim) {
            ev.key = c.key;
          }
          c.cancellable = entry.cancellable;
          c.pareto = entry.pareto;
          c.score = entry.score;
          c.gains = entry.gains;
          ev.candidates.push_back(std::move(c));
        }
        ev.label = decision.found() ? "victim_selected" : "no_victim";
        recorder_->Record(std::move(ev));
      }
      if (!decision.found()) {
        stats_.cancels_suppressed_no_victim++;
        if (GetLogLevel() <= LogLevel::kDebug) {
          for (const auto& m : est.policy_input.resources) {
            LOG_DEBUG("no-victim: resource %u C=%.3f delay=%llu", m.id, m.contention_norm,
                      static_cast<unsigned long long>(m.delay));
          }
          for (const auto& c : est.policy_input.candidates) {
            double g = c.gains.empty() ? 0.0 : c.gains[0];
            if (g > 0.0 || !c.cancellable) {
              const TaskRecord* rec = ledger_.FindTaskById(c.task);
              LOG_DEBUG("  cand key=%llu cancellable=%d gain0=%.4f",
                        static_cast<unsigned long long>(rec != nullptr ? rec->key : 0),
                        c.cancellable ? 1 : 0, g);
            }
          }
        }
        break;
      }
      TaskRecord* victim = ledger_.FindTaskById(decision.victim);
      victim->cancel_count++;
      victim->cancelled_at = now;
      if (tracing) {
        FlightEvent ev;
        ev.time = now;
        ev.kind = ObsEventKind::kCancelIssued;
        ev.key = victim->key;
        ev.value = decision.score;
        // label is filled by the layer that can name the request type, via
        // FlightRecorder::AnnotateLast right after the cancel observer fires —
        // the event must therefore already be recorded when the dispatcher
        // notifies the observer below.
        recorder_->Record(std::move(ev));
      }
      dispatcher_.Dispatch(victim->key, decision.score, now);
      break;
    }
    case OverloadDetector::Signal::kDemandOverload:
      stats_.demand_overload_windows++;
      break;
    case OverloadDetector::Signal::kNormal:
    case OverloadDetector::Signal::kCalibrating:
      break;
  }

  // ---- Roll the window.
  window_.Roll(now);
  ledger_.RollWindow(now);
}

}  // namespace atropos
