// End-to-end overload detection (paper §3.3).
//
// Following the Breakwater-style signal the paper adopts: when windowed p99
// latency exceeds the SLO while throughput stays flat (not growing with the
// latency), the window is flagged as a suspected overload. The estimator then
// confirms whether a specific application resource is the bottleneck.

#ifndef SRC_ATROPOS_DETECTOR_H_
#define SRC_ATROPOS_DETECTOR_H_

#include <deque>
#include <string_view>

#include "src/atropos/config.h"
#include "src/common/clock.h"

namespace atropos {

class OverloadDetector {
 public:
  explicit OverloadDetector(const AtroposConfig& config);

  struct WindowSample {
    uint64_t completions = 0;
    TimeMicros p99 = 0;
    // Number of still-running requests older than the SLO latency. Without
    // this, a hard stall is invisible: blocked requests never complete, so
    // the completion-only p99 is computed over the unaffected survivors and
    // looks healthy. A *count* (not the single oldest age) is used so that
    // one legitimately long-running query does not read as a stall — only a
    // convoy of overdue requests does.
    uint64_t overdue_actives = 0;
  };

  enum class Signal {
    kCalibrating,         // still learning the baseline
    kNormal,              // no SLO violation
    kSuspectedOverload,   // SLO violated with flat throughput
    kDemandOverload,      // SLO violated but throughput still growing
  };

  Signal OnWindow(const WindowSample& sample);

  bool calibrated() const { return calibrated_; }
  TimeMicros baseline_p99() const { return baseline_p99_; }
  // Latency target: baseline p99 * (1 + slo_latency_increase).
  TimeMicros slo_latency() const;

  // Allows scenarios to inject a known non-overloaded baseline instead of
  // calibrating online.
  void SetBaseline(TimeMicros baseline_p99);

 private:
  AtroposConfig config_;
  bool calibrated_ = false;
  TimeMicros baseline_p99_ = 0;

  // Calibration accumulators.
  int calibration_seen_ = 0;
  std::deque<TimeMicros> calibration_p99s_;

  // Recent peak throughput (completions/window) with slow decay, for the
  // "throughput remains flat" test.
  double peak_rate_ = 0.0;
};

// Stable lowercase signal name, used for flight-recorder labels.
std::string_view SignalName(OverloadDetector::Signal signal);

}  // namespace atropos

#endif  // SRC_ATROPOS_DETECTOR_H_
