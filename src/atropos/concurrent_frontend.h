// Concurrent ingestion front-end for the Atropos instrumentation stream.
//
// AtroposRuntime is deliberately single-threaded: its registries, window
// accounting, and control loop are plain maps with no synchronization, which
// keeps the decision logic simple and deterministic. Real applications,
// however, call getResource/freeResource/slowByResource (§3.2) from many
// threads at once, and the paper's overhead argument only holds if those
// calls stay cheap under contention-free parallel traffic.
//
// ConcurrentFrontend bridges the two worlds:
//
//   app thread 1 ──► EventRing (SPSC) ─┐
//   app thread 2 ──► EventRing (SPSC) ─┼─► Tick(): merge by timestamp,
//   app thread N ──► EventRing (SPSC) ─┘   replay into AtroposRuntime,
//                                          then run the control loop
//
// Each producer thread owns one fixed-capacity single-producer/single-
// consumer ring of POD TraceEvents. The hot path is one clock read plus one
// ring slot write — no locks, no allocation, no shared cache lines between
// producers. When a ring is full the event is dropped and counted (lossy-
// with-counter): under the overload conditions Atropos exists for, losing a
// trace event is strictly better than blocking an application thread.
//
// Timestamps are taken at enqueue, not at drain. The drainer replays each
// event through a ReplayClock that presents the enqueue-time clock reading
// to the runtime, so wait/hold attribution and the §3.2 sampled/per-event
// timestamp semantics are exactly those of an application that had called
// the runtime directly at the moment the event happened. Drain order is a
// stable timestamp merge across rings, which makes the pipeline
// deterministic: the same events produce byte-for-byte the same decision
// stream as single-threaded feeding (proved by concurrent_frontend_test).
//
// Threading contract:
//   - Instrumentation hooks: any thread; each calling thread is bound to its
//     own ring on first use (or via an explicit RegisterProducer() handle).
//   - Tick(): exactly one drainer thread (typically the control-loop timer).
//   - Setup (RegisterResource, SetCancelAction, BindMetrics, recorder
//     attachment): single-threaded, before producers start.
//
// Producer lifecycle: a thread that was auto-bound by the hooks may exit at
// any time (live-mode worker pools shrink mid-run). Its thread-local binding
// marks the producer retired on thread exit; the next Tick() drains whatever
// the ring still holds — every event pushed before the exit happens-before
// the retirement store, so none are lost — folds the ring's drop counter into
// the frontend totals, and frees the ring. Explicitly RegisterProducer()ed
// handles are never auto-retired; they stay valid for the frontend's
// lifetime.

#ifndef SRC_ATROPOS_CONCURRENT_FRONTEND_H_
#define SRC_ATROPOS_CONCURRENT_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/atropos/config.h"
#include "src/atropos/controller.h"
#include "src/atropos/malthusian_mutex.h"
#include "src/atropos/runtime.h"
#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"

namespace atropos {

// One instrumentation call, flattened to a fixed-size POD so ring slots are
// trivially copyable and the producer path never allocates.
enum class TraceEventKind : uint8_t {
  kTaskRegistered = 0,
  kTaskFreed = 1,
  kGet = 2,
  kFree = 3,
  kWaitBegin = 4,
  kWaitEnd = 5,
  kRequestStart = 6,
  kRequestEnd = 7,
  kUsage = 8,
  kProgress = 9,
};

struct TraceEvent {
  TimeMicros time = 0;  // clock reading at enqueue (§3.2 attribution)
  uint64_t key = 0;
  uint64_t a = 0;  // amount | waited | done | latency, by kind
  uint64_t b = 0;  // used | total, by kind
  ResourceId resource = kInvalidResourceId;
  int32_t request_type = 0;
  int32_t client_class = 0;
  TraceEventKind kind = TraceEventKind::kGet;
  bool background = false;
  bool cancellable = true;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "ring slots must be memcpy-able");

// Fixed-capacity single-producer/single-consumer ring. Push is producer-
// thread-only, TryPop consumer-thread-only; the two sides synchronize through
// the head/tail indices (release on publish, acquire on read). A full ring
// drops the event and counts it — producers never block.
class EventRing {
 public:
  explicit EventRing(size_t capacity);

  // Producer side. Returns false (and counts the drop) when full.
  bool Push(const TraceEvent& ev);

  // Consumer side. Returns false when empty.
  bool TryPop(TraceEvent* out);

  // Consumer side, batched: pops up to `max` events into `out`, returning the
  // number popped. One acquire load of the published tail and at most two
  // memcpy spans (wrap-around), then a single release store of the head —
  // amortizing the per-event fence traffic TryPop pays.
  size_t PopBatch(TraceEvent* out, size_t max);

  // Racy-but-monotone observations, safe from any thread.
  size_t SizeApprox() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  size_t mask_;
  // Producer and consumer indices on separate cache lines so the two sides
  // don't false-share.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next write (producer-owned)
  alignas(64) std::atomic<uint64_t> head_{0};  // next read (consumer-owned)
  alignas(64) std::atomic<uint64_t> dropped_{0};
};

// Clock wrapper the frontend hands to its runtime: during drain it presents
// the event's enqueue-time reading, otherwise it delegates to the real clock.
// Only the drainer thread touches the replay state.
class ReplayClock final : public Clock {
 public:
  explicit ReplayClock(Clock* real) : real_(real) {}

  TimeMicros NowMicros() const override {
    return replaying_ ? replay_time_ : real_->NowMicros();
  }

  void BeginReplay(TimeMicros t) {
    replaying_ = true;
    replay_time_ = t;
  }
  void EndReplay() { replaying_ = false; }

 private:
  Clock* real_;
  bool replaying_ = false;
  TimeMicros replay_time_ = 0;
};

class ConcurrentFrontend final : public OverloadController {
 public:
  struct Options {
    // Per-producer ring capacity, rounded up to a power of two. Sized for
    // one control window of events from one thread; overflow is counted.
    size_t ring_capacity = 1 << 14;
  };

  ConcurrentFrontend(Clock* clock, AtroposConfig config, Options options);
  ConcurrentFrontend(Clock* clock, AtroposConfig config);
  ~ConcurrentFrontend() override;

  std::string_view name() const override { return "atropos_concurrent"; }

  // Explicit per-thread producer handle. One handle == one SPSC ring == one
  // producing thread (the SPSC discipline is the caller's responsibility when
  // handles are held explicitly; the OverloadController hooks below bind the
  // calling thread automatically instead). Handles stay valid for the
  // frontend's lifetime. Thread-safe.
  // Each hook returns true when the event reached the ring and false when a
  // full ring dropped (and counted) it — callers that need loss-free delivery
  // (benchmarks, batch loaders) can retry on false as backpressure; the
  // OverloadController facade below ignores the result (lossy-with-counter).
  class Producer {
   public:
    bool OnTaskRegistered(uint64_t key, bool background, bool cancellable = true);
    bool OnTaskFreed(uint64_t key);
    bool OnGet(uint64_t key, ResourceId resource, uint64_t amount);
    bool OnFree(uint64_t key, ResourceId resource, uint64_t amount);
    bool OnWaitBegin(uint64_t key, ResourceId resource);
    bool OnWaitEnd(uint64_t key, ResourceId resource);
    bool OnRequestStart(uint64_t key, int request_type, int client_class);
    bool OnRequestEnd(uint64_t key, TimeMicros latency, int request_type, int client_class);
    bool OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used);
    bool OnProgress(uint64_t key, uint64_t done, uint64_t total);

    uint64_t dropped() const { return ring_.dropped(); }

   private:
    friend class ConcurrentFrontend;
    Producer(Clock* clock, size_t ring_capacity) : clock_(clock), ring_(ring_capacity) {}
    bool Push(TraceEvent ev);

    Clock* clock_;
    EventRing ring_;
    // Set (release) by the owning thread's TLS destructor at thread exit,
    // after its last Push; observed (acquire) by Tick(), which then drains
    // the ring to empty and frees the producer.
    std::atomic<bool> retired_{false};
  };

  Producer* RegisterProducer() ATROPOS_EXCLUDES(registry_mu_);

  // ---- OverloadController: producer side ----------------------------------
  // Each hook stamps the current time and enqueues on the calling thread's
  // ring, auto-registering the thread on first use.
  void OnTaskRegistered(uint64_t key, bool background, bool cancellable = true) override;
  void OnTaskFreed(uint64_t key) override;
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override;
  void OnWaitBegin(uint64_t key, ResourceId resource) override;
  void OnWaitEnd(uint64_t key, ResourceId resource) override;
  void OnRequestStart(uint64_t key, int request_type, int client_class) override;
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override;
  void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used) override;
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override;

  // ---- Setup (single-threaded, before producers start) --------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls) override {
    return runtime_.RegisterResource(std::move(name), cls);
  }
  // Publishes intake gauges (intake.ring_depth, intake.drained_per_tick,
  // intake.dropped_events, intake.producers) at every Tick. Null detaches.
  void BindMetrics(MetricsRegistry* metrics);

  // ---- Drainer thread -----------------------------------------------------
  // Drains all rings in one stable timestamp merge, replays the events into
  // the runtime at their enqueue-time clock readings, then runs the
  // runtime's control loop for the closing window.
  void Tick() override ATROPOS_EXCLUDES(registry_mu_);

  bool ReexecutionRecommended() const override {  // drainer thread only
    return runtime_.ReexecutionRecommended();
  }

  // Direct access to the wrapped runtime for setup (SetCancelAction,
  // SetRecorder) and introspection; drainer thread only once producers run.
  AtroposRuntime& runtime() { return runtime_; }
  const AtroposRuntime& runtime() const { return runtime_; }

  struct IntakeStats {
    uint64_t drained_total = 0;      // events applied to the runtime, ever
    uint64_t drained_last_tick = 0;  // events applied by the last Tick()
    uint64_t dropped_total = 0;      // ring-overflow drops, incl. freed rings
    uint64_t max_ring_depth = 0;     // deepest ring observed at last drain
    uint64_t producers = 0;          // currently live producer rings
    uint64_t producers_seen = 0;     // producers ever registered
    uint64_t producers_retired = 0;  // producers drained and freed after exit
  };
  // Drainer thread only (values are refreshed by Tick()).
  const IntakeStats& intake_stats() const { return intake_; }

  // Rings still registered (not yet retired-and-drained). Thread-safe.
  size_t live_producer_count() ATROPOS_EXCLUDES(registry_mu_);

 private:
  friend struct CapturedTlsBindings;

  Producer* ThisThreadProducer() ATROPOS_EXCLUDES(registry_mu_);
  // Called from an exiting thread's TLS destructor (under the process-wide
  // frontend registry lock, so `p` cannot be concurrently destroyed). Lock-
  // free on the frontend itself: a single release store.
  void RetireProducer(Producer* p) { p->retired_.store(true, std::memory_order_release); }
  void Apply(const TraceEvent& ev);

  const uint64_t instance_id_;  // never reused; keys the thread-local cache
  Clock* clock_;
  ReplayClock replay_clock_;
  AtroposRuntime runtime_;
  Options options_;

  // Guards producers_. Registration is rare but bursty (worker-pool spin-up)
  // and the drainer takes this lock every Tick, so the guard is a Malthusian
  // mutex: surplus waiters are culled to sleep instead of spinning against
  // the drainer (DESIGN.md §17).
  MalthusianMutex registry_mu_;
  std::vector<std::unique_ptr<Producer>> producers_ ATROPOS_GUARDED_BY(registry_mu_);
  uint64_t producers_seen_ ATROPOS_GUARDED_BY(registry_mu_) = 0;
  uint64_t producers_retired_ ATROPOS_GUARDED_BY(registry_mu_) = 0;
  // Drops carried over from rings already freed, so dropped_total stays
  // monotone across retirements.
  uint64_t retired_dropped_ ATROPOS_GUARDED_BY(registry_mu_) = 0;

  // Drainer-thread state.
  std::vector<TraceEvent> drain_buf_;
  IntakeStats intake_;
  Gauge* ring_depth_gauge_ = nullptr;
  Gauge* drained_gauge_ = nullptr;
  Gauge* dropped_gauge_ = nullptr;
  Gauge* producers_gauge_ = nullptr;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_CONCURRENT_FRONTEND_H_
