// Hot-path task/resource ledger (paper §3.1–3.2).
//
// The TaskLedger is the bottom layer of the decomposed runtime: it owns the
// task and resource registries, per-task per-resource usage accounting, the
// sampled/per-event timestamp handling, and the conservation ledger the
// fuzzer's accounting oracles audit. It makes no decisions — the
// DecisionPipeline reads its books once per window, and the AtroposRuntime
// façade coordinates the two.
//
// Every tracing hook is O(log tasks) worst case (std::map keeps iteration
// deterministic for the estimator); nothing here allocates on the steady
// state path beyond first-touch of a (task, resource) pair.
//
// Threading: single-threaded by design — the ledger is owned by whichever
// thread drives the runtime (the drainer thread behind ConcurrentFrontend,
// or the caller in single-threaded embeddings). It holds no mutexes, so it
// carries no src/common/thread_annotations.h attributes; cross-thread intake
// must go through ConcurrentFrontend's rings, never call into the ledger.

#ifndef SRC_ATROPOS_LEDGER_H_
#define SRC_ATROPOS_LEDGER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/stats.h"
#include "src/common/clock.h"

namespace atropos {

// Per-resource conservation ledger row: every unit a task reported acquired
// is either returned (released), still held by a live task (live_held), or
// was held at task teardown (leaked); frees beyond a task's holdings are
// overfreed. The identity below holds for correct ledger bookkeeping
// regardless of application behaviour; leaked/overfreed themselves expose
// application-side imbalance.
struct ResourceAudit {
  ResourceId id = kInvalidResourceId;
  std::string name;
  ResourceClass cls = ResourceClass::kLock;
  uint64_t acquired = 0;   // units reported via getResource
  uint64_t released = 0;   // units reported via freeResource
  uint64_t leaked = 0;     // units held at task teardown
  uint64_t overfreed = 0;  // free amounts beyond the task's holdings
  uint64_t live_held = 0;  // units held by currently registered tasks
  bool Balanced() const { return acquired + overfreed == released + leaked + live_held; }
};

class TaskLedger {
 public:
  TaskLedger(Clock* clock, const AtroposConfig& config, AtroposStats* stats);

  // ---- Resource registry ---------------------------------------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls);
  const ResourceRecord* FindResource(ResourceId id) const;

  // ---- Task registry -------------------------------------------------------
  // `cancellable` is the already-resolved flag: the façade consults the
  // dispatcher's §4 cancelled-key memo before registering.
  void RegisterTask(uint64_t key, bool background, bool cancellable);
  void FreeTask(uint64_t key);
  const TaskRecord* FindTask(uint64_t key) const;
  TaskRecord* FindTaskById(TaskId id);
  size_t live_task_count() const { return key_to_task_.size(); }

  // ---- Usage tracing (§3.2) ------------------------------------------------
  void RecordGet(uint64_t key, ResourceId resource, uint64_t amount);
  void RecordFree(uint64_t key, ResourceId resource, uint64_t amount);
  void RecordWaitBegin(uint64_t key, ResourceId resource);
  void RecordWaitEnd(uint64_t key, ResourceId resource);
  void RecordUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used);
  void RecordProgress(uint64_t key, uint64_t done, uint64_t total);

  // ---- Timestamp-mode handling (§3.2) --------------------------------------
  // The façade escalates to per-event timestamps while an overload is
  // suspected; the ledger owns the cached-timestamp machinery.
  void SetEffectiveMode(TimestampMode mode) { effective_mode_ = mode; }
  TimestampMode effective_mode() const { return effective_mode_; }
  TimeMicros TraceNow();

  // ---- Window boundary -----------------------------------------------------
  // Resets the per-resource window counters; closed wait/hold intervals are
  // clipped against window_start() as they complete.
  void RollWindow(TimeMicros now);
  TimeMicros window_start() const { return window_start_; }

  // ---- Estimation-stage access ---------------------------------------------
  // std::map keeps iteration order deterministic for the estimator.
  std::map<TaskId, TaskRecord>& tasks() { return tasks_; }
  std::map<ResourceId, ResourceRecord>& resources() { return resources_; }

  // ---- Accounting audit (fuzzer oracles) -----------------------------------
  std::vector<ResourceAudit> AuditAccounting() const;

 private:
  TaskRecord* Lookup(uint64_t key);
  TaskResourceUsage* UsageFor(uint64_t key, ResourceId resource);
  // Folds a departing task's open holdings into the per-resource ledger.
  void RetireTaskAccounting(const TaskRecord& task);

  Clock* clock_;
  const AtroposConfig config_;
  AtroposStats* stats_;

  std::map<TaskId, TaskRecord> tasks_;
  std::map<ResourceId, ResourceRecord> resources_;
  std::unordered_map<uint64_t, TaskId> key_to_task_;
  TaskId next_task_id_ = 1;
  ResourceId next_resource_id_ = 1;

  TimeMicros window_start_ = 0;

  // Timestamp sampling (§3.2).
  TimestampMode effective_mode_;
  TimeMicros cached_now_ = 0;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_LEDGER_H_
