// Hot-path task/resource ledger (paper §3.1–3.2).
//
// The TaskLedger is the bottom layer of the decomposed runtime: it owns the
// task and resource registries, per-task per-resource usage accounting, the
// sampled/per-event timestamp handling, and the conservation ledger the
// fuzzer's accounting oracles audit. It makes no decisions — the
// DecisionPipeline reads its books once per window, and the AtroposRuntime
// façade coordinates the two.
//
// Layout (DESIGN.md §17): struct-of-arrays registries for mechanical
// sympathy. Task records live in a dense slot vector with free-list
// recycling; an open-addressed DenseKeyIndex maps application keys (and task
// ids) to slots; per-(task, resource) usage is a flat matrix indexed
// slot * stride + (resource - 1). Live tasks are threaded on an intrusive
// doubly-linked list in registration order — task ids are monotone, so
// walking it visits tasks in ascending-id order, the same deterministic
// iteration the estimator saw when these were std::maps. Resources are a
// plain vector indexed by id - 1 (they are never freed).
//
// Steady-state RecordGet/RecordFree/RecordUsage are O(1), branch-light, and
// allocation-free: allocation happens only on first-touch growth (more live
// tasks or resources than ever before).
//
// Threading: single-threaded by design — the ledger is owned by whichever
// thread drives the runtime (the drainer thread behind ConcurrentFrontend,
// or the caller in single-threaded embeddings). It holds no mutexes, so it
// carries no src/common/thread_annotations.h attributes; cross-thread intake
// must go through ConcurrentFrontend's rings, never call into the ledger.

#ifndef SRC_ATROPOS_LEDGER_H_
#define SRC_ATROPOS_LEDGER_H_

#include <string>
#include <vector>

#include "src/atropos/accounting.h"
#include "src/atropos/config.h"
#include "src/atropos/dense_index.h"
#include "src/atropos/stats.h"
#include "src/common/clock.h"

namespace atropos {

// Per-resource conservation ledger row: every unit a task reported acquired
// is either returned (released), still held by a live task (live_held), or
// was held at task teardown (leaked); frees beyond a task's holdings are
// overfreed. The identity below holds for correct ledger bookkeeping
// regardless of application behaviour; leaked/overfreed themselves expose
// application-side imbalance.
struct ResourceAudit {
  ResourceId id = kInvalidResourceId;
  std::string name;
  ResourceClass cls = ResourceClass::kLock;
  uint64_t acquired = 0;   // units reported via getResource
  uint64_t released = 0;   // units reported via freeResource
  uint64_t leaked = 0;     // units held at task teardown
  uint64_t overfreed = 0;  // free amounts beyond the task's holdings
  uint64_t live_held = 0;  // units held by currently registered tasks
  bool Balanced() const { return acquired + overfreed == released + leaked + live_held; }
};

class TaskLedger {
 public:
  // End-of-list sentinel for the live-task slot walk.
  static constexpr uint32_t kNilSlot = DenseKeyIndex::kNotFound;

  TaskLedger(Clock* clock, const AtroposConfig& config, AtroposStats* stats);

  // ---- Resource registry ---------------------------------------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls);
  const ResourceRecord* FindResource(ResourceId id) const;

  // ---- Task registry -------------------------------------------------------
  // `cancellable` is the already-resolved flag: the façade consults the
  // dispatcher's §4 cancelled-key memo before registering.
  void RegisterTask(uint64_t key, bool background, bool cancellable);
  void FreeTask(uint64_t key);
  const TaskRecord* FindTask(uint64_t key) const;
  TaskRecord* FindTaskById(TaskId id);
  size_t live_task_count() const { return key_index_.size(); }

  // ---- Usage tracing (§3.2) ------------------------------------------------
  void RecordGet(uint64_t key, ResourceId resource, uint64_t amount);
  void RecordFree(uint64_t key, ResourceId resource, uint64_t amount);
  void RecordWaitBegin(uint64_t key, ResourceId resource);
  void RecordWaitEnd(uint64_t key, ResourceId resource);
  void RecordUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used);
  void RecordProgress(uint64_t key, uint64_t done, uint64_t total);

  // ---- Timestamp-mode handling (§3.2) --------------------------------------
  // The façade escalates to per-event timestamps while an overload is
  // suspected; the ledger owns the cached-timestamp machinery. The mode
  // selects a function pointer, so TraceNow itself is branch-free; sampled
  // mode refreshes against a cached deadline instead of re-deriving the
  // interval arithmetic per event.
  void SetEffectiveMode(TimestampMode mode);
  TimestampMode effective_mode() const { return effective_mode_; }
  TimeMicros TraceNow() { return trace_now_fn_(this); }

  // ---- Window boundary -----------------------------------------------------
  // Resets the per-resource window counters; closed wait/hold intervals are
  // clipped against window_start() as they complete.
  void RollWindow(TimeMicros now);
  TimeMicros window_start() const { return window_start_; }

  // ---- Estimation-stage access ---------------------------------------------
  // Slot-based iteration over live tasks in ascending-TaskId order (the
  // intrusive live list; see header comment). The usage row of a slot holds
  // resource_count() cells, cell r belonging to ResourceId r + 1.
  uint32_t live_head() const { return live_head_; }
  uint32_t next_live(uint32_t slot) const { return slot_next_[slot]; }
  TaskRecord& task_at(uint32_t slot) { return task_slots_[slot]; }
  const TaskRecord& task_at(uint32_t slot) const { return task_slots_[slot]; }
  const TaskResourceUsage* usage_row(uint32_t slot) const {
    return usage_.data() + static_cast<size_t>(slot) * usage_stride_;
  }
  size_t resource_count() const { return resources_.size(); }
  ResourceRecord& resource_at(size_t i) { return resources_[i]; }
  const ResourceRecord& resource_at(size_t i) const { return resources_[i]; }

  // ---- Introspection / test access -----------------------------------------
  // The (task, resource) usage cell, or null when the task is unknown, the
  // resource id is out of range, or no tracing event ever touched the pair.
  const TaskResourceUsage* FindUsage(uint64_t key, ResourceId resource) const;
  // Resource ids this task's tracing events have touched, ascending.
  std::vector<ResourceId> UsedResources(uint64_t key) const;
  // Mutable cell access for tests that stage ledger state directly; creates
  // (and marks touched) the cell. Null when key/resource are unknown.
  TaskResourceUsage* MutableUsage(uint64_t key, ResourceId resource);
  TaskRecord* MutableTask(uint64_t key);
  ResourceRecord* MutableResource(ResourceId id);

  // ---- Accounting audit (fuzzer oracles) -----------------------------------
  std::vector<ResourceAudit> AuditAccounting() const;

 private:
  using TraceNowFn = TimeMicros (*)(TaskLedger*);
  static TimeMicros TraceNowPerEvent(TaskLedger* self);
  static TimeMicros TraceNowSampled(TaskLedger* self);

  TaskRecord* Lookup(uint64_t key);
  TaskResourceUsage* UsageFor(uint64_t key, ResourceId resource);
  // Valid resource slot index for `id`, or SIZE_MAX when out of range.
  size_t ResourceSlot(ResourceId id) const {
    const size_t i = static_cast<size_t>(id) - 1;
    return i < resources_.size() ? i : static_cast<size_t>(-1);
  }
  // Folds a departing task's open holdings into the per-resource ledger,
  // unlinks the slot from the live list, zeroes its usage row, and recycles
  // the slot. All O(stride), allocation-free.
  void ReleaseSlot(uint32_t slot);
  // Grows the usage matrix to a new stride (setup-time: resource
  // registration only), repacking existing rows.
  void Restride(size_t new_stride);

  Clock* clock_;
  const AtroposConfig config_;
  AtroposStats* stats_;

  // Struct-of-arrays task registry: dense slots + free list + intrusive live
  // list (ascending-id iteration) + open-addressed key/id indexes.
  std::vector<TaskRecord> task_slots_;
  std::vector<uint32_t> slot_prev_;
  std::vector<uint32_t> slot_next_;
  std::vector<uint32_t> free_slots_;
  uint32_t live_head_ = kNilSlot;
  uint32_t live_tail_ = kNilSlot;
  DenseKeyIndex key_index_;  // application key -> slot
  DenseKeyIndex id_index_;   // TaskId -> slot (ids are unique, never reused)

  // Resource registry: ids are dense and never freed; index = id - 1.
  std::vector<ResourceRecord> resources_;

  // Flat task×resource usage matrix: cell = slot * usage_stride_ + (rid - 1).
  std::vector<TaskResourceUsage> usage_;
  size_t usage_stride_ = 0;

  TaskId next_task_id_ = 1;
  ResourceId next_resource_id_ = 1;

  TimeMicros window_start_ = 0;

  // Timestamp sampling (§3.2).
  TimestampMode effective_mode_;
  TraceNowFn trace_now_fn_;
  TimeMicros cached_now_ = 0;
  TimeMicros sample_deadline_ = 0;  // cached_now_ + sample interval
};

}  // namespace atropos

#endif  // SRC_ATROPOS_LEDGER_H_
