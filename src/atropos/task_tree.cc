#include "src/atropos/task_tree.h"

#include <algorithm>

namespace atropos {

void TaskTree::Register(uint64_t key, uint64_t parent, int node) {
  Node& entry = tasks_[key];  // may already exist as a placeholder parent
  entry.parent = parent;
  entry.node_id = node;
  if (parent != 0) {
    // The parent may not have registered yet (out-of-order arrival); create
    // its placeholder so the child link is never lost.
    Node& parent_entry = tasks_[parent];
    if (std::find(parent_entry.children.begin(), parent_entry.children.end(), key) ==
        parent_entry.children.end()) {
      parent_entry.children.push_back(key);
    }
  }
}

void TaskTree::Unregister(uint64_t key) {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) {
    return;
  }
  uint64_t parent = it->second.parent;
  // Re-root surviving children to the grandparent so cancellation of an
  // ancestor still reaches them.
  for (uint64_t child : it->second.children) {
    auto c = tasks_.find(child);
    if (c != tasks_.end()) {
      c->second.parent = parent;
    }
    if (parent != 0) {
      tasks_[parent].children.push_back(child);
    }
  }
  if (parent != 0) {
    auto p = tasks_.find(parent);
    if (p != tasks_.end()) {
      auto& siblings = p->second.children;
      siblings.erase(std::remove(siblings.begin(), siblings.end(), key), siblings.end());
    }
  }
  tasks_.erase(it);
  pending_.erase(key);  // finishing counts as the acknowledgement
}

void TaskTree::CollectSubtree(uint64_t key, std::vector<uint64_t>* out) const {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) {
    return;
  }
  out->push_back(key);
  for (uint64_t child : it->second.children) {
    CollectSubtree(child, out);
  }
}

std::vector<uint64_t> TaskTree::Subtree(uint64_t key) const {
  std::vector<uint64_t> out;
  CollectSubtree(key, &out);
  return out;
}

void TaskTree::Cancel(uint64_t key) {
  TimeMicros now = clock_->NowMicros();
  for (uint64_t task : Subtree(key)) {
    auto it = tasks_.find(task);
    if (it == tasks_.end() || pending_.count(task) != 0) {
      continue;  // already in flight
    }
    dispatch_(it->second.node_id, task);
    pending_[task] = Pending{it->second.node_id, now, 1};
  }
}

void TaskTree::Ack(uint64_t key) { pending_.erase(key); }

void TaskTree::Tick() {
  TimeMicros now = clock_->NowMicros();
  std::vector<uint64_t> orphans;
  for (auto& [key, pending] : pending_) {
    if (now < pending.dispatched_at + config_.ack_timeout) {
      continue;
    }
    if (pending.attempts > config_.max_retries) {
      orphans.push_back(key);
      continue;
    }
    // Retry: the node may have missed the first delivery (idempotent).
    dispatch_(pending.node_id, key);
    pending.dispatched_at = now;
    pending.attempts++;
  }
  for (uint64_t key : orphans) {
    int node = pending_[key].node_id;
    pending_.erase(key);
    // The node is unreachable (crash / partition): hand the task to the
    // application's reconciliation path and forget its subtree links.
    if (on_orphan_) {
      on_orphan_(node, key);
    }
    Unregister(key);
  }
}

}  // namespace atropos
