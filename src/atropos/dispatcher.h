// Safe-cancellation dispatch and §4 fairness bookkeeping.
//
// The CancelDispatcher is the action layer of the decomposed runtime: it
// routes every confirmed cancellation through the application's registered
// initiator (§3.6 — never directly), paces issues by min_cancel_interval,
// and owns the §4 fairness state: the cancelled-key memo that makes a
// re-executed task non-cancellable, the calm-window streak behind the
// re-execution gate, and the memo's calm-window aging so clients that never
// retry cannot leak entries.
//
// Threading: single-threaded by design (drainer-thread discipline; see
// src/common/thread_annotations.h). Dispatch happens inside Tick() on the
// control-loop thread; the registered initiator therefore runs on that
// thread and must only *request* cancellation — the cancel-action-safety
// lint check (tools/atropos_lint) enforces that it never blocks, allocates,
// or throws.

#ifndef SRC_ATROPOS_DISPATCHER_H_
#define SRC_ATROPOS_DISPATCHER_H_

#include <functional>
#include <unordered_map>
#include <utility>

#include "src/atropos/config.h"
#include "src/atropos/controller.h"
#include "src/atropos/stats.h"
#include "src/common/clock.h"

namespace atropos {

class CancelDispatcher {
 public:
  CancelDispatcher(const AtroposConfig& config, AtroposStats* stats)
      : config_(config), stats_(stats) {}

  // ---- Initiator wiring (paper Fig 6a) -------------------------------------
  void SetCancelAction(std::function<void(uint64_t)> initiator) {
    cancel_action_ = std::move(initiator);
  }
  void SetControlSurface(ControlSurface* surface) { surface_ = surface; }
  void SetCancelObserver(std::function<void(uint64_t, double)> observer) {
    cancel_observer_ = std::move(observer);
  }
  bool has_initiator() const {
    return cancel_action_ != nullptr || surface_ != nullptr;
  }

  // ---- Pacing (§5.3 trade-off) ---------------------------------------------
  // Whether min_cancel_interval permits a cancellation now; counts the
  // suppression when it does not.
  bool AdmitByPacing(TimeMicros now) {
    if (ever_cancelled_ && now < last_cancel_time_ + config_.min_cancel_interval) {
      stats_->cancels_suppressed_interval++;
      return false;
    }
    return true;
  }

  // ---- Dispatch (§3.6) -----------------------------------------------------
  // Records the cancellation (memo entry, pacing state, stats), notifies the
  // observer, then invokes the application's initiator. The caller records
  // any flight-recorder event *before* dispatching so observers that
  // annotate the recorder (e.g. the frontend naming the request type) find
  // the cancel event already present.
  void Dispatch(uint64_t key, double score, TimeMicros now);

  // ---- §4 fairness ---------------------------------------------------------
  // Window-boundary accounting: resets or extends the calm streak and ages
  // the cancelled-key memo after sustained calm.
  void ObserveWindow(bool resource_overload);

  // A re-registration of a previously cancelled key consumes its memo entry;
  // returns true when the new registration must be non-cancellable.
  bool ConsumeCancelledKey(uint64_t key);

  // True after `reexec_calm_windows` consecutive windows without resource
  // overload — the "sustained resource availability" condition for retrying
  // cancelled work.
  bool ReexecutionRecommended() const {
    return calm_windows_ >= config_.reexec_calm_windows;
  }

  // ---- Introspection -------------------------------------------------------
  size_t cancelled_key_count() const { return cancelled_keys_.size(); }
  // Total windows ever closed without resource overload; the aging epoch the
  // memo entries are stamped with (monotone, unlike the consecutive streak).
  uint64_t calm_windows_total() const { return calm_windows_total_; }

 private:
  const AtroposConfig config_;
  AtroposStats* stats_;

  std::function<void(uint64_t)> cancel_action_;
  ControlSurface* surface_ = nullptr;
  std::function<void(uint64_t, double)> cancel_observer_;

  // Pacing.
  TimeMicros last_cancel_time_ = 0;
  bool ever_cancelled_ = false;

  // §4 fairness. Keys whose re-registration is non-cancellable; each entry is
  // stamped with calm_windows_total_ at insertion and aged out after
  // `reexec_calm_windows` further calm windows: once sustained calm has
  // passed, re-execution was recommended anyway, and a client that never
  // retries must not leak a memo entry forever.
  std::unordered_map<uint64_t, uint64_t> cancelled_keys_;
  int calm_windows_ = 0;             // consecutive, reset by resource overload
  uint64_t calm_windows_total_ = 0;  // monotone, stamps the cancelled-key memo
};

}  // namespace atropos

#endif  // SRC_ATROPOS_DISPATCHER_H_
