// Distributed cancellation propagation (paper §4, future work).
//
// "Its abstractions, however, can extend to distributed systems where a
// single user request may span multiple nodes. In such cases, the Atropos
// task manager could associate child tasks with their root request and
// propagate cancellation signals. Extending cancellation to distributed
// systems also requires handling failures such as crashes, timeouts, or
// network partitions."
//
// TaskTree implements that extension: tasks register with a parent (roots
// have none) and a node id; cancelling a root fans the initiator out to every
// live descendant, tracks per-task acknowledgements, retries unacknowledged
// deliveries, and reports tasks that never acknowledge (crashed/partitioned
// nodes) as orphans so the application can reconcile them.

#ifndef SRC_ATROPOS_TASK_TREE_H_
#define SRC_ATROPOS_TASK_TREE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/clock.h"

namespace atropos {

struct TaskTreeConfig {
  // How long a dispatched cancellation may stay unacknowledged before retry.
  TimeMicros ack_timeout = Millis(500);
  int max_retries = 2;
};

class TaskTree {
 public:
  // `dispatch` delivers a cancellation signal for `key` to `node` (e.g. an
  // RPC). It may be called multiple times for the same key (retries), so it
  // must be idempotent on the receiving side.
  using DispatchFn = std::function<void(int node, uint64_t key)>;
  // Called when a task exhausted its retries without acknowledging.
  using OrphanFn = std::function<void(int node, uint64_t key)>;

  TaskTree(Clock* clock, TaskTreeConfig config, DispatchFn dispatch, OrphanFn on_orphan)
      : clock_(clock),
        config_(config),
        dispatch_(std::move(dispatch)),
        on_orphan_(std::move(on_orphan)) {}

  // Registers `key` running on `node` as a child of `parent` (0 = root).
  // Registration order is not constrained: a child may register before its
  // parent (out-of-order RPC arrival).
  void Register(uint64_t key, uint64_t parent, int node);

  // Removes a finished task. Its children (if any) are re-rooted to its
  // parent so a later cancellation still reaches them.
  void Unregister(uint64_t key);

  // Cancels `key` and every live descendant: dispatches the signal to each
  // and starts the acknowledgement clock.
  void Cancel(uint64_t key);

  // A node confirms that `key`'s cancellation took effect.
  void Ack(uint64_t key);

  // Drives retries and orphan detection; call periodically (e.g. per window).
  void Tick();

  bool IsRegistered(uint64_t key) const { return tasks_.count(key) != 0; }
  size_t live_count() const { return tasks_.size(); }
  size_t pending_ack_count() const { return pending_.size(); }
  // All live descendants of `key`, including itself (DFS order).
  std::vector<uint64_t> Subtree(uint64_t key) const;

 private:
  struct Node {
    uint64_t parent = 0;
    int node_id = 0;
    std::vector<uint64_t> children;
  };
  struct Pending {
    int node_id = 0;
    TimeMicros dispatched_at = 0;
    int attempts = 0;
  };

  void CollectSubtree(uint64_t key, std::vector<uint64_t>* out) const;

  Clock* clock_;
  TaskTreeConfig config_;
  DispatchFn dispatch_;
  OrphanFn on_orphan_;

  std::map<uint64_t, Node> tasks_;
  std::map<uint64_t, Pending> pending_;  // dispatched, not yet acknowledged
};

}  // namespace atropos

#endif  // SRC_ATROPOS_TASK_TREE_H_
