// Per-task and per-resource usage accounting (paper §3.2).
//
// The runtime manager records every getResource / freeResource /
// slowByResource event against the calling task and the touched resource.
// Cumulative counters feed the per-task resource-gain estimates; windowed
// counters feed the per-resource contention levels.

#ifndef SRC_ATROPOS_ACCOUNTING_H_
#define SRC_ATROPOS_ACCOUNTING_H_

#include <string>
#include <vector>

#include "src/atropos/types.h"
#include "src/common/clock.h"

namespace atropos {

// Usage of one resource by one task. Stored as one cell of the TaskLedger's
// dense task×resource usage matrix; a default-constructed (all-zero) cell is
// semantically "this task never touched this resource".
struct TaskResourceUsage {
  // Cumulative over the task's lifetime.
  uint64_t acquired = 0;       // units obtained (pages, locks, queue slots)
  uint64_t released = 0;       // units given back
  uint64_t slow_events = 0;    // waits / evictions suffered or caused
  TimeMicros wait_time = 0;    // total completed time stalled on this resource
  TimeMicros hold_time = 0;    // total completed time holding this resource

  // Hold-time derivation: counted from the instant the task first holds any
  // unit until it holds none again.
  uint64_t active_units = 0;
  TimeMicros hold_started_at = 0;

  // Open wait interval: a task blocked on a lock must be visible to the
  // estimator *while* it is blocked, not only after the wait completes.
  bool waiting = false;
  // Whether any tracing event ever landed on this (task, resource) cell —
  // distinguishes "never touched" from "touched with zero totals" for
  // introspection (TaskLedger::UsedResources).
  bool touched = false;
  TimeMicros wait_started_at = 0;

  uint64_t held_now() const { return acquired > released ? acquired - released : 0; }

  // Hold time including the currently open holding interval.
  TimeMicros HoldTimeAt(TimeMicros now) const {
    TimeMicros t = hold_time;
    if (active_units > 0 && now > hold_started_at) {
      t += now - hold_started_at;
    }
    return t;
  }

  // Wait time including the currently open wait.
  TimeMicros WaitTimeAt(TimeMicros now) const {
    TimeMicros t = wait_time;
    if (waiting && now > wait_started_at) {
      t += now - wait_started_at;
    }
    return t;
  }
};

// One registered cancellable task (§3.1).
struct TaskRecord {
  TaskId id = kInvalidTaskId;
  uint64_t key = 0;           // application-provided identity
  TimeMicros created_at = 0;
  bool background = false;    // background tasks have no SLO (§4)
  bool cancellable = true;    // false once re-executed (§4 fairness)
  int cancel_count = 0;       // cancellations issued against this task
  TimeMicros cancelled_at = 0;
  bool alive = true;

  // GetNext progress model (§3.4): rows processed / rows expected.
  uint64_t progress_done = 0;
  uint64_t progress_total = 0;
  bool has_progress = false;

  // Per-resource usage lives in the TaskLedger's dense usage matrix, keyed by
  // this record's slot — not inline, so recycling a task slot never frees
  // per-pair map nodes on the hot path.

  // Progress in (0, 1]; `fallback` is used when the task reports none.
  double Progress(double fallback) const {
    if (!has_progress || progress_total == 0) {
      return fallback;
    }
    double p = static_cast<double>(progress_done) / static_cast<double>(progress_total);
    if (p < 0.01) {
      p = 0.01;  // avoid an unbounded future-gain factor at start-of-task
    }
    return p > 1.0 ? 1.0 : p;
  }
};

// Per-window aggregates for one resource; reset at every estimator tick.
// wait_time/hold_time collect *closed* intervals, clipped to the window, as
// they complete — so waits by requests that finish (and are freed) within the
// window still count. The estimator adds the still-open intervals of live
// tasks on top.
struct ResourceWindow {
  uint64_t gets = 0;
  uint64_t frees = 0;
  uint64_t slow_events = 0;
  TimeMicros wait_time = 0;
  TimeMicros hold_time = 0;

  void Reset() { *this = ResourceWindow{}; }
};

// One registered application resource.
struct ResourceRecord {
  ResourceId id = kInvalidResourceId;
  ResourceClass cls = ResourceClass::kLock;
  std::string name;
  ResourceWindow window;

  // Cumulative (used by tests and stats export).
  uint64_t total_gets = 0;
  uint64_t total_slow_events = 0;
  TimeMicros total_wait_time = 0;

  // Conservation ledger (audited by the fuzzer's accounting oracle).
  // Invariant: total_gets + overfreed_units ==
  //            total_frees + leaked_units + (units held by live tasks).
  uint64_t total_frees = 0;     // units returned across all tasks
  uint64_t leaked_units = 0;    // units still held when their task was torn down
  uint64_t overfreed_units = 0; // freeResource amounts beyond the task's holdings
};

// Output of the estimator for one resource in one window (§3.4–3.5).
struct ResourceMetrics {
  ResourceId id = kInvalidResourceId;
  ResourceClass cls = ResourceClass::kLock;
  double contention_raw = 0.0;   // class-specific formula (eviction ratio, wait/hold)
  double contention_norm = 0.0;  // C_r = D_r / T_exec
  TimeMicros delay = 0;          // D_r: contention-induced delay in the window
  bool overloaded = false;       // contention_norm above threshold
};

// Output of the estimator for one (task, resource) pair.
struct TaskGain {
  TaskId task = kInvalidTaskId;
  ResourceId resource = kInvalidResourceId;
  double gain = 0.0;        // future resource gain (paper definition)
  double current_usage = 0.0;  // held-now variant (Fig 13 second baseline)
};

}  // namespace atropos

#endif  // SRC_ATROPOS_ACCOUNTING_H_
