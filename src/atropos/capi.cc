#include "src/atropos/capi.h"

#include <array>

namespace atropos {

namespace {

AtroposRuntime* g_runtime = nullptr;
Cancellable* g_current = nullptr;
void (*g_cancel_action)(uint64_t) = nullptr;
// Lazily registered default resource instances, one per facade type.
std::array<ResourceId, 3> g_default_resources = {kInvalidResourceId, kInvalidResourceId,
                                                 kInvalidResourceId};

ResourceId DefaultResource(CApiResourceType type) {
  auto idx = static_cast<size_t>(type);
  if (g_default_resources[idx] == kInvalidResourceId && g_runtime != nullptr) {
    switch (type) {
      case CApiResourceType::LOCK:
        g_default_resources[idx] = g_runtime->RegisterResource("capi_lock", ResourceClass::kLock);
        break;
      case CApiResourceType::MEMORY:
        g_default_resources[idx] =
            g_runtime->RegisterResource("capi_memory", ResourceClass::kMemory);
        break;
      case CApiResourceType::QUEUE:
        g_default_resources[idx] =
            g_runtime->RegisterResource("capi_queue", ResourceClass::kQueue);
        break;
    }
  }
  return g_default_resources[idx];
}

}  // namespace

void InstallGlobalRuntime(AtroposRuntime* runtime) {
  g_runtime = runtime;
  g_current = nullptr;
  g_cancel_action = nullptr;
  g_default_resources.fill(kInvalidResourceId);
}

AtroposRuntime* GlobalRuntime() { return g_runtime; }

Cancellable* createCancel(uint64_t key) {
  if (g_runtime == nullptr) {
    return nullptr;
  }
  g_runtime->OnTaskRegistered(key, /*background=*/false);
  return new Cancellable{key};
}

void freeCancel(Cancellable* c) {
  if (c == nullptr) {
    return;
  }
  if (g_runtime != nullptr) {
    g_runtime->OnTaskFreed(c->key);
  }
  if (g_current == c) {
    g_current = nullptr;
  }
  delete c;
}

void setCancelAction(void (*func)(uint64_t)) {
  g_cancel_action = func;
  if (g_runtime != nullptr) {
    g_runtime->SetCancelAction([](uint64_t key) {
      if (g_cancel_action != nullptr) {
        g_cancel_action(key);
      }
    });
  }
}

Cancellable* SetCurrentCancellable(Cancellable* c) {
  Cancellable* prev = g_current;
  g_current = c;
  return prev;
}

void getResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnGet(g_current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void freeResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnFree(g_current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void slowByResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnUsage(g_current->key, DefaultResource(rsc_type),
                     /*waited=*/static_cast<TimeMicros>(value), /*used=*/0);
}

void slowByResourceBegin(CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnWaitBegin(g_current->key, DefaultResource(rsc_type));
}

void slowByResourceEnd(CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnWaitEnd(g_current->key, DefaultResource(rsc_type));
}

void reportProgress(uint64_t done, uint64_t total) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnProgress(g_current->key, done, total);
}

}  // namespace atropos
