#include "src/atropos/capi.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <vector>

#include "src/atropos/concurrent_frontend.h"

namespace atropos {

namespace {

// Installation state. Written only by the Install* functions (setup-time,
// single-threaded by contract) but read from every tracing thread, so the
// pointers are atomics: a stale-but-consistent read is fine, a torn one is
// not. `g_sink` is the tracing target (the runtime itself under
// InstallGlobalRuntime, the frontend's ring intake under
// InstallGlobalFrontend); `g_runtime` is where setup calls like
// setCancelAction land either way.
std::atomic<AtroposRuntime*> g_runtime{nullptr};
std::atomic<OverloadController*> g_sink{nullptr};
std::atomic<void (*)(uint64_t)> g_cancel_action{nullptr};
// Default resource instances, one per facade type, registered eagerly at
// install (lazy first-use registration would race under multithreaded
// tracing: RegisterResource is a setup-only, unsynchronized call).
std::array<std::atomic<ResourceId>, 3> g_default_resources = {
    kInvalidResourceId, kInvalidResourceId, kInvalidResourceId};

ResourceId DefaultResource(CApiResourceType type) {
  return g_default_resources[static_cast<size_t>(type)].load(std::memory_order_relaxed);
}

// Per-thread attribution state. The paper keys tracing off the calling
// thread; making the current-task slot, scope chain, and retired-handle list
// thread-local realizes exactly that under real threads while degenerating to
// the old process-global behavior in single-threaded use.
struct ThreadState {
  Cancellable* current = nullptr;
  // The `previous_` pointers held by live CancellableScopes, outermost first.
  // Mirrored here so freeCancel can tell whether a handle is still reachable
  // through a scope restore.
  std::vector<Cancellable*> saved_chain;
  // Handles passed to freeCancel while still referenced by `current` or the
  // scope chain. Deleting them eagerly would leave a dangling pointer to be
  // restored at scope exit; instead they stay allocated (their task already
  // freed in the runtime, so tracing counts as ignored_events) until no
  // reference remains.
  std::vector<Cancellable*> zombies;

  // At thread exit every scope has unwound, so nothing references a retired
  // handle anymore.
  ~ThreadState() {
    for (Cancellable* z : zombies) {
      delete z;
    }
  }

  bool Referenced(const Cancellable* c) const {
    if (current == c) {
      return true;
    }
    return std::find(saved_chain.begin(), saved_chain.end(), c) != saved_chain.end();
  }

  // Deletes retired handles that no scope or current-task slot references
  // anymore; called at every point a reference can disappear.
  void ReapZombies() {
    for (auto it = zombies.begin(); it != zombies.end();) {
      if (!Referenced(*it)) {
        delete *it;
        it = zombies.erase(it);
      } else {
        ++it;
      }
    }
  }
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

void RegisterDefaultResources(AtroposRuntime* runtime) {
  g_default_resources[static_cast<size_t>(CApiResourceType::LOCK)].store(
      runtime->RegisterResource("capi_lock", ResourceClass::kLock), std::memory_order_relaxed);
  g_default_resources[static_cast<size_t>(CApiResourceType::MEMORY)].store(
      runtime->RegisterResource("capi_memory", ResourceClass::kMemory),
      std::memory_order_relaxed);
  g_default_resources[static_cast<size_t>(CApiResourceType::QUEUE)].store(
      runtime->RegisterResource("capi_queue", ResourceClass::kQueue), std::memory_order_relaxed);
}

void Install(AtroposRuntime* runtime, OverloadController* sink) {
  g_runtime.store(runtime, std::memory_order_release);
  g_sink.store(sink, std::memory_order_release);
  g_cancel_action.store(nullptr, std::memory_order_relaxed);
  ThreadState& st = State();
  st.current = nullptr;
  st.saved_chain.clear();
  st.ReapZombies();  // nothing is referenced now — drops every retired handle
  if (runtime != nullptr) {
    RegisterDefaultResources(runtime);
  } else {
    for (std::atomic<ResourceId>& r : g_default_resources) {
      r.store(kInvalidResourceId, std::memory_order_relaxed);
    }
  }
}

}  // namespace

void InstallGlobalRuntime(AtroposRuntime* runtime) { Install(runtime, runtime); }

void InstallGlobalFrontend(ConcurrentFrontend* frontend) {
  Install(frontend != nullptr ? &frontend->runtime() : nullptr, frontend);
}

AtroposRuntime* GlobalRuntime() { return g_runtime.load(std::memory_order_acquire); }

ResourceId CApiDefaultResource(CApiResourceType type) { return DefaultResource(type); }

Cancellable* createCancel(uint64_t key) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) {
    return nullptr;
  }
  sink->OnTaskRegistered(key, /*background=*/false);
  return new Cancellable{key};
}

void freeCancel(Cancellable* c) {
  if (c == nullptr) {
    return;
  }
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink->OnTaskFreed(c->key);
  }
  ThreadState& st = State();
  if (st.Referenced(c)) {
    // Still the current task or saved by a live scope: retire lazily. The
    // current-task slot is deliberately left pointing at the handle —
    // subsequent tracing reaches the runtime under the freed key and is
    // counted there as ignored_events instead of disappearing without trace.
    if (std::find(st.zombies.begin(), st.zombies.end(), c) == st.zombies.end()) {
      st.zombies.push_back(c);
    }
    return;
  }
  delete c;
}

void setCancelAction(void (*func)(uint64_t)) {
  g_cancel_action.store(func, std::memory_order_release);
  AtroposRuntime* runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime != nullptr) {
    runtime->SetCancelAction([](uint64_t key) {
      void (*action)(uint64_t) = g_cancel_action.load(std::memory_order_acquire);
      if (action != nullptr) {
        action(key);
      }
    });
  }
}

Cancellable* SetCurrentCancellable(Cancellable* c) {
  ThreadState& st = State();
  Cancellable* prev = st.current;
  st.current = c;
  st.ReapZombies();
  return prev;
}

Cancellable* EnterCancellableScope(Cancellable* c) {
  ThreadState& st = State();
  st.saved_chain.push_back(st.current);
  st.current = c;
  return st.saved_chain.back();
}

void ExitCancellableScope(Cancellable* previous) {
  ThreadState& st = State();
  if (!st.saved_chain.empty()) {
    st.saved_chain.pop_back();
  }
  st.current = previous;
  st.ReapZombies();
}

void getResource(long value, CApiResourceType rsc_type) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr || value <= 0) {
    return;
  }
  sink->OnGet(current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void freeResource(long value, CApiResourceType rsc_type) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr || value <= 0) {
    return;
  }
  sink->OnFree(current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void slowByResource(long value, CApiResourceType rsc_type) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr || value <= 0) {
    return;
  }
  sink->OnUsage(current->key, DefaultResource(rsc_type),
                /*waited=*/static_cast<TimeMicros>(value), /*used=*/0);
}

void slowByResourceBegin(CApiResourceType rsc_type) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr) {
    return;
  }
  sink->OnWaitBegin(current->key, DefaultResource(rsc_type));
}

void slowByResourceEnd(CApiResourceType rsc_type) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr) {
    return;
  }
  sink->OnWaitEnd(current->key, DefaultResource(rsc_type));
}

void reportProgress(uint64_t done, uint64_t total) {
  OverloadController* sink = g_sink.load(std::memory_order_acquire);
  Cancellable* current = State().current;
  if (sink == nullptr || current == nullptr) {
    return;
  }
  sink->OnProgress(current->key, done, total);
}

}  // namespace atropos
