#include "src/atropos/capi.h"

#include <algorithm>
#include <array>
#include <vector>

namespace atropos {

namespace {

AtroposRuntime* g_runtime = nullptr;
Cancellable* g_current = nullptr;
// The `previous_` pointers held by live CancellableScopes, outermost first.
// Mirrored here so freeCancel can tell whether a handle is still reachable
// through a scope restore.
std::vector<Cancellable*> g_saved_chain;
// Handles passed to freeCancel while still referenced by g_current or the
// scope chain. Deleting them eagerly would leave a dangling pointer to be
// restored at scope exit; instead they stay allocated (their task already
// freed in the runtime, so tracing counts as ignored_events) until no
// reference remains.
std::vector<Cancellable*> g_zombies;
void (*g_cancel_action)(uint64_t) = nullptr;
// Lazily registered default resource instances, one per facade type.
std::array<ResourceId, 3> g_default_resources = {kInvalidResourceId, kInvalidResourceId,
                                                 kInvalidResourceId};

ResourceId DefaultResource(CApiResourceType type) {
  auto idx = static_cast<size_t>(type);
  if (g_default_resources[idx] == kInvalidResourceId && g_runtime != nullptr) {
    switch (type) {
      case CApiResourceType::LOCK:
        g_default_resources[idx] = g_runtime->RegisterResource("capi_lock", ResourceClass::kLock);
        break;
      case CApiResourceType::MEMORY:
        g_default_resources[idx] =
            g_runtime->RegisterResource("capi_memory", ResourceClass::kMemory);
        break;
      case CApiResourceType::QUEUE:
        g_default_resources[idx] =
            g_runtime->RegisterResource("capi_queue", ResourceClass::kQueue);
        break;
    }
  }
  return g_default_resources[idx];
}

bool Referenced(const Cancellable* c) {
  if (g_current == c) {
    return true;
  }
  return std::find(g_saved_chain.begin(), g_saved_chain.end(), c) != g_saved_chain.end();
}

// Deletes retired handles that no scope or current-task slot references
// anymore; called at every point a reference can disappear.
void ReapZombies() {
  for (auto it = g_zombies.begin(); it != g_zombies.end();) {
    if (!Referenced(*it)) {
      delete *it;
      it = g_zombies.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

void InstallGlobalRuntime(AtroposRuntime* runtime) {
  g_runtime = runtime;
  g_current = nullptr;
  g_saved_chain.clear();
  ReapZombies();  // nothing is referenced now — drops every retired handle
  g_cancel_action = nullptr;
  g_default_resources.fill(kInvalidResourceId);
}

AtroposRuntime* GlobalRuntime() { return g_runtime; }

Cancellable* createCancel(uint64_t key) {
  if (g_runtime == nullptr) {
    return nullptr;
  }
  g_runtime->OnTaskRegistered(key, /*background=*/false);
  return new Cancellable{key};
}

void freeCancel(Cancellable* c) {
  if (c == nullptr) {
    return;
  }
  if (g_runtime != nullptr) {
    g_runtime->OnTaskFreed(c->key);
  }
  if (Referenced(c)) {
    // Still the current task or saved by a live scope: retire lazily. The
    // current-task slot is deliberately left pointing at the handle —
    // subsequent tracing reaches the runtime under the freed key and is
    // counted there as ignored_events instead of disappearing without trace.
    if (std::find(g_zombies.begin(), g_zombies.end(), c) == g_zombies.end()) {
      g_zombies.push_back(c);
    }
    return;
  }
  delete c;
}

void setCancelAction(void (*func)(uint64_t)) {
  g_cancel_action = func;
  if (g_runtime != nullptr) {
    g_runtime->SetCancelAction([](uint64_t key) {
      if (g_cancel_action != nullptr) {
        g_cancel_action(key);
      }
    });
  }
}

Cancellable* SetCurrentCancellable(Cancellable* c) {
  Cancellable* prev = g_current;
  g_current = c;
  ReapZombies();
  return prev;
}

Cancellable* EnterCancellableScope(Cancellable* c) {
  g_saved_chain.push_back(g_current);
  g_current = c;
  return g_saved_chain.back();
}

void ExitCancellableScope(Cancellable* previous) {
  if (!g_saved_chain.empty()) {
    g_saved_chain.pop_back();
  }
  g_current = previous;
  ReapZombies();
}

void getResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnGet(g_current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void freeResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnFree(g_current->key, DefaultResource(rsc_type), static_cast<uint64_t>(value));
}

void slowByResource(long value, CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr || value <= 0) {
    return;
  }
  g_runtime->OnUsage(g_current->key, DefaultResource(rsc_type),
                     /*waited=*/static_cast<TimeMicros>(value), /*used=*/0);
}

void slowByResourceBegin(CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnWaitBegin(g_current->key, DefaultResource(rsc_type));
}

void slowByResourceEnd(CApiResourceType rsc_type) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnWaitEnd(g_current->key, DefaultResource(rsc_type));
}

void reportProgress(uint64_t done, uint64_t total) {
  if (g_runtime == nullptr || g_current == nullptr) {
    return;
  }
  g_runtime->OnProgress(g_current->key, done, total);
}

}  // namespace atropos
