// Tunable parameters of the Atropos runtime.

#ifndef SRC_ATROPOS_CONFIG_H_
#define SRC_ATROPOS_CONFIG_H_

#include "src/common/clock.h"

namespace atropos {

// Which cancellation policy drives victim selection (§3.5, Fig 13 ablation).
enum class PolicyKind {
  kMultiObjective = 0,  // Pareto non-dominated set + contention-weighted scalarization
  kHeuristic = 1,       // max gain on the single most contended resource
  kCurrentUsage = 2,    // multi-objective, but gain = current usage (no future prediction)
};

// Timestamping mode for the tracing APIs (§3.2 overhead discussion).
enum class TimestampMode {
  kSampled = 0,   // one clock read per sampling interval, shared by all events
  kPerEvent = 1,  // clock read on every tracing call (during suspected overload)
};

struct AtroposConfig {
  // Estimation/detection window; metrics are aggregated per window.
  TimeMicros window = Millis(100);

  // SLO expressed as tolerated p99 latency increase over the non-overloaded
  // baseline (§5.3 uses 10/20/40/60%).
  double slo_latency_increase = 0.20;

  // Baseline p99 latency. If zero, the detector calibrates it from the first
  // `calibration_windows` windows.
  TimeMicros baseline_p99 = 0;
  int calibration_windows = 10;

  // Throughput is "flat" if the current window rate is within this fraction
  // of the recent peak (Breakwater-style signal, §3.3).
  double throughput_flat_tolerance = 0.15;

  // This many in-flight requests older than the SLO latency count as a stall
  // regardless of the (survivor-biased) completion p99.
  int stall_active_threshold = 10;

  // A resource is considered overloaded when its normalized contention level
  // C_r = D_r / T_exec exceeds this threshold (§3.5 normalization) ...
  double contention_threshold = 0.10;
  // ... and also exceeds this multiple of the resource's *calibrated baseline*
  // contention. Workloads have inherent queueing (a mutex at 50% utilization
  // produces waits in steady state); only contention well above the healthy
  // baseline marks a resource as the bottleneck.
  double contention_baseline_factor = 2.5;

  // Minimum virtual time between consecutive cancellations; prevents
  // excessive task termination (§5.3 discusses the resulting trade-off).
  TimeMicros min_cancel_interval = Millis(200);

  // Fairness (§4): a task may be cancelled at most this many times; on
  // re-execution it is marked non-cancellable.
  int max_cancels_per_task = 1;

  // Windows of sustained sub-threshold contention before re-execution of
  // cancelled tasks is recommended (§4 "sustained resource availability").
  // Deliberately longer than a typical frontend retry deadline: a cancelled
  // heavyweight request should only re-execute into genuinely sustained calm,
  // otherwise it recreates the exact overload it caused, non-cancellably.
  int reexec_calm_windows = 30;

  // Background tasks with no SLO are guaranteed re-execution after waiting
  // this long (§4).
  TimeMicros background_max_wait = Seconds(10);

  PolicyKind policy = PolicyKind::kMultiObjective;

  TimestampMode timestamp_mode = TimestampMode::kSampled;
  // In sampled mode, how often a fresh timestamp is taken.
  TimeMicros timestamp_sample_interval = Millis(1);

  // Candidates whose predicted future resource gain is insignificant are
  // never cancelled: a task that will release the resource within a fraction
  // of one decision window resolves itself faster than a cancellation would.
  // Time-class resources (lock/queue/cpu/io) compare against
  // min_gain_window_fraction * window; memory resources against
  // min_gain_memory_units.
  double min_gain_window_fraction = 0.5;
  double min_gain_memory_units = 4.0;

  // Client class the latency SLO applies to (-1 = all classes). Detection
  // watches the latency-sensitive workload; long-running batch requests
  // completing slowly are not SLO violations.
  int slo_client_class = 0;

  // Progress assumed for tasks that never report any (§3.4: GetNext model
  // where available, developer API otherwise). 0.5 makes the future-gain
  // factor (1-p)/p equal to 1, i.e. gain = current usage.
  double default_progress = 0.5;

  // Master switches used by the overhead experiments (Fig 14): tracing can be
  // left on while cancellation actions are disabled.
  bool cancellation_enabled = true;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_CONFIG_H_
