#include "src/atropos/ledger.h"

#include <algorithm>

namespace atropos {

TaskLedger::TaskLedger(Clock* clock, const AtroposConfig& config, AtroposStats* stats)
    : clock_(clock), config_(config), stats_(stats), effective_mode_(config.timestamp_mode) {
  window_start_ = clock_->NowMicros();
  cached_now_ = window_start_;
}

ResourceId TaskLedger::RegisterResource(std::string name, ResourceClass cls) {
  ResourceId id = next_resource_id_++;
  ResourceRecord rec;
  rec.id = id;
  rec.cls = cls;
  rec.name = std::move(name);
  resources_.emplace(id, std::move(rec));
  return id;
}

const ResourceRecord* TaskLedger::FindResource(ResourceId id) const {
  auto it = resources_.find(id);
  return it == resources_.end() ? nullptr : &it->second;
}

const TaskRecord* TaskLedger::FindTask(uint64_t key) const {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    return nullptr;
  }
  auto t = tasks_.find(it->second);
  return t == tasks_.end() ? nullptr : &t->second;
}

TaskRecord* TaskLedger::FindTaskById(TaskId id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

TimeMicros TaskLedger::TraceNow() {
  if (effective_mode_ == TimestampMode::kPerEvent) {
    cached_now_ = clock_->NowMicros();
    return cached_now_;
  }
  // Sampled mode: reuse the cached timestamp within the sampling interval —
  // the batching that amortizes timestamp retrieval (§3.2). In a real
  // deployment the refresh is driven by a timer; here the interval check
  // plays that role without a second clock source.
  TimeMicros now = clock_->NowMicros();
  if (now >= cached_now_ + config_.timestamp_sample_interval) {
    cached_now_ = now - now % config_.timestamp_sample_interval;
  }
  return cached_now_;
}

void TaskLedger::RegisterTask(uint64_t key, bool background, bool cancellable) {
  TaskId id = next_task_id_++;
  TaskRecord rec;
  rec.id = id;
  rec.key = key;
  rec.created_at = clock_->NowMicros();
  rec.background = background;
  rec.cancellable = cancellable;
  // Replace any stale registration under the same key.
  auto old = key_to_task_.find(key);
  if (old != key_to_task_.end()) {
    auto stale = tasks_.find(old->second);
    if (stale != tasks_.end()) {
      RetireTaskAccounting(stale->second);
      tasks_.erase(stale);
    }
  }
  key_to_task_[key] = id;
  tasks_.emplace(id, std::move(rec));
}

void TaskLedger::FreeTask(uint64_t key) {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    return;
  }
  auto task = tasks_.find(it->second);
  if (task != tasks_.end()) {
    RetireTaskAccounting(task->second);
    tasks_.erase(task);
  }
  key_to_task_.erase(it);
}

void TaskLedger::RetireTaskAccounting(const TaskRecord& task) {
  for (const auto& [rid, usage] : task.usage) {
    if (usage.active_units == 0) {
      continue;
    }
    auto res = resources_.find(rid);
    if (res != resources_.end()) {
      res->second.leaked_units += usage.active_units;
    }
  }
}

std::vector<ResourceAudit> TaskLedger::AuditAccounting() const {
  std::map<ResourceId, uint64_t> live_held;
  for (const auto& [tid, task] : tasks_) {
    for (const auto& [rid, usage] : task.usage) {
      live_held[rid] += usage.active_units;
    }
  }
  std::vector<ResourceAudit> out;
  out.reserve(resources_.size());
  for (const auto& [rid, res] : resources_) {
    ResourceAudit row;
    row.id = rid;
    row.name = res.name;
    row.cls = res.cls;
    row.acquired = res.total_gets;
    row.released = res.total_frees;
    row.leaked = res.leaked_units;
    row.overfreed = res.overfreed_units;
    auto it = live_held.find(rid);
    row.live_held = it == live_held.end() ? 0 : it->second;
    out.push_back(std::move(row));
  }
  return out;
}

TaskRecord* TaskLedger::Lookup(uint64_t key) {
  auto it = key_to_task_.find(key);
  if (it == key_to_task_.end()) {
    stats_->ignored_events++;
    return nullptr;
  }
  return &tasks_.find(it->second)->second;
}

TaskResourceUsage* TaskLedger::UsageFor(uint64_t key, ResourceId resource) {
  TaskRecord* task = Lookup(key);
  if (task == nullptr) {
    return nullptr;
  }
  return &task->usage[resource];
}

void TaskLedger::RecordGet(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->acquired += amount;
  if (usage->active_units == 0) {
    usage->hold_started_at = now;
  }
  usage->active_units += amount;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    // Window gets count API calls, not units: the §3.4 eviction ratio is
    // "slowByResource calls / getResource calls" regardless of whether a call
    // acquires one page or a multi-KB allocation.
    res->second.window.gets++;
    res->second.total_gets += amount;
  }
}

void TaskLedger::RecordFree(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->released += amount;
  uint64_t dec = std::min(usage->active_units, amount);
  usage->active_units -= dec;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.total_frees += amount;
    res->second.overfreed_units += amount - dec;
  }
  if (usage->active_units == 0 && dec > 0 && now > usage->hold_started_at) {
    usage->hold_time += now - usage->hold_started_at;
    if (res != resources_.end()) {
      // Window counters take the part of the closed interval inside this
      // window; earlier parts were visible as an open interval before.
      TimeMicros from = std::max(usage->hold_started_at, window_start_);
      if (now > from) {
        res->second.window.hold_time += now - from;
      }
    }
  }
  if (res != resources_.end()) {
    res->second.window.frees += amount;
  }
}

void TaskLedger::RecordWaitBegin(uint64_t key, ResourceId resource) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || usage->waiting) {
    return;
  }
  usage->waiting = true;
  usage->wait_started_at = TraceNow();
}

void TaskLedger::RecordWaitEnd(uint64_t key, ResourceId resource) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || !usage->waiting) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->waiting = false;
  if (now > usage->wait_started_at) {
    usage->wait_time += now - usage->wait_started_at;
  }
  usage->slow_events++;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.window.slow_events++;
    res->second.total_slow_events++;
    TimeMicros from = std::max(usage->wait_started_at, window_start_);
    if (now > from) {
      res->second.window.wait_time += now - from;
    }
  }
}

void TaskLedger::RecordUsage(uint64_t key, ResourceId resource, TimeMicros waited,
                             TimeMicros used) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  usage->wait_time += waited;
  usage->hold_time += used;
  auto res = resources_.find(resource);
  if (res != resources_.end()) {
    res->second.window.wait_time += waited;
    res->second.window.hold_time += used;
    if (waited > 0) {
      res->second.window.slow_events++;
      res->second.total_slow_events++;
    }
  }
  if (waited > 0) {
    usage->slow_events++;
  }
}

void TaskLedger::RecordProgress(uint64_t key, uint64_t done, uint64_t total) {
  TaskRecord* task = Lookup(key);
  if (task == nullptr) {
    return;
  }
  task->has_progress = true;
  task->progress_done = done;
  task->progress_total = total;
}

void TaskLedger::RollWindow(TimeMicros now) {
  window_start_ = now;
  for (auto& [rid, res] : resources_) {
    res.window.Reset();
  }
}

}  // namespace atropos
