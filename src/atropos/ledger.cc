#include "src/atropos/ledger.h"

#include <algorithm>

namespace atropos {

TaskLedger::TaskLedger(Clock* clock, const AtroposConfig& config, AtroposStats* stats)
    : clock_(clock), config_(config), stats_(stats), effective_mode_(config.timestamp_mode) {
  window_start_ = clock_->NowMicros();
  cached_now_ = window_start_;
  trace_now_fn_ = &TaskLedger::TraceNowPerEvent;  // overwritten just below
  SetEffectiveMode(config.timestamp_mode);
}

ResourceId TaskLedger::RegisterResource(std::string name, ResourceClass cls) {
  ResourceId id = next_resource_id_++;
  ResourceRecord rec;
  rec.id = id;
  rec.cls = cls;
  rec.name = std::move(name);
  resources_.push_back(std::move(rec));
  if (resources_.size() > usage_stride_) {
    // Setup-time growth: widen every task's usage row. Geometric so N
    // resources cost O(log N) repacks.
    Restride(std::max<size_t>({usage_stride_ * 2, resources_.size(), 4}));
  }
  return id;
}

void TaskLedger::Restride(size_t new_stride) {
  std::vector<TaskResourceUsage> wider(task_slots_.size() * new_stride);
  for (size_t s = 0; s < task_slots_.size(); s++) {
    std::copy_n(usage_.begin() + static_cast<ptrdiff_t>(s * usage_stride_), usage_stride_,
                wider.begin() + static_cast<ptrdiff_t>(s * new_stride));
  }
  usage_ = std::move(wider);
  usage_stride_ = new_stride;
}

const ResourceRecord* TaskLedger::FindResource(ResourceId id) const {
  const size_t i = ResourceSlot(id);
  return i == static_cast<size_t>(-1) ? nullptr : &resources_[i];
}

const TaskRecord* TaskLedger::FindTask(uint64_t key) const {
  const uint32_t slot = key_index_.Find(key);
  return slot == kNilSlot ? nullptr : &task_slots_[slot];
}

TaskRecord* TaskLedger::FindTaskById(TaskId id) {
  const uint32_t slot = id_index_.Find(id);
  return slot == kNilSlot ? nullptr : &task_slots_[slot];
}

TimeMicros TaskLedger::TraceNowPerEvent(TaskLedger* self) {
  self->cached_now_ = self->clock_->NowMicros();
  return self->cached_now_;
}

TimeMicros TaskLedger::TraceNowSampled(TaskLedger* self) {
  // Sampled mode: reuse the cached timestamp within the sampling interval —
  // the batching that amortizes timestamp retrieval (§3.2). In a real
  // deployment the refresh is driven by a timer; here the cached-deadline
  // compare plays that role without a second clock source.
  const TimeMicros now = self->clock_->NowMicros();
  if (now >= self->sample_deadline_) {
    self->cached_now_ = now - now % self->config_.timestamp_sample_interval;
    self->sample_deadline_ = self->cached_now_ + self->config_.timestamp_sample_interval;
  }
  return self->cached_now_;
}

void TaskLedger::SetEffectiveMode(TimestampMode mode) {
  effective_mode_ = mode;
  if (mode == TimestampMode::kPerEvent) {
    trace_now_fn_ = &TaskLedger::TraceNowPerEvent;
  } else {
    trace_now_fn_ = &TaskLedger::TraceNowSampled;
    // Rearm the deadline against the current cached stamp, preserving the
    // "refresh once now >= cached + interval" semantics across mode flips.
    sample_deadline_ = cached_now_ + config_.timestamp_sample_interval;
  }
}

void TaskLedger::RegisterTask(uint64_t key, bool background, bool cancellable) {
  TaskId id = next_task_id_++;
  // Replace any stale registration under the same key.
  const uint32_t stale = key_index_.Find(key);
  if (stale != kNilSlot) {
    ReleaseSlot(stale);
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(task_slots_.size());
    task_slots_.emplace_back();
    slot_prev_.push_back(kNilSlot);
    slot_next_.push_back(kNilSlot);
    usage_.resize(usage_.size() + usage_stride_);
  }
  TaskRecord& rec = task_slots_[slot];
  rec = TaskRecord{};
  rec.id = id;
  rec.key = key;
  rec.created_at = clock_->NowMicros();
  rec.background = background;
  rec.cancellable = cancellable;
  // Append at the live-list tail: ids are monotone, so the head-to-tail walk
  // stays sorted by ascending TaskId (the estimator's deterministic order).
  slot_prev_[slot] = live_tail_;
  slot_next_[slot] = kNilSlot;
  if (live_tail_ == kNilSlot) {
    live_head_ = slot;
  } else {
    slot_next_[live_tail_] = slot;
  }
  live_tail_ = slot;
  key_index_.Put(key, slot);
  id_index_.Put(id, slot);
}

void TaskLedger::FreeTask(uint64_t key) {
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    return;
  }
  ReleaseSlot(slot);
  key_index_.Erase(key);
}

// atropos-lint: alloc-free
void TaskLedger::ReleaseSlot(uint32_t slot) {
  // Fold the departing task's open holdings into the per-resource ledger and
  // clear its usage row for the next occupant.
  TaskResourceUsage* row = usage_.data() + static_cast<size_t>(slot) * usage_stride_;
  for (size_t r = 0; r < resources_.size(); r++) {
    if (row[r].active_units != 0) {
      resources_[r].leaked_units += row[r].active_units;
    }
  }
  std::fill_n(row, usage_stride_, TaskResourceUsage{});
  // Unlink from the live list.
  const uint32_t prev = slot_prev_[slot];
  const uint32_t next = slot_next_[slot];
  if (prev == kNilSlot) {
    live_head_ = next;
  } else {
    slot_next_[prev] = next;
  }
  if (next == kNilSlot) {
    live_tail_ = prev;
  } else {
    slot_prev_[next] = prev;
  }
  id_index_.Erase(task_slots_[slot].id);
  free_slots_.push_back(slot);
}

std::vector<ResourceAudit> TaskLedger::AuditAccounting() const {
  std::vector<uint64_t> live_held(resources_.size(), 0);
  for (uint32_t slot = live_head_; slot != kNilSlot; slot = slot_next_[slot]) {
    const TaskResourceUsage* row = usage_row(slot);
    for (size_t r = 0; r < resources_.size(); r++) {
      live_held[r] += row[r].active_units;
    }
  }
  std::vector<ResourceAudit> out;
  out.reserve(resources_.size());
  for (size_t r = 0; r < resources_.size(); r++) {
    const ResourceRecord& res = resources_[r];
    ResourceAudit row;
    row.id = res.id;
    row.name = res.name;
    row.cls = res.cls;
    row.acquired = res.total_gets;
    row.released = res.total_frees;
    row.leaked = res.leaked_units;
    row.overfreed = res.overfreed_units;
    row.live_held = live_held[r];
    out.push_back(std::move(row));
  }
  return out;
}

// atropos-lint: alloc-free
TaskRecord* TaskLedger::Lookup(uint64_t key) {
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    stats_->ignored_events++;
    return nullptr;
  }
  return &task_slots_[slot];
}

// atropos-lint: alloc-free
TaskResourceUsage* TaskLedger::UsageFor(uint64_t key, ResourceId resource) {
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    stats_->ignored_events++;
    return nullptr;
  }
  const size_t r = ResourceSlot(resource);
  if (r == static_cast<size_t>(-1)) {
    // Event against a resource id that was never registered: counted in
    // trace_events by the caller (like always), otherwise untracked — such
    // usage was observationally dead weight in the map-based ledger too (it
    // could never reach the estimator, audits, or digests).
    return nullptr;
  }
  TaskResourceUsage* cell = usage_.data() + static_cast<size_t>(slot) * usage_stride_ + r;
  cell->touched = true;
  return cell;
}

// atropos-lint: alloc-free
void TaskLedger::RecordGet(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->acquired += amount;
  if (usage->active_units == 0) {
    usage->hold_started_at = now;
  }
  usage->active_units += amount;
  ResourceRecord& res = resources_[ResourceSlot(resource)];
  // Window gets count API calls, not units: the §3.4 eviction ratio is
  // "slowByResource calls / getResource calls" regardless of whether a call
  // acquires one page or a multi-KB allocation.
  res.window.gets++;
  res.total_gets += amount;
}

// atropos-lint: alloc-free
void TaskLedger::RecordFree(uint64_t key, ResourceId resource, uint64_t amount) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->released += amount;
  uint64_t dec = std::min(usage->active_units, amount);
  usage->active_units -= dec;
  ResourceRecord& res = resources_[ResourceSlot(resource)];
  res.total_frees += amount;
  res.overfreed_units += amount - dec;
  if (usage->active_units == 0 && dec > 0 && now > usage->hold_started_at) {
    usage->hold_time += now - usage->hold_started_at;
    // Window counters take the part of the closed interval inside this
    // window; earlier parts were visible as an open interval before.
    TimeMicros from = std::max(usage->hold_started_at, window_start_);
    if (now > from) {
      res.window.hold_time += now - from;
    }
  }
  res.window.frees += amount;
}

// atropos-lint: alloc-free
void TaskLedger::RecordWaitBegin(uint64_t key, ResourceId resource) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || usage->waiting) {
    return;
  }
  usage->waiting = true;
  usage->wait_started_at = TraceNow();
}

// atropos-lint: alloc-free
void TaskLedger::RecordWaitEnd(uint64_t key, ResourceId resource) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr || !usage->waiting) {
    return;
  }
  TimeMicros now = TraceNow();
  usage->waiting = false;
  if (now > usage->wait_started_at) {
    usage->wait_time += now - usage->wait_started_at;
  }
  usage->slow_events++;
  ResourceRecord& res = resources_[ResourceSlot(resource)];
  res.window.slow_events++;
  res.total_slow_events++;
  TimeMicros from = std::max(usage->wait_started_at, window_start_);
  if (now > from) {
    res.window.wait_time += now - from;
  }
}

// atropos-lint: alloc-free
void TaskLedger::RecordUsage(uint64_t key, ResourceId resource, TimeMicros waited,
                             TimeMicros used) {
  stats_->trace_events++;
  TaskResourceUsage* usage = UsageFor(key, resource);
  if (usage == nullptr) {
    return;
  }
  usage->wait_time += waited;
  usage->hold_time += used;
  ResourceRecord& res = resources_[ResourceSlot(resource)];
  res.window.wait_time += waited;
  res.window.hold_time += used;
  if (waited > 0) {
    res.window.slow_events++;
    res.total_slow_events++;
    usage->slow_events++;
  }
}

// atropos-lint: alloc-free
void TaskLedger::RecordProgress(uint64_t key, uint64_t done, uint64_t total) {
  TaskRecord* task = Lookup(key);
  if (task == nullptr) {
    return;
  }
  task->has_progress = true;
  task->progress_done = done;
  task->progress_total = total;
}

void TaskLedger::RollWindow(TimeMicros now) {
  window_start_ = now;
  for (ResourceRecord& res : resources_) {
    res.window.Reset();
  }
}

const TaskResourceUsage* TaskLedger::FindUsage(uint64_t key, ResourceId resource) const {
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    return nullptr;
  }
  const size_t r = ResourceSlot(resource);
  if (r == static_cast<size_t>(-1)) {
    return nullptr;
  }
  const TaskResourceUsage* cell = usage_row(slot) + r;
  return cell->touched ? cell : nullptr;
}

std::vector<ResourceId> TaskLedger::UsedResources(uint64_t key) const {
  std::vector<ResourceId> out;
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    return out;
  }
  const TaskResourceUsage* row = usage_row(slot);
  for (size_t r = 0; r < resources_.size(); r++) {
    if (row[r].touched) {
      out.push_back(static_cast<ResourceId>(r + 1));
    }
  }
  return out;
}

TaskResourceUsage* TaskLedger::MutableUsage(uint64_t key, ResourceId resource) {
  const uint32_t slot = key_index_.Find(key);
  if (slot == kNilSlot) {
    return nullptr;
  }
  const size_t r = ResourceSlot(resource);
  if (r == static_cast<size_t>(-1)) {
    return nullptr;
  }
  TaskResourceUsage* cell = usage_.data() + static_cast<size_t>(slot) * usage_stride_ + r;
  cell->touched = true;
  return cell;
}

TaskRecord* TaskLedger::MutableTask(uint64_t key) {
  const uint32_t slot = key_index_.Find(key);
  return slot == kNilSlot ? nullptr : &task_slots_[slot];
}

ResourceRecord* TaskLedger::MutableResource(ResourceId id) {
  const size_t i = ResourceSlot(id);
  return i == static_cast<size_t>(-1) ? nullptr : &resources_[i];
}

}  // namespace atropos
