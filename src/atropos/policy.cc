#include "src/atropos/policy.h"

#include <algorithm>

namespace atropos {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_greater = false;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i] < b[i]) {
      return false;
    }
    if (a[i] > b[i]) {
      strictly_greater = true;
    }
  }
  return strictly_greater;
}

namespace {

// Scalarizes a gain vector with the normalized contention levels as weights
// (Algorithm 1 lines 12-20).
double Scalarize(const PolicyInput& input, const std::vector<double>& gains) {
  double total = 0.0;
  for (size_t r = 0; r < input.resources.size(); r++) {
    total += input.resources[r].contention_norm * gains[r];
  }
  return total;
}

// Algorithm 1 lines 2-10: keep candidates not dominated by any other
// cancellable candidate.
std::vector<const PolicyInput::Candidate*> NonDominatedSet(
    const PolicyInput& input, bool use_current_usage) {
  auto vec = [&](const PolicyInput::Candidate& c) -> const std::vector<double>& {
    return use_current_usage ? c.current_usage : c.gains;
  };
  std::vector<const PolicyInput::Candidate*> out;
  for (const auto& a : input.candidates) {
    if (!a.cancellable) {
      continue;
    }
    bool dominated = false;
    for (const auto& b : input.candidates) {
      if (&a == &b || !b.cancellable) {
        continue;
      }
      if (Dominates(vec(b), vec(a))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      out.push_back(&a);
    }
  }
  return out;
}

PolicyDecision ScalarizeOver(const PolicyInput& input,
                             const std::vector<const PolicyInput::Candidate*>& set,
                             bool use_current_usage) {
  PolicyDecision decision;
  for (const auto* c : set) {
    double score = Scalarize(input, use_current_usage ? c->current_usage : c->gains);
    if (!decision.found() || score > decision.score) {
      decision.victim = c->task;
      decision.score = score;
    }
  }
  return decision;
}

// Fills the decision trace: one entry per candidate, marking Pareto
// survivors and their scalarized scores.
void Explain(const PolicyInput& input,
             const std::vector<const PolicyInput::Candidate*>& pareto_set,
             bool use_current_usage, PolicyExplain* explain) {
  if (explain == nullptr) {
    return;
  }
  explain->entries.clear();
  explain->entries.reserve(input.candidates.size());
  for (const auto& c : input.candidates) {
    PolicyExplain::Entry entry;
    entry.task = c.task;
    entry.cancellable = c.cancellable;
    entry.gains = use_current_usage ? c.current_usage : c.gains;
    for (const auto* p : pareto_set) {
      if (p == &c) {
        entry.pareto = true;
        entry.score = Scalarize(input, use_current_usage ? c.current_usage : c.gains);
        break;
      }
    }
    explain->entries.push_back(std::move(entry));
  }
}

}  // namespace

PolicyDecision SelectMultiObjective(const PolicyInput& input, PolicyExplain* explain) {
  if (input.resources.empty()) {
    return {};
  }
  auto set = NonDominatedSet(input, /*use_current_usage=*/false);
  Explain(input, set, /*use_current_usage=*/false, explain);
  return ScalarizeOver(input, set, /*use_current_usage=*/false);
}

PolicyDecision SelectHeuristic(const PolicyInput& input, PolicyExplain* explain) {
  if (input.resources.empty()) {
    return {};
  }
  // The single most contended resource.
  size_t top = 0;
  for (size_t r = 1; r < input.resources.size(); r++) {
    if (input.resources[r].contention_norm > input.resources[top].contention_norm) {
      top = r;
    }
  }
  if (explain != nullptr) {
    explain->entries.clear();
  }
  PolicyDecision decision;
  for (const auto& c : input.candidates) {
    if (explain != nullptr) {
      // The greedy policy has no Pareto filter: every cancellable candidate
      // is in the scored set.
      explain->entries.push_back(PolicyExplain::Entry{
          c.task, c.cancellable, c.cancellable, c.cancellable ? c.gains[top] : 0.0, c.gains});
    }
    if (!c.cancellable) {
      continue;
    }
    double score = c.gains[top];
    if (!decision.found() || score > decision.score) {
      decision.victim = c.task;
      decision.score = score;
    }
  }
  // A victim with zero gain on the chosen resource frees nothing; in that
  // case the greedy policy has no useful action.
  if (decision.found() && decision.score <= 0.0) {
    return {};
  }
  return decision;
}

PolicyDecision SelectCurrentUsage(const PolicyInput& input, PolicyExplain* explain) {
  if (input.resources.empty()) {
    return {};
  }
  auto set = NonDominatedSet(input, /*use_current_usage=*/true);
  Explain(input, set, /*use_current_usage=*/true, explain);
  return ScalarizeOver(input, set, /*use_current_usage=*/true);
}

PolicyDecision SelectVictim(PolicyKind kind, const PolicyInput& input, PolicyExplain* explain) {
  PolicyDecision decision;
  switch (kind) {
    case PolicyKind::kMultiObjective:
      decision = SelectMultiObjective(input, explain);
      break;
    case PolicyKind::kHeuristic:
      decision = SelectHeuristic(input, explain);
      break;
    case PolicyKind::kCurrentUsage:
      decision = SelectCurrentUsage(input, explain);
      break;
  }
  // Never select a victim whose cancellation frees nothing anywhere.
  if (decision.found() && decision.score <= 0.0) {
    return {};
  }
  return decision;
}

}  // namespace atropos
