#include "src/atropos/window.h"

#include <algorithm>

namespace atropos {

WindowAggregator::WindowAggregator(Clock* clock, const AtroposConfig& config,
                                   AtroposStats* stats)
    : clock_(clock), config_(config), stats_(stats) {
  window_start_ = clock_->NowMicros();
}

// atropos-lint: alloc-free
void WindowAggregator::ReleaseRequestSlot(uint32_t slot) {
  const uint32_t prev = req_prev_[slot];
  const uint32_t next = req_next_[slot];
  if (prev != kNilSlot) {
    req_next_[prev] = next;
  } else {
    inflight_head_ = next;
  }
  if (next != kNilSlot) {
    req_prev_[next] = prev;
  } else {
    inflight_tail_ = prev;
  }
  free_req_slots_.push_back(slot);
}

void WindowAggregator::OnRequestStart(uint64_t key, int client_class) {
  const TimeMicros now = clock_->NowMicros();
  const uint32_t existing = inflight_index_.Find(key);
  if (existing != kNilSlot) {
    // A second start under a live key: the application reused the key without
    // reporting the prior request's end. Treat it as an implicit end — the
    // stale slot would otherwise silently mis-attribute overdue_actives to
    // the wrong start time with no trace of the loss.
    stats_->request_restarts++;
    req_start_[existing] = now;
    req_class_[existing] = client_class;
    return;
  }
  uint32_t slot;
  if (!free_req_slots_.empty()) {
    slot = free_req_slots_.back();
    free_req_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(req_start_.size());
    req_start_.push_back(0);
    req_class_.push_back(0);
    req_prev_.push_back(kNilSlot);
    req_next_.push_back(kNilSlot);
  }
  req_start_[slot] = now;
  req_class_[slot] = client_class;
  req_prev_[slot] = inflight_tail_;
  req_next_[slot] = kNilSlot;
  if (inflight_tail_ != kNilSlot) {
    req_next_[inflight_tail_] = slot;
  } else {
    inflight_head_ = slot;
  }
  inflight_tail_ = slot;
  inflight_index_.Put(key, slot);
}

// atropos-lint: alloc-free
void WindowAggregator::OnRequestEnd(uint64_t key, TimeMicros latency, int client_class) {
  if (config_.slo_client_class < 0 || client_class == config_.slo_client_class) {
    window_latency_.Record(latency);
    window_completions_++;
  }
  // T_exec contribution, clipped to the window so long requests don't inflate
  // the denominator with execution that belongs to earlier windows.
  TimeMicros now = clock_->NowMicros();
  TimeMicros in_window = now > window_start_ ? now - window_start_ : 0;
  window_exec_time_ += std::min(latency, in_window);
  const uint32_t slot = inflight_index_.Find(key);
  if (slot != kNilSlot) {
    inflight_index_.Erase(key);
    ReleaseRequestSlot(slot);
  }
}

// atropos-lint: alloc-free
void WindowAggregator::DropKey(uint64_t key) {
  const uint32_t slot = inflight_index_.Find(key);
  if (slot != kNilSlot) {
    inflight_index_.Erase(key);
    ReleaseRequestSlot(slot);
  }
}

// atropos-lint: alloc-free
uint64_t WindowAggregator::CountOverdue(TimeMicros now, TimeMicros slo) const {
  uint64_t overdue = 0;
  for (uint32_t slot = inflight_head_; slot != kNilSlot; slot = req_next_[slot]) {
    if (config_.slo_client_class >= 0 && req_class_[slot] != config_.slo_client_class) {
      continue;  // long-running batch requests are not SLO violations
    }
    if (now > req_start_[slot] && now - req_start_[slot] > slo) {
      overdue++;
    }
  }
  return overdue;
}

TimeMicros WindowAggregator::ExecTimeFloored(TimeMicros now) const {
  return std::max<TimeMicros>(window_exec_time_, now - window_start_);
}

// atropos-lint: alloc-free
void WindowAggregator::Roll(TimeMicros now) {
  window_latency_.Reset();  // O(1) epoch bump
  window_completions_ = 0;
  window_exec_time_ = 0;
  window_start_ = now;
}

}  // namespace atropos
