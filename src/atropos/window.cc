#include "src/atropos/window.h"

#include <algorithm>

namespace atropos {

WindowAggregator::WindowAggregator(Clock* clock, const AtroposConfig& config,
                                   AtroposStats* stats)
    : clock_(clock), config_(config), stats_(stats) {
  window_start_ = clock_->NowMicros();
}

void WindowAggregator::OnRequestStart(uint64_t key, int client_class) {
  auto [it, inserted] = active_requests_.try_emplace(key);
  if (!inserted) {
    // A second start under a live key: the application reused the key without
    // reporting the prior request's end. Treat it as an implicit end — the
    // stale ActiveRequest would otherwise silently vanish, mis-attributing
    // overdue_actives to the wrong start time with no trace of the loss.
    stats_->request_restarts++;
  }
  it->second = ActiveRequest{clock_->NowMicros(), client_class};
}

void WindowAggregator::OnRequestEnd(uint64_t key, TimeMicros latency, int client_class) {
  if (config_.slo_client_class < 0 || client_class == config_.slo_client_class) {
    window_latency_.Record(latency);
    window_completions_++;
  }
  // T_exec contribution, clipped to the window so long requests don't inflate
  // the denominator with execution that belongs to earlier windows.
  TimeMicros now = clock_->NowMicros();
  TimeMicros in_window = now > window_start_ ? now - window_start_ : 0;
  window_exec_time_ += std::min(latency, in_window);
  active_requests_.erase(key);
}

void WindowAggregator::DropKey(uint64_t key) { active_requests_.erase(key); }

uint64_t WindowAggregator::CountOverdue(TimeMicros now, TimeMicros slo) const {
  uint64_t overdue = 0;
  for (const auto& [key, req] : active_requests_) {
    if (config_.slo_client_class >= 0 && req.client_class != config_.slo_client_class) {
      continue;  // long-running batch requests are not SLO violations
    }
    if (now > req.start && now - req.start > slo) {
      overdue++;
    }
  }
  return overdue;
}

TimeMicros WindowAggregator::ExecTimeFloored(TimeMicros now) const {
  return std::max<TimeMicros>(window_exec_time_, now - window_start_);
}

void WindowAggregator::Roll(TimeMicros now) {
  window_latency_.Reset();
  window_completions_ = 0;
  window_exec_time_ = 0;
  window_start_ = now;
}

}  // namespace atropos
