#include "src/atropos/instrument.h"

#include "src/atropos/runtime.h"

namespace atropos {

namespace {
// Brackets a blocking acquire with wait tracing; only emits the wait pair if
// the acquire would actually block, mirroring how real instrumentation wraps
// the slow path (Fig 8 places slowByResource on the eviction path only).
template <typename Awaitable>
Task<Status> TracedAcquire(OverloadController* tracer, ResourceId resource, uint64_t key,
                           bool will_block, Awaitable awaitable) {
  if (tracer != nullptr && will_block) {
    tracer->OnWaitBegin(key, resource);
  }
  Status s = co_await std::move(awaitable);
  if (tracer != nullptr && will_block) {
    tracer->OnWaitEnd(key, resource);
  }
  if (s.ok() && tracer != nullptr) {
    tracer->OnGet(key, resource, 1);
  }
  co_return s;
}
}  // namespace

Task<Status> InstrumentedRwLock::AcquireShared(uint64_t key, CancelToken* token) {
  bool will_block = lock_.writer_held() || lock_.waiter_count() > 0;
  return TracedAcquire(tracer_, resource_, key, will_block, lock_.AcquireShared(token));
}

Task<Status> InstrumentedRwLock::AcquireExclusive(uint64_t key, CancelToken* token) {
  bool will_block =
      lock_.writer_held() || lock_.active_readers() > 0 || lock_.waiter_count() > 0;
  return TracedAcquire(tracer_, resource_, key, will_block, lock_.AcquireExclusive(token));
}

void InstrumentedRwLock::ReleaseShared(uint64_t key) {
  lock_.ReleaseShared();
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
}

void InstrumentedRwLock::ReleaseExclusive(uint64_t key) {
  lock_.ReleaseExclusive();
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
}

Task<Status> InstrumentedMutex::Acquire(uint64_t key, CancelToken* token) {
  bool will_block = lock_.held() || lock_.waiter_count() > 0;
  return TracedAcquire(tracer_, resource_, key, will_block, lock_.Acquire(token));
}

void InstrumentedMutex::Release(uint64_t key) {
  lock_.Release();
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
}

Task<Status> InstrumentedSemaphore::Acquire(uint64_t key, CancelToken* token, uint64_t units) {
  bool will_block = sem_.available() < units || sem_.waiter_count() > 0;
  return TracedAcquire(tracer_, resource_, key, will_block, sem_.Acquire(units, token));
}

void InstrumentedSemaphore::Release(uint64_t key, uint64_t units) {
  sem_.Release(units);
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, units);
  }
}

void UsageReporter::OnUsage(TimeMicros waited, TimeMicros used) {
  if (tracer_ == nullptr) {
    return;
  }
  // Virtual dispatch: the runtime gets precise durations, generic controllers
  // the lowered bracketing form, and forwarding wrappers (the fuzz harness's
  // audit controller) see the event instead of having it tunnel past them.
  tracer_->OnUsage(key_, resource_, waited, used);
}

bool AdjustableLimiter::Acquirer::await_ready() {
  if (token_ != nullptr && token_->cancelled()) {
    node_.result = Status::Cancelled("limiter acquire aborted before suspend");
    return true;
  }
  if (limiter_.waiters_.empty() && limiter_.in_use_ < limiter_.limit_) {
    limiter_.in_use_++;
    node_.result = Status::Ok();
    return true;
  }
  return false;
}

void AdjustableLimiter::Acquirer::await_suspend(std::coroutine_handle<> h) {
  node_.handle = h;
  node_.owner = &limiter_;
  node_.token = token_;
  limiter_.waiters_.PushBack(&node_);
  if (token_ != nullptr) {
    token_->Register(&node_);
  }
}

Task<Status> AdjustableLimiter::Acquire(uint64_t key, CancelToken* token) {
  bool will_block = in_use_ >= limit_ || !waiters_.empty();
  if (tracer_ != nullptr && will_block) {
    tracer_->OnWaitBegin(key, resource_);
  }
  Status s = co_await Acquirer(*this, token);
  if (tracer_ != nullptr && will_block) {
    tracer_->OnWaitEnd(key, resource_);
  }
  if (s.ok() && tracer_ != nullptr) {
    tracer_->OnGet(key, resource_, 1);
  }
  co_return s;
}

void AdjustableLimiter::Release(uint64_t key) {
  in_use_--;
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
  GrantWaiters();
}

void AdjustableLimiter::SetLimit(int64_t limit) {
  limit_ = limit;
  GrantWaiters();
}

void AdjustableLimiter::GrantWaiters() {
  while (!waiters_.empty() && in_use_ < limit_) {
    WaitNode* node = waiters_.PopFront();
    in_use_++;
    if (node->token != nullptr) {
      node->token->Unregister(node);
      node->token = nullptr;
    }
    node->result = Status::Ok();
    executor_.ResumeAfter(0, node->handle);
  }
}

void AdjustableLimiter::CancelWaiter(WaitNode& node) {
  waiters_.Remove(&node);
  if (node.token != nullptr) {
    node.token->Unregister(&node);
    node.token = nullptr;
  }
  node.result = Status::Cancelled("limiter wait cancelled");
  executor_.ResumeAfter(0, node.handle);
}

}  // namespace atropos
