#include "src/atropos/pipeline.h"

namespace atropos {

DecisionPipeline DecisionPipeline::Default(const AtroposConfig& config) {
  DecisionPipeline pipeline;
  pipeline.detection = std::make_unique<BreakwaterDetectionStage>(config);
  pipeline.estimation = std::make_unique<GainEstimationStage>(config);
  pipeline.selection = MakeSelectionPolicy(config.policy);
  return pipeline;
}

std::unique_ptr<SelectionPolicy> DecisionPipeline::MakeSelectionPolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMultiObjective:
      return std::make_unique<MultiObjectivePolicy>();
    case PolicyKind::kHeuristic:
      return std::make_unique<HeuristicPolicy>();
    case PolicyKind::kCurrentUsage:
      return std::make_unique<CurrentUsagePolicy>();
  }
  return std::make_unique<MultiObjectivePolicy>();
}

}  // namespace atropos
